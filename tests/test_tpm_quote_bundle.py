"""QuoteBundle wire format and verifier edge cases."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.crypto import HmacDrbg, generate_rsa_keypair, pkcs1_sign, sha1
from repro.drtm.sealing import pal_pcr_selection
from repro.tpm.quote import QuoteBundle, expected_pcr_values, verify_quote
from repro.tpm.structures import PcrComposite, QuoteInfo


@pytest.fixture(scope="module")
def aik():
    return generate_rsa_keypair(512, HmacDrbg(b"qb-aik"))


def _bundle(aik, external=None):
    selection = pal_pcr_selection()
    values = (sha1(b"pcr17"), sha1(b"pcr18"))
    composite = PcrComposite(selection=selection, values=values)
    external = external or sha1(b"nonce")
    info = QuoteInfo(composite_digest=composite.digest(), external_data=external)
    return QuoteBundle(
        selection=selection,
        pcr_values=values,
        external_data=external,
        signature=pkcs1_sign(aik, info.to_bytes()),
        signer_fingerprint=aik.public.fingerprint(),
    )


class TestWireFormat:
    def test_roundtrip(self, aik):
        bundle = _bundle(aik)
        restored = QuoteBundle.from_bytes(bundle.to_bytes())
        assert restored == bundle
        assert verify_quote(aik.public, restored)

    def test_roundtrip_preserves_verifiability(self, aik):
        bundle = QuoteBundle.from_bytes(_bundle(aik).to_bytes())
        assert verify_quote(aik.public, bundle)


class TestVerifierEdgeCases:
    def test_wrong_fingerprint_rejected(self, aik):
        other = generate_rsa_keypair(512, HmacDrbg(b"qb-other"))
        bundle = replace(
            _bundle(aik), signer_fingerprint=other.public.fingerprint()
        )
        assert not verify_quote(aik.public, bundle)

    def test_short_external_data_rejected(self, aik):
        bundle = replace(_bundle(aik), external_data=b"short")
        assert not verify_quote(aik.public, bundle)

    def test_value_swap_rejected(self, aik):
        bundle = _bundle(aik)
        swapped = replace(
            bundle, pcr_values=(bundle.pcr_values[1], bundle.pcr_values[0])
        )
        assert not verify_quote(aik.public, swapped)

    def test_expected_pcr_values_helper(self):
        reported = {17: sha1(b"a"), 18: sha1(b"b")}
        assert expected_pcr_values(reported, {17: sha1(b"a")})
        assert not expected_pcr_values(reported, {17: sha1(b"x")})
        assert not expected_pcr_values(reported, {19: sha1(b"a")})
