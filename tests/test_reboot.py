"""Platform reboots: TPM volatility semantics and protocol recovery."""

from __future__ import annotations

import pytest

from repro.bench.world import TrustedPathWorld, WorldConfig
from repro.core.errors import TrustedPathError
from repro.os.disk import UntrustedDisk
from repro.tpm import TpmError
from repro.tpm.constants import DYNAMIC_PCR_DEFAULT, PCR_DRTM_CODE


@pytest.fixture(scope="module")
def rebooted_world():
    """A world that confirmed once, rebooted, and re-attached."""
    world = TrustedPathWorld(WorldConfig(seed=7272)).ready()
    outcome = world.confirm(world.sample_transfer(amount_cents=100, to="pre"))
    assert outcome.executed
    world.machine.reboot()
    world.client.reattach_after_reboot()
    return world


class TestTpmVolatility:
    def test_dynamic_pcrs_return_to_never_launched(self, fresh_world):
        world = fresh_world(seed=7300)
        world.ready()
        world.confirm(world.sample_transfer(amount_cents=1))
        world.machine.reboot()
        assert world.machine.tpm.pcrs.read(PCR_DRTM_CODE) == DYNAMIC_PCR_DEFAULT

    def test_plain_commands_work_after_reboot(self, fresh_world):
        world = fresh_world(seed=7301)
        world.ready()
        world.machine.reboot()
        # TPM_Startup ran inside reboot; ordinary commands work again.
        value = world.machine.chipset.tpm_command_as_os("pcr_read", pcr_index=0)
        assert len(value) == 20

    def test_stale_aik_handle_dead_after_reboot(self, fresh_world):
        from repro.crypto.sha1 import sha1
        from repro.drtm.sealing import pal_pcr_selection

        world = fresh_world(seed=7302)
        world.ready()
        aik_handle = world.client.credentials.aik_handle
        world.machine.reboot()
        with pytest.raises(TpmError):
            world.machine.chipset.tpm_command_as_os(
                "quote", key_handle=aik_handle,
                selection=pal_pcr_selection(), external_data=sha1(b"n"),
            )

    def test_counters_persist(self, fresh_world):
        world = fresh_world(seed=7303)
        world.ready()
        world.machine.chipset.tpm_command_as_os("create_counter", counter_id=9)
        world.machine.chipset.tpm_command_as_os("increment_counter", counter_id=9)
        world.machine.reboot()
        assert (
            world.machine.chipset.tpm_command_as_os("read_counter", counter_id=9)
            == 1
        )

    def test_reboot_requires_power(self, machine):
        machine.powered_on = False
        with pytest.raises(RuntimeError):
            machine.reboot()


class TestProtocolSurvivesReboot:
    def test_confirmation_works_after_reattach(self, rebooted_world):
        world = rebooted_world
        outcome = world.confirm(
            world.sample_transfer(amount_cents=200, to="post-reboot")
        )
        assert outcome.executed
        assert world.bank.balance_of("post-reboot") == 200

    def test_quote_variant_works_after_reattach(self, rebooted_world):
        outcome = rebooted_world.confirm(
            rebooted_world.sample_transfer(amount_cents=50, to="pq"),
            mode="quote",
        )
        assert outcome.executed

    def test_sealed_credential_survives_reboot_by_construction(
        self, rebooted_world
    ):
        """No re-setup happened: the pre-reboot sealed credential opened
        inside the post-reboot PAL session (seal binds PCR 17, which the
        genuine launch reproduces on any boot)."""
        host = rebooted_world.bank.endpoint.host
        assert rebooted_world.client.credentials.providers[host] is not None

    def test_reattach_without_blob_fails(self, fresh_world):
        world = fresh_world(seed=7304)
        world.ready()
        world.client.credentials.aik_wrapped = b""
        world.machine.reboot()
        with pytest.raises(TrustedPathError):
            world.client.reattach_after_reboot()

    def test_full_cold_start_from_disk(self, fresh_world):
        """The complete story: save state, reboot, load state from the
        untrusted disk, reattach, confirm."""
        world = fresh_world(seed=7305)
        world.ready()
        disk = UntrustedDisk()
        world.client.save_state(disk)
        world.machine.reboot()
        world.client.credentials = None  # the process restarted too
        world.client.load_state(disk)
        world.client.reattach_after_reboot()
        outcome = world.confirm(world.sample_transfer(amount_cents=75, to="cold"))
        assert outcome.executed
