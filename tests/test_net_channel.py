"""The TLS-lite secure channel: record protection properties."""

from __future__ import annotations

import pytest

from repro.crypto import HmacDrbg, generate_rsa_keypair
from repro.net.channel import ChannelError, establish_channel


@pytest.fixture(scope="module")
def channels():
    server_key = generate_rsa_keypair(512, HmacDrbg(b"server-key"))
    client, server, handshake = establish_channel(
        server_key.public, server_key, HmacDrbg(b"client-randomness")
    )
    return client, server, handshake


def _fresh_channels():
    server_key = generate_rsa_keypair(512, HmacDrbg(b"server-key-2"))
    return establish_channel(
        server_key.public, server_key, HmacDrbg(b"client-entropy")
    )[:2]


class TestHandshake:
    def test_shared_secret_established(self, channels):
        client, server, _ = channels
        assert client.session_secret == server.session_secret

    def test_handshake_bytes_do_not_leak_secret(self, channels):
        client, _, handshake = channels
        assert client.session_secret not in handshake


class TestRecords:
    def test_roundtrip_both_directions(self):
        client, server = _fresh_channels()
        assert server.unwrap(client.wrap(b"from client")) == b"from client"
        assert client.unwrap(server.wrap(b"from server")) == b"from server"

    def test_ciphertext_hides_plaintext(self):
        client, server = _fresh_channels()
        record = client.wrap(b"SECRET-PAYLOAD")
        assert b"SECRET-PAYLOAD" not in record

    def test_tampering_detected(self):
        client, server = _fresh_channels()
        record = bytearray(client.wrap(b"payload-data"))
        record[12] ^= 0x01
        with pytest.raises(ChannelError):
            server.unwrap(bytes(record))

    def test_replay_detected(self):
        client, server = _fresh_channels()
        record = client.wrap(b"once")
        server.unwrap(record)
        with pytest.raises(ChannelError):
            server.unwrap(record)  # sequence number already consumed

    def test_reordering_detected(self):
        client, server = _fresh_channels()
        first = client.wrap(b"first")
        second = client.wrap(b"second")
        with pytest.raises(ChannelError):
            server.unwrap(second)  # out of order
        server.unwrap(first)
        # After the failure the channel still accepts the right record? No —
        # strict ordering means 'second' is now next and valid:
        assert server.unwrap(second) == b"second"

    def test_reflection_detected(self):
        client, server = _fresh_channels()
        record = client.wrap(b"ping")
        with pytest.raises(ChannelError):
            client.unwrap(record)  # own record bounced back

    def test_short_record_rejected(self):
        _, server = _fresh_channels()
        with pytest.raises(ChannelError):
            server.unwrap(b"tiny")

    def test_empty_payload_ok(self):
        client, server = _fresh_channels()
        assert server.unwrap(client.wrap(b"")) == b""

    def test_sequences_advance_independently(self):
        client, server = _fresh_channels()
        for i in range(5):
            assert server.unwrap(client.wrap(b"c%d" % i)) == b"c%d" % i
        assert client.unwrap(server.wrap(b"s0")) == b"s0"
        assert client.send_sequence == 5 and server.send_sequence == 1
