"""The nonce database: single-use, freshness, eviction."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.crypto import HmacDrbg
from repro.server.noncedb import NonceDatabase, NonceState


@pytest.fixture
def db() -> NonceDatabase:
    return NonceDatabase(
        HmacDrbg(b"noncedb-test"), lifetime_seconds=100.0, eviction_interval=1e9
    )


class TestIssueConsume:
    def test_happy_path(self, db):
        nonce = db.issue(b"tx-1", now=0.0)
        accepted, state = db.consume(nonce, b"tx-1", now=10.0)
        assert accepted and state is NonceState.LIVE

    def test_nonces_unique(self, db):
        nonces = {db.issue(b"tx", now=0.0) for _ in range(100)}
        assert len(nonces) == 100

    def test_replay_rejected(self, db):
        nonce = db.issue(b"tx-1", now=0.0)
        db.consume(nonce, b"tx-1", now=1.0)
        accepted, state = db.consume(nonce, b"tx-1", now=2.0)
        assert not accepted and state is NonceState.CONSUMED
        assert db.rejected_replays == 1

    def test_expiry_rejected(self, db):
        nonce = db.issue(b"tx-1", now=0.0)
        accepted, state = db.consume(nonce, b"tx-1", now=101.0)
        assert not accepted and state is NonceState.EXPIRED

    def test_unknown_rejected(self, db):
        accepted, state = db.consume(b"\x00" * 20, b"tx-1", now=0.0)
        assert not accepted and state is NonceState.UNKNOWN

    def test_wrong_tx_binding_rejected(self, db):
        nonce = db.issue(b"tx-1", now=0.0)
        accepted, state = db.consume(nonce, b"tx-OTHER", now=1.0)
        assert not accepted
        # ...and the nonce is still live for the right transaction.
        accepted, _ = db.consume(nonce, b"tx-1", now=2.0)
        assert accepted

    def test_boundary_exactly_at_lifetime(self, db):
        nonce = db.issue(b"tx-1", now=0.0)
        accepted, _ = db.consume(nonce, b"tx-1", now=100.0)  # <= is fresh
        assert accepted

    def test_state_of(self, db):
        nonce = db.issue(b"tx-1", now=0.0)
        assert db.state_of(nonce, now=1.0) is NonceState.LIVE
        assert db.state_of(nonce, now=500.0) is NonceState.EXPIRED
        db.consume(nonce, b"tx-1", now=1.0)
        assert db.state_of(nonce, now=2.0) is NonceState.CONSUMED
        assert db.state_of(b"\xff" * 20, now=0.0) is NonceState.UNKNOWN


class TestEviction:
    def test_evict_removes_consumed_and_expired(self, db):
        keep = db.issue(b"tx-live", now=90.0)
        gone_consumed = db.issue(b"tx-used", now=90.0)
        db.consume(gone_consumed, b"tx-used", now=91.0)
        db.issue(b"tx-old", now=0.0)  # will be expired at t=150
        removed = db.evict(now=150.0)
        assert removed == 2
        assert db.live_count == 1
        assert db.state_of(keep, now=150.0) is NonceState.LIVE

    def test_automatic_eviction_on_issue(self):
        db = NonceDatabase(
            HmacDrbg(b"auto"), lifetime_seconds=10.0, eviction_interval=50.0
        )
        for i in range(20):
            db.issue(b"tx-%d" % i, now=float(i))
        # At t=60 the interval has passed: issuing triggers a sweep of
        # everything expired (age > 10).
        db.issue(b"tx-late", now=60.0)
        assert db.live_count <= 2

    def test_counters(self, db):
        nonce = db.issue(b"t", now=0.0)
        db.consume(nonce, b"t", now=1.0)
        db.consume(nonce, b"t", now=2.0)
        db.consume(b"\x00" * 20, b"t", now=3.0)
        assert db.issued == 1 and db.consumed == 1
        assert db.rejected_replays == 1 and db.rejected_unknown == 1


class TestProperties:
    @given(st.lists(st.binary(min_size=1, max_size=8), min_size=1, max_size=30,
                    unique=True))
    def test_property_single_use(self, tx_ids):
        db = NonceDatabase(HmacDrbg(b"prop"), lifetime_seconds=1e6)
        pairs = [(tx_id, db.issue(tx_id, now=0.0)) for tx_id in tx_ids]
        for tx_id, nonce in pairs:
            accepted, _ = db.consume(nonce, tx_id, now=1.0)
            assert accepted
        for tx_id, nonce in pairs:
            accepted, _ = db.consume(nonce, tx_id, now=2.0)
            assert not accepted


class TestConsumePathEviction:
    def test_consume_triggers_sweep(self):
        db = NonceDatabase(
            HmacDrbg(b"sweep"), lifetime_seconds=10.0, eviction_interval=50.0
        )
        for i in range(20):
            db.issue(b"tx-%d" % i, now=float(i))
        live = db.issue(b"tx-live", now=60.0)
        # A confirm-heavy phase: no further issue() calls, but consuming
        # at t=120 still runs the sweep and drops the expired backlog.
        accepted, _ = db.consume(live, b"tx-live", now=65.0)
        assert accepted
        db.consume(b"\x00" * 20, b"tx-x", now=120.0)
        assert db.live_count == 0
        assert db.evictions >= 20

    def test_sweep_does_not_mask_expired_verdict(self):
        db = NonceDatabase(
            HmacDrbg(b"verdict"), lifetime_seconds=10.0, eviction_interval=50.0
        )
        nonce = db.issue(b"tx-1", now=0.0)
        # At t=100 the nonce is both expired and about to be evicted by
        # the consume-path sweep; the caller must still see EXPIRED (the
        # recoverable, re-challengeable verdict) rather than UNKNOWN.
        accepted, state = db.consume(nonce, b"tx-1", now=100.0)
        assert not accepted and state is NonceState.EXPIRED
        assert db.live_count == 0

    def test_evictions_counter(self, db):
        used = db.issue(b"tx-used", now=0.0)
        db.consume(used, b"tx-used", now=1.0)
        db.issue(b"tx-old", now=0.0)
        assert db.evict(now=200.0) == 2
        assert db.evictions == 2


class TestInvalidate:
    def test_invalidate_forgets_live_nonce(self, db):
        nonce = db.issue(b"tx-1", now=0.0)
        assert db.invalidate(nonce)
        accepted, state = db.consume(nonce, b"tx-1", now=1.0)
        assert not accepted and state is NonceState.UNKNOWN
        assert db.invalidated == 1

    def test_invalidate_unknown_is_noop(self, db):
        assert not db.invalidate(b"\xab" * 20)
        assert db.invalidated == 0
