"""The attestation verifier: every rejection reason must be reachable."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.core.confirmation_pal import confirmation_digest
from repro.crypto import HmacDrbg, generate_rsa_keypair, pkcs1_sign, sha1
from repro.drtm.sealing import pal_pcr_selection, pcr17_after_launch
from repro.server.policy import PCR18_POST_RESET, VerifierPolicy
from repro.server.verifier import AttestationVerifier, VerificationFailure
from repro.tpm.ca import AikCertificate, PrivacyCa
from repro.tpm.quote import QuoteBundle


PAL_MEASUREMENT = sha1(b"the published PAL")


@pytest.fixture(scope="module")
def aik_key():
    return generate_rsa_keypair(512, HmacDrbg(b"verifier-aik"))


@pytest.fixture(scope="module")
def signing_key():
    return generate_rsa_keypair(512, HmacDrbg(b"verifier-signing"))


@pytest.fixture
def policy() -> VerifierPolicy:
    policy = VerifierPolicy()
    policy.approve_pal(PAL_MEASUREMENT)
    return policy


@pytest.fixture
def verifier(policy) -> AttestationVerifier:
    return AttestationVerifier(policy)


def _genuine_quote(aik_key, pcr18: bytes, external: bytes) -> QuoteBundle:
    """Build what the genuine TPM would emit for the approved PAL."""
    from repro.tpm.structures import PcrComposite, QuoteInfo

    selection = pal_pcr_selection()
    values = (pcr17_after_launch(PAL_MEASUREMENT), pcr18)
    composite = PcrComposite(selection=selection, values=values)
    info = QuoteInfo(composite_digest=composite.digest(), external_data=external)
    return QuoteBundle(
        selection=selection,
        pcr_values=values,
        external_data=external,
        signature=pkcs1_sign(aik_key, info.to_bytes()),
        signer_fingerprint=aik_key.public.fingerprint(),
    )


class TestPolicy:
    def test_expected_pcr17(self, policy):
        assert policy.expected_pcr17_values() == [
            pcr17_after_launch(PAL_MEASUREMENT)
        ]

    def test_measurement_must_be_digest(self, policy):
        with pytest.raises(ValueError):
            policy.approve_pal(b"not-a-digest")

    def test_toggle_disables_check(self, policy):
        assert not policy.pcr17_is_approved(sha1(b"rogue"))
        policy.check_pal_measurement = False
        assert policy.pcr17_is_approved(sha1(b"rogue"))


class TestAikCertificateCheck:
    def test_trusted_ca_accepted(self, verifier, policy, aik_key):
        ca = PrivacyCa(seed=1)
        policy.trust_ca(ca.public_key)
        certificate = AikCertificate(
            aik_public=aik_key.public,
            platform_class="pc",
            signature=pkcs1_sign(
                ca._keypair, aik_key.public.to_bytes() + b"pc"
            ),
        )
        assert verifier.verify_aik_certificate(certificate).ok

    def test_untrusted_ca_rejected(self, verifier, aik_key):
        rogue_ca = PrivacyCa(seed=2)
        certificate = AikCertificate(
            aik_public=aik_key.public,
            platform_class="pc",
            signature=pkcs1_sign(
                rogue_ca._keypair, aik_key.public.to_bytes() + b"pc"
            ),
        )
        result = verifier.verify_aik_certificate(certificate)
        assert not result.ok
        assert result.failure is VerificationFailure.BAD_CA_SIGNATURE


class TestSetupVerification:
    def _setup_quote(self, aik_key, public_key, nonce):
        pcr18 = sha1(PCR18_POST_RESET + sha1(public_key.to_bytes()))
        return _genuine_quote(aik_key, pcr18, sha1(nonce))

    def test_genuine_setup_accepted(self, verifier, aik_key, signing_key):
        nonce = b"n" * 20
        quote = self._setup_quote(aik_key, signing_key.public, nonce)
        result = verifier.verify_setup(
            aik_key.public, signing_key.public, quote, nonce
        )
        assert result.ok

    def test_wrong_nonce_rejected(self, verifier, aik_key, signing_key):
        quote = self._setup_quote(aik_key, signing_key.public, b"n" * 20)
        result = verifier.verify_setup(
            aik_key.public, signing_key.public, quote, b"m" * 20
        )
        assert result.failure is VerificationFailure.CERTIFY_WRONG_NONCE

    def test_key_substitution_rejected(self, verifier, aik_key, signing_key):
        """The attacker presents its own key with a quote certifying the
        genuine one."""
        attacker = generate_rsa_keypair(512, HmacDrbg(b"attacker"))
        nonce = b"n" * 20
        quote = self._setup_quote(aik_key, signing_key.public, nonce)
        result = verifier.verify_setup(aik_key.public, attacker.public, quote, nonce)
        assert result.failure is VerificationFailure.CERTIFY_WRONG_KEY

    def test_wrong_pal_rejected(self, verifier, aik_key, signing_key):
        nonce = b"n" * 20
        from repro.tpm.structures import PcrComposite, QuoteInfo

        selection = pal_pcr_selection()
        values = (
            pcr17_after_launch(sha1(b"impostor pal")),
            sha1(PCR18_POST_RESET + sha1(signing_key.public.to_bytes())),
        )
        composite = PcrComposite(selection=selection, values=values)
        info = QuoteInfo(
            composite_digest=composite.digest(), external_data=sha1(nonce)
        )
        quote = QuoteBundle(
            selection=selection,
            pcr_values=values,
            external_data=sha1(nonce),
            signature=pkcs1_sign(aik_key, info.to_bytes()),
            signer_fingerprint=aik_key.public.fingerprint(),
        )
        result = verifier.verify_setup(
            aik_key.public, signing_key.public, quote, nonce
        )
        assert result.failure is VerificationFailure.CERTIFY_WRONG_PCRS

    def test_bad_signature_rejected(self, verifier, aik_key, signing_key):
        nonce = b"n" * 20
        quote = self._setup_quote(aik_key, signing_key.public, nonce)
        broken = replace(quote, signature=b"\x00" * len(quote.signature))
        result = verifier.verify_setup(
            aik_key.public, signing_key.public, broken, nonce
        )
        assert result.failure is VerificationFailure.BAD_CERTIFY_SIGNATURE


class TestQuoteConfirmation:
    TEXT = b"transfer 100 to bob"
    NONCE = b"q" * 20

    def _confirmation_quote(self, aik_key, decision=b"accept", text=None,
                            nonce=None):
        text = self.TEXT if text is None else text
        nonce = self.NONCE if nonce is None else nonce
        digest = confirmation_digest(text, nonce, decision)
        pcr18 = sha1(PCR18_POST_RESET + digest)
        return _genuine_quote(aik_key, pcr18, sha1(nonce))

    def test_genuine_accepted(self, verifier, aik_key):
        quote = self._confirmation_quote(aik_key)
        result = verifier.verify_quote_confirmation(
            aik_key.public, quote, self.TEXT, self.NONCE, b"accept"
        )
        assert result.ok

    def test_decision_flip_rejected(self, verifier, aik_key):
        quote = self._confirmation_quote(aik_key, decision=b"reject")
        result = verifier.verify_quote_confirmation(
            aik_key.public, quote, self.TEXT, self.NONCE, b"accept"
        )
        assert result.failure is VerificationFailure.QUOTE_WRONG_PCR18

    def test_text_swap_rejected(self, verifier, aik_key):
        quote = self._confirmation_quote(aik_key, text=b"transfer 100 to mule")
        result = verifier.verify_quote_confirmation(
            aik_key.public, quote, self.TEXT, self.NONCE, b"accept"
        )
        assert result.failure is VerificationFailure.QUOTE_WRONG_PCR18

    def test_nonce_swap_rejected(self, verifier, aik_key):
        quote = self._confirmation_quote(aik_key, nonce=b"r" * 20)
        result = verifier.verify_quote_confirmation(
            aik_key.public, quote, self.TEXT, self.NONCE, b"accept"
        )
        assert result.failure is VerificationFailure.QUOTE_WRONG_NONCE

    def test_unapproved_pal_rejected(self, verifier, policy, aik_key):
        policy.approved_pal_measurements.clear()
        policy.approve_pal(sha1(b"some other PAL"))
        quote = self._confirmation_quote(aik_key)
        result = verifier.verify_quote_confirmation(
            aik_key.public, quote, self.TEXT, self.NONCE, b"accept"
        )
        assert result.failure is VerificationFailure.QUOTE_WRONG_PCR17


class TestSignedConfirmation:
    TEXT = b"order 1 gpu"
    NONCE = b"s" * 20

    def _signature(self, signing_key, decision=b"accept"):
        digest = confirmation_digest(self.TEXT, self.NONCE, decision)
        return pkcs1_sign(signing_key, digest, prehashed=True)

    def test_genuine_accepted(self, verifier, signing_key):
        result = verifier.verify_signed_confirmation(
            signing_key.public, self._signature(signing_key),
            self.TEXT, self.NONCE, b"accept",
        )
        assert result.ok

    def test_no_registered_key(self, verifier, signing_key):
        result = verifier.verify_signed_confirmation(
            None, self._signature(signing_key), self.TEXT, self.NONCE, b"accept"
        )
        assert result.failure is VerificationFailure.NO_REGISTERED_KEY

    def test_wrong_key_rejected(self, verifier, signing_key):
        attacker = generate_rsa_keypair(512, HmacDrbg(b"attacker-2"))
        digest = confirmation_digest(self.TEXT, self.NONCE, b"accept")
        forged = pkcs1_sign(attacker, digest, prehashed=True)
        result = verifier.verify_signed_confirmation(
            signing_key.public, forged, self.TEXT, self.NONCE, b"accept"
        )
        assert result.failure is VerificationFailure.BAD_SIGNATURE

    def test_decision_flip_rejected(self, verifier, signing_key):
        result = verifier.verify_signed_confirmation(
            signing_key.public, self._signature(signing_key, b"reject"),
            self.TEXT, self.NONCE, b"accept",
        )
        assert result.failure is VerificationFailure.BAD_SIGNATURE


class TestBatchConfirmation:
    """`verify_confirm_batch` must give the exact verdict and reason
    code the single-transaction path gives against the batch text —
    and compose with the VerificationCache for its signature legs."""

    TEXT = b"BATCH CONFIRMATION - 3 transactions\n..."
    NONCE = b"b" * 20

    def _certificate(self, policy, aik_key, trusted=True):
        ca = PrivacyCa(seed=11)
        if trusted:
            policy.trust_ca(ca.public_key)
        return AikCertificate(
            aik_public=aik_key.public,
            platform_class="pc",
            signature=pkcs1_sign(
                ca._keypair, aik_key.public.to_bytes() + b"pc"
            ),
        )

    def _batch_quote(self, aik_key, decision=b"accept", counter=-1):
        digest = confirmation_digest(self.TEXT, self.NONCE, decision,
                                     counter)
        pcr18 = sha1(PCR18_POST_RESET + digest)
        return _genuine_quote(aik_key, pcr18, sha1(self.NONCE))

    def _signature(self, signing_key, decision=b"accept", counter=-1):
        digest = confirmation_digest(self.TEXT, self.NONCE, decision,
                                     counter)
        return pkcs1_sign(signing_key, digest, prehashed=True)

    def test_quote_leg_matches_single_path(self, verifier, policy, aik_key):
        certificate = self._certificate(policy, aik_key)
        quote = self._batch_quote(aik_key)
        batch = verifier.verify_confirm_batch(
            evidence_type="quote", text=self.TEXT, nonce=self.NONCE,
            decision=b"accept", members=3,
            aik_certificate=certificate, quote_bytes=quote.to_bytes(),
        )
        single = verifier.verify_quote_confirmation(
            aik_key.public, quote, self.TEXT, self.NONCE, b"accept"
        )
        assert batch.ok and single.ok
        assert batch.failure is single.failure
        assert verifier.batch_legs == 1
        assert verifier.batch_members == 3

    def test_signed_leg_matches_single_path(self, verifier, signing_key):
        signature = self._signature(signing_key)
        batch = verifier.verify_confirm_batch(
            evidence_type="signed", text=self.TEXT, nonce=self.NONCE,
            decision=b"accept", members=2,
            registered_key=signing_key.public, signature=signature,
        )
        single = verifier.verify_signed_confirmation(
            signing_key.public, signature, self.TEXT, self.NONCE,
            b"accept",
        )
        assert batch.ok and single.ok

    def test_reason_code_parity_on_rejections(self, verifier, policy,
                                              aik_key, signing_key):
        certificate = self._certificate(policy, aik_key)
        cases = []
        # Decision flip: PCR 18 no longer binds the digest.
        cases.append((
            dict(evidence_type="quote", aik_certificate=certificate,
                 quote_bytes=self._batch_quote(
                     aik_key, decision=b"reject").to_bytes()),
            VerificationFailure.QUOTE_WRONG_PCR18,
        ))
        # No enrolled AIK.
        cases.append((
            dict(evidence_type="quote", aik_certificate=None,
                 quote_bytes=self._batch_quote(aik_key).to_bytes()),
            VerificationFailure.BAD_CA_SIGNATURE,
        ))
        # Malformed quote bytes.
        cases.append((
            dict(evidence_type="quote", aik_certificate=certificate,
                 quote_bytes=b"\x01garbage"),
            VerificationFailure.MALFORMED,
        ))
        cases.append((
            dict(evidence_type="quote", aik_certificate=certificate,
                 quote_bytes=None),
            VerificationFailure.MALFORMED,
        ))
        # Signed variant: wrong key, then missing key, then non-bytes.
        attacker = generate_rsa_keypair(512, HmacDrbg(b"batch-attacker"))
        cases.append((
            dict(evidence_type="signed",
                 registered_key=signing_key.public,
                 signature=self._signature(attacker)),
            VerificationFailure.BAD_SIGNATURE,
        ))
        cases.append((
            dict(evidence_type="signed", registered_key=None,
                 signature=self._signature(signing_key)),
            VerificationFailure.NO_REGISTERED_KEY,
        ))
        cases.append((
            dict(evidence_type="signed",
                 registered_key=signing_key.public, signature=None),
            VerificationFailure.MALFORMED,
        ))
        # Unknown evidence type.
        cases.append((
            dict(evidence_type="telepathy"),
            VerificationFailure.MALFORMED,
        ))
        for kwargs, expected in cases:
            result = verifier.verify_confirm_batch(
                text=self.TEXT, nonce=self.NONCE, decision=b"accept",
                **kwargs,
            )
            assert not result.ok, kwargs
            assert result.failure is expected, kwargs

    def test_stale_ca_set_rejected(self, policy, aik_key):
        """A cert that no longer chains to a trusted CA stops passing
        batch verification even though enrollment once accepted it."""
        certificate = self._certificate(policy, aik_key, trusted=False)
        policy.trust_ca(PrivacyCa(seed=99).public_key)  # different CA
        verifier = AttestationVerifier(policy)
        result = verifier.verify_confirm_batch(
            evidence_type="quote", text=self.TEXT, nonce=self.NONCE,
            decision=b"accept", aik_certificate=certificate,
            quote_bytes=self._batch_quote(aik_key).to_bytes(),
        )
        assert result.failure is VerificationFailure.BAD_CA_SIGNATURE

    def test_counter_binds_digest(self, verifier, signing_key):
        signature = self._signature(signing_key, counter=7)
        ok = verifier.verify_confirm_batch(
            evidence_type="signed", text=self.TEXT, nonce=self.NONCE,
            decision=b"accept", counter=7,
            registered_key=signing_key.public, signature=signature,
        )
        stale = verifier.verify_confirm_batch(
            evidence_type="signed", text=self.TEXT, nonce=self.NONCE,
            decision=b"accept", counter=8,
            registered_key=signing_key.public, signature=signature,
        )
        assert ok.ok
        assert stale.failure is VerificationFailure.BAD_SIGNATURE

    def test_composes_with_verification_cache(self, policy, aik_key,
                                              signing_key):
        from repro.server.verifier import VerificationCache

        cache = VerificationCache()
        verifier = AttestationVerifier(policy, cache=cache)
        certificate = self._certificate(policy, aik_key)
        quote_bytes = self._batch_quote(aik_key).to_bytes()
        kwargs = dict(
            evidence_type="quote", text=self.TEXT, nonce=self.NONCE,
            decision=b"accept", aik_certificate=certificate,
            quote_bytes=quote_bytes,
        )
        first = verifier.verify_confirm_batch(**kwargs)
        misses_after_first = cache.misses
        second = verifier.verify_confirm_batch(**kwargs)
        assert first.ok and second.ok
        assert cache.misses == misses_after_first  # all legs memoized
        assert cache.hits >= 2  # cert + quote signature both replayed
