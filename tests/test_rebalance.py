"""Elastic shard pool: migration, drain, reconciliation, autoscaling.

The acceptance properties for `repro.server.rebalance`:

* scaling up moves exactly the grown ring's account ranges — sessions,
  pending transactions and their nonces migrate, so in-flight work
  settles on the new owner and the replay defense never weakens;
* after the flip the router's learned routes are rewritten: the next
  request for a migrated account lands on the new owner *first try*;
* a leg that raced the flip is re-aimed once inside the dual-read
  window instead of surfacing a spurious denial;
* add-then-drain returns the pool to a state **bit-identical** (pool
  digest) to a run that never scaled;
* register-failover overrides reconcile back to ring ownership once
  the home shard recovers — the override map drains instead of leaking;
* the autoscaler scales up under sustained pressure and drains in
  sustained calm, with hysteresis and cooldown against flapping.
"""

from __future__ import annotations

import pytest

from repro.core.confirmation_pal import confirmation_digest
from repro.crypto import HmacDrbg, generate_rsa_keypair, pkcs1_sign
from repro.net.network import LinkSpec, Network
from repro.net.rpc import RpcError
from repro.os.disk import UntrustedDisk
from repro.server.bank import BankServer
from repro.server.policy import VerifierPolicy
from repro.server.rebalance import AutoScaler, ShardPoolManager
from repro.server.router import build_sharded_pool
from repro.sim import Simulator

CLIENT = "load-host"
POOL = "pool.test"


def _build(shard_count: int, journal: bool = True, seed: int = 404):
    simulator = Simulator(seed=seed)
    network = Network(simulator)
    network.attach(CLIENT, LinkSpec.lan())
    policy = VerifierPolicy()
    disk = UntrustedDisk() if journal else None
    router = build_sharded_pool(
        simulator, network, POOL, policy,
        shard_count=shard_count, provider_factory=BankServer,
        workers_per_shard=1, journal_disk=disk, snapshot_every=8,
    )

    def make_shard(host: str) -> BankServer:
        if not network.is_attached(host):
            network.attach(host, LinkSpec.lan())
        shard = BankServer(simulator, network, host, policy, workers=1)
        if disk is not None:
            shard.attach_journal(disk, snapshot_every=8)
        return shard

    signing_key = generate_rsa_keypair(512, HmacDrbg(b"rebalance-signing"))
    return simulator, router, signing_key, make_shard


def _enroll(router, signing_key, name):
    router.endpoint.call_sync(
        CLIENT, "register",
        {"account": name, "password": "pw", "opening_balance": 10_000_000},
    )
    login = router.endpoint.call_sync(
        CLIENT, "login", {"account": name, "password": "pw"}
    )
    router.shard_for_account(name).register_signing_key(
        name, signing_key.public
    )
    return login["set_session"]


def _request(router, cookie, amount, name):
    return router.endpoint.call_sync(
        CLIENT, "tx.request",
        {
            "kind": "transfer", "account": name, "session": cookie,
            "f.to": "sink", "f.amount": amount,
        },
    )


def _confirm(router, signing_key, cookie, challenge):
    digest = confirmation_digest(
        challenge["text"], challenge["nonce"], b"accept"
    )
    return router.endpoint.call_sync(
        CLIENT, "tx.confirm",
        {
            "tx_id": challenge["tx_id"], "decision": b"accept",
            "evidence": "signed",
            "signature": pkcs1_sign(signing_key, digest, prehashed=True),
            "session": cookie,
        },
    )


def _transfer(router, signing_key, cookie, amount, name):
    challenge = _request(router, cookie, amount, name)
    assert "error" not in challenge, challenge
    return _confirm(router, signing_key, cookie, challenge)


class TestScaleUp:
    def test_ranges_move_and_sessions_survive_first_try(self):
        simulator, router, signing_key, make = _build(shard_count=2)
        names = [f"acct-{i:02d}" for i in range(16)]
        cookies = {n: _enroll(router, signing_key, n) for n in names}
        manager = ShardPoolManager(simulator, router, make)
        new_host = manager.scale_up()
        assert new_host == f"{POOL}!shard2"
        assert manager.scale_up() is None  # one migration at a time
        simulator.run(until=simulator.now + 5.0)
        assert not manager.busy

        new_shard = router.shards[2]
        moved = sorted(new_shard.accounts)
        assert moved, "grown ring should assign some of 16 accounts"
        assert sum(len(s.accounts) for s in router.shards) == len(names)
        assert router.cookie_rewrites >= len(moved)
        report = manager.reports[-1]
        assert report.kind == "scale_up"
        assert report.accounts == len(moved)
        assert report.snapshot_bytes > 0

        # First-try routing: the migrated session's next request lands
        # on the new owner directly — no dual-read redirect needed.
        name = moved[0]
        forwards_before = router.forwards_by_shard[2]
        redirects_before = router.dual_read_redirects
        challenge = _request(router, cookies[name], 500, name)
        assert "error" not in challenge, challenge
        assert router.forwards_by_shard[2] == forwards_before + 1
        assert router.dual_read_redirects == redirects_before
        # The nonce migrated with the account: the confirm settles.
        result = _confirm(router, signing_key, cookies[name], challenge)
        assert result["status"] == "executed"

    def test_leg_racing_the_flip_is_redirected_not_denied(self):
        simulator, router, signing_key, make = _build(shard_count=2)
        names = [f"acct-{i:02d}" for i in range(16)]
        cookies = {n: _enroll(router, signing_key, n) for n in names}
        # Instant copy: the flip fires before the in-flight leg's
        # network hop lands, so the leg reaches the *old* owner after
        # its range moved away.
        manager = ShardPoolManager(
            simulator, router, make,
            transfer_latency_s=0.0, bandwidth_bytes_per_s=1e15,
        )
        new_index = len(router.shards)  # index the new shard will get
        # Pick an account the grown ring will assign to the new shard.
        from repro.server.router import HashRing
        grown = HashRing(
            [s.host for s in router.shards] + [f"{POOL}!shard2"],
            vnodes=router._vnodes,
        )
        victim = next(
            n for n in names if grown.index_for(n) == new_index
        )
        outcomes: list = []
        router.endpoint.submit(
            CLIENT, "tx.request",
            {
                "kind": "transfer", "account": victim,
                "session": cookies[victim], "f.to": "sink", "f.amount": 77,
            },
            outcomes.append,
        )
        # Advance until the router has the shard leg in flight, then
        # flip ownership instantly underneath it.
        while not sum(router.outstanding):
            simulator.run(until=simulator.now + 0.0005)
        assert not outcomes
        assert manager.scale_up() == f"{POOL}!shard2"
        simulator.run(until=simulator.now + 5.0)
        assert outcomes and "error" not in outcomes[-1], outcomes
        assert router.dual_read_redirects == 1
        assert victim in router.shards[new_index].accounts


class TestDrainDigestParity:
    def _run(self, scale: bool) -> bytes:
        simulator, router, signing_key, make = _build(
            shard_count=2, journal=True
        )
        names = [f"acct-{i:02d}" for i in range(8)]
        cookies = {n: _enroll(router, signing_key, n) for n in names}
        for index, name in enumerate(names):
            result = _transfer(
                router, signing_key, cookies[name], 100 + index, name
            )
            assert result["status"] == "executed"
        if scale:
            manager = ShardPoolManager(simulator, router, make)
            assert manager.scale_up() == f"{POOL}!shard2"
            simulator.run(until=200.0)
            assert len(router.shards) == 3
            assert manager.drain_shard(f"{POOL}!shard2")
            simulator.run(until=400.0)
            assert len(router.shards) == 2
            assert manager.totals()["migrations"] == 2
        else:
            simulator.run(until=400.0)
        return router.state_digest()

    def test_add_then_drain_matches_never_scaled_pool(self):
        """The tentpole acceptance: a quiesced scale-up + drain round
        trip leaves the survivor pool bit-identical — same accounts on
        the same owners, same nonces, same DRBG positions — to a pool
        that never scaled, at the same virtual time."""
        assert self._run(scale=True) == self._run(scale=False)

    def test_drained_shard_accounts_stay_served(self):
        simulator, router, signing_key, make = _build(shard_count=2)
        names = [f"acct-{i:02d}" for i in range(12)]
        cookies = {n: _enroll(router, signing_key, n) for n in names}
        manager = ShardPoolManager(simulator, router, make)
        manager.scale_up()
        simulator.run(until=simulator.now + 5.0)
        migrated = sorted(router.shards[2].accounts)
        assert migrated
        manager.drain_shard(f"{POOL}!shard2")
        simulator.run(until=simulator.now + 10.0)
        assert len(router.shards) == 2
        assert f"{POOL}!shard2" not in [s.host for s in router.shards]
        # Every formerly-migrated session still works, first try.
        for name in migrated:
            result = _transfer(
                router, signing_key, cookies[name], 999, name
            )
            assert result["status"] == "executed", (name, result)
        # A fresh scale-up never reuses the drained hostname (DRBG
        # streams derive from hostnames and freshness must not repeat).
        assert manager.scale_up() == f"{POOL}!shard3"


class TestFailoverReconciliation:
    def test_overrides_drain_home_after_recovery(self):
        simulator, router, signing_key, make = _build(
            shard_count=4, journal=True
        )
        home_names = [
            name for name in (f"acct-{i:03d}" for i in range(200))
            if router.ring.index_for(name) == 0
        ]
        assert len(home_names) >= 5
        router.shards[0].crash()
        # Three transport failures trip shard 0's breaker...
        for name in home_names[:3]:
            with pytest.raises(RpcError):
                router.endpoint.call_sync(
                    CLIENT, "register", {"account": name, "password": "pw"}
                )
        assert router.breakers[0].state != "closed"
        # ...then a register fails over to a live neighbor, recording
        # an override so the account stays findable.
        landed = home_names[3]
        response = router.endpoint.call_sync(
            CLIENT, "register",
            {"account": landed, "password": "pw", "opening_balance": 5_000},
        )
        assert response.get("ok") == 1
        assert landed in router._account_shard
        override = router._account_shard[landed]
        assert override != 0
        assert landed in router.shards[override].accounts

        router.shards[0].restart()
        # Carry the virtual clock past the breaker's reset timeout (the
        # queue is empty, so run() alone would not advance time).
        simulator.schedule(2.0, lambda: None, label="test.tick")
        simulator.run(until=simulator.now + 2.0)
        # A successful probe closes the breaker again.
        probe = router.endpoint.call_sync(
            CLIENT, "register",
            {"account": home_names[4], "password": "pw"},
        )
        assert probe.get("ok") == 1
        assert router.breakers[0].state == "closed"

        manager = ShardPoolManager(simulator, router, make)
        moved = manager.reconcile_failovers()
        assert moved == 1
        # The regression: without reconciliation this map only grows.
        assert router._account_shard == {}
        assert landed in router.shards[0].accounts
        assert landed not in router.shards[override].accounts
        assert router.shard_for_account(landed) is router.shards[0]
        login = router.endpoint.call_sync(
            CLIENT, "login", {"account": landed, "password": "pw"}
        )
        assert "set_session" in login


class TestCrashSafety:
    def test_lost_flip_callback_releases_busy_via_watchdog(self):
        """The stuck-latch regression: a scale-up whose flip callback
        is lost used to latch ``busy`` forever, wedging the autoscaler.
        The watchdog now aborts the operation at its deadline."""
        simulator, router, signing_key, make = _build(shard_count=2)
        names = [f"acct-{i:02d}" for i in range(16)]
        cookies = {n: _enroll(router, signing_key, n) for n in names}
        manager = ShardPoolManager(simulator, router, make)
        assert manager.scale_up() == f"{POOL}!shard2"
        # Simulate the lost-callback failure mode: the scheduled flip
        # never fires.
        manager._op.flip_event.cancel()
        simulator.run(until=simulator.now + 1.0)
        assert manager.busy  # latched while the op is nominally live
        assert manager.scale_up() is None
        # The watchdog deadline (copy window + flip grace) lapses:
        # abort, not a forever-stuck latch.
        simulator.run(until=simulator.now + 60.0)
        assert not manager.busy
        assert manager.aborts == 1
        assert simulator.metrics.counters().get("rebalance.aborts") == 1
        # The half-added shard is detached and the sources kept
        # ownership of every range.
        assert len(router.shards) == 2
        assert sum(len(s.accounts) for s in router.shards) == len(names)
        result = _transfer(
            router, signing_key, cookies[names[0]], 500, names[0]
        )
        assert result["status"] == "executed"
        # The pool scales again — on a fresh hostname, never reusing
        # the aborted one.
        assert manager.scale_up() == f"{POOL}!shard3"
        simulator.run(until=simulator.now + 5.0)
        assert not manager.busy
        assert manager.totals()["migrations"] == 1

    def test_drain_grace_lapse_with_legs_outstanding(self):
        """A drain whose shard never goes idle must not wait forever:
        when the grace period lapses with legs still outstanding, the
        copy proceeds anyway and the straggler is covered by the
        dual-read window."""
        simulator, router, signing_key, make = _build(shard_count=2)
        names = [f"acct-{i:02d}" for i in range(12)]
        cookies = {n: _enroll(router, signing_key, n) for n in names}
        manager = ShardPoolManager(
            simulator, router, make,
            drain_grace_s=2.0, dual_read_window_s=10.0,
        )
        manager.scale_up()
        simulator.run(until=simulator.now + 5.0)
        migrated = sorted(router.shards[2].accounts)
        assert migrated
        victim = migrated[0]
        # Stall the shard's workers past the grace period and put a leg
        # in flight that cannot settle while they are stalled.
        shard = router.shards[2]
        shard.endpoint.stall_workers(3.0)
        outcomes: list = []
        router.endpoint.submit(
            CLIENT, "tx.request",
            {
                "kind": "transfer", "account": victim,
                "session": cookies[victim], "f.to": "sink", "f.amount": 41,
            },
            outcomes.append,
        )
        while not sum(router.outstanding):
            simulator.run(until=simulator.now + 0.0005)
        drained_at = simulator.now
        assert manager.drain_shard(f"{POOL}!shard2")
        simulator.run(until=simulator.now + 20.0)
        # The grace lapse forced the copy: the shard is gone and busy
        # released well before the stall would have ended on its own.
        assert len(router.shards) == 2
        assert not manager.busy
        assert manager.totals()["migrations"] == 2
        report = manager.reports[-1]
        assert report.kind == "drain"
        assert 2.0 <= report.flipped_at - drained_at < 3.0
        # The stalled leg resolved inside the dual-read window instead
        # of hanging or surfacing a spurious denial.
        assert outcomes and "error" not in outcomes[-1], outcomes
        result = _transfer(router, signing_key, cookies[victim], 99, victim)
        assert result["status"] == "executed"

    def test_source_crash_during_copy_aborts_with_ownership_retained(self):
        simulator, router, signing_key, make = _build(shard_count=2)
        names = [f"acct-{i:02d}" for i in range(8)]
        cookies = {n: _enroll(router, signing_key, n) for n in names}
        manager = ShardPoolManager(simulator, router, make)
        fired: list = []

        def hook(phase: str, info: dict) -> None:
            if phase == "copy" and not fired:
                fired.append(info["sources"][0])
                source = next(
                    s for s in router.shards if s.host == fired[0]
                )
                source.crash()
                simulator.schedule(1.0, source.restart, label="test.restart")

        manager.phase_hooks.append(hook)
        assert manager.scale_up() is None  # aborted before the flip
        simulator.run(until=simulator.now + 10.0)
        assert fired
        assert not manager.busy
        assert manager.aborts == 1
        assert manager.totals()["migrations"] == 0
        assert len(router.shards) == 2
        # The journaled source restarted bit-identical: every range
        # stayed owned and in-flight work still settles.
        assert sum(len(s.accounts) for s in router.shards) == len(names)
        result = _transfer(
            router, signing_key, cookies[names[0]], 250, names[0]
        )
        assert result["status"] == "executed"

    def test_manager_crash_before_commit_aborts_on_restart(self):
        simulator, router, signing_key, make = _build(shard_count=2)
        names = [f"acct-{i:02d}" for i in range(8)]
        cookies = {n: _enroll(router, signing_key, n) for n in names}
        manager = ShardPoolManager(simulator, router, make)
        manager.phase_hooks.append(
            lambda phase, info: manager.crash()
            if phase == "ring_flip" else None
        )
        assert manager.scale_up() == f"{POOL}!shard2"
        simulator.run(until=simulator.now + 5.0)
        # Crashed mid-protocol: busy stays latched until recovery
        # resolves the logged intent — no second operation may re-slice
        # the ranges in flight.
        assert manager.crashed and manager.busy
        assert manager.scale_up() is None
        manager.restart()
        assert not manager.busy
        assert manager.aborts == 1 and manager.resumes == 0
        # No commit record landed, so nothing durable changed hands:
        # the half-added shard is gone, sources kept every range.
        assert len(router.shards) == 2
        assert sum(len(s.accounts) for s in router.shards) == len(names)
        result = _transfer(
            router, signing_key, cookies[names[0]], 300, names[0]
        )
        assert result["status"] == "executed"

    def test_manager_crash_after_commit_resumes_on_restart(self):
        def run(crash: bool) -> tuple:
            simulator, router, signing_key, make = _build(shard_count=2)
            names = [f"acct-{i:02d}" for i in range(8)]
            for name in names:
                _enroll(router, signing_key, name)
            manager = ShardPoolManager(simulator, router, make)
            if crash:
                manager.phase_hooks.append(
                    lambda phase, info: manager.crash()
                    if phase == "dual_read" else None
                )
            assert manager.scale_up() == f"{POOL}!shard2"
            simulator.run(until=50.0)
            if crash:
                assert manager.crashed and manager.busy
                manager.restart()
            return manager, router

        manager, router = run(crash=True)
        # The commit record landed before the crash point, so recovery
        # re-asserts the durable transition idempotently: the migration
        # counts, the new shard owns its ranges.
        assert manager.resumes == 1 and manager.aborts == 0
        assert not manager.busy
        assert len(router.shards) == 3
        assert router.shards[2].accounts
        # Digest parity: the resumed pool is bit-identical to one whose
        # coordinator never crashed.
        _, reference = run(crash=False)
        assert router.state_digest() == reference.state_digest()


class TestAutoScaler:
    def test_scales_up_under_pressure_and_drains_in_calm(self):
        simulator, router, signing_key, make = _build(
            shard_count=1, journal=False
        )
        manager = ShardPoolManager(
            simulator, router, make, transfer_latency_s=0.05
        )
        scaler = AutoScaler(
            simulator, router, manager,
            min_shards=1, max_shards=2, tick_s=1.0,
            up_ticks=2, down_ticks=5, cooldown_s=3.0,
        )
        scaler.start()

        # Synthetic pressure: shedding for four consecutive seconds.
        def shed_burst() -> None:
            router.shed += 5

        for second in range(4):
            simulator.schedule(second + 0.5, shed_burst, label="test.shed")
        simulator.run(until=5.0)
        ups = [e for e in scaler.events if e["action"] == "scale_up"]
        assert len(ups) == 1  # max_shards + cooldown cap the response
        assert len(router.shards) == 2
        # Hysteresis: the first pressure tick alone must not scale.
        assert ups[0]["at"] >= 2.0

        # Calm: no shedding, empty backlogs -> drain back down.
        simulator.run(until=60.0)
        downs = [e for e in scaler.events if e["action"] == "drain"]
        assert len(downs) == 1
        assert len(router.shards) == 1
        assert scaler.ticks > 0
