"""Bench utilities: tables, workloads, and the world builder."""

from __future__ import annotations

import pytest

from repro.bench.tables import format_series, format_table
from repro.bench.workloads import catalogue, order_stream, transfer_stream
from repro.bench.world import TrustedPathWorld, WorldConfig
from repro.sim import Simulator


class TestTables:
    def test_format_table_aligns_and_titles(self):
        rows = [
            {"vendor": "infineon", "ms": 331.0},
            {"vendor": "broadcom", "ms": 972.1234},
        ]
        rendered = format_table("Quote latency", rows, notes="shape check")
        lines = rendered.splitlines()
        assert lines[0] == "== Quote latency =="
        assert "vendor" in lines[1] and "ms" in lines[1]
        assert "infineon" in rendered and "972.1" in rendered
        assert rendered.endswith("note: shape check\n")

    def test_empty_rows(self):
        assert "(no rows)" in format_table("empty", [])

    def test_explicit_column_order(self):
        rows = [{"b": 2, "a": 1}]
        rendered = format_table("t", rows, columns=["b", "a"])
        header = rendered.splitlines()[1]
        assert header.index("b") < header.index("a")

    def test_format_series(self):
        rendered = format_series(
            "F1", "size", ["skinit"], [(4096, 0.02), (65536, 0.03)]
        )
        assert "size" in rendered and "4096" in rendered

    def test_float_rendering_scales(self):
        rows = [{"x": 0.00012}, {"x": 3.14159}, {"x": 1234.5}]
        rendered = format_table("fmt", rows)
        assert "0.0001" in rendered and "3.142" in rendered and "1234.5" in rendered


class TestWorkloads:
    def test_transfer_stream_deterministic(self):
        sim_a, sim_b = Simulator(seed=4), Simulator(seed=4)
        a = list(transfer_stream("alice", sim_a.rng.stream("w"), 10))
        b = list(transfer_stream("alice", sim_b.rng.stream("w"), 10))
        assert a == b

    def test_transfer_amounts_sane(self):
        sim = Simulator(seed=4)
        for tx in transfer_stream("alice", sim.rng.stream("w"), 50):
            assert 100 <= tx.fields["amount"] <= 500_000
            assert tx.kind == "transfer" and tx.account == "alice"

    def test_order_stream_uses_catalogue(self):
        sim = Simulator(seed=4)
        items = {item for item, _price in catalogue()}
        for tx in order_stream("alice", sim.rng.stream("w"), 20):
            assert tx.fields["item"] in items
            assert 1 <= tx.fields["quantity"] <= 3


class TestWorldBuilder:
    def test_world_without_providers_rejected_on_use(self):
        world = TrustedPathWorld(WorldConfig(with_bank=False, with_shop=False))
        with pytest.raises(RuntimeError):
            world.default_provider()

    def test_policy_prewired(self, shared_ready_world):
        world = shared_ready_world
        assert world.policy.ca_public_keys == [world.ca.public_key]
        assert (
            world.client.published_pal_measurement()
            in world.policy.approved_pal_measurements
        )

    def test_ready_is_chainable_and_complete(self, shared_ready_world):
        creds = shared_ready_world.client.credentials
        assert creds is not None
        assert creds.sealed_credential is not None
        account = shared_ready_world.bank.accounts[
            shared_ready_world.config.account
        ]
        assert account.registered_key is not None
        assert account.aik_certificate is not None
