"""Chaos harness: fault-plan validation, invariant checker, torn-tail
repair, the crash-anywhere matrix, and R3 determinism.

The acceptance properties for the crash-safe migration protocol and its
deterministic chaos harness:

* fault plans validate eagerly — a window that could silently never
  fire (beyond the horizon, malformed) raises instead of lying about
  the configured fault load, and overlapping windows merge *counted*;
* the invariant checker passes on a healthy pool and pinpoints each
  class of corruption (double ownership, resurrected nonces, minted
  money, duplicated settlements, a stuck coordinator latch) when state
  is broken behind its back;
* a WAL torn mid-append is repaired on restore — truncated at the last
  complete frame — so post-restart appends never corrupt the framing
  of later records (the torn tail costs exactly one in-flight record);
* the crash-anywhere matrix holds: a crash of source, target, or the
  control plane at every migration phase resolves deterministically —
  clean abort before the commit record, idempotent resume after — with
  survivor digests bit-identical to a never-crashed reference;
* the R3 chaos sweep is byte-identical across kernel partitionings,
  worker counts, and crypto backends.
"""

from __future__ import annotations

import pytest

from repro.crypto import HmacDrbg, generate_rsa_keypair
from repro.crypto.backend import use_backend
from repro.net.network import LinkSpec, Network
from repro.os.disk import UntrustedDisk
from repro.server.bank import BankServer
from repro.server.invariants import (
    CHECKS,
    InvariantChecker,
    InvariantViolation,
)
from repro.server.policy import VerifierPolicy
from repro.server.rebalance import ShardPoolManager
from repro.server.router import build_sharded_pool
from repro.sim import Simulator
from repro.sim.faults import FaultConfigError, FaultInjector, Window

from tests.test_rebalance import _build, _enroll, _transfer

CLIENT = "load-host"
POOL = "pool.test"


# ----------------------------------------------------------------------
# Fault-plan validation
# ----------------------------------------------------------------------
class TestFaultPlanValidation:
    def _world(self, horizon: float = 100.0):
        simulator = Simulator(seed=11)
        network = Network(simulator)
        network.attach(CLIENT, LinkSpec.lan())
        network.attach("pool!shard0", LinkSpec.lan())
        policy = VerifierPolicy()
        shard = BankServer(simulator, network, "pool!shard0", policy,
                           workers=1)
        injector = FaultInjector(simulator, horizon=horizon)
        return simulator, shard, injector

    def test_beyond_horizon_window_rejected(self):
        _, shard, injector = self._world(horizon=100.0)
        with pytest.raises(FaultConfigError, match="beyond the run horizon"):
            injector.add_crash_windows(shard, [Window(150.0, 160.0)])
        assert injector.crashes_scheduled == 0

    def test_negative_start_rejected(self):
        _, shard, injector = self._world()
        with pytest.raises(FaultConfigError, match="start must be >= 0"):
            injector.add_crash_windows(shard, [Window(-1.0, 5.0)])

    def test_non_positive_duration_rejected(self):
        _, shard, injector = self._world()
        with pytest.raises(FaultConfigError, match="non-positive duration"):
            injector.add_crash_windows(shard, [Window(5.0, 5.0)])

    def test_torn_faults_require_a_journal(self):
        _, shard, injector = self._world()
        assert shard.journal is None
        with pytest.raises(FaultConfigError, match="need a journal"):
            injector.add_torn_crashes(shard, rate_per_s=0.1, duration_s=1.0)

    def test_overlapping_windows_merge_and_are_counted(self):
        simulator, shard, injector = self._world()
        windows = injector.add_crash_windows(
            shard, [Window(1.0, 5.0), Window(3.0, 8.0), Window(20.0, 22.0)]
        )
        # The overlap collapsed into one window so every crash pairs
        # with exactly one restart; the merge is visible, not silent.
        assert [(w.start, w.end) for w in windows] == [(1.0, 8.0),
                                                       (20.0, 22.0)]
        assert injector.windows_merged == 1
        assert injector.crashes_scheduled == 2
        assert (
            simulator.metrics.counters().get("faults.windows_merged") == 1
        )
        assert injector.describe_plan()["crash:pool!shard0"] == [
            [1.0, 8.0], [20.0, 22.0]
        ]

    def test_aimed_plan_rejects_unknown_phase_victim_probability(self):
        simulator, router, _, make = _build(shard_count=2)
        manager = ShardPoolManager(simulator, router, make)
        injector = FaultInjector(simulator, horizon=100.0)
        with pytest.raises(FaultConfigError, match="unknown migration phases"):
            injector.aim_at_migrations(manager, [
                {"phase": "warp", "victim": "source", "probability": 0.5},
            ])
        with pytest.raises(FaultConfigError, match="unknown migration victim"):
            injector.aim_at_migrations(manager, [
                {"phase": "copy", "victim": "bystander", "probability": 0.5},
            ])
        with pytest.raises(FaultConfigError, match="probability"):
            injector.aim_at_migrations(manager, [
                {"phase": "copy", "victim": "source", "probability": 1.5},
            ])
        assert not manager.phase_hooks  # nothing half-installed


# ----------------------------------------------------------------------
# Invariant checker
# ----------------------------------------------------------------------
class TestInvariantChecker:
    def _pool(self, shard_count: int = 2, accounts: int = 8):
        simulator, router, signing_key, make = _build(shard_count)
        names = [f"acct-{i:02d}" for i in range(accounts)]
        cookies = {n: _enroll(router, signing_key, n) for n in names}
        for index, name in enumerate(names):
            result = _transfer(
                router, signing_key, cookies[name], 100 + index, name
            )
            assert result["status"] == "executed"
        manager = ShardPoolManager(simulator, router, make)
        checker = InvariantChecker(router, manager)
        checker.snapshot_baseline()
        return simulator, router, manager, checker, names

    def test_healthy_pool_passes_every_check(self):
        simulator, router, _, checker, _ = self._pool()
        report = checker.assert_ok(reference_digest=router.state_digest())
        assert report.ok
        assert set(report.checks) == set(CHECKS)
        assert all(report.checks.values())
        assert report.violations == []
        assert simulator.metrics.counters().get("invariants.checks") == 1
        assert "invariants.violations" not in simulator.metrics.counters()

    def test_double_ownership_after_undropped_copy(self):
        # A migration that installed on the target but never dropped
        # the source leaves both copies live: the exact corruption the
        # pool-wide sweep exists to catch.
        _, router, _, checker, _ = self._pool()
        source = router.shards[0]
        victim = sorted(source.accounts)[0]
        router.shards[1].install_slice(source.capture_slice([victim]))
        report = checker.check()
        assert not report.ok
        failed = set(report.to_row()["failed"])
        assert "unique_ownership" in failed
        assert "nonce_single_use" in failed
        assert "exactly_once" in failed
        with pytest.raises(InvariantViolation, match="unique_ownership"):
            checker.assert_ok()

    def test_minted_money_breaks_conservation(self):
        _, router, _, checker, names = self._pool()
        shard = router.shard_for_account(names[0])
        shard.balances[names[0]] += 1
        report = checker.check()
        assert report.checks["ledger_conservation"] is False
        assert any("delta 1" in v for v in report.violations)

    def test_digest_parity_against_reference(self):
        _, router, _, checker, _ = self._pool()
        assert checker.check(router.state_digest()).ok
        report = checker.check(b"\x00" * 32)
        assert report.checks["digest_parity"] is False

    def test_stuck_busy_latch_is_a_violation(self):
        _, router, manager, checker, _ = self._pool()
        manager._busy = True  # latched with no op and no pending recovery
        report = checker.check()
        assert report.checks["manager_consistent"] is False
        manager._busy = False
        assert checker.check().ok


# ----------------------------------------------------------------------
# Torn-tail repair on restore
# ----------------------------------------------------------------------
class TestTornTailRepair:
    def test_restore_truncates_partial_frame_before_new_appends(self):
        simulator, router, signing_key, _ = _build(shard_count=1)
        names = [f"acct-{i:02d}" for i in range(4)]
        cookies = {n: _enroll(router, signing_key, n) for n in names}
        for name in names:
            _transfer(router, signing_key, cookies[name], 100, name)
        shard = router.shards[0]
        # Crash mid-append: the final WAL frame is cut in half.
        shard.crash()
        assert shard.journal.tear_tail(0.5) > 0
        shard.restart()
        assert shard.journal.stats()["torn_tails"] >= 1
        # The regression: without repair, post-restart appends land
        # after the leftover partial bytes and corrupt the framing of
        # everything that follows — the *second* restore then explodes.
        login = router.endpoint.call_sync(
            CLIENT, "login", {"account": names[0], "password": "pw"}
        )
        assert "set_session" in login
        shard.crash()
        shard.restart()  # would raise on a corrupt frame without repair
        login = router.endpoint.call_sync(
            CLIENT, "login", {"account": names[1], "password": "pw"}
        )
        assert "set_session" in login

    def test_repair_is_a_noop_on_a_clean_wal(self):
        simulator, router, signing_key, _ = _build(shard_count=1)
        cookie = _enroll(router, signing_key, "acct-00")
        _transfer(router, signing_key, cookie, 100, "acct-00")
        shard = router.shards[0]
        assert shard.journal.repair_tail() == 0
        assert shard.journal.stats()["torn_tails"] == 0


# ----------------------------------------------------------------------
# Crash-anywhere matrix + R3 determinism
# ----------------------------------------------------------------------
class TestCrashAnywhere:
    def test_every_phase_victim_cell_resolves_deterministically(self):
        from repro.bench.experiments.chaos import crash_matrix

        matrix = crash_matrix(seed=901)
        assert len(matrix["cells"]) == 32
        assert matrix["all_ok"], [
            c for c in matrix["cells"]
            if not (c["crash_fired"] and c["outcome_ok"]
                    and c["digest_match"] and c["invariants_ok"]
                    and c["busy_released"])
        ]
        # Both resolution rules are actually exercised: crashes after
        # the durable transition resume, every earlier one aborts.
        outcomes = {c["outcome"] for c in matrix["cells"]}
        assert outcomes == {"committed", "aborted"}


class TestR3Determinism:
    KWARGS = dict(
        crash_rates=(0.1,), modes=("scripted", "torn"), users=200,
        day_seconds=60.0, shards=2, recovery_s=1.0, seed=31,
        matrix_accounts=3,
    )

    @staticmethod
    def _canonical(result: dict) -> str:
        import json

        from repro.bench.runner import strip_wall

        return json.dumps(strip_wall(result), sort_keys=True, default=repr)

    def test_byte_identical_across_partitions_and_workers(self):
        from repro.bench.experiments.chaos import r3_chaos_sweep

        base = self._canonical(r3_chaos_sweep(**self.KWARGS))
        partitioned = self._canonical(
            r3_chaos_sweep(partitions=2, **self.KWARGS)
        )
        threaded = self._canonical(
            r3_chaos_sweep(workers_per_shard=4, **self.KWARGS)
        )
        assert base == partitioned
        assert base == threaded

    def test_byte_identical_across_crypto_backends(self):
        from repro.bench.experiments.chaos import r3_chaos_sweep

        with use_backend("pure"):
            pure = self._canonical(r3_chaos_sweep(**self.KWARGS))
        with use_backend("accel"):
            accel = self._canonical(r3_chaos_sweep(**self.KWARGS))
        assert pure == accel

    def test_fault_plans_echo_into_the_result(self):
        from repro.bench.experiments.chaos import r3_chaos_sweep

        result = r3_chaos_sweep(**self.KWARGS)
        plans = result["fault_plans"]
        assert set(plans) == {"scripted@0.1", "torn@0.1"}
        # The torn arm's plan really schedules torn-write faults; a red
        # chaos run is reproducible from the artifact alone.
        assert any(k.startswith("torn:") for k in plans["torn@0.1"])
