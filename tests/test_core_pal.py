"""The ConfirmationPal and SetupPal, exercised through real sessions."""

from __future__ import annotations

import struct

import pytest

from repro.core import ConfirmationPal, Decision, SetupPal
from repro.core.confirmation_pal import confirmation_digest
from repro.crypto import pkcs1_verify
from repro.crypto.rsa import RsaPublicKey
from repro.crypto.sha1 import sha1
from repro.drtm.session import FlickerSession
from repro.hardware.keyboard import ScanCode
from repro.tpm.quote import QuoteBundle, verify_quote
from repro.tpm.structures import SealedBlob


@pytest.fixture
def aik(machine):
    handle, public, _wrapped = machine.chipset.tpm_command_as_os("make_identity")
    return handle, public


def _press(machine, *codes):
    def human(visible, max_wait):
        for code in codes:
            machine.keyboard.press_physical_key(code)
        return 0.5

    return human


def _confirm_inputs(nonce=b"n" * 20, text=b"=== TRANSACTION CONFIRMATION ===\npay",
                    mode=b"quote", aik_handle=None, credential=None):
    inputs = {"phase": b"confirm", "text": text, "nonce": nonce, "mode": mode}
    if aik_handle is not None:
        inputs["aik_handle"] = struct.pack(">I", aik_handle)
    if credential is not None:
        inputs["credential"] = credential
    return inputs


class TestDecisionHandling:
    def test_y_accepts(self, simulator, machine, aik):
        session = FlickerSession(
            simulator, machine, human=_press(machine, ScanCode.KEY_Y)
        )
        record = session.run(
            SetupPal(), _confirm_inputs(aik_handle=aik[0])
        )
        assert record.outputs["decision"] == Decision.ACCEPT

    def test_n_rejects(self, simulator, machine, aik):
        session = FlickerSession(
            simulator, machine, human=_press(machine, ScanCode.KEY_N)
        )
        record = session.run(SetupPal(), _confirm_inputs(aik_handle=aik[0]))
        assert record.outputs["decision"] == Decision.REJECT

    def test_esc_rejects(self, simulator, machine, aik):
        session = FlickerSession(
            simulator, machine, human=_press(machine, ScanCode.KEY_ESC)
        )
        record = session.run(SetupPal(), _confirm_inputs(aik_handle=aik[0]))
        assert record.outputs["decision"] == Decision.REJECT

    def test_fumbled_keys_ignored(self, simulator, machine, aik):
        session = FlickerSession(
            simulator, machine,
            human=_press(machine, ScanCode.KEY_1, ScanCode.KEY_2, ScanCode.KEY_Y),
        )
        record = session.run(SetupPal(), _confirm_inputs(aik_handle=aik[0]))
        assert record.outputs["decision"] == Decision.ACCEPT

    def test_absent_human_times_out_without_evidence(self, simulator, machine, aik):
        session = FlickerSession(simulator, machine)  # nobody present
        record = session.run(SetupPal(), _confirm_inputs(aik_handle=aik[0]))
        assert record.outputs["decision"] == Decision.TIMEOUT
        assert "quote" not in record.outputs
        assert "signature" not in record.outputs

    def test_transaction_text_displayed(self, simulator, machine, aik):
        shown = {}

        def human(visible, max_wait):
            shown["text"] = visible
            machine.keyboard.press_physical_key(ScanCode.KEY_Y)
            return 0.2

        session = FlickerSession(simulator, machine, human=human)
        text = b"=== TRANSACTION CONFIRMATION ===\npay bob 42.00"
        session.run(SetupPal(), _confirm_inputs(text=text, aik_handle=aik[0]))
        assert "pay bob 42.00" in shown["text"]
        assert "Y = confirm" in shown["text"]


class TestInputValidation:
    def test_bad_nonce_aborts(self, simulator, machine, aik):
        session = FlickerSession(simulator, machine)
        record = session.run(
            SetupPal(), _confirm_inputs(nonce=b"short", aik_handle=aik[0])
        )
        assert record.aborted

    def test_bad_mode_aborts(self, simulator, machine, aik):
        session = FlickerSession(simulator, machine)
        record = session.run(
            SetupPal(), _confirm_inputs(mode=b"hologram", aik_handle=aik[0])
        )
        assert record.aborted


class TestQuoteEvidence:
    def test_quote_binds_digest_and_nonce(self, simulator, machine, aik):
        handle, public = aik
        nonce = sha1(b"server nonce")
        text = b"=== TRANSACTION CONFIRMATION ===\npay carol 7.00"
        session = FlickerSession(
            simulator, machine, human=_press(machine, ScanCode.KEY_Y)
        )
        record = session.run(
            SetupPal(), _confirm_inputs(nonce=nonce, text=text, aik_handle=handle)
        )
        bundle = QuoteBundle.from_bytes(record.outputs["quote"])
        assert verify_quote(public, bundle)
        assert bundle.external_data == sha1(nonce)
        digest = confirmation_digest(text, nonce, Decision.ACCEPT)
        assert record.outputs["digest"] == digest
        assert bundle.reported_value(18) == sha1(b"\x00" * 20 + digest)

    def test_reject_decision_also_attested(self, simulator, machine, aik):
        handle, public = aik
        session = FlickerSession(
            simulator, machine, human=_press(machine, ScanCode.KEY_N)
        )
        record = session.run(SetupPal(), _confirm_inputs(aik_handle=handle))
        assert record.outputs["decision"] == Decision.REJECT
        assert verify_quote(public, QuoteBundle.from_bytes(record.outputs["quote"]))


class TestSetupThenSign:
    def test_full_setup_and_signed_confirmation(self, simulator, machine, aik):
        handle, aik_public = aik
        session = FlickerSession(
            simulator, machine, human=_press(machine, ScanCode.KEY_Y)
        )
        setup_nonce = sha1(b"setup nonce")
        setup_record = session.run(
            SetupPal(),
            {
                "phase": b"setup",
                "nonce": setup_nonce,
                "aik_handle": struct.pack(">I", handle),
            },
        )
        assert not setup_record.aborted, setup_record.abort_reason
        public = RsaPublicKey.from_bytes(setup_record.outputs["public_key"])
        quote = QuoteBundle.from_bytes(setup_record.outputs["quote"])
        assert verify_quote(aik_public, quote)
        # PCR 18 binds the public key.
        assert quote.reported_value(18) == sha1(
            b"\x00" * 20 + sha1(setup_record.outputs["public_key"])
        )

        # Now a signed confirmation with the sealed credential.
        nonce = sha1(b"tx nonce")
        text = b"=== TRANSACTION CONFIRMATION ===\norder 1 gpu"
        confirm_record = session.run(
            SetupPal(),
            _confirm_inputs(
                nonce=nonce, text=text, mode=b"signed",
                credential=setup_record.outputs["sealed_credential"],
            ),
        )
        assert not confirm_record.aborted, confirm_record.abort_reason
        digest = confirmation_digest(text, nonce, Decision.ACCEPT)
        assert pkcs1_verify(
            public, digest, confirm_record.outputs["signature"], prehashed=True
        )

    def test_setup_requires_no_human(self, simulator, machine, aik):
        session = FlickerSession(simulator, machine)  # nobody present
        record = session.run(
            SetupPal(),
            {
                "phase": b"setup",
                "nonce": sha1(b"n"),
                "aik_handle": struct.pack(">I", aik[0]),
            },
        )
        assert not record.aborted

    def test_sealed_credential_useless_to_other_pal(self, simulator, machine, aik):
        """A different PAL (different PCR 17) cannot unseal the credential."""
        from typing import Dict

        from repro.drtm.pal import Pal, PalServices
        from repro.tpm.constants import TpmError

        session = FlickerSession(simulator, machine)
        setup_record = session.run(
            SetupPal(),
            {
                "phase": b"setup",
                "nonce": sha1(b"n"),
                "aik_handle": struct.pack(">I", aik[0]),
            },
        )
        blob = SealedBlob.from_bytes(setup_record.outputs["sealed_credential"])
        outcome = {}

        class ThiefPal(Pal):
            name = "thief"

            def run(self, services: PalServices, inputs: Dict[str, bytes]):
                try:
                    services.tpm("unseal", blob=blob)
                    outcome["stolen"] = True
                except TpmError:
                    outcome["stolen"] = False
                return {}

        session.run(ThiefPal(), {})
        assert outcome == {"stolen": False}
