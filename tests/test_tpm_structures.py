"""TPM wire structures: canonical encodings and roundtrips."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.crypto.sha1 import sha1
from repro.tpm.constants import NUM_PCRS, TpmError
from repro.tpm.structures import (
    CertifyInfo,
    PcrComposite,
    PcrSelection,
    QuoteInfo,
    SealedBlob,
)

pcr_index_sets = st.sets(
    st.integers(min_value=0, max_value=NUM_PCRS - 1), min_size=1, max_size=8
)


class TestPcrSelection:
    def test_sorted_and_deduped(self):
        selection = PcrSelection(indices=(18, 17))
        assert selection.indices == (17, 18)

    def test_duplicates_rejected(self):
        with pytest.raises(TpmError):
            PcrSelection(indices=(17, 17))

    def test_empty_rejected(self):
        with pytest.raises(TpmError):
            PcrSelection(indices=())

    def test_out_of_range_rejected(self):
        with pytest.raises(TpmError):
            PcrSelection(indices=(NUM_PCRS,))

    @given(pcr_index_sets)
    def test_roundtrip(self, indices):
        selection = PcrSelection(indices=tuple(indices))
        assert PcrSelection.from_bytes(selection.to_bytes()) == selection

    def test_bitmap_format(self):
        selection = PcrSelection(indices=(0, 8, 17))
        encoded = selection.to_bytes()
        assert encoded[0:2] == b"\x00\x03"  # 3-byte map for 24 PCRs
        assert encoded[2] == 0b1  # PCR 0
        assert encoded[3] == 0b1  # PCR 8
        assert encoded[4] == 0b10  # PCR 17


class TestPcrComposite:
    def _composite(self, indices=(17, 18)):
        values = tuple(sha1(bytes([i])) for i in indices)
        return PcrComposite(selection=PcrSelection(indices=indices), values=values)

    def test_roundtrip(self):
        composite = self._composite()
        assert PcrComposite.from_bytes(composite.to_bytes()) == composite

    def test_digest_changes_with_values(self):
        a = self._composite()
        b = PcrComposite(
            selection=a.selection, values=(a.values[0], sha1(b"different"))
        )
        assert a.digest() != b.digest()

    def test_digest_changes_with_selection(self):
        a = self._composite((17, 18))
        b = PcrComposite(selection=PcrSelection(indices=(17, 19)), values=a.values)
        assert a.digest() != b.digest()

    def test_value_count_must_match(self):
        with pytest.raises(TpmError):
            PcrComposite(
                selection=PcrSelection(indices=(17, 18)), values=(sha1(b"one"),)
            )

    def test_value_of(self):
        composite = self._composite()
        assert composite.value_of(17) == sha1(bytes([17]))
        with pytest.raises(KeyError):
            composite.value_of(0)

    def test_from_bank(self):
        values = {i: sha1(bytes([i])) for i in range(NUM_PCRS)}
        composite = PcrComposite.from_bank(PcrSelection(indices=(3, 7)), values)
        assert composite.values == (values[3], values[7])

    @given(pcr_index_sets)
    def test_property_roundtrip(self, indices):
        indices = tuple(sorted(indices))
        composite = PcrComposite(
            selection=PcrSelection(indices=indices),
            values=tuple(sha1(bytes([i])) for i in indices),
        )
        restored = PcrComposite.from_bytes(composite.to_bytes())
        assert restored == composite and restored.digest() == composite.digest()


class TestQuoteInfo:
    def test_roundtrip(self):
        info = QuoteInfo(composite_digest=sha1(b"c"), external_data=sha1(b"n"))
        assert QuoteInfo.from_bytes(info.to_bytes()) == info

    def test_header_checked(self):
        info = QuoteInfo(composite_digest=sha1(b"c"), external_data=sha1(b"n"))
        corrupted = b"XXXX" + info.to_bytes()[4:]
        with pytest.raises(TpmError):
            QuoteInfo.from_bytes(corrupted)

    def test_lengths_checked(self):
        with pytest.raises(TpmError):
            QuoteInfo(composite_digest=b"short", external_data=sha1(b"n"))
        with pytest.raises(TpmError):
            QuoteInfo(composite_digest=sha1(b"c"), external_data=b"short")

    def test_fixed_marker_present(self):
        info = QuoteInfo(composite_digest=sha1(b"c"), external_data=sha1(b"n"))
        assert b"QUOT" in info.to_bytes()


class TestSealedBlob:
    def test_roundtrip(self):
        blob = SealedBlob(
            selection=PcrSelection(indices=(17,)),
            pcr_info_digest=sha1(b"policy"),
            ciphertext=b"\x01\x02\x03" * 40,
            parent_key_fingerprint=sha1(b"srk"),
        )
        assert SealedBlob.from_bytes(blob.to_bytes()) == blob

    @given(st.binary(min_size=0, max_size=512))
    def test_property_roundtrip_any_ciphertext(self, ciphertext):
        blob = SealedBlob(
            selection=PcrSelection(indices=(17, 18)),
            pcr_info_digest=sha1(b"p"),
            ciphertext=ciphertext,
            parent_key_fingerprint=sha1(b"srk"),
        )
        assert SealedBlob.from_bytes(blob.to_bytes()) == blob


class TestCertifyInfo:
    def test_roundtrip(self):
        info = CertifyInfo(
            public_key_digest=sha1(b"pub"),
            composite_digest=sha1(b"comp"),
            external_data=sha1(b"nonce"),
        )
        assert CertifyInfo.from_bytes(info.to_bytes()) == info

    def test_marker_distinct_from_quote(self):
        certify = CertifyInfo(
            public_key_digest=sha1(b"p"),
            composite_digest=sha1(b"c"),
            external_data=sha1(b"n"),
        ).to_bytes()
        quote = QuoteInfo(
            composite_digest=sha1(b"c"), external_data=sha1(b"n")
        ).to_bytes()
        # Domain separation: a certify blob can never parse as a quote.
        with pytest.raises(TpmError):
            QuoteInfo.from_bytes(certify[: len(quote)])
