"""OIAP authorization sessions."""

from __future__ import annotations

import pytest

from repro.crypto import sha1
from repro.tpm import TpmError
from repro.tpm.authsessions import (
    AuthBlock,
    WELL_KNOWN_SECRET,
    compute_auth_hmac,
    param_digest,
)
from repro.tpm.constants import TpmResult
from repro.tpm.keys import KeyUsage

USAGE_SECRET = sha1(b"user passphrase")


@pytest.fixture
def protected_key(instant_tpm):
    """(handle, public) of a loaded signing key with a usage secret."""
    public, wrapped = instant_tpm.execute(
        0, "create_wrap_key", parent_handle=instant_tpm.SRK_HANDLE,
        usage=KeyUsage.SIGNING, usage_auth=USAGE_SECRET,
    )
    handle = instant_tpm.execute(
        0, "load_key2", parent_handle=instant_tpm.SRK_HANDLE, wrapped_blob=wrapped
    )
    return handle, public


def _auth_block(tpm, digest, secret=USAGE_SECRET, continue_session=0,
                session=None):
    if session is None:
        session = tpm.execute(0, "oiap_open")
    session_handle, nonce_even = session
    nonce_odd = b"\x42" * 20
    return AuthBlock(
        session_handle=session_handle,
        nonce_odd=nonce_odd,
        continue_session=continue_session,
        auth_hmac=compute_auth_hmac(
            secret, digest, nonce_even, nonce_odd, continue_session
        ),
    )


class TestOiapFlow:
    def test_sign_with_valid_proof(self, instant_tpm, protected_key):
        handle, public = protected_key
        digest = sha1(b"document")
        block = _auth_block(instant_tpm, param_digest("sign", digest))
        signature = instant_tpm.execute(
            0, "sign", key_handle=handle, digest=digest, auth=block
        )
        from repro.crypto import pkcs1_verify

        assert pkcs1_verify(public, digest, signature, prehashed=True)

    def test_sign_without_proof_rejected(self, instant_tpm, protected_key):
        handle, _ = protected_key
        with pytest.raises(TpmError) as err:
            instant_tpm.execute(0, "sign", key_handle=handle, digest=sha1(b"d"))
        assert err.value.result is TpmResult.AUTH_FAIL

    def test_wrong_secret_rejected(self, instant_tpm, protected_key):
        handle, _ = protected_key
        digest = sha1(b"d")
        block = _auth_block(
            instant_tpm, param_digest("sign", digest), secret=sha1(b"guess")
        )
        with pytest.raises(TpmError) as err:
            instant_tpm.execute(
                0, "sign", key_handle=handle, digest=digest, auth=block
            )
        assert err.value.result is TpmResult.AUTH_FAIL

    def test_proof_bound_to_parameters(self, instant_tpm, protected_key):
        """An HMAC computed for one digest does not authorize another —
        the param digest is inside the MAC."""
        handle, _ = protected_key
        block = _auth_block(instant_tpm, param_digest("sign", sha1(b"intended")))
        with pytest.raises(TpmError):
            instant_tpm.execute(
                0, "sign", key_handle=handle, digest=sha1(b"swapped"), auth=block
            )

    def test_proof_single_use(self, instant_tpm, protected_key):
        """Replaying an auth block fails: the even nonce rolled."""
        handle, _ = protected_key
        digest = sha1(b"once")
        block = _auth_block(
            instant_tpm, param_digest("sign", digest), continue_session=1
        )
        instant_tpm.execute(0, "sign", key_handle=handle, digest=digest, auth=block)
        with pytest.raises(TpmError):
            instant_tpm.execute(
                0, "sign", key_handle=handle, digest=digest, auth=block
            )

    def test_continued_session_stays_usable(self, instant_tpm, protected_key):
        handle, _ = protected_key
        session = instant_tpm.execute(0, "oiap_open")
        digest = sha1(b"first")
        block = _auth_block(
            instant_tpm, param_digest("sign", digest),
            continue_session=1, session=session,
        )
        instant_tpm.execute(0, "sign", key_handle=handle, digest=digest, auth=block)
        # Second use: fetch the rolled nonce through a fresh HMAC.
        nonce_even = instant_tpm.oiap.nonce_even(session[0])
        digest2 = sha1(b"second")
        block2 = AuthBlock(
            session_handle=session[0],
            nonce_odd=b"\x43" * 20,
            continue_session=0,
            auth_hmac=compute_auth_hmac(
                USAGE_SECRET, param_digest("sign", digest2),
                nonce_even, b"\x43" * 20, 0,
            ),
        )
        instant_tpm.execute(
            0, "sign", key_handle=handle, digest=digest2, auth=block2
        )

    def test_failed_attempt_kills_session(self, instant_tpm, protected_key):
        handle, _ = protected_key
        session = instant_tpm.execute(0, "oiap_open")
        digest = sha1(b"d")
        bad = _auth_block(
            instant_tpm, param_digest("sign", digest),
            secret=sha1(b"wrong"), session=session,
        )
        with pytest.raises(TpmError):
            instant_tpm.execute(
                0, "sign", key_handle=handle, digest=digest, auth=bad
            )
        with pytest.raises(TpmError):
            instant_tpm.oiap.nonce_even(session[0])

    def test_usage_auth_survives_wrap_reload(self, instant_tpm):
        """The auth requirement travels inside the wrapped blob."""
        _, wrapped = instant_tpm.execute(
            0, "create_wrap_key", parent_handle=instant_tpm.SRK_HANDLE,
            usage=KeyUsage.SIGNING, usage_auth=USAGE_SECRET,
        )
        handle = instant_tpm.execute(
            0, "load_key2", parent_handle=instant_tpm.SRK_HANDLE,
            wrapped_blob=wrapped,
        )
        with pytest.raises(TpmError):
            instant_tpm.execute(0, "sign", key_handle=handle, digest=sha1(b"x"))

    def test_well_known_secret_means_no_auth(self, instant_tpm):
        _, wrapped = instant_tpm.execute(
            0, "create_wrap_key", parent_handle=instant_tpm.SRK_HANDLE,
            usage=KeyUsage.SIGNING, usage_auth=WELL_KNOWN_SECRET,
        )
        handle = instant_tpm.execute(
            0, "load_key2", parent_handle=instant_tpm.SRK_HANDLE,
            wrapped_blob=wrapped,
        )
        instant_tpm.execute(0, "sign", key_handle=handle, digest=sha1(b"free"))

    def test_session_table_bounded(self, instant_tpm):
        for _ in range(instant_tpm.oiap.MAX_SESSIONS):
            instant_tpm.execute(0, "oiap_open")
        with pytest.raises(TpmError) as err:
            instant_tpm.execute(0, "oiap_open")
        assert err.value.result is TpmResult.NO_SPACE

    def test_terminate_frees_slot(self, instant_tpm):
        handles = [instant_tpm.execute(0, "oiap_open")[0]
                   for _ in range(instant_tpm.oiap.MAX_SESSIONS)]
        instant_tpm.execute(0, "terminate_auth", session_handle=handles[0])
        instant_tpm.execute(0, "oiap_open")  # fits again

    def test_bad_usage_auth_length_rejected(self, instant_tpm):
        with pytest.raises(TpmError):
            instant_tpm.execute(
                0, "create_wrap_key", parent_handle=instant_tpm.SRK_HANDLE,
                usage=KeyUsage.SIGNING, usage_auth=b"short",
            )
