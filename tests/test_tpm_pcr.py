"""The PCR bank: extend semantics and the DRTM locality policy."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.crypto.sha1 import sha1
from repro.tpm.constants import (
    DYNAMIC_PCR_DEFAULT,
    NUM_PCRS,
    PCR_APPLICATION,
    PCR_DRTM_CODE,
    STATIC_PCR_DEFAULT,
    TpmError,
    is_dynamic_pcr,
)
from repro.tpm.pcr import PcrBank


@pytest.fixture
def bank() -> PcrBank:
    return PcrBank()


class TestStartupState:
    def test_static_pcrs_zero(self, bank):
        for index in range(17):
            assert bank.read(index) == STATIC_PCR_DEFAULT

    def test_dynamic_pcrs_all_ones(self, bank):
        for index in range(17, 23):
            assert bank.read(index) == DYNAMIC_PCR_DEFAULT

    def test_never_launched_distinguishable_from_launched(self, bank):
        # 0xFF... (never launched) vs SHA1(0^20 || m) (launched) can
        # never collide because the latter is a SHA-1 output and the
        # former is not reachable by extending from zero.
        bank.reset_dynamic(PCR_DRTM_CODE, locality=4)
        bank.extend(PCR_DRTM_CODE, sha1(b"pal"), locality=4)
        assert bank.read(PCR_DRTM_CODE) != DYNAMIC_PCR_DEFAULT


class TestExtendSemantics:
    def test_extend_is_hash_chain(self, bank):
        measurement = sha1(b"m")
        bank.extend(0, measurement, locality=0)
        assert bank.read(0) == sha1(STATIC_PCR_DEFAULT + measurement)

    def test_extend_is_order_sensitive(self, bank):
        other = PcrBank()
        a, b = sha1(b"a"), sha1(b"b")
        bank.extend(0, a, locality=0)
        bank.extend(0, b, locality=0)
        other.extend(0, b, locality=0)
        other.extend(0, a, locality=0)
        assert bank.read(0) != other.read(0)

    def test_extend_requires_20_bytes(self, bank):
        with pytest.raises(TpmError):
            bank.extend(0, b"short", locality=0)

    def test_extend_log(self, bank):
        bank.extend(0, sha1(b"x"), locality=0)
        bank.extend(1, sha1(b"y"), locality=0)
        assert [index for index, _ in bank.extend_log] == [0, 1]

    def test_bad_index(self, bank):
        with pytest.raises(TpmError):
            bank.read(NUM_PCRS)
        with pytest.raises(TpmError):
            bank.extend(-1, sha1(b"x"), locality=0)

    @given(st.lists(st.binary(min_size=1, max_size=40), min_size=1, max_size=10))
    def test_property_replay_reaches_same_value(self, raw_measurements):
        measurements = [sha1(raw) for raw in raw_measurements]
        first, second = PcrBank(), PcrBank()
        for m in measurements:
            first.extend(0, m, locality=0)
            second.extend(0, m, locality=0)
        assert first.read(0) == second.read(0)

    @given(st.binary(min_size=1, max_size=40))
    def test_property_extend_changes_value(self, raw):
        bank = PcrBank()
        before = bank.read(0)
        bank.extend(0, sha1(raw), locality=0)
        assert bank.read(0) != before


class TestLocalityPolicy:
    """The rules PCR 17's unreachability rests on."""

    @pytest.mark.parametrize("locality", [0, 1])
    def test_low_localities_cannot_extend_dynamic(self, bank, locality):
        with pytest.raises(TpmError):
            bank.extend(PCR_DRTM_CODE, sha1(b"evil"), locality=locality)

    @pytest.mark.parametrize("locality", [2, 3, 4])
    def test_high_localities_can_extend_dynamic(self, bank, locality):
        bank.extend(PCR_DRTM_CODE, sha1(b"ok"), locality=locality)

    @pytest.mark.parametrize("locality", [0, 1, 2, 3])
    def test_only_locality4_resets_dynamic(self, bank, locality):
        with pytest.raises(TpmError):
            bank.reset_dynamic(PCR_DRTM_CODE, locality=locality)

    def test_locality4_reset_zeroes(self, bank):
        bank.reset_dynamic(PCR_DRTM_CODE, locality=4)
        assert bank.read(PCR_DRTM_CODE) == STATIC_PCR_DEFAULT

    def test_static_pcrs_never_resettable(self, bank):
        for locality in range(5):
            with pytest.raises(TpmError):
                bank.reset_dynamic(0, locality=locality)

    def test_application_pcr_resets_at_any_locality(self, bank):
        bank.extend(PCR_APPLICATION, sha1(b"x"), locality=0)
        bank.reset_dynamic(PCR_APPLICATION, locality=0)
        assert bank.read(PCR_APPLICATION) == STATIC_PCR_DEFAULT

    def test_any_locality_can_extend_static(self, bank):
        for locality in range(5):
            bank.extend(0, sha1(b"boot"), locality=locality)

    def test_software_cannot_reach_post_launch_value(self, bank):
        """The core one-way property: without a locality-4 reset, no
        extend sequence from 0xFF..FF reaches SHA1(0^20 || m)."""
        target_bank = PcrBank()
        target_bank.reset_dynamic(PCR_DRTM_CODE, locality=4)
        measurement = sha1(b"genuine-pal")
        target = target_bank.extend(PCR_DRTM_CODE, measurement, locality=4)
        # The attacker extends the same measurement (and variations)
        # from the un-reset state at the best locality software gets (2
        # via a hostile PAL — which would change the measurement — or
        # none at all; we grant locality 2 generously).
        for attempt in (measurement, sha1(b"\xff" * 20), sha1(measurement)):
            bank_try = PcrBank()
            bank_try.extend(PCR_DRTM_CODE, attempt, locality=2)
            assert bank_try.read(PCR_DRTM_CODE) != target


class TestStartupClear:
    def test_startup_resets_everything(self, bank):
        bank.extend(0, sha1(b"x"), locality=0)
        bank.reset_dynamic(PCR_DRTM_CODE, locality=4)
        bank.startup_clear()
        assert bank.read(0) == STATIC_PCR_DEFAULT
        assert bank.read(PCR_DRTM_CODE) == DYNAMIC_PCR_DEFAULT
        assert bank.extend_log == []

    def test_is_dynamic_pcr(self):
        assert is_dynamic_pcr(17) and is_dynamic_pcr(22)
        assert not is_dynamic_pcr(16) and not is_dynamic_pcr(23)
