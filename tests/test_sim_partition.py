"""The conservative parallel kernel and its determinism contract.

The partitioned kernel (`repro.sim.partition`) must be a wall-clock
optimization only: for any partition count and any crypto backend, the
virtual-time results — event timelines, metrics counters, experiment
rows — are byte-identical to the sequential :class:`Simulator`.  These
tests pin that contract at three levels:

* the :class:`EventQueue` primitives the windowed runs are built on
  (half-open ``pop_due`` windows, FIFO tie-breaking),
* the kernel mechanics (window bounds, barriers, cross-partition
  messages, global events, fused clocks, merged metrics),
* end-to-end experiment parity (F6 open-loop rows and the E4 elastic
  round-trip digest across partitions {None, 1, 2, 4} x backends
  {pure, accel}).
"""

from __future__ import annotations

import json

import pytest

from repro.net.network import LinkSpec, Network, NetworkError
from repro.sim.clock import VirtualClock, fuse_clocks, unfuse_clocks
from repro.sim.events import EventQueue
from repro.sim.kernel import SimulationError, Simulator
from repro.sim.latency import ConstantLatency, NormalLatency
from repro.sim.partition import GlobalScheduler, PartitionedKernel, make_kernel


class TestPopDueEdgeCases:
    """Satellite: the queue primitive the windowed kernel leans on."""

    def test_empty_queue_fast_path(self):
        queue = EventQueue()
        assert queue.pop_due() is None
        assert queue.pop_due(until=1.0) is None
        assert queue.pop_due(until=1.0, inclusive=False) is None
        assert queue.peek_time() is None

    def test_equal_timestamp_fifo_stability(self):
        queue = EventQueue()
        order = []
        for i in range(32):
            queue.push(1.0, lambda i=i: None, label=str(i))
            order.append(str(i))
        popped = []
        while True:
            event = queue.pop_due(until=1.0)
            if event is None:
                break
            popped.append(event.label)
        assert popped == order

    def test_pop_at_exact_boundary_inclusive_vs_exclusive(self):
        queue = EventQueue()
        queue.push(2.0, lambda: None, label="at-boundary")
        # Half-open window [_, 2.0): the boundary event stays queued.
        assert queue.pop_due(until=2.0, inclusive=False) is None
        assert queue.peek_time() == 2.0
        # Closed window [_, 2.0]: now it pops.
        event = queue.pop_due(until=2.0, inclusive=True)
        assert event is not None and event.label == "at-boundary"
        assert queue.pop_due(until=2.0) is None

    def test_boundary_event_survives_for_next_window(self):
        """An event at exactly the barrier time is dispatched by the
        *next* window, not lost — the invariant the kernel's half-open
        intermediate windows rely on."""
        queue = EventQueue()
        queue.push(1.0, lambda: None, label="inside")
        queue.push(2.0, lambda: None, label="barrier")
        first_window = []
        while (event := queue.pop_due(until=2.0, inclusive=False)) is not None:
            first_window.append(event.label)
        second_window = []
        while (event := queue.pop_due(until=3.0, inclusive=False)) is not None:
            second_window.append(event.label)
        assert first_window == ["inside"]
        assert second_window == ["barrier"]

    def test_interleaved_push_during_drain(self):
        """Events pushed from inside a drain loop join the same window
        when due, in (time, seq) order."""
        queue = EventQueue()
        seen = []

        def spawn(label, at):
            def action():
                seen.append(label)
                if at < 0.5:
                    queue.push(at + 0.1, *spawn_args(f"{label}+", at + 0.1))

            return action

        def spawn_args(label, at):
            return (spawn(label, at), label)

        queue.push(0.1, *spawn_args("a", 0.1))
        queue.push(0.1, *spawn_args("b", 0.1))
        while (event := queue.pop_due(until=1.0)) is not None:
            event.action()
        # Both chains interleave strictly by (time, seq).
        assert seen == ["a", "b", "a+", "b+", "a++", "b++", "a+++", "b+++",
                        "a++++", "b++++"]

    def test_cancelled_events_are_skipped_not_returned(self):
        queue = EventQueue()
        doomed = queue.push(1.0, lambda: None, label="doomed")
        queue.push(1.0, lambda: None, label="kept")
        doomed.cancel()
        event = queue.pop_due(until=1.0)
        assert event is not None and event.label == "kept"
        assert queue.pop_due(until=1.0) is None


def _attach_pair(kernel, network=None, link=None):
    """Two hosts on distinct partitions (finite lookahead)."""
    network = network or Network(kernel)
    link = link or LinkSpec.lan()
    network.attach("a", link)  # partition 0 (default placement)
    network.attach("b", link, simulator=kernel.simulator_for_host("b"))
    return network


class TestKernelMechanics:
    def test_make_kernel_dispatch(self):
        assert isinstance(make_kernel(seed=1, partitions=None), Simulator)
        assert isinstance(make_kernel(seed=1, partitions=0), Simulator)
        single = make_kernel(seed=1, partitions=1)
        assert isinstance(single, PartitionedKernel)
        assert len(single.partitions) == 1
        assert len(make_kernel(seed=1, partitions=4).partitions) == 4

    def test_default_simulator_is_partition_zero(self):
        kernel = PartitionedKernel(seed=3, partitions=3)
        assert kernel.default_simulator is kernel.partitions[0]
        plain = Simulator(seed=3)
        assert plain.default_simulator is plain

    def test_simulator_for_host_round_robin_skips_partition_zero(self):
        kernel = PartitionedKernel(seed=0, partitions=3)
        owners = [kernel.simulator_for_host(f"h{i}") for i in range(4)]
        assert owners == [
            kernel.partitions[1], kernel.partitions[2],
            kernel.partitions[1], kernel.partitions[2],
        ]
        # A plain simulator owns every host (duck-typed fallback).
        plain = Simulator(seed=0)
        assert plain.simulator_for_host("x") is plain

    def test_single_partition_round_robin_stays_on_partition_zero(self):
        kernel = PartitionedKernel(seed=0, partitions=1)
        assert kernel.simulator_for_host("h") is kernel.partitions[0]

    def test_windows_and_barrier_messages_counted(self):
        kernel = PartitionedKernel(seed=5, partitions=2)
        network = _attach_pair(kernel)
        got = []
        network.set_inbox("b", lambda src, payload: got.append(payload))
        kernel.default_simulator.schedule(
            0.01, lambda: network.send("a", "b", b"ping")
        )
        kernel.run(until=1.0)
        assert got == [b"ping"]
        assert kernel.windows_run > 0
        assert kernel.barrier_messages == 1

    def test_lookahead_must_be_positive_for_multi_partition_run(self):
        kernel = PartitionedKernel(seed=1, partitions=2)
        network = Network(kernel)
        zero_floor = LinkSpec(latency=ConstantLatency(0.0))
        network.attach("a", zero_floor)
        network.attach("b", zero_floor,
                       simulator=kernel.simulator_for_host("b"))
        kernel.partitions[0].schedule(0.1, lambda: None)
        kernel.partitions[1].schedule(0.2, lambda: None)
        with pytest.raises(SimulationError, match="lookahead"):
            kernel.run(until=1.0)

    def test_run_is_not_reentrant(self):
        kernel = PartitionedKernel(seed=1, partitions=2)
        _attach_pair(kernel)

        def reenter():
            kernel.run(until=2.0)

        kernel.default_simulator.schedule(0.1, reenter)
        with pytest.raises(SimulationError, match="re-entrant"):
            kernel.run(until=1.0)

    def test_max_events_budget_enforced(self):
        kernel = PartitionedKernel(seed=1, partitions=2)
        _attach_pair(kernel)
        sim = kernel.default_simulator

        def tick():
            sim.schedule(0.0001, tick)

        sim.schedule(0.0, tick)
        with pytest.raises(SimulationError, match="max_events"):
            kernel.run(until=10.0, max_events=100)

    def test_final_window_is_inclusive_like_sequential_run(self):
        """An event at exactly ``until`` fires, matching Simulator.run's
        default inclusive horizon."""
        kernel = PartitionedKernel(seed=1, partitions=2)
        _attach_pair(kernel)
        fired = []
        kernel.default_simulator.schedule_at(1.0, lambda: fired.append("end"))
        kernel.run(until=1.0)
        assert fired == ["end"]

    def test_clocks_advance_to_horizon(self):
        kernel = PartitionedKernel(seed=1, partitions=2)
        _attach_pair(kernel)
        kernel.run(until=0.5)
        assert [sim.now for sim in kernel.partitions] == [0.5, 0.5]


class TestGlobalEvents:
    def test_global_event_runs_with_all_partitions_quiesced(self):
        kernel = PartitionedKernel(seed=2, partitions=3)
        network = Network(kernel)
        link = LinkSpec.lan()
        network.attach("a", link)
        network.attach("b", link, simulator=kernel.simulator_for_host("b"))
        network.attach("c", link, simulator=kernel.simulator_for_host("c"))
        observed = []
        control = kernel.global_scheduler
        assert isinstance(control, GlobalScheduler)
        control.schedule(
            0.5, lambda: observed.append(tuple(s.now for s in kernel.partitions))
        )
        # Surrounding per-partition activity on both sides of the tick.
        kernel.partitions[1].schedule(0.3, lambda: None)
        kernel.partitions[2].schedule(0.7, lambda: None)
        kernel.run(until=1.0)
        # The global action saw every clock at exactly the tick time.
        assert observed == [(0.5, 0.5, 0.5)]

    def test_global_scheduler_rejects_past_times(self):
        kernel = PartitionedKernel(seed=2, partitions=2)
        _attach_pair(kernel)
        kernel.run(until=1.0)
        control = kernel.global_scheduler
        with pytest.raises(SimulationError):
            control.schedule(-0.1, lambda: None)
        with pytest.raises(SimulationError):
            control.schedule_at(0.5, lambda: None)

    def test_global_scheduler_facade_surface(self):
        kernel = PartitionedKernel(seed=2, partitions=2)
        control = kernel.global_scheduler
        assert control.now == kernel.now
        assert control.metrics is kernel.metrics
        assert control.rng is kernel.rng


class TestFusedClocks:
    def test_fused_clocks_advance_together_outside_runs(self):
        c1, c2 = VirtualClock(), VirtualClock()
        fuse_clocks([c1, c2])
        c1.advance(5.0)
        assert c2.now == 5.0
        c2.advance_to(7.0)
        assert c1.now == 7.0
        unfuse_clocks([c1, c2])
        c1.advance(1.0)
        assert (c1.now, c2.now) == (8.0, 7.0)

    def test_fusing_unequal_clocks_never_rewinds(self):
        behind, ahead = VirtualClock(), VirtualClock()
        ahead.advance(3.0)
        fuse_clocks([behind, ahead])
        behind.advance(1.0)  # target 1.0 < ahead's 3.0
        assert behind.now == 1.0 and ahead.now == 3.0
        behind.advance(4.0)  # target 5.0 drags both
        assert behind.now == 5.0 and ahead.now == 5.0

    def test_kernel_clocks_fused_between_runs(self):
        """Synchronous setup phases that charge time inline keep every
        partition on one timeline while no windowed run is active."""
        kernel = PartitionedKernel(seed=1, partitions=2)
        kernel.partitions[1].clock.advance(2.5)
        assert kernel.partitions[0].now == 2.5


class TestMergedMetrics:
    def test_counters_summed_across_partitions(self):
        kernel = PartitionedKernel(seed=0, partitions=3)
        kernel.partitions[0].metrics.counter("ops").increment()
        kernel.partitions[1].metrics.counter("ops").increment(2)
        kernel.partitions[2].metrics.counter("ops").increment(3)
        kernel.partitions[1].metrics.counter("other").increment()
        counters = kernel.metrics.counters()
        assert counters["ops"] == 6
        assert counters["other"] == 1

    def test_counter_creation_lands_on_partition_zero(self):
        kernel = PartitionedKernel(seed=0, partitions=2)
        kernel.metrics.counter("made-via-facade").increment()
        assert (
            kernel.partitions[0].metrics.counters()["made-via-facade"] == 1
        )


class TestCrossPartitionNetwork:
    def test_synchronous_transfer_forbidden_across_partitions_in_window(self):
        kernel = PartitionedKernel(seed=4, partitions=2)
        network = _attach_pair(kernel)
        errors = []

        def attempt():
            try:
                network.transfer("a", "b", b"x")
            except NetworkError as exc:
                errors.append(str(exc))

        kernel.default_simulator.schedule(0.01, attempt)
        kernel.run(until=1.0)
        assert errors and "cross partitions" in errors[0]

    def test_lookahead_is_sum_of_two_smallest_partition_floors(self):
        kernel = PartitionedKernel(seed=4, partitions=2)
        network = Network(kernel)
        network.attach("a", LinkSpec(latency=ConstantLatency(0.002)))
        network.attach(
            "b", LinkSpec(latency=ConstantLatency(0.003)),
            simulator=kernel.simulator_for_host("b"),
        )
        assert network.cross_partition_lookahead() == pytest.approx(0.005)
        assert kernel.lookahead == pytest.approx(0.005)

    def _ping_pong_trace(self, partitions, rounds=6, seed=42):
        """Record every delivery (host, virtual time, payload) of an
        a<->b ping-pong; the trace must not depend on partitioning."""
        kernel = make_kernel(seed=seed, partitions=partitions)
        network = Network(kernel)
        b_sim = kernel.simulator_for_host("b")
        trace = []
        # Jittered links: draws come from per-source-host streams, so
        # latency samples align across kernels too.
        link = LinkSpec(latency=NormalLatency(mu=0.005, sigma=0.0005))

        def a_inbox(src, payload):
            trace.append(("a", kernel.default_simulator.now, payload))
            if len(trace) < 2 * rounds:
                network.send("a", "b", payload + b"!")

        def b_inbox(src, payload):
            trace.append(("b", b_sim.now, payload))
            network.send("b", "a", payload)

        network.attach("a", link, inbox=a_inbox)
        network.attach("b", link, inbox=b_inbox, simulator=b_sim)
        kernel.default_simulator.schedule(
            0.001, lambda: network.send("a", "b", b"m")
        )
        kernel.run(until=5.0)
        stats = (network.packets_sent, network.packets_dropped,
                 network.bytes_sent)
        return trace, stats

    def test_ping_pong_timeline_identical_across_partition_counts(self):
        baseline = self._ping_pong_trace(partitions=None)
        for partitions in (1, 2):
            assert self._ping_pong_trace(partitions=partitions) == baseline
        trace, _ = baseline
        assert len(trace) == 12  # the exchange actually happened


class TestExperimentParity:
    """Acceptance criteria: stripped experiment JSON and metrics
    counters byte-identical across partition counts and backends."""

    F6_KWARGS = dict(populations=(300,), shards=2, seed=77,
                     max_outstanding=64)

    @staticmethod
    def _canonical_f6(partitions, backend="accel"):
        from repro.bench.experiments.openloop import f6_open_loop_rows
        from repro.bench.runner import strip_wall
        from repro.crypto.backend import use_backend

        with use_backend(backend):
            rows = f6_open_loop_rows(
                partitions=partitions,
                **TestExperimentParity.F6_KWARGS,
            )
        return json.dumps(strip_wall(rows), sort_keys=False)

    def test_f6_rows_identical_across_partition_counts(self):
        baseline = self._canonical_f6(partitions=None)
        for partitions in (1, 2, 4):
            assert self._canonical_f6(partitions=partitions) == baseline

    def test_f6_rows_identical_across_backends_when_partitioned(self):
        assert (
            self._canonical_f6(partitions=2, backend="pure")
            == self._canonical_f6(partitions=2, backend="accel")
        )

    def test_e4_roundtrip_digest_identical_across_partition_counts(self):
        from repro.bench.experiments.elasticity import _roundtrip_digest_check
        from repro.bench.runner import strip_wall

        results = {
            partitions: strip_wall(_roundtrip_digest_check(
                accounts=4, seed=909, partitions=partitions
            ))
            for partitions in (None, 2)
        }
        for result in results.values():
            assert result["digest_match"] is True
        assert (
            json.dumps(results[None], sort_keys=False)
            == json.dumps(results[2], sort_keys=False)
        )

    def test_loadgen_counters_identical_across_partition_counts(self):
        """The kernel-facade counters (not just rows) agree: same
        arrivals, same confirms, same sheds, summed across shards."""
        from repro.bench.experiments.openloop import f6_open_loop_rows

        counters = {}
        for partitions in (None, 2):
            rows = f6_open_loop_rows(
                partitions=partitions, **self.F6_KWARGS
            )
            counters[partitions] = {
                k: rows[0][k]
                for k in ("arrivals", "completed", "failed", "confirms",
                          "shed", "retries")
            }
        assert counters[None] == counters[2]
