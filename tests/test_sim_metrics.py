"""MetricRegistry, Counter, Timer and Histogram behavior."""

from __future__ import annotations

import pytest

from repro.sim.clock import VirtualClock
from repro.sim.metrics import Histogram, MetricRegistry


@pytest.fixture
def registry():
    return MetricRegistry(clock=VirtualClock())


class TestRegistry:
    def test_duplicate_names_reuse_instrument(self, registry):
        assert registry.counter("a") is registry.counter("a")
        assert registry.timer("t") is registry.timer("t")
        assert registry.histogram("h") is registry.histogram("h")

    def test_same_name_different_kinds_are_distinct(self, registry):
        # Namespaces are per-kind: a counter "x" and histogram "x" coexist.
        registry.counter("x").increment()
        registry.histogram("x").observe(1.0)
        assert registry.counter("x").value == 1
        assert registry.histogram("x").count == 1

    def test_counter_rejects_negative(self, registry):
        with pytest.raises(ValueError):
            registry.counter("c").increment(-1)

    def test_snapshot_skips_empty_histograms(self, registry):
        registry.histogram("empty")
        registry.histogram("full").observe(2.0)
        snap = registry.snapshot()
        assert "full" in snap
        assert "empty" not in snap

    def test_snapshot_includes_counters_and_timers(self, registry):
        registry.counter("events").increment(3)
        timer = registry.timer("work")
        timer.record(0.5)
        snap = registry.snapshot()
        assert snap["counter:events"]["count"] == 3.0
        assert snap["timer:work"]["count"] == 1.0


class TestTimer:
    def test_double_start_raises(self, registry):
        timer = registry.timer("t")
        timer.start()
        with pytest.raises(RuntimeError):
            timer.start()

    def test_stop_without_start_raises(self, registry):
        with pytest.raises(RuntimeError):
            registry.timer("t").stop()

    def test_measures_clock_interval(self):
        clock = VirtualClock()
        registry = MetricRegistry(clock=clock)
        timer = registry.timer("t")
        timer.start()
        clock.advance(1.25)
        assert timer.stop() == pytest.approx(1.25)
        # The timer is reusable after stop().
        timer.start()
        clock.advance(0.5)
        assert timer.stop() == pytest.approx(0.5)
        assert timer.histogram.count == 2


class TestHistogram:
    def test_empty_histogram_queries_raise(self):
        hist = Histogram("empty")
        for query in (hist.mean, hist.minimum, hist.maximum):
            with pytest.raises(ValueError):
                query()
        with pytest.raises(ValueError):
            hist.quantile(0.5)

    def test_quantile_bounds(self):
        hist = Histogram("h")
        hist.observe_many([1.0, 2.0, 3.0])
        with pytest.raises(ValueError):
            hist.quantile(1.5)
        assert hist.quantile(0.0) == 1.0
        assert hist.quantile(1.0) == 3.0

    def test_quantile_interpolates(self):
        hist = Histogram("h")
        hist.observe_many([0.0, 10.0])
        assert hist.quantile(0.95) == pytest.approx(9.5)

    def test_summary_keys(self):
        hist = Histogram("h")
        hist.observe_many(range(100))
        summary = hist.summary()
        assert set(summary) == {"count", "mean", "p50", "p95", "p99", "min", "max"}
        assert summary["count"] == 100.0
