"""Differential fuzz: the ``pure`` and ``accel`` crypto backends must
agree bit-for-bit — the accelerated arm exists so that wall-clock, and
only wall-clock, changes (DESIGN.md "determinism contract")."""

from __future__ import annotations

import random

import pytest

from repro.crypto.backend import (
    AccelBackend,
    PureBackend,
    backend_name,
    get_backend,
    set_backend,
    use_backend,
)
from repro.crypto.drbg import HmacDrbg

PURE = PureBackend()
ACCEL = AccelBackend()

BLOCK = 64  # SHA-1 and SHA-256 share a 64-byte block

#: Every message length from empty through three full blocks — covers
#: the padding boundary (55/56), exact blocks and every straddle.
ALL_LENGTHS = range(0, 3 * BLOCK + 1)

#: Key lengths around the HMAC block boundary (keys longer than one
#: block are pre-hashed — a different code path in both arms).
KEY_LENGTHS = (0, 1, 20, 63, 64, 65, 128, 200)


def _material(length: int, salt: int = 0) -> bytes:
    rng = random.Random(0xC0FFEE + salt + 1_000_003 * length)
    return bytes(rng.getrandbits(8) for _ in range(length))


class TestDifferentialHashes:
    def test_sha1_all_lengths_to_three_blocks(self):
        for length in ALL_LENGTHS:
            message = _material(length)
            assert PURE.sha1(message) == ACCEL.sha1(message), length

    def test_sha256_all_lengths_to_three_blocks(self):
        for length in ALL_LENGTHS:
            message = _material(length, salt=1)
            assert PURE.sha256(message) == ACCEL.sha256(message), length

    def test_incremental_contexts_agree_across_splits(self):
        message = _material(3 * BLOCK, salt=2)
        for split in (0, 1, BLOCK - 1, BLOCK, BLOCK + 1, len(message)):
            for attr in ("new_sha1", "new_sha256"):
                pure_ctx = getattr(PURE, attr)(message[:split])
                accel_ctx = getattr(ACCEL, attr)(message[:split])
                pure_ctx.update(message[split:])
                accel_ctx.update(message[split:])
                assert pure_ctx.digest() == accel_ctx.digest()
                assert pure_ctx.hexdigest() == accel_ctx.hexdigest()


class TestDifferentialHmac:
    @pytest.mark.parametrize("key_length", KEY_LENGTHS)
    def test_hmac_sha1(self, key_length):
        key = _material(key_length, salt=3)
        for msg_length in (0, 1, BLOCK - 1, BLOCK, BLOCK + 1, 3 * BLOCK):
            message = _material(msg_length, salt=4)
            assert PURE.hmac_sha1(key, message) == ACCEL.hmac_sha1(
                key, message
            )

    @pytest.mark.parametrize("key_length", KEY_LENGTHS)
    def test_hmac_sha256(self, key_length):
        key = _material(key_length, salt=5)
        for msg_length in (0, 1, BLOCK - 1, BLOCK, BLOCK + 1, 3 * BLOCK):
            message = _material(msg_length, salt=6)
            assert PURE.hmac_sha256(key, message) == ACCEL.hmac_sha256(
                key, message
            )


class TestDifferentialDrbg:
    """The DRBG is the system's randomness root: stream equality here is
    what guarantees whole-experiment bit-identity across backends."""

    @pytest.mark.parametrize(
        "seed,personalization",
        [
            (b"seed-a", b""),
            (b"seed-b", b"tpm:0"),
            (b"\x00" * 32, b"provider-nonces"),
        ],
    )
    def test_ten_kilobyte_streams_identical(self, seed, personalization):
        with use_backend("pure"):
            pure_stream = HmacDrbg(seed, personalization).generate(10_000)
        with use_backend("accel"):
            accel_stream = HmacDrbg(seed, personalization).generate(10_000)
        assert pure_stream == accel_stream

    def test_chunked_generation_identical(self):
        # State updates between generate() calls must track too, not
        # just the raw keystream.
        chunks = (1, 31, 32, 33, 500)
        with use_backend("pure"):
            drbg = HmacDrbg(b"chunks")
            pure_parts = [drbg.generate(n) for n in chunks]
            pure_fork = drbg.fork(b"child").generate(64)
        with use_backend("accel"):
            drbg = HmacDrbg(b"chunks")
            accel_parts = [drbg.generate(n) for n in chunks]
            accel_fork = drbg.fork(b"child").generate(64)
        assert pure_parts == accel_parts
        assert pure_fork == accel_fork

    def test_generate_below_identical(self):
        with use_backend("pure"):
            pure_values = [
                HmacDrbg(b"gb").generate_below(bound)
                for bound in (2, 10, 1 << 31)
            ]
        with use_backend("accel"):
            accel_values = [
                HmacDrbg(b"gb").generate_below(bound)
                for bound in (2, 10, 1 << 31)
            ]
        assert pure_values == accel_values


class TestBackendSelection:
    @pytest.fixture(autouse=True)
    def _pin_accel(self):
        """Run each selection test from a known 'accel' state and put
        the process backend back afterwards (the suite may run under
        REPRO_CRYPTO_BACKEND=pure — the CI reference leg)."""
        previous = set_backend("accel")
        yield
        set_backend(previous)

    def test_default_resolution_without_env(self, monkeypatch):
        from repro.crypto import backend as module

        monkeypatch.delenv(module.ENV_VAR, raising=False)
        set_backend(None)  # None re-resolves the default
        assert backend_name() == "accel"

    def test_set_backend_returns_previous(self):
        assert set_backend("pure") == "accel"
        try:
            assert backend_name() == "pure"
            assert get_backend().name == "pure"
        finally:
            assert set_backend("accel") == "pure"

    def test_use_backend_restores_on_exit(self):
        with use_backend("pure"):
            assert backend_name() == "pure"
            with use_backend("accel"):
                assert backend_name() == "accel"
            assert backend_name() == "pure"
        assert backend_name() == "accel"

    def test_use_backend_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with use_backend("pure"):
                raise RuntimeError("boom")
        assert backend_name() == "accel"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            set_backend("openssl3")

    def test_env_var_resolution(self, monkeypatch):
        from repro.crypto import backend as module

        monkeypatch.setenv(module.ENV_VAR, "pure")
        previous = set_backend(None)  # None re-reads the environment
        try:
            assert backend_name() == "pure"
        finally:
            set_backend(previous)

    def test_env_var_invalid_rejected(self, monkeypatch):
        from repro.crypto import backend as module

        monkeypatch.setenv(module.ENV_VAR, "bogus")
        with pytest.raises(ValueError):
            set_backend(None)
        assert backend_name() == "accel"

    def test_simulator_knob(self):
        from repro.sim import Simulator

        try:
            Simulator(seed=1, crypto_backend="pure")
            assert backend_name() == "pure"
        finally:
            set_backend("accel")

    def test_simulator_default_leaves_backend_alone(self):
        from repro.sim import Simulator

        with use_backend("pure"):
            Simulator(seed=1)
            assert backend_name() == "pure"
