"""Differential fuzz: the ``pure`` and ``accel`` crypto backends must
agree bit-for-bit — the accelerated arm exists so that wall-clock, and
only wall-clock, changes (DESIGN.md "determinism contract")."""

from __future__ import annotations

import random

import pytest

from repro.crypto.backend import (
    AccelBackend,
    GmpBackend,
    PureBackend,
    backend_name,
    get_backend,
    gmpy2_available,
    resolve_backend_name,
    rsa_op_counts,
    set_backend,
    use_backend,
)
from repro.crypto.drbg import HmacDrbg

PURE = PureBackend()
ACCEL = AccelBackend()

#: Every RSA arm available in this environment, for differential fuzz.
RSA_ARMS = [("pure", PURE), ("accel", ACCEL)]
if gmpy2_available():
    RSA_ARMS.append(("gmpy2", GmpBackend()))

BLOCK = 64  # SHA-1 and SHA-256 share a 64-byte block

#: Every message length from empty through three full blocks — covers
#: the padding boundary (55/56), exact blocks and every straddle.
ALL_LENGTHS = range(0, 3 * BLOCK + 1)

#: Key lengths around the HMAC block boundary (keys longer than one
#: block are pre-hashed — a different code path in both arms).
KEY_LENGTHS = (0, 1, 20, 63, 64, 65, 128, 200)


def _material(length: int, salt: int = 0) -> bytes:
    rng = random.Random(0xC0FFEE + salt + 1_000_003 * length)
    return bytes(rng.getrandbits(8) for _ in range(length))


class TestDifferentialHashes:
    def test_sha1_all_lengths_to_three_blocks(self):
        for length in ALL_LENGTHS:
            message = _material(length)
            assert PURE.sha1(message) == ACCEL.sha1(message), length

    def test_sha256_all_lengths_to_three_blocks(self):
        for length in ALL_LENGTHS:
            message = _material(length, salt=1)
            assert PURE.sha256(message) == ACCEL.sha256(message), length

    def test_incremental_contexts_agree_across_splits(self):
        message = _material(3 * BLOCK, salt=2)
        for split in (0, 1, BLOCK - 1, BLOCK, BLOCK + 1, len(message)):
            for attr in ("new_sha1", "new_sha256"):
                pure_ctx = getattr(PURE, attr)(message[:split])
                accel_ctx = getattr(ACCEL, attr)(message[:split])
                pure_ctx.update(message[split:])
                accel_ctx.update(message[split:])
                assert pure_ctx.digest() == accel_ctx.digest()
                assert pure_ctx.hexdigest() == accel_ctx.hexdigest()


class TestDifferentialHmac:
    @pytest.mark.parametrize("key_length", KEY_LENGTHS)
    def test_hmac_sha1(self, key_length):
        key = _material(key_length, salt=3)
        for msg_length in (0, 1, BLOCK - 1, BLOCK, BLOCK + 1, 3 * BLOCK):
            message = _material(msg_length, salt=4)
            assert PURE.hmac_sha1(key, message) == ACCEL.hmac_sha1(
                key, message
            )

    @pytest.mark.parametrize("key_length", KEY_LENGTHS)
    def test_hmac_sha256(self, key_length):
        key = _material(key_length, salt=5)
        for msg_length in (0, 1, BLOCK - 1, BLOCK, BLOCK + 1, 3 * BLOCK):
            message = _material(msg_length, salt=6)
            assert PURE.hmac_sha256(key, message) == ACCEL.hmac_sha256(
                key, message
            )


class TestDifferentialDrbg:
    """The DRBG is the system's randomness root: stream equality here is
    what guarantees whole-experiment bit-identity across backends."""

    @pytest.mark.parametrize(
        "seed,personalization",
        [
            (b"seed-a", b""),
            (b"seed-b", b"tpm:0"),
            (b"\x00" * 32, b"provider-nonces"),
        ],
    )
    def test_ten_kilobyte_streams_identical(self, seed, personalization):
        with use_backend("pure"):
            pure_stream = HmacDrbg(seed, personalization).generate(10_000)
        with use_backend("accel"):
            accel_stream = HmacDrbg(seed, personalization).generate(10_000)
        assert pure_stream == accel_stream

    def test_chunked_generation_identical(self):
        # State updates between generate() calls must track too, not
        # just the raw keystream.
        chunks = (1, 31, 32, 33, 500)
        with use_backend("pure"):
            drbg = HmacDrbg(b"chunks")
            pure_parts = [drbg.generate(n) for n in chunks]
            pure_fork = drbg.fork(b"child").generate(64)
        with use_backend("accel"):
            drbg = HmacDrbg(b"chunks")
            accel_parts = [drbg.generate(n) for n in chunks]
            accel_fork = drbg.fork(b"child").generate(64)
        assert pure_parts == accel_parts
        assert pure_fork == accel_fork

    def test_generate_below_identical(self):
        with use_backend("pure"):
            pure_values = [
                HmacDrbg(b"gb").generate_below(bound)
                for bound in (2, 10, 1 << 31)
            ]
        with use_backend("accel"):
            accel_values = [
                HmacDrbg(b"gb").generate_below(bound)
                for bound in (2, 10, 1 << 31)
            ]
        assert pure_values == accel_values


class TestDifferentialRsa:
    """All RSA arms (and both Python modexp strategies) must agree
    bit-for-bit on modexp, CRT signing and verification — including on
    garbage inputs like corrupted signature bytes, where every arm must
    return the *same wrong* number."""

    KEY_BITS = (512, 768, 1024)

    @staticmethod
    def _keypair(bits):
        from repro.crypto.rsa import generate_rsa_keypair

        return generate_rsa_keypair(bits, HmacDrbg(b"rsa-diff:%d" % bits))

    def test_modexp_fuzz_all_arms_and_strategies(self):
        from repro.crypto.modexp import modexp_binary, modexp_window

        rng = random.Random(0xA11CE)
        for trial in range(300):
            bits = rng.choice((8, 16, 64, 256, 1025))
            mod = rng.getrandbits(bits) | 1  # odd: Montgomery-eligible
            if mod < 3:
                mod = 3
            base = rng.getrandbits(bits + 7)
            exp = rng.getrandbits(rng.choice((0, 1, 16, 64, 256)))
            expected = pow(base, exp, mod)
            assert modexp_binary(base, exp, mod) == expected, trial
            assert modexp_window(base, exp, mod) == expected, trial
            for name, arm in RSA_ARMS:
                assert arm.rsa_modexp(base, exp, mod) == expected, (
                    name, trial,
                )

    def test_modexp_even_modulus_and_edge_cases(self):
        from repro.crypto.modexp import modexp_binary, modexp_window

        cases = [(5, 3, 4), (2, 10, 6), (7, 0, 1), (0, 0, 7), (10, 1, 1)]
        for base, exp, mod in cases:
            expected = pow(base, exp, mod)
            assert modexp_binary(base, exp, mod) == expected
            assert modexp_window(base, exp, mod) == expected
            for name, arm in RSA_ARMS:
                assert arm.rsa_modexp(base, exp, mod) == expected, name

    def test_modexp_rejects_bad_operands(self):
        from repro.crypto.modexp import modexp_binary, modexp_window

        for fn in (modexp_binary, modexp_window):
            with pytest.raises(ValueError):
                fn(2, 3, 0)
            with pytest.raises(ValueError):
                fn(2, -1, 5)

    @pytest.mark.parametrize("bits", KEY_BITS)
    def test_sign_crt_and_verify_agree_across_arms(self, bits):
        key = self._keypair(bits)
        rng = random.Random(bits)
        for _ in range(5):
            c = rng.randrange(0, key.n)
            reference_sig = pow(c, key.d, key.n)
            reference_rec = pow(c, key.public.e, key.n)
            for name, arm in RSA_ARMS:
                assert arm.rsa_sign_crt(key, c) == reference_sig, name
                assert arm.rsa_verify(key.public, c) == reference_rec, name

    def test_sign_crt_rejects_out_of_range(self):
        key = self._keypair(512)
        for name, arm in RSA_ARMS:
            with pytest.raises(ValueError):
                arm.rsa_sign_crt(key, key.n)
            with pytest.raises(ValueError):
                arm.rsa_sign_crt(key, -1)

    def test_corrupted_signatures_rejected_identically(self):
        from repro.crypto.pkcs1 import pkcs1_sign, pkcs1_verify

        key = self._keypair(512)
        message = b"transfer $100 to account 42"
        signature = pkcs1_sign(key, message)
        corruptions = [
            signature[:-1] + bytes([signature[-1] ^ 0x01]),
            bytes([signature[0] ^ 0x80]) + signature[1:],
            signature[:10] + bytes([signature[10] ^ 0xFF]) + signature[11:],
            signature[:-1],          # truncated
            signature + b"\x00",     # extended
            b"\x00" * len(signature),
        ]
        for name, _arm in RSA_ARMS:
            with use_backend(name):
                assert pkcs1_verify(key.public, message, signature), name
                for corrupted in corruptions:
                    assert not pkcs1_verify(
                        key.public, message, corrupted
                    ), name

    def test_pkcs1_verify_many_matches_singles(self):
        from repro.crypto.pkcs1 import (
            pkcs1_sign,
            pkcs1_verify,
            pkcs1_verify_many,
        )

        key = self._keypair(512)
        items = []
        for index in range(4):
            message = b"batch item %d" % index
            signature = pkcs1_sign(key, message)
            if index == 2:
                signature = signature[:-1] + bytes(
                    [signature[-1] ^ 0x01]
                )
            items.append((message, signature))
        items.append((b"short sig", b"\x01\x02"))
        expected = [
            pkcs1_verify(key.public, m, s) for m, s in items
        ]
        assert expected == [True, True, False, True, False]
        for name, _arm in RSA_ARMS:
            with use_backend(name):
                assert pkcs1_verify_many(key.public, items) == expected

    def test_oaep_roundtrip_identical_across_arms(self):
        from repro.crypto.oaep import oaep_decrypt, oaep_encrypt

        key = self._keypair(1024)
        blobs = {}
        for name, _arm in RSA_ARMS:
            with use_backend(name):
                ciphertext = oaep_encrypt(
                    key.public, b"sealed secret", HmacDrbg(b"oaep-seed")
                )
                assert oaep_decrypt(key, ciphertext) == b"sealed secret"
                blobs[name] = ciphertext
        assert len(set(blobs.values())) == 1, blobs.keys()

    def test_op_counters_track_entry_points(self):
        from repro.crypto import backend as module

        key = self._keypair(512)
        before = rsa_op_counts()
        module.rsa_modexp(2, 3, 5)
        module.rsa_sign_crt(key, 123)
        module.rsa_verify(key.public, 123)
        module.rsa_verify(key.public, 456)
        after = rsa_op_counts()
        assert after["modexp"] - before["modexp"] == 1
        assert after["sign_crt"] - before["sign_crt"] == 1
        assert after["verify"] - before["verify"] == 2


class TestEagerValidation:
    def test_resolve_rejects_unknown_name(self):
        with pytest.raises(ValueError, match="openssl3"):
            resolve_backend_name("openssl3")

    def test_resolve_rejects_bad_env(self, monkeypatch):
        from repro.crypto import backend as module

        monkeypatch.setenv(module.ENV_VAR, "bogus")
        with pytest.raises(ValueError, match="bogus"):
            resolve_backend_name(None)

    def test_resolve_accepts_known_names(self, monkeypatch):
        from repro.crypto import backend as module

        assert resolve_backend_name("pure") == "pure"
        assert resolve_backend_name("accel") == "accel"
        monkeypatch.delenv(module.ENV_VAR, raising=False)
        assert resolve_backend_name(None) == "accel"

    @pytest.mark.skipif(
        gmpy2_available(), reason="gmpy2 installed: selection is valid"
    )
    def test_resolve_rejects_gmpy2_without_package(self):
        with pytest.raises(ValueError, match="gmpy2"):
            resolve_backend_name("gmpy2")

    @pytest.mark.skipif(
        not gmpy2_available(), reason="gmpy2 not installed"
    )
    def test_resolve_accepts_gmpy2_with_package(self):
        assert resolve_backend_name("gmpy2") == "gmpy2"


class TestBackendSelection:
    @pytest.fixture(autouse=True)
    def _pin_accel(self):
        """Run each selection test from a known 'accel' state and put
        the process backend back afterwards (the suite may run under
        REPRO_CRYPTO_BACKEND=pure — the CI reference leg)."""
        previous = set_backend("accel")
        yield
        set_backend(previous)

    def test_default_resolution_without_env(self, monkeypatch):
        from repro.crypto import backend as module

        monkeypatch.delenv(module.ENV_VAR, raising=False)
        set_backend(None)  # None re-resolves the default
        assert backend_name() == "accel"

    def test_set_backend_returns_previous(self):
        assert set_backend("pure") == "accel"
        try:
            assert backend_name() == "pure"
            assert get_backend().name == "pure"
        finally:
            assert set_backend("accel") == "pure"

    def test_use_backend_restores_on_exit(self):
        with use_backend("pure"):
            assert backend_name() == "pure"
            with use_backend("accel"):
                assert backend_name() == "accel"
            assert backend_name() == "pure"
        assert backend_name() == "accel"

    def test_use_backend_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with use_backend("pure"):
                raise RuntimeError("boom")
        assert backend_name() == "accel"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            set_backend("openssl3")

    def test_env_var_resolution(self, monkeypatch):
        from repro.crypto import backend as module

        monkeypatch.setenv(module.ENV_VAR, "pure")
        previous = set_backend(None)  # None re-reads the environment
        try:
            assert backend_name() == "pure"
        finally:
            set_backend(previous)

    def test_env_var_invalid_rejected(self, monkeypatch):
        from repro.crypto import backend as module

        monkeypatch.setenv(module.ENV_VAR, "bogus")
        with pytest.raises(ValueError):
            set_backend(None)
        assert backend_name() == "accel"

    def test_simulator_knob(self):
        from repro.sim import Simulator

        try:
            Simulator(seed=1, crypto_backend="pure")
            assert backend_name() == "pure"
        finally:
            set_backend("accel")

    def test_simulator_default_leaves_backend_alone(self):
        from repro.sim import Simulator

        with use_backend("pure"):
            Simulator(seed=1)
            assert backend_name() == "pure"
