"""The CI perf-regression gate on canned BENCH_wall.json artifacts.

Satellite acceptance: the gate demonstrably fails on an injected
slowdown and passes on an unchanged trajectory — proven here on canned
JSON, so the CI wiring only has to invoke the script.
"""

from __future__ import annotations

import importlib.util
import json
import subprocess
import sys
from pathlib import Path

import pytest

_SCRIPT = Path(__file__).resolve().parent.parent / "benchmarks" / (
    "check_wall_regression.py"
)
_spec = importlib.util.spec_from_file_location("check_wall_regression", _SCRIPT)
gate = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(gate)


def artifact(cells, total, users_per_wall_s=None, smoke=True,
             rsa_micro=None):
    run = {"backend": "accel", "workers": 4, "cells": cells,
           "total_wall_s": total}
    if users_per_wall_s is not None:
        run["users_per_wall_s"] = users_per_wall_s
    if rsa_micro is not None:
        run["rsa_micro"] = rsa_micro
    return {"schema": "bench-wall/1", "smoke": smoke, "run": run}


BASELINE = artifact(
    {"t2": 2.0, "f3s": 4.0, "f6": 10.0, "e2": 0.1}, 16.1,
    users_per_wall_s=700.0,
)


def write(tmp_path, name, payload):
    path = tmp_path / name
    path.write_text(json.dumps(payload))
    return str(path)


class TestCompare:
    def test_unchanged_trajectory_passes(self):
        assert gate.compare(BASELINE, BASELINE) == []

    def test_within_tolerance_passes(self):
        fresh = artifact(
            {"t2": 2.4, "f3s": 4.9, "f6": 12.0, "e2": 0.2}, 19.5,
            users_per_wall_s=560.0,
        )
        assert gate.compare(fresh, BASELINE, tolerance=0.30) == []

    def test_injected_cell_slowdown_fails(self):
        fresh = artifact(
            {"t2": 2.0, "f3s": 9.0, "f6": 10.0, "e2": 0.1}, 21.1,
            users_per_wall_s=700.0,
        )
        problems = gate.compare(fresh, BASELINE, tolerance=0.30)
        assert any("'f3s'" in p for p in problems)

    def test_total_slowdown_fails_even_with_cells_in_limit(self):
        cells = {k: v * 1.25 for k, v in BASELINE["run"]["cells"].items()}
        fresh = artifact(cells, 16.1 * 1.4, users_per_wall_s=700.0)
        problems = gate.compare(fresh, BASELINE, tolerance=0.30)
        assert any(p.startswith("total_wall_s") for p in problems)

    def test_headline_users_per_wall_s_drop_fails(self):
        fresh = artifact(BASELINE["run"]["cells"], 16.1,
                         users_per_wall_s=300.0)
        problems = gate.compare(fresh, BASELINE, tolerance=0.30)
        assert any(p.startswith("users_per_wall_s") for p in problems)

    def test_tiny_cells_exempt_from_ratio_noise(self):
        # e2's committed 0.1s doubling to 0.2s is warm-up noise, not a
        # regression; cells under min_seconds never gate.
        fresh = artifact(
            {"t2": 2.0, "f3s": 4.0, "f6": 10.0, "e2": 0.24}, 16.2,
            users_per_wall_s=700.0,
        )
        assert gate.compare(fresh, BASELINE) == []

    def test_added_and_retired_cells_do_not_gate(self, capsys):
        fresh = artifact({"t2": 2.0, "f7": 50.0}, 16.1,
                         users_per_wall_s=700.0)
        assert gate.compare(fresh, BASELINE) == []
        noted = capsys.readouterr().out
        assert "f7" in noted and "f3s" in noted


class TestRsaMicroGate:
    """The RSAX cell gates speedup *ratios* (pure µs / accel µs), which
    travel across machines where raw microseconds do not."""

    MICRO = {
        "sign_1024": {"pure_us": 2000.0, "accel_us": 400.0, "speedup": 5.0},
        "verify_1024": {"pure_us": 90.0, "accel_us": 45.0, "speedup": 2.0},
    }

    def base(self, micro):
        return artifact({"t2": 2.0}, 2.0, rsa_micro=micro)

    def test_unchanged_ratios_pass(self):
        committed = self.base(self.MICRO)
        assert gate.compare(committed, committed) == []

    def test_ratio_within_tolerance_passes(self):
        fresh_micro = {
            "sign_1024": {"speedup": 4.0},
            "verify_1024": {"speedup": 1.6},
        }
        problems = gate.compare(self.base(fresh_micro),
                                self.base(self.MICRO), tolerance=0.30)
        assert problems == []

    def test_collapsed_speedup_fails(self):
        # The accel arm falling back to schoolbook modexp would collapse
        # the sign ratio toward 1x — exactly what this gate is for.
        fresh_micro = dict(self.MICRO, sign_1024={"speedup": 1.1})
        problems = gate.compare(self.base(fresh_micro),
                                self.base(self.MICRO), tolerance=0.30)
        assert any(p.startswith("rsa_micro 'sign_1024'") for p in problems)

    def test_new_and_retired_op_keys_do_not_gate(self):
        fresh_micro = {"sign_2048": {"speedup": 9.0}}
        problems = gate.compare(self.base(fresh_micro),
                                self.base(self.MICRO))
        assert problems == []

    def test_artifacts_without_rsa_micro_still_compare(self):
        committed = self.base(self.MICRO)
        fresh = artifact({"t2": 2.0}, 2.0)
        assert gate.compare(fresh, committed) == []
        assert gate.compare(committed, fresh) == []


class TestCli:
    def test_exit_zero_on_committed_trajectory(self, tmp_path):
        fresh = write(tmp_path, "fresh.json", BASELINE)
        committed = write(tmp_path, "committed.json", BASELINE)
        assert gate.main(["--fresh", fresh, "--committed", committed]) == 0

    def test_exit_nonzero_on_injected_slowdown(self, tmp_path):
        slow = artifact(
            {"t2": 2.0, "f3s": 4.0, "f6": 30.0, "e2": 0.1}, 36.1,
            users_per_wall_s=700.0,
        )
        fresh = write(tmp_path, "fresh.json", slow)
        committed = write(tmp_path, "committed.json", BASELINE)
        assert gate.main(["--fresh", fresh, "--committed", committed]) == 1

    def test_smoke_mismatch_is_a_hard_error(self, tmp_path):
        full = artifact({"t2": 2.0}, 2.0, smoke=False)
        fresh = write(tmp_path, "fresh.json", full)
        committed = write(tmp_path, "committed.json", BASELINE)
        assert gate.main(["--fresh", fresh, "--committed", committed]) == 2

    def test_rejects_non_bench_wall_json(self, tmp_path):
        bogus = tmp_path / "bogus.json"
        bogus.write_text(json.dumps({"hello": 1}))
        committed = write(tmp_path, "committed.json", BASELINE)
        with pytest.raises(ValueError):
            gate.main(["--fresh", str(bogus), "--committed", committed])

    def test_script_runs_as_subprocess(self, tmp_path):
        """The exact invocation ci.yml uses."""
        fresh = write(tmp_path, "fresh.json", BASELINE)
        committed = write(tmp_path, "committed.json", BASELINE)
        done = subprocess.run(
            [sys.executable, str(_SCRIPT), "--fresh", fresh,
             "--committed", committed],
            capture_output=True, text=True,
        )
        assert done.returncode == 0, done.stderr
        assert "wall trajectory OK" in done.stdout
