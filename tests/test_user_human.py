"""The human user model."""

from __future__ import annotations

import pytest

from repro.core import Transaction
from repro.hardware.keyboard import Ps2KeyboardController, ScanCode
from repro.sim import Simulator
from repro.user import HumanUser, UserProfile


@pytest.fixture
def keyboard():
    return Ps2KeyboardController()


def _user(keyboard, profile=None, seed=3):
    sim = Simulator(seed=seed)
    return HumanUser(keyboard, sim.rng.stream("human"), profile=profile)


def _screen_for(tx: Transaction) -> str:
    return "\n".join(tx.display_lines() + ["", "Press  Y = confirm    N = reject"])


class TestConfirmationBehaviour:
    def test_accepts_intended_transaction(self, keyboard):
        user = _user(keyboard)
        tx = Transaction("transfer", "alice", {"to": "bob", "amount": 100})
        user.intend(tx)
        think = user(_screen_for(tx), 30.0)
        assert think > 0
        assert keyboard.read_scancode("os") == ScanCode.KEY_Y
        assert user.decisions == ["accept"]

    def test_rejects_altered_transaction(self, keyboard):
        user = _user(keyboard)
        user.intend(Transaction("transfer", "alice", {"to": "bob", "amount": 100}))
        altered = Transaction("transfer", "alice", {"to": "mule", "amount": 100})
        user(_screen_for(altered), 30.0)
        assert keyboard.read_scancode("os") == ScanCode.KEY_N
        assert user.decisions == ["reject"]

    def test_rejects_unsolicited_prompt(self, keyboard):
        user = _user(keyboard)  # no intention at all
        tx = Transaction("transfer", "alice", {"to": "mule", "amount": 1})
        user(_screen_for(tx), 30.0)
        assert keyboard.read_scancode("os") == ScanCode.KEY_N

    def test_ignores_non_confirmation_screens(self, keyboard):
        user = _user(keyboard)
        think = user("=== TRUSTED PATH SETUP ===\nNo action required.", 12.0)
        assert think == 12.0
        assert keyboard.pending == 0

    def test_careless_user_accepts_anything(self, keyboard):
        user = _user(keyboard, profile=UserProfile.careless())
        user.intend(Transaction("transfer", "alice", {"to": "bob", "amount": 1}))
        altered = Transaction("transfer", "alice", {"to": "mule", "amount": 10**6})
        user(_screen_for(altered), 30.0)
        assert keyboard.read_scancode("os") == ScanCode.KEY_Y

    def test_reading_time_scales_with_text(self, keyboard):
        user = _user(keyboard)
        tx_small = Transaction("transfer", "alice", {"to": "b", "amount": 1})
        tx_big = Transaction(
            "transfer", "alice",
            {f"field{i}": f"value-{i}" for i in range(10)} | {"amount": 1},
        )
        user.intend(tx_small)
        short = user(_screen_for(tx_small), 60.0)
        user.intend(tx_big)
        long = user(_screen_for(tx_big), 60.0)
        assert long > short

    def test_screens_logged(self, keyboard):
        user = _user(keyboard)
        user("whatever", 1.0)
        assert user.screens_seen == ["whatever"]


class TestCannotDistinguishSpoof:
    def test_same_pixels_same_decision(self, keyboard):
        """The uni-directional concession, as a property of the model:
        the decision depends only on rendered text, never on who
        rendered it."""
        tx = Transaction("transfer", "alice", {"to": "bob", "amount": 100})
        genuine_user = _user(keyboard, seed=9)
        genuine_user.intend(tx)
        genuine_user(_screen_for(tx), 30.0)
        genuine_decision = genuine_user.decisions[-1]

        spoof_keyboard = Ps2KeyboardController()
        spoofed_user = _user(spoof_keyboard, seed=9)
        spoofed_user.intend(tx)
        spoofed_user(_screen_for(tx), 30.0)  # painted by malware this time
        assert spoofed_user.decisions[-1] == genuine_decision


class TestCaptchaSolving:
    def test_solve_time_distribution(self, keyboard):
        user = _user(keyboard)
        times = []
        correct = 0
        for _ in range(100):
            seconds, ok = user.solve_captcha()
            times.append(seconds)
            correct += int(ok)
        assert min(times) >= 1.0
        assert 5.0 < sum(times) / len(times) < 15.0
        assert 75 <= correct <= 100  # ~92% accuracy
