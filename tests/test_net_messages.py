"""Canonical message encoding: roundtrips and canonicality."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.net.messages import MessageError, decode_message, encode_message

wire_values = st.recursive(
    st.one_of(
        st.binary(max_size=64),
        st.text(max_size=32),
        st.integers(min_value=-(2**63), max_value=2**63),
    ),
    lambda children: st.lists(children, max_size=4),
    max_leaves=10,
)
wire_messages = st.dictionaries(st.text(max_size=16), wire_values, max_size=8)


class TestEncoding:
    def test_roundtrip_basic(self):
        message = {"kind": "transfer", "amount": 12345, "nonce": b"\x01\x02"}
        assert decode_message(encode_message(message)) == message

    def test_roundtrip_nested_lists(self):
        message = {"items": ["a", 1, b"\x00", ["nested", 2]]}
        assert decode_message(encode_message(message)) == message

    def test_negative_and_zero_ints(self):
        message = {"a": -1, "b": 0, "c": -(2**40)}
        assert decode_message(encode_message(message)) == message

    def test_canonical_key_order(self):
        assert encode_message({"a": 1, "b": 2}) == encode_message({"b": 2, "a": 1})

    def test_empty_message(self):
        assert decode_message(encode_message({})) == {}

    def test_unicode_strings(self):
        message = {"text": "überweisung → 100€"}
        assert decode_message(encode_message(message)) == message

    def test_bool_rejected(self):
        with pytest.raises(MessageError):
            encode_message({"flag": True})

    def test_unsupported_type_rejected(self):
        with pytest.raises(MessageError):
            encode_message({"x": 1.5})

    def test_non_string_key_rejected(self):
        with pytest.raises(MessageError):
            encode_message({1: "x"})  # type: ignore[dict-item]

    def test_trailing_bytes_rejected(self):
        encoded = encode_message({"a": 1}) + b"extra"
        with pytest.raises(MessageError):
            decode_message(encoded)

    def test_truncation_rejected(self):
        encoded = encode_message({"a": b"payload"})
        for cut in (1, 5, len(encoded) - 1):
            with pytest.raises(MessageError):
                decode_message(encoded[:cut])

    def test_bytes_and_str_distinct(self):
        as_bytes = decode_message(encode_message({"v": b"abc"}))
        as_str = decode_message(encode_message({"v": "abc"}))
        assert as_bytes["v"] == b"abc" and as_str["v"] == "abc"
        assert type(as_bytes["v"]) is bytes and type(as_str["v"]) is str

    @given(wire_messages)
    def test_property_roundtrip(self, message):
        assert decode_message(encode_message(message)) == message

    @given(wire_messages)
    def test_property_encoding_is_injective_on_digest(self, message):
        # Canonical form: equal dicts encode equal, and decoding the
        # encoding re-encodes identically (fixed point).
        encoded = encode_message(message)
        assert encode_message(decode_message(encoded)) == encoded
