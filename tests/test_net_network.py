"""Network transfer/latency/loss and RPC endpoints with queueing."""

from __future__ import annotations

import pytest

from repro.net.network import LinkSpec, Network, NetworkError
from repro.net.rpc import RpcEndpoint, RpcError
from repro.sim import ConstantLatency


def _net(simulator, loss=0.0):
    network = Network(simulator)
    network.attach("a", LinkSpec(latency=ConstantLatency(0.010), loss_probability=loss))
    network.attach("b", LinkSpec(latency=ConstantLatency(0.005)))
    return network


class TestNetwork:
    def test_transfer_charges_latency(self, simulator):
        network = _net(simulator)
        before = simulator.now
        network.transfer("a", "b", b"payload")
        assert simulator.now - before == pytest.approx(0.015)

    def test_unknown_host_rejected(self, simulator):
        network = _net(simulator)
        with pytest.raises(NetworkError):
            network.transfer("a", "ghost", b"x")
        with pytest.raises(NetworkError):
            network.attach("a")  # duplicate

    def test_loss_raises_and_counts(self, simulator):
        network = _net(simulator, loss=1.0)
        with pytest.raises(NetworkError):
            network.transfer("a", "b", b"x")
        assert network.packets_dropped == 1

    def test_async_send_delivers_later(self, simulator):
        network = _net(simulator)
        received = []
        network.set_inbox("b", lambda source, payload: received.append(
            (source, payload, simulator.now)
        ))
        network.send("a", "b", b"hello")
        assert received == []  # not yet delivered
        simulator.run()
        assert received[0][0] == "a" and received[0][1] == b"hello"
        assert received[0][2] == pytest.approx(0.015)

    def test_send_requires_inbox(self, simulator):
        network = _net(simulator)
        with pytest.raises(NetworkError):
            network.send("a", "b", b"x")

    def test_byte_accounting(self, simulator):
        network = _net(simulator)
        network.transfer("a", "b", b"12345")
        assert network.bytes_sent == 5 and network.packets_sent == 1


class TestRpcSync:
    def _endpoint(self, simulator):
        network = _net(simulator)
        endpoint = RpcEndpoint(simulator, network, "b")
        endpoint.register("double", lambda req: {"value": req["value"] * 2},
                          service_time=0.003)
        endpoint.register("boom", lambda req: (_ for _ in ()).throw(ValueError("x")))
        return endpoint

    def test_call_sync(self, simulator):
        endpoint = self._endpoint(simulator)
        before = simulator.now
        response = endpoint.call_sync("a", "double", {"value": 21})
        assert response["value"] == 42
        # two transfers (0.015 each) + service time
        assert simulator.now - before == pytest.approx(0.033)

    def test_unknown_method(self, simulator):
        endpoint = self._endpoint(simulator)
        with pytest.raises(RpcError):
            endpoint.call_sync("a", "missing", {})
        assert endpoint.requests_failed == 1

    def test_handler_exception_surfaces_as_rpc_error(self, simulator):
        endpoint = self._endpoint(simulator)
        with pytest.raises(RpcError) as err:
            endpoint.call_sync("a", "boom", {})
        assert "ValueError" in str(err.value)

    def test_served_counter(self, simulator):
        endpoint = self._endpoint(simulator)
        endpoint.call_sync("a", "double", {"value": 1})
        endpoint.call_sync("a", "double", {"value": 2})
        assert endpoint.requests_served == 2


class TestRpcQueued:
    def test_single_worker_serializes(self, simulator):
        network = _net(simulator)
        endpoint = RpcEndpoint(simulator, network, "b", workers=1)
        endpoint.register("work", lambda req: {"ok": 1}, service_time=0.1)
        completions = []
        for _ in range(3):
            endpoint.submit(
            "a", "work", {}, lambda r: completions.append(simulator.now)
        )
        simulator.run()
        assert len(completions) == 3
        # Completions are spaced by the service time (single worker).
        gaps = [b - a for a, b in zip(completions, completions[1:])]
        assert all(gap == pytest.approx(0.1, abs=1e-6) for gap in gaps)

    def test_multiple_workers_parallelize(self, simulator):
        network = _net(simulator)
        endpoint = RpcEndpoint(simulator, network, "b", workers=3)
        endpoint.register("work", lambda req: {"ok": 1}, service_time=0.1)
        completions = []
        for _ in range(3):
            endpoint.submit(
            "a", "work", {}, lambda r: completions.append(simulator.now)
        )
        simulator.run()
        spread = max(completions) - min(completions)
        assert spread < 0.01  # all three served concurrently

    def test_queue_peak_tracked(self, simulator):
        network = _net(simulator)
        endpoint = RpcEndpoint(simulator, network, "b", workers=1)
        endpoint.register("work", lambda req: {"ok": 1}, service_time=0.5)
        for _ in range(5):
            endpoint.submit("a", "work", {}, lambda r: None)
        simulator.run()
        assert endpoint.queue_peak >= 3
