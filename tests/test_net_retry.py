"""Queued-RPC reliability: retry/timeout/backoff, request de-duplication,
and the deterministic fault-injection layer."""

from __future__ import annotations

from types import SimpleNamespace

import pytest

from repro.net.messages import decode_message, encode_message
from repro.net.network import LinkSpec, Network
from repro.net.retry import DEADLINE_ERROR_KEY, FIRE_AND_FORGET, RetryPolicy
from repro.net.rpc import RpcEndpoint
from repro.sim import ConstantLatency, FaultInjector, Simulator
from repro.sim.faults import poisson_windows
from repro.tpm.constants import TpmError


def _net(simulator, loss=0.0):
    network = Network(simulator)
    network.attach(
        "a", LinkSpec(latency=ConstantLatency(0.010), loss_probability=loss)
    )
    network.attach("b", LinkSpec(latency=ConstantLatency(0.005)))
    return network


class TestRetryPolicy:
    def test_backoff_schedule_deterministic(self):
        schedules = []
        for _ in range(2):
            rng = Simulator(seed=42).rng.stream("rpc.retry")
            schedules.append(RetryPolicy().schedule(rng))
        assert schedules[0] == schedules[1]
        assert len(schedules[0]) == RetryPolicy().max_attempts - 1

    def test_backoff_grows_exponentially_then_caps(self):
        policy = RetryPolicy(
            initial_timeout=0.2, backoff=2.0, max_timeout=2.0, jitter=0.0,
            max_attempts=8,
        )
        rng = Simulator(seed=1).rng.stream("rpc.retry")
        timeouts = [policy.timeout_for(attempt, rng) for attempt in range(7)]
        assert timeouts == [0.2, 0.4, 0.8, 1.6, 2.0, 2.0, 2.0]

    def test_jitter_bounded(self):
        policy = RetryPolicy(jitter=0.1)
        rng = Simulator(seed=3).rng.stream("rpc.retry")
        for attempt in range(6):
            base = min(
                policy.initial_timeout * policy.backoff**attempt,
                policy.max_timeout,
            )
            assert base <= policy.timeout_for(attempt, rng) <= base * 1.1

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(initial_timeout=0.0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(max_timeout=0.01)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=2.0)
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(deadline=-1.0)


class TestQueuedLoss:
    def _endpoint(self, simulator, loss=0.0, **kwargs):
        network = _net(simulator, loss=loss)
        endpoint = RpcEndpoint(simulator, network, "b", **kwargs)
        self.executions = {"count": 0}

        def work(request):
            self.executions["count"] += 1
            return {"ok": 1}

        endpoint.register("work", work, service_time=0.003)
        return endpoint

    def test_total_loss_resolves_with_deadline_error(self, simulator):
        endpoint = self._endpoint(simulator, loss=1.0)
        responses = []
        endpoint.submit("a", "work", {}, responses.append)
        simulator.run()
        # The call resolved exactly once — with the structured deadline
        # error, after the full retry budget.
        assert len(responses) == 1
        assert responses[0][DEADLINE_ERROR_KEY] == 1
        assert "deadline" in responses[0]["error"]
        assert endpoint.dead_letters == 1
        assert endpoint.retransmits == endpoint.retry_policy.max_attempts - 1
        assert self.executions["count"] == 0

    def test_no_client_hangs_under_total_loss(self, simulator):
        endpoint = self._endpoint(simulator, loss=1.0)
        responses = []
        for _ in range(10):
            endpoint.submit("a", "work", {}, responses.append)
        simulator.run()
        assert len(responses) == 10
        assert endpoint.dead_letters == 10

    def test_fire_and_forget_documents_the_old_hang(self, simulator):
        # The pre-fix transport: one transmission, no deadline.  Under
        # total loss the callback never fires — the bug R1 demonstrates.
        endpoint = self._endpoint(simulator, loss=1.0)
        responses = []
        endpoint.submit("a", "work", {}, responses.append,
                        policy=FIRE_AND_FORGET)
        simulator.run()
        assert responses == []
        assert endpoint.dead_letters == 0

    def test_lossless_roundtrip_counts_symmetrically(self, simulator):
        endpoint = self._endpoint(simulator)
        network = endpoint.network
        responses = []
        endpoint.submit("a", "work", {"x": 5}, responses.append)
        simulator.run()
        assert responses == [{"ok": 1}]
        # One request + one response packet, both through the network.
        assert network.packets_sent == 2
        assert network.packets_dropped == 0
        assert endpoint.retransmits == 0

    def test_lost_response_replayed_without_reexecution(self, simulator):
        endpoint = self._endpoint(simulator)
        network = endpoint.network
        original_send = network.send
        dropped = {"count": 0}

        def drop_first_response(source, destination, payload):
            if (
                decode_message(payload).get("kind") == "resp"
                and dropped["count"] == 0
            ):
                dropped["count"] += 1
                return  # swallowed by the wire
            original_send(source, destination, payload)

        network.send = drop_first_response
        responses = []
        endpoint.submit("a", "work", {}, responses.append)
        simulator.run()
        assert responses == [{"ok": 1}]
        # The retransmitted request hit the response cache: the handler
        # ran exactly once and the cached response was replayed.
        assert self.executions["count"] == 1
        assert endpoint.duplicate_requests == 1
        assert endpoint.responses_replayed == 1

    def test_duplicate_request_executes_handler_once(self, simulator):
        endpoint = self._endpoint(simulator)
        endpoint._router.ensure_inbox("a")
        packet = decode_message(encode_message({
            "kind": "req", "call": 7, "method": "work",
            "body": encode_message({}), "attempt": 0,
        }))
        endpoint._receive_request("a", packet)
        endpoint._receive_request("a", packet)  # retransmit, still queued
        simulator.run()
        assert self.executions["count"] == 1
        assert endpoint.duplicate_requests == 1

    def test_stall_defers_dispatch(self, simulator):
        endpoint = self._endpoint(simulator)
        endpoint.stall_workers(1.0)
        done_at = []
        endpoint.submit("a", "work", {}, lambda r: done_at.append(simulator.now))
        simulator.run()
        assert endpoint.worker_stalls == 1
        # Service began only once the stall lifted at t=1.0.
        assert done_at[0] >= 1.0


class TestFaultInjector:
    def test_poisson_windows_deterministic(self):
        draws = []
        for _ in range(2):
            rng = Simulator(seed=11).rng.stream("faults")
            draws.append(
                poisson_windows(rng, horizon=100.0, rate_per_s=0.1,
                                duration_s=2.0)
            )
        assert draws[0] == draws[1]
        assert draws[0]  # rate*horizon = 10 expected windows

    def test_burst_loss_drops_packets(self, simulator):
        network = _net(simulator)
        injector = FaultInjector(simulator, horizon=10.0)
        windows = injector.add_loss_bursts(
            "a", rate_per_s=5.0, duration_s=10.0, loss=1.0
        )
        network.attach_faults(injector)
        received = []
        network.set_inbox("b", lambda s, p: received.append(p))
        simulator.clock.advance(windows[0].start)  # inside the burst
        network.send("a", "b", b"x")
        simulator.run()
        assert received == []
        assert network.packets_dropped == 1

    def test_latency_spike_scales_latency(self, simulator):
        network = _net(simulator)
        baseline = network.one_way_latency("a", "b")
        injector = FaultInjector(simulator, horizon=10.0)
        windows = injector.add_latency_spikes(
            "a", rate_per_s=5.0, duration_s=10.0, factor=10.0
        )
        network.attach_faults(injector)
        simulator.clock.advance(windows[0].start)  # inside the spike
        assert network.one_way_latency("a", "b") == pytest.approx(
            baseline * 10.0
        )

    def test_attached_but_inactive_faults_change_nothing(self):
        # Bit-identical runs: attaching an injector whose windows never
        # cover the observation times must not perturb the network RNG
        # stream or any sampled value.  A vanishing rate puts the first
        # (and only) window start far beyond the horizon.
        samples = []
        for with_faults in (False, True):
            sim = Simulator(seed=21)
            network = Network(sim)
            network.attach("a", LinkSpec.wan())
            network.attach("b", LinkSpec.lan())
            if with_faults:
                injector = FaultInjector(sim, horizon=10.0)
                assert injector.add_loss_bursts(
                    "a", rate_per_s=1e-9, duration_s=1.0
                ) == []
                injector.add_latency_spikes(
                    "b", rate_per_s=1e-9, duration_s=1.0
                )
                network.attach_faults(injector)
            samples.append(
                [network.one_way_latency("a", "b") for _ in range(20)]
            )
        assert samples[0] == samples[1]

    def test_tpm_fault_hook_raises_transient(self, simulator):
        injector = FaultInjector(simulator, horizon=10.0)
        tpm = SimpleNamespace(fault_hook=None)
        windows = injector.attach_tpm(tpm, rate_per_s=5.0, duration_s=10.0)
        assert tpm.fault_hook is not None
        simulator.clock.advance(windows[0].start)
        with pytest.raises(TpmError) as err:
            tpm.fault_hook("quote")
        assert err.value.transient
        assert injector.tpm_faults_injected == 1
