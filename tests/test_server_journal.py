"""Durable provider state: WAL + snapshot journal across crash-stop.

The acceptance properties the journal must deliver:

* a crashed-and-restarted shard's state digest is **byte-identical** to
  an uncrashed run of the same workload — sessions, nonce DB (including
  the minting DRBG's exact position), pending and settled transactions
  and the business ledger all survive;
* a confirmation resubmitted after the crash replays idempotently from
  the stored outcome — the transfer never executes twice;
* no nonce is accepted twice across a crash;
* the journal-off ablation loses exactly these properties: the
  restarted shard disowns the settled transaction and an honest redo
  re-executes the transfer.
"""

from __future__ import annotations

import pytest

from repro.core.confirmation_pal import confirmation_digest
from repro.crypto import HmacDrbg, generate_rsa_keypair, pkcs1_sign
from repro.net.network import LinkSpec, Network
from repro.net.rpc import RpcError
from repro.os.disk import UntrustedDisk
from repro.server.bank import BankServer
from repro.server.journal import JournalError, ProviderJournal
from repro.server.noncedb import NonceState
from repro.server.policy import VerifierPolicy
from repro.server.router import build_sharded_pool
from repro.sim import Simulator

CLIENT = "load-host"
POOL = "pool.test"
ACCOUNT = "alice"


def _build(journal: bool = True, seed: int = 999):
    simulator = Simulator(seed=seed)
    network = Network(simulator)
    network.attach(CLIENT, LinkSpec.lan())
    policy = VerifierPolicy()
    disk = UntrustedDisk() if journal else None
    router = build_sharded_pool(
        simulator, network, POOL, policy,
        shard_count=1, provider_factory=BankServer, workers_per_shard=1,
        journal_disk=disk, snapshot_every=4,
    )
    signing_key = generate_rsa_keypair(512, HmacDrbg(b"journal-signing"))
    return simulator, router, signing_key


def _enroll(router, signing_key, name=ACCOUNT):
    router.endpoint.call_sync(
        CLIENT, "register",
        {"account": name, "password": "pw", "opening_balance": 10_000},
    )
    login = router.endpoint.call_sync(
        CLIENT, "login", {"account": name, "password": "pw"}
    )
    # Through the journaling setter, not direct assignment: the key must
    # survive the crash like a completed setup phase would.
    router.shards[0].register_signing_key(name, signing_key.public)
    return login["set_session"]


def _request(router, cookie, amount, name=ACCOUNT):
    return router.endpoint.call_sync(
        CLIENT, "tx.request",
        {
            "kind": "transfer", "account": name, "session": cookie,
            "f.to": "sink", "f.amount": amount,
        },
    )


def _confirm_payload(signing_key, cookie, challenge, decision=b"accept"):
    digest = confirmation_digest(
        challenge["text"], challenge["nonce"], decision
    )
    return {
        "tx_id": challenge["tx_id"], "decision": decision,
        "evidence": "signed",
        "signature": pkcs1_sign(signing_key, digest, prehashed=True),
        "session": cookie,
    }


def _confirm(router, signing_key, cookie, challenge, decision=b"accept"):
    return router.endpoint.call_sync(
        CLIENT, "tx.confirm",
        _confirm_payload(signing_key, cookie, challenge, decision),
    )


def _transfer(router, signing_key, cookie, amount):
    challenge = _request(router, cookie, amount)
    return _confirm(router, signing_key, cookie, challenge)


class TestBitIdenticalRestore:
    def test_crashed_run_converges_to_uncrashed_digest(self):
        """The headline property: crash + journal replay mid-workload
        ends in exactly the state the uncrashed run reaches — including
        the DRBG position, so post-crash nonces and cookies match."""
        def run(crash_after_two: bool) -> bytes:
            simulator, router, signing_key = _build(journal=True)
            cookie = _enroll(router, signing_key)
            shard = router.shards[0]
            assert _transfer(router, signing_key, cookie, 111)["status"] == \
                "executed"
            assert _transfer(router, signing_key, cookie, 222)["status"] == \
                "executed"
            if crash_after_two:
                shard.crash()
                shard.restart()
                assert shard.journal_restores == 1
            # Same cookie keeps working: sessions are journaled state.
            assert _transfer(router, signing_key, cookie, 333)["status"] == \
                "executed"
            return shard.state_digest()

        assert run(crash_after_two=True) == run(crash_after_two=False)

    def test_capture_restore_round_trip(self):
        simulator, router, signing_key = _build(journal=True)
        cookie = _enroll(router, signing_key)
        _transfer(router, signing_key, cookie, 444)
        shard = router.shards[0]
        before = shard.state_digest()
        snapshot = shard.capture_state()
        shard.restore_state(snapshot)
        assert shard.state_digest() == before

    def test_snapshot_supersedes_wal(self):
        """With snapshot_every=4 a busy shard rolls snapshots; restore
        still lands on the identical digest from the latest one."""
        simulator, router, signing_key = _build(journal=True)
        cookie = _enroll(router, signing_key)
        for amount in range(1, 8):
            _transfer(router, signing_key, cookie, 1000 + amount)
        shard = router.shards[0]
        stats = shard.journal_stats()
        assert stats["snapshots"] > 1
        before = shard.state_digest()
        shard.crash()
        shard.restart()
        assert shard.state_digest() == before


class TestExactlyOnceAcrossCrash:
    def test_resubmitted_confirm_replays_idempotently(self):
        simulator, router, signing_key = _build(journal=True)
        cookie = _enroll(router, signing_key)
        shard = router.shards[0]
        challenge = _request(router, cookie, 555)
        payload = _confirm_payload(signing_key, cookie, challenge)
        first = router.endpoint.call_sync(CLIENT, "tx.confirm", dict(payload))
        assert first["status"] == "executed"

        shard.crash()
        shard.restart()

        replayed = router.endpoint.call_sync(
            CLIENT, "tx.confirm", dict(payload)
        )
        assert replayed["status"] == "executed"
        executed = [
            t for t in shard.executed_transfers if t.amount_cents == 555
        ]
        assert len(executed) == 1  # stored-response replay, no re-execution

    def test_nonce_never_accepted_twice_across_crash(self):
        simulator, router, signing_key = _build(journal=True)
        cookie = _enroll(router, signing_key)
        shard = router.shards[0]
        challenge = _request(router, cookie, 666)
        assert _confirm(router, signing_key, cookie, challenge)["status"] == \
            "executed"

        shard.crash()
        shard.restart()

        # The replayed nonce DB remembers the consumption: the nonce is
        # CONSUMED, and a direct second consume attempt is refused.
        nonce = challenge["nonce"]
        state = shard.nonces.state_of(nonce, simulator.now)
        assert state is NonceState.CONSUMED
        accepted, observed = shard.nonces.consume(
            nonce, challenge["tx_id"], simulator.now
        )
        assert not accepted
        assert observed is NonceState.CONSUMED

    def test_mid_flight_pending_survives_crash(self):
        """Challenge issued before the crash, confirmed after: the
        pending transaction and its live nonce are journaled state."""
        simulator, router, signing_key = _build(journal=True)
        cookie = _enroll(router, signing_key)
        shard = router.shards[0]
        challenge = _request(router, cookie, 777)
        payload = _confirm_payload(signing_key, cookie, challenge)

        shard.crash()
        shard.restart()

        done = router.endpoint.call_sync(CLIENT, "tx.confirm", payload)
        assert done["status"] == "executed"


class TestJournalOffAblation:
    def test_crash_without_journal_loses_replay_defense(self):
        simulator, router, signing_key = _build(journal=False)
        cookie = _enroll(router, signing_key)
        shard = router.shards[0]
        challenge = _request(router, cookie, 888)
        payload = _confirm_payload(signing_key, cookie, challenge)
        assert router.endpoint.call_sync(
            CLIENT, "tx.confirm", dict(payload)
        )["status"] == "executed"

        shard.crash()
        shard.restart()
        assert shard.journal_restores == 0

        # Session and settled record are both gone.
        cookie = router.endpoint.call_sync(
            CLIENT, "login", {"account": ACCOUNT, "password": "pw"}
        )["set_session"]
        payload["session"] = cookie
        with pytest.raises(RpcError, match="unknown transaction"):
            router.endpoint.call_sync(CLIENT, "tx.confirm", dict(payload))

        # The honest redo executes the same transfer a second time —
        # the exactly-once property the journal was carrying.
        redo = _request(router, cookie, 888)
        assert _confirm(router, signing_key, cookie, redo)["status"] == \
            "executed"
        executed = [
            t for t in shard.executed_transfers if t.amount_cents == 888
        ]
        assert len(executed) == 2

    def test_registered_key_survives_as_durable_user_db(self):
        """The account registry models a conventional durable user
        database: credentials and setup keys survive even journal-off."""
        simulator, router, signing_key = _build(journal=False)
        cookie = _enroll(router, signing_key)
        shard = router.shards[0]
        shard.crash()
        shard.restart()
        assert shard.accounts[ACCOUNT].registered_key is not None
        cookie = router.endpoint.call_sync(
            CLIENT, "login", {"account": ACCOUNT, "password": "pw"}
        )["set_session"]
        assert _transfer(router, signing_key, cookie, 999)["status"] == \
            "executed"


class TestTornTail:
    def test_crash_mid_append_restores_to_last_complete_record(self):
        """A crash that lands mid-append leaves a truncated final WAL
        frame.  That is the one loss a WAL permits — the interrupted
        operation never became durable — so restore must stop at the
        last complete record and bring the shard back, not brick it."""
        simulator, router, signing_key = _build(journal=True)
        shard = router.shards[0]
        cookie = _enroll(router, signing_key)
        assert _transfer(router, signing_key, cookie, 111)["status"] == \
            "executed"
        disk = shard.journal.disk
        wal_path = shard.journal.wal_path
        raw = disk.read_file(wal_path)
        assert raw, "workload must leave WAL records to tear"
        # Tear the final frame mid-record, as a crash mid-append would.
        disk.write_file(wal_path, raw[:-3])
        shard.crash()
        shard.restart()
        assert shard.journal_restores == 1
        assert shard.journal.stats()["torn_tails"] == 1
        assert router.journal_stats()["torn_tails"] == 1
        # The shard serves again; only the torn record's operation is
        # gone.  (The last record was the settle: the transfer's
        # pending state survives, its settlement does not.)
        login = router.endpoint.call_sync(
            CLIENT, "login", {"account": ACCOUNT, "password": "pw"}
        )
        assert "set_session" in login

    def test_torn_length_prefix_is_also_end_of_log(self):
        journal = ProviderJournal(UntrustedDisk(), "shardX")
        journal.append(b"alpha")
        journal.append(b"beta")
        raw = journal.disk.read_file(journal.wal_path)
        journal.disk.write_file(journal.wal_path, raw + b"\x00\x00")
        assert journal.read_records() == [b"alpha", b"beta"]
        assert journal.stats()["torn_tails"] == 1

    def test_mid_log_corruption_still_refuses(self):
        """An implausible frame length is not a crash artifact (torn
        appends only ever shorten the file) — restore must refuse
        rather than silently skip records."""
        journal = ProviderJournal(UntrustedDisk(), "shardX")
        journal.append(b"alpha")
        journal.append(b"beta")
        raw = journal.disk.read_file(journal.wal_path)
        corrupted = b"\xff\xff\xff\xff" + raw[4:]
        journal.disk.write_file(journal.wal_path, corrupted)
        with pytest.raises(JournalError):
            journal.read_records()


class TestJournalMechanics:
    def test_restore_without_snapshot_rejected(self):
        simulator = Simulator(seed=1)
        journal = ProviderJournal(UntrustedDisk(), "shardX")
        with pytest.raises(JournalError):
            if journal.read_snapshot() is None:
                raise JournalError("no snapshot")

    def test_crash_is_idempotent_and_counted(self):
        simulator, router, signing_key = _build(journal=True)
        shard = router.shards[0]
        shard.crash()
        shard.crash()  # second call is a no-op, not a double-wipe
        assert shard.crashes == 1
        assert simulator.metrics.counter("provider.crashes").value == 1
        shard.restart()
        shard.restart()
        assert shard.restarts == 1
