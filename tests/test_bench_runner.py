"""The parallel experiment runner and the determinism contract.

Virtual-time results must be a pure function of seed + schedule —
independent of the crypto backend (``pure`` vs ``accel``) and of how
many worker processes the matrix is fanned across.  These are the
regression tests for that contract; the per-primitive differential
checks live in ``test_crypto_backend.py``.
"""

from __future__ import annotations

import json

import pytest

from repro.bench.experiments import f3s_sharded_scaling, r2_crash_availability
from repro.bench.fleet import e2_fleet_rows
from repro.bench.runner import (
    Cell,
    build_cells,
    run_cells,
    strip_wall,
    wall_record,
    write_wall_artifact,
)
from repro.crypto.backend import gmpy2_available, use_backend

#: Cheap smoke cells used where matrix mechanics, not coverage, are
#: under test.
FAST_IDS = ("t2b", "f1", "f5", "e3")

#: Backend arms the determinism contract is checked against, beyond the
#: accel reference: always ``pure``, plus ``gmpy2`` when installed (the
#: CI optional-deps leg runs these tests with the package present).
RSA_ARMS = ["pure"] + (["gmpy2"] if gmpy2_available() else [])


def _fast_cells():
    return [c for c in build_cells(smoke=True) if c.cell_id in FAST_IDS]


def _canonical(results) -> str:
    return json.dumps(strip_wall(results), sort_keys=False)


class TestMatrixDefinition:
    def test_cell_ids_stable_and_unique(self):
        for smoke in (False, True):
            cells = build_cells(smoke)
            ids = [c.cell_id for c in cells]
            assert len(ids) == len(set(ids))
            # The canonical order the report merges (and renders) in.
            assert ids == [
                "t1", "t2", "t2b", "t3", "t4", "f1", "f2", "f3", "f3s",
                "f4", "f6", "e4", "f5", "r1", "r2", "r3", "a1", "a2", "e1", "e3",
                "e2", "rsax", "kernx",
            ]

    def test_result_keys_cover_report_needs(self):
        keys = [k for c in build_cells(True) for k in c.keys]
        assert "f4" in keys and "crossovers" in keys
        assert len(keys) == len(set(keys))


class TestOrderedMerge:
    def test_pool_merge_matches_serial_order(self):
        serial, _, _ = run_cells(_fast_cells(), workers=1)
        pooled, _, _ = run_cells(_fast_cells(), workers=4)
        assert list(serial) == list(pooled)
        assert _canonical(serial) == _canonical(pooled)

    def test_per_cell_wall_recorded_for_every_cell(self):
        _, wall, _ = run_cells(_fast_cells(), workers=1)
        assert set(wall) == set(FAST_IDS)
        assert all(w >= 0 for w in wall.values())


class TestDeterminismContract:
    """Satellite: FleetWorld day + one F3-S cell, identical virtual-time
    JSON under pure vs accel and under workers=1 vs workers=4."""

    FLEET_KWARGS = dict(clients=2, infected=1, seed=555)
    F3S_KWARGS = dict(
        shard_counts=(1, 2), offered=120, duration=0.5, accounts=6, seed=99
    )
    R2_KWARGS = dict(
        crash_rates=(0.0, 0.7), recovery_s=0.35, offered=100.0,
        duration=0.8, accounts=6, seed=99,
    )

    @pytest.mark.parametrize("arm", RSA_ARMS)
    def test_fleet_day_identical_across_backends(self, arm):
        with use_backend("accel"):
            accel = e2_fleet_rows(**self.FLEET_KWARGS)
        with use_backend(arm):
            other = e2_fleet_rows(**self.FLEET_KWARGS)
        assert json.dumps(accel) == json.dumps(other)

    @pytest.mark.slow
    @pytest.mark.parametrize("arm", RSA_ARMS)
    def test_f3s_cell_identical_across_backends(self, arm):
        with use_backend("accel"):
            accel = f3s_sharded_scaling(**self.F3S_KWARGS)
        with use_backend(arm):
            other = f3s_sharded_scaling(**self.F3S_KWARGS)
        assert _canonical(accel) == _canonical(other)

    def test_f3s_cell_identical_across_worker_counts(self):
        cell = Cell("f3s", ("f3s",), f3s_sharded_scaling, self.F3S_KWARGS)
        serial, _, _ = run_cells([cell], workers=1)
        pooled, _, _ = run_cells([cell], workers=4)
        assert _canonical(serial) == _canonical(pooled)

    def test_r2_cell_identical_across_worker_counts(self):
        """Crash-stop faults included: the whole fault plan is drawn
        from named RNG streams, so the availability cell is a pure
        function of its seed regardless of the pool fan-out."""
        cell = Cell("r2", ("r2",), r2_crash_availability, self.R2_KWARGS)
        serial, _, _ = run_cells([cell], workers=1)
        pooled, _, _ = run_cells([cell], workers=4)
        assert _canonical(serial) == _canonical(pooled)

    def test_runner_backend_arg_round_trips(self):
        from repro.crypto.backend import backend_name

        before = backend_name()
        run_cells(_fast_cells()[:1], workers=1, backend="pure")
        assert backend_name() == before

    def test_bad_backend_rejected_before_any_cell_runs(self):
        ran = []

        def sentinel():
            ran.append(True)
            return []

        cell = Cell("x", ("x",), sentinel)
        with pytest.raises(ValueError, match="openssl3"):
            run_cells([cell], workers=1, backend="openssl3")
        assert not ran

    def test_bad_env_backend_rejected_eagerly(self, monkeypatch):
        from repro.crypto import backend as module

        monkeypatch.setenv(module.ENV_VAR, "bogus")
        with pytest.raises(ValueError, match="bogus"):
            run_cells(_fast_cells()[:1], workers=1)


class TestRsaOpCounters:
    def test_rsa_ops_recorded_per_cell(self):
        from repro.bench.experiments.rsa_microbench import (
            rsa_backend_microbench,
        )

        cell = Cell("rsax", ("rsax",), rsa_backend_microbench,
                    dict(bits_list=(512,), iterations=1, seed=7))
        _, _, rsa_ops = run_cells([cell], workers=1)
        assert set(rsa_ops) == {"rsax"}
        assert set(rsa_ops["rsax"]) == {"modexp", "sign_crt", "verify"}
        assert all(count >= 0 for count in rsa_ops["rsax"].values())

    def test_op_counts_identical_across_arms(self):
        """RSA op counts are deterministic work, not wall-clock: the
        same cell issues the same number of ops on every arm."""
        cell = Cell("e2", ("e2",), e2_fleet_rows,
                    dict(clients=2, infected=1, seed=556))
        counts = {}
        for arm in ["accel"] + RSA_ARMS:
            from repro.crypto.rsa import clear_keygen_cache

            clear_keygen_cache()  # cache hits skip keygen modexp work
            _, _, rsa_ops = run_cells([cell], workers=1, backend=arm)
            counts[arm] = rsa_ops["e2"]
        assert len({tuple(sorted(c.items())) for c in counts.values()}) == 1


class TestStripWall:
    def test_removes_real_clock_fields_recursively(self):
        nested = {
            "f3s": [{"shards": 1, "wall_s": 1.23}],
            "f5": ({"population": 10, "issue_us_per_op": 9.9,
                    "consume_us_per_op": 1.1, "evict_ms_total": 0.2},),
            "deep": {"inner": [{"wall_s": 5, "kept": True}]},
        }
        stripped = strip_wall(nested)
        assert stripped == {
            "f3s": [{"shards": 1}],
            "f5": [{"population": 10}],
            "deep": {"inner": [{"kept": True}]},
        }

    def test_leaves_virtual_values_untouched(self):
        assert strip_wall([1, "x", 2.5]) == [1, "x", 2.5]


class TestWallArtifact:
    def _matrix(self, **overrides):
        from repro.bench.runner import MatrixResult

        defaults = dict(
            results={"t1": []}, cell_wall_s={"t1": 0.5}, total_wall_s=0.5,
            workers=4, backend="accel", smoke=True,
        )
        defaults.update(overrides)
        return MatrixResult(**defaults)

    def test_record_shape(self):
        record = wall_record(self._matrix())
        assert record == {
            "backend": "accel", "workers": 4,
            "cells": {"t1": 0.5}, "total_wall_s": 0.5,
        }

    def test_artifact_with_baseline_records_speedup(self, tmp_path):
        path = tmp_path / "BENCH_wall.json"
        run = self._matrix(total_wall_s=2.0)
        baseline = self._matrix(
            total_wall_s=10.0, workers=1, backend="pure",
            cell_wall_s={"t1": 10.0},
        )
        payload = write_wall_artifact(str(path), run, baseline=baseline)
        on_disk = json.loads(path.read_text())
        assert on_disk == payload
        assert on_disk["schema"] == "bench-wall/1"
        assert on_disk["run"]["backend"] == "accel"
        assert on_disk["baseline"]["backend"] == "pure"
        assert on_disk["speedup_vs_baseline"] == pytest.approx(5.0)

    def test_artifact_without_baseline(self, tmp_path):
        path = tmp_path / "wall.json"
        payload = write_wall_artifact(str(path), self._matrix())
        assert "baseline" not in payload
        assert "speedup_vs_baseline" not in payload
