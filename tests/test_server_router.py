"""The sharded provider pool: consistent-hash routing over N replicas.

Covers the ring itself (deterministic, balanced), the router's two
routing modes (account hash vs learned cookie map), transport
faithfulness on both RPC paths (sync inline, queued via
DeferredResponse), and the security property sharding must preserve:
challenge nonces live only in the owning shard's database, so evidence
can never replay cross-shard.
"""

from __future__ import annotations

import pytest

from repro.core.confirmation_pal import confirmation_digest
from repro.crypto import HmacDrbg, generate_rsa_keypair, pkcs1_sign
from repro.net.network import LinkSpec, Network
from repro.net.rpc import RpcError
from repro.server.bank import BankServer
from repro.server.noncedb import NonceState
from repro.server.policy import VerifierPolicy
from repro.server.provider import DENIAL_NOT_OWNER
from repro.server.router import HashRing, ProviderRouter, build_sharded_pool
from repro.sim import Simulator

CLIENT = "load-host"
POOL = "pool.test"


class TestHashRing:
    def test_deterministic_across_instances(self):
        hosts = [f"shard{i}" for i in range(4)]
        first, second = HashRing(hosts), HashRing(hosts)
        for key in (f"acct-{i}" for i in range(200)):
            assert first.index_for(key) == second.index_for(key)

    def test_reasonably_balanced(self):
        ring = HashRing([f"shard{i}" for i in range(4)])
        counts = [0, 0, 0, 0]
        for index in range(2000):
            counts[ring.index_for(f"acct-{index}")] += 1
        assert min(counts) > 2000 * 0.15  # vnodes smooth the split

    def test_host_for_matches_index(self):
        ring = HashRing(["a", "b"])
        assert ring.host_for("key") == ring.hosts[ring.index_for("key")]

    def test_empty_ring_rejected(self):
        with pytest.raises(ValueError):
            HashRing([])
        with pytest.raises(ValueError):
            HashRing(["a"], vnodes=0)


@pytest.fixture()
def pool():
    simulator = Simulator(seed=4321)
    network = Network(simulator)
    network.attach(CLIENT, LinkSpec.lan())
    policy = VerifierPolicy()
    router = build_sharded_pool(
        simulator, network, POOL, policy,
        shard_count=4, provider_factory=BankServer, workers_per_shard=1,
    )
    signing_key = generate_rsa_keypair(512, HmacDrbg(b"router-signing"))
    return simulator, router, signing_key


def _enroll(router, signing_key, name):
    """Register + login + arm the account's setup key on its shard."""
    router.endpoint.call_sync(
        CLIENT, "register", {"account": name, "password": "pw"}
    )
    login = router.endpoint.call_sync(
        CLIENT, "login", {"account": name, "password": "pw"}
    )
    shard = router.shard_for_account(name)
    shard.accounts[name].registered_key = signing_key.public
    return login["set_session"]


def _request_transfer(router, cookie, name, amount=100):
    return router.endpoint.call_sync(
        CLIENT, "tx.request",
        {
            "kind": "transfer", "account": name, "session": cookie,
            "f.to": "sink", "f.amount": amount,
        },
    )


def _confirm(router, signing_key, cookie, challenge, decision=b"accept"):
    digest = confirmation_digest(
        challenge["text"], challenge["nonce"], decision
    )
    return router.endpoint.call_sync(
        CLIENT, "tx.confirm",
        {
            "tx_id": challenge["tx_id"], "decision": decision,
            "evidence": "signed",
            "signature": pkcs1_sign(signing_key, digest, prehashed=True),
            "session": cookie,
        },
    )


class TestRouting:
    def test_cookie_routes_to_the_account_shard(self, pool):
        _, router, signing_key = pool
        cookie = _enroll(router, signing_key, "alice")
        owner = router.shard_index_for_account("alice")
        before = router.forwards_by_shard[owner]
        _request_transfer(router, cookie, "alice")
        assert router.forwards_by_shard[owner] == before + 1
        assert router.cookie_routes >= 1

    def test_unknown_cookie_is_unroutable(self, pool):
        _, router, _ = pool
        with pytest.raises(RpcError, match="not logged in"):
            router.endpoint.call_sync(
                CLIENT, "tx.status",
                {"tx_id": b"\x00" * 16, "session": b"\xff" * 16},
            )
        assert router.unroutable == 1

    def test_relogin_evicts_old_cookie_router_and_shard(self, pool):
        _, router, signing_key = pool
        first = _enroll(router, signing_key, "bob")
        shard = router.shard_for_account("bob")
        invalidated_before = shard.cookies_invalidated
        second = router.endpoint.call_sync(
            CLIENT, "login", {"account": "bob", "password": "pw"}
        )["set_session"]
        assert second != first
        assert router.cookies_invalidated == 1
        assert shard.cookies_invalidated == invalidated_before + 1
        # The stale cookie no longer routes anywhere.
        with pytest.raises(RpcError, match="not logged in"):
            _request_transfer(router, first, "bob")
        _request_transfer(router, second, "bob")  # the live one works

    def test_accounts_spread_over_shards(self, pool):
        _, router, signing_key = pool
        owners = {
            router.shard_index_for_account(f"user-{index}")
            for index in range(32)
        }
        assert len(owners) == 4


class TestEndToEnd:
    def test_sync_confirm_executes_on_owning_shard(self, pool):
        _, router, signing_key = pool
        cookie = _enroll(router, signing_key, "carol")
        challenge = _request_transfer(router, cookie, "carol", amount=250)
        response = _confirm(router, signing_key, cookie, challenge)
        assert response["status"] == "executed"
        shard = router.shard_for_account("carol")
        assert shard.balance_of("sink") == 250
        assert router.balance_of("carol") == 500_000 - 250
        # Aggregated ledger view sees the transfer exactly once.
        assert sum(
            1 for t in router.executed_transfers if t.destination == "sink"
        ) == 1

    def test_queued_path_uses_deferred_responses(self, pool):
        simulator, router, signing_key = pool
        cookie = _enroll(router, signing_key, "dave")
        done = {}

        def after_challenge(challenge):
            digest = confirmation_digest(
                challenge["text"], challenge["nonce"], b"accept"
            )
            router.endpoint.submit(
                CLIENT, "tx.confirm",
                {
                    "tx_id": challenge["tx_id"], "decision": b"accept",
                    "evidence": "signed",
                    "signature": pkcs1_sign(signing_key, digest, prehashed=True),
                    "session": cookie,
                },
                lambda response: done.update(response),
            )

        router.endpoint.submit(
            CLIENT, "tx.request",
            {
                "kind": "transfer", "account": "dave", "session": cookie,
                "f.to": "sink", "f.amount": 70,
            },
            after_challenge,
        )
        simulator.run(until=simulator.now + 60.0)
        assert done.get("status") == "executed"
        # The router freed its worker while shard legs were in flight.
        assert router.endpoint.deferred_responses >= 2
        assert router.shard_for_account("dave").balance_of("sink") == 70

    def test_error_responses_survive_the_sync_hop(self, pool):
        _, router, signing_key = pool
        cookie = _enroll(router, signing_key, "erin")
        challenge = _request_transfer(router, cookie, "erin")
        with pytest.raises(RpcError) as err:
            router.endpoint.call_sync(
                CLIENT, "tx.confirm",
                {
                    "tx_id": challenge["tx_id"], "decision": b"accept",
                    "evidence": "signed", "signature": b"\x01" * 64,
                    "session": cookie,
                },
            )
        assert "denied" in str(err.value)


class TestCrossShardIsolation:
    def test_nonce_is_unknown_to_every_other_shard(self, pool):
        simulator, router, signing_key = pool
        cookie = _enroll(router, signing_key, "frank")
        challenge = _request_transfer(router, cookie, "frank")
        owner = router.shard_index_for_account("frank")
        for index, shard in enumerate(router.shards):
            state = shard.nonces.state_of(challenge["nonce"], now=simulator.now)
            expected = NonceState.LIVE if index == owner else NonceState.UNKNOWN
            assert state is expected

    def test_replayed_confirm_at_foreign_shard_denied(self, pool):
        """Evidence accepted by the owning shard is dead on arrival at
        any other shard: the tx_id (and its nonce) simply do not exist
        there — there is no cross-shard state to replay against."""
        _, router, signing_key = pool
        cookie = _enroll(router, signing_key, "grace")
        challenge = _request_transfer(router, cookie, "grace", amount=40)
        response = _confirm(router, signing_key, cookie, challenge)
        assert response["status"] == "executed"
        owner = router.shard_index_for_account("grace")
        digest = confirmation_digest(
            challenge["text"], challenge["nonce"], b"accept"
        )
        signature = pkcs1_sign(signing_key, digest, prehashed=True)
        for index, shard in enumerate(router.shards):
            if index == owner:
                continue
            with pytest.raises(RpcError, match="unknown|not logged in"):
                shard.endpoint.call_sync(
                    CLIENT, "tx.confirm",
                    {
                        "tx_id": challenge["tx_id"], "decision": b"accept",
                        "evidence": "signed", "signature": signature,
                        "session": cookie,
                    },
                )
            assert shard.balance_of("sink") == 0

    def test_shards_have_independent_drbg_streams(self, pool):
        _, router, _ = pool
        hosts = {shard.host for shard in router.shards}
        assert len(hosts) == len(router.shards)
        nonces = set()
        for shard in router.shards:
            nonces.add(shard._drbg.generate(16))
        assert len(nonces) == len(router.shards)


class TestAggregation:
    def test_denials_and_stats_merge_across_shards(self, pool):
        _, router, signing_key = pool
        for name in ("hank", "iris"):
            cookie = _enroll(router, signing_key, name)
            challenge = _request_transfer(router, cookie, name)
            with pytest.raises(RpcError):
                router.endpoint.call_sync(
                    CLIENT, "tx.confirm",
                    {
                        "tx_id": challenge["tx_id"], "decision": b"accept",
                        "evidence": "signed", "signature": b"\x02" * 64,
                        "session": cookie,
                    },
                )
        assert sum(router.denials.values()) == 2
        assert router.transactions_live == 2
        assert router.count_by_status().get("denied") == 2
        stats = router.verification_stats()
        assert stats["misses"] >= 2  # forged signatures were verified cold

    def test_cache_ablation_builds_cold_shards(self):
        simulator = Simulator(seed=77)
        network = Network(simulator)
        cold = build_sharded_pool(
            simulator, network, "cold.pool", VerifierPolicy(),
            shard_count=2, verification_cache=False,
        )
        assert all(shard.verification_cache is None for shard in cold.shards)
        warm = build_sharded_pool(
            simulator, network, "warm.pool", VerifierPolicy(), shard_count=2
        )
        assert all(
            shard.verification_cache is not None for shard in warm.shards
        )

    def test_retire_settled_aggregates(self, pool):
        simulator, router, signing_key = pool
        cookie = _enroll(router, signing_key, "judy")
        challenge = _request_transfer(router, cookie, "judy", amount=10)
        assert _confirm(router, signing_key, cookie, challenge)["status"] == (
            "executed"
        )
        for shard in router.shards:
            shard.settled_retention_seconds = 1.0
        simulator.clock.advance(5.0)
        assert router.retire_settled() == 1
        assert router.transactions_retired == 1
        assert router.transactions_live == 0


def test_router_requires_shards():
    simulator = Simulator(seed=1)
    network = Network(simulator)
    with pytest.raises(ValueError):
        ProviderRouter(simulator, network, "empty.pool", [])
    with pytest.raises(ValueError):
        build_sharded_pool(
            simulator, network, "none.pool", VerifierPolicy(), shard_count=0
        )


def test_not_owner_denial_crosses_the_router(pool):
    """Ownership enforcement composes with sharding: a session probing a
    foreign transaction through the router gets the dedicated denial."""
    _, router, signing_key = pool
    victim_cookie = _enroll(router, signing_key, "victim")
    prober_cookie = _enroll(router, signing_key, "prober")
    challenge = _request_transfer(router, victim_cookie, "victim")
    owner = router.shard_index_for_account("victim")
    prober_home = router.shard_index_for_account("prober")
    if owner == prober_home:
        # Same shard: the provider's ownership check answers.
        with pytest.raises(RpcError, match=DENIAL_NOT_OWNER):
            router.endpoint.call_sync(
                CLIENT, "tx.status",
                {"tx_id": challenge["tx_id"], "session": prober_cookie},
            )
    else:
        # Different shard: the transaction does not even exist there.
        with pytest.raises(RpcError, match="unknown"):
            router.endpoint.call_sync(
                CLIENT, "tx.status",
                {"tx_id": challenge["tx_id"], "session": prober_cookie},
            )
