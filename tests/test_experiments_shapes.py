"""Experiment shape tests: small-parameter runs of every experiment in
DESIGN.md's index, asserting the *shapes* EXPERIMENTS.md documents."""

from __future__ import annotations

import pytest

from repro.bench.experiments import (
    a1_defense_ablation,
    fig1_latency_vs_pal_size,
    f3s_sharded_scaling,
    fig2_server_throughput,
    fig4_amortization,
    fig5_noncedb_scalability,
    table1_tpm_microbench,
    table2_session_breakdown,
    table3_end_to_end,
    r1_loss_robustness,
    r2_crash_availability,
)
from repro.bench.experiments.amortization import crossover_k
from repro.bench.experiments.captcha_comparison import (
    captcha_attack_rows,
    human_overhead_rows,
    trusted_path_forgery_rows,
)


class TestT1Microbench:
    @pytest.fixture(scope="class")
    def rows(self):
        return table1_tpm_microbench(vendors=("infineon", "broadcom"))

    def _mean(self, rows, vendor, command):
        return next(
            r["mean_ms"] for r in rows
            if r["vendor"] == vendor and r["command"] == command
        )

    def test_quote_among_most_expensive_per_transaction_ops(self, rows):
        for vendor in ("infineon", "broadcom"):
            quote = self._mean(rows, vendor, "quote")
            for cheap in ("extend", "pcr_read", "get_random", "seal"):
                assert quote > 5 * self._mean(rows, vendor, cheap)

    def test_vendor_variance_on_quote_is_large(self, rows):
        assert self._mean(rows, "broadcom", "quote") > 2.5 * self._mean(
            rows, "infineon", "quote"
        )

    def test_context_free_commands_about_a_millisecond(self, rows):
        for vendor in ("infineon", "broadcom"):
            assert self._mean(rows, vendor, "extend") < 3.0


class TestT2Breakdown:
    @pytest.fixture(scope="class")
    def rows(self):
        return table2_session_breakdown(
            vendors=("infineon", "broadcom"), repetitions=3
        )

    def _row(self, rows, vendor, variant):
        return next(
            r for r in rows if r["vendor"] == vendor and r["variant"] == variant
        )

    def test_tpm_dominates_machine_phases(self, rows):
        for row in rows:
            machine_phases = (
                row["suspend"] + row["skinit"] + row["cap"] + row["resume"]
            )
            assert row["pal_tpm"] > machine_phases

    def test_signed_variant_lower_perceived_overhead(self, rows):
        for vendor in ("infineon", "broadcom"):
            signed = self._row(rows, vendor, "signed")["perceived_overhead"]
            quote = self._row(rows, vendor, "quote")["perceived_overhead"]
            assert signed < quote

    def test_launch_plumbing_is_milliseconds(self, rows):
        for row in rows:
            assert row["suspend"] < 0.01
            assert row["skinit"] < 0.05
            assert row["resume"] < 0.05


class TestT3EndToEnd:
    def test_practicality_claim(self):
        rows = table3_end_to_end(vendors=("broadcom",), repetitions=3)
        for row in rows:
            assert row["executed"] == row["of"]
            # Machine-added latency within a couple of seconds even on
            # the slowest TPM: the paper's "practical" claim.
            assert row["machine_added_s"] < 2.5


class TestF1PalSize:
    def test_skinit_grows_linearly(self):
        sizes = (16 * 1024, 256 * 1024)
        rows = fig1_latency_vs_pal_size(sizes=sizes, vendors=("infineon",))
        small, large = rows[0], rows[1]
        assert large["skinit_s"] > small["skinit_s"]
        # Slope check: the delta matches the hash rate within 20%.
        from repro.tpm.timing import vendor_profile

        rate = vendor_profile("infineon").slb_hash_bytes_per_second
        expected_delta = (sizes[1] - sizes[0]) / rate
        measured_delta = large["skinit_s"] - small["skinit_s"]
        assert measured_delta == pytest.approx(expected_delta, rel=0.2)


class TestF2Throughput:
    def test_saturation_knee(self):
        rows = fig2_server_throughput(
            offered_loads=(100, 800), workers_options=(1,), duration=3.0
        )
        light, heavy = rows[0], rows[1]
        assert light["rejected"] == 0 and heavy["rejected"] == 0
        # Under light load the server keeps up...
        assert light["completed_rps"] == pytest.approx(100, rel=0.25)
        # ...past saturation it plateaus near 1/service_time (~416rps)
        assert heavy["completed_rps"] < 500
        # ...and queueing delay explodes.
        assert heavy["p95_latency_ms"] > 20 * light["p95_latency_ms"]

    def test_more_workers_raise_the_ceiling(self):
        rows = fig2_server_throughput(
            offered_loads=(800,), workers_options=(1, 4), duration=3.0
        )
        one, four = rows[0], rows[1]
        assert four["completed_rps"] > 1.5 * one["completed_rps"]


class TestF3Captcha:
    def test_captcha_bypass_tracks_solve_rate(self):
        rows = captcha_attack_rows(bot_rates=(0.1, 0.6), attempts=300)
        low, high = rows[0], rows[1]
        assert low["bypass_fraction"] == pytest.approx(0.1, abs=0.06)
        assert high["bypass_fraction"] == pytest.approx(0.6, abs=0.08)

    def test_trusted_path_forgeries_all_rejected(self):
        rows = trusted_path_forgery_rows(attempts=150)
        assert rows[0]["bypassed"] == 0

    def test_human_overhead_comparable(self):
        rows = human_overhead_rows(repetitions=3)
        by_scheme = {row["scheme"]: row["human_seconds_per_action"] for row in rows}
        # Confirmation reading is not slower than captcha solving.
        assert by_scheme["trusted-path"] < by_scheme["captcha"] * 1.5


class TestF3Sharding:
    @pytest.fixture(scope="class")
    def rows(self):
        return f3s_sharded_scaling(
            shard_counts=(1, 2, 4), offered=350, duration=1.0, accounts=8,
            seed=17,
        )

    def test_throughput_monotone_in_shard_count(self, rows):
        """At saturating load, completed rps never decreases as shards
        are added — the CI gate on the scale-out claim."""
        on = sorted(
            (r for r in rows if r["cache"] == "on"),
            key=lambda r: r["shards"],
        )
        completed = [r["completed_rps"] for r in on]
        assert completed == sorted(completed)
        assert completed[-1] >= 2 * completed[0]

    def test_cache_changes_wall_clock_only(self, rows):
        """Virtual-time results are bit-identical with the memo on or
        off; only the hit counters (and wall-clock) differ."""
        on = {r["shards"]: r for r in rows if r["cache"] == "on"}
        off = {r["shards"]: r for r in rows if r["cache"] == "off"}
        assert set(on) == set(off)
        for shards, row in on.items():
            for field in (
                "completed_rps", "p95_latency_ms", "failed",
                "store_live", "store_retired",
            ):
                assert row[field] == off[shards][field], (shards, field)
            assert row["cache_hits"] > 0
            assert off[shards]["cache_hits"] == 0

    def test_no_flow_fails_and_store_is_swept(self, rows):
        for row in rows:
            assert row["failed"] == 0, row
            assert row["store_retired"] > 0, row
            assert row["store_live"] == 0, row


class TestF4Amortization:
    def test_signed_wins_after_small_k(self):
        for vendor in ("infineon", "broadcom"):
            k = crossover_k(vendor)
            assert k <= 5, f"{vendor} crossover at {k}"

    def test_cumulative_rows_consistent(self):
        rows = fig4_amortization(vendors=("infineon",), k_values=(1, 10))
        k1 = next(r for r in rows if r["k"] == 1)
        k10 = next(r for r in rows if r["k"] == 10)
        assert k10["quote_cum_s"] == pytest.approx(10 * k1["quote_cum_s"], rel=0.01)
        assert k10["signed_wins"] == 1


class TestF5NonceDb:
    def test_flat_per_op_cost(self):
        rows = fig5_noncedb_scalability(populations=(1_000, 20_000))
        small, large = rows[0], rows[1]
        # O(1): per-op cost does not scale with population (3x headroom
        # for wall-clock noise).
        assert large["issue_us_per_op"] < 3 * small["issue_us_per_op"]
        assert large["live_after_evict"] == 0


class TestA1Ablation:
    @pytest.fixture(scope="class")
    def rows(self):
        return a1_defense_ablation()

    def test_every_defense_is_load_bearing(self, rows):
        assert len(rows) == 4
        for row in rows:
            assert row["with_defense"] == "prevented", row
            assert row["without_defense"] == "succeeded", row


class TestR1Robustness:
    @pytest.fixture(scope="class")
    def rows(self):
        return r1_loss_robustness(
            loss_rates=(0.0, 0.2), offered=100, workers=2, duration=1.5,
            seed=7,
        )

    def test_retry_rows_never_hang_and_never_double_execute(self, rows):
        for row in rows:
            if row["policy"] != "retry":
                continue
            assert row["hung"] == 0, row
            assert row["duplicate_executions"] == 0, row
            assert row["success_rate"] >= 0.99, row

    def test_no_retry_ablation_shows_the_hang(self, rows):
        lossy = next(
            r for r in rows
            if r["policy"] == "no-retry" and r["loss_pct"] > 0
        )
        assert lossy["hung"] > 0, lossy
        assert lossy["success_rate"] < 0.99, lossy

    def test_clean_link_identical_across_policies(self, rows):
        clean = [r for r in rows if r["loss_pct"] == 0]
        assert len(clean) == 2
        retry, no_retry = clean
        assert retry["retransmits"] == 0
        assert retry["success_rate"] == no_retry["success_rate"] == 1.0
        assert retry["goodput_rps"] == pytest.approx(
            no_retry["goodput_rps"]
        )


class TestR2Availability:
    @pytest.fixture(scope="class")
    def rows(self):
        return r2_crash_availability(
            crash_rates=(0.0, 0.7), recovery_s=0.35, offered=120.0,
            duration=1.2, accounts=8, seed=7,
        )

    def test_no_caller_ever_hangs(self, rows):
        for row in rows:
            assert row["hung"] == 0, row

    def test_journaled_arm_survives_crashes_exactly_once(self, rows):
        for row in rows:
            if row["journal"] != "on":
                continue
            assert row["success_rate"] >= 0.99, row
            assert row["duplicate_executions"] == 0, row
            assert row["probe_idempotent"] == 1, row
            assert row["probe_duplicates"] == 0, row
            if row["crash_rate"] > 0:
                assert row["journal_restores"] >= 1, row

    def test_journal_off_ablation_re_executes_the_replay_probe(self, rows):
        for row in rows:
            if row["journal"] != "off":
                continue
            assert row["probe_idempotent"] == 0, row
            assert row["probe_duplicates"] >= 1, row
            assert row["journal_appends"] == 0, row

    def test_crash_free_arms_identical_across_journal_modes(self, rows):
        """The journal must change durability only: with no crashes the
        client-visible workload columns agree between the two arms."""
        on = next(r for r in rows if r["journal"] == "on"
                  and r["crash_rate"] == 0)
        off = next(r for r in rows if r["journal"] == "off"
                   and r["crash_rate"] == 0)
        for field in ("flows", "goodput_rps", "success_rate",
                      "p95_latency_ms", "failed", "resubmits"):
            assert on[field] == off[field], field

    def test_crashes_degrade_the_unjournaled_arm(self, rows):
        crashed_off = next(
            r for r in rows
            if r["journal"] == "off" and r["crash_rate"] > 0
        )
        assert crashed_off["success_rate"] < 1.0, crashed_off
        assert (
            crashed_off["relogins"] > 0 or crashed_off["reflows"] > 0
        ), crashed_off
