"""Whole-system attack suite: every threat-model attack against the
trusted path, with outcomes read from ledger ground truth."""

from __future__ import annotations

import pytest

from repro.baselines.adversary import AttackOutcome
from repro.bench.experiments.security_matrix import (
    MULE,
    _tp_alteration,
    _tp_generation,
    _tp_replay,
    _tp_spoof,
    _tp_substitution,
    _tp_suppression,
    _tp_theft,
)
from repro.bench.world import TrustedPathWorld, WorldConfig
from repro.core.errors import ConfirmationRejected
from repro.os.malware import ManInTheBrowser
from repro.server.provider import TxStatus
from repro.user import UserProfile


class TestAttackOutcomes:
    """Each attack's outcome, as asserted shapes (shared with T4)."""

    def test_transaction_generation_prevented(self):
        assert _tp_generation(seed=900) is AttackOutcome.PREVENTED

    def test_alteration_user_dependent(self):
        assert _tp_alteration(seed=901) is AttackOutcome.USER_DEPENDENT

    def test_credential_theft_prevented(self):
        assert _tp_theft(seed=902) is AttackOutcome.PREVENTED

    def test_replay_prevented(self):
        assert _tp_replay(seed=903) is AttackOutcome.PREVENTED

    def test_ui_spoofing_prevented_server_side(self):
        assert _tp_spoof(seed=904) is AttackOutcome.PREVENTED

    def test_suppression_is_only_dos(self):
        assert _tp_suppression(seed=905) is AttackOutcome.DEGRADED

    def test_pal_substitution_prevented(self):
        assert _tp_substitution(seed=906) is AttackOutcome.PREVENTED


class TestAlterationDetail:
    def test_attentive_user_rejects_and_server_records_it(self):
        world = TrustedPathWorld(WorldConfig(seed=910)).ready()
        mitb = ManInTheBrowser(rewrite={"f.to": MULE, "f.amount": 450_000})
        world.os.install_malware(mitb)
        outcome = world.confirm(world.sample_transfer(amount_cents=2_000, to="bob"))
        assert outcome.decision == b"reject"
        assert mitb.alterations >= 1
        # The pending transaction the server holds is the ALTERED one,
        # and it ended rejected — the alteration was surfaced.
        pending = list(world.bank.transactions.values())[-1]
        assert pending.transaction.fields["to"] == MULE
        assert pending.status is TxStatus.REJECTED_BY_USER
        assert world.bank.total_stolen_by(MULE) == 0

    def test_careless_user_loses_money_the_residual_risk(self):
        """The paper is explicit that an inattentive user can still be
        robbed by alteration: the trusted path makes the altered text
        *visible*, it cannot force the user to read it."""
        world = TrustedPathWorld(
            WorldConfig(seed=911, user_profile=UserProfile.careless())
        ).ready()
        world.os.install_malware(
            ManInTheBrowser(rewrite={"f.to": MULE, "f.amount": 450_000})
        )
        outcome = world.confirm(world.sample_transfer(amount_cents=2_000, to="bob"))
        assert outcome.decision == b"accept"
        assert world.bank.total_stolen_by(MULE) == 450_000


class TestInboundChallengeTampering:
    def test_hiding_the_alteration_from_the_pal_only_breaks_evidence(self):
        """Clever MitB: alter the outgoing transaction AND rewrite the
        inbound challenge text so the PAL shows the user the original.
        The user confirms — but the evidence then binds the displayed
        (original) text, not the server's canonical (altered) text, so
        verification fails.  No money moves; the attack degrades to DoS."""
        world = TrustedPathWorld(WorldConfig(seed=912)).ready()
        intended = world.sample_transfer(amount_cents=2_000, to="bob")
        original_text = "\n".join(intended.display_lines())

        mitb = ManInTheBrowser(rewrite={"f.to": MULE, "f.amount": 450_000})
        world.os.install_malware(mitb)

        def rewrite_challenge(source, message):
            if "text" in message:
                message = dict(message, text=original_text.encode("utf-8"))
            return message

        world.os.inbound_hooks.append(rewrite_challenge)
        with pytest.raises(ConfirmationRejected):
            world.confirm(intended)
        assert world.bank.total_stolen_by(MULE) == 0
        pending = list(world.bank.transactions.values())[-1]
        assert pending.status is TxStatus.DENIED


class TestStolenCookieFullProtocol:
    def test_attacker_with_cookie_and_credential_file_still_fails(self):
        """Grant the adversary everything software can exfiltrate: the
        session cookie AND the sealed credential file AND knowledge of
        the protocol.  Without the PAL's PCR state it cannot finish."""
        from repro.core.confirmation_pal import confirmation_digest
        from repro.core.protocol import build_transaction_request
        from repro.crypto import HmacDrbg, generate_rsa_keypair, pkcs1_sign

        world = TrustedPathWorld(WorldConfig(seed=913)).ready()
        bank = world.bank
        forged = world.sample_transfer(amount_cents=123_400, to=MULE)
        response = world.browser.call(
            bank.endpoint, "tx.request", build_transaction_request(forged)
        )
        # Attempt 1: sign with a self-made key.
        attacker_key = generate_rsa_keypair(512, HmacDrbg(b"mallory"))
        digest = confirmation_digest(
            response["text"], response["nonce"], b"accept"
        )
        submission = {
            "tx_id": response["tx_id"],
            "decision": b"accept",
            "evidence": "signed",
            "signature": pkcs1_sign(attacker_key, digest, prehashed=True),
        }
        from repro.net.rpc import RpcError

        with pytest.raises(RpcError):
            world.browser.call(bank.endpoint, "tx.confirm", submission)
        # Attempt 2: unseal the stolen credential file at OS level.
        from repro.tpm.constants import TpmError
        from repro.tpm.structures import SealedBlob

        stolen = world.client.credentials.sealed_credential
        with pytest.raises(TpmError):
            world.machine.chipset.tpm_command_as_os(
                "unseal", blob=SealedBlob.from_bytes(stolen)
            )
        assert bank.total_stolen_by(MULE) == 0
