"""The open-loop load engine: arrival plan, skew, spikes, accounting.

The tentpole claims under test:

* the arrival plan is a pure function of (seed, curve, spikes) — byte-
  identical across crypto backends and runner worker counts;
* the Zipf sampler's documented frequencies are its true law;
* a flash-crowd window produces the configured rate multiple;
* saturation behaviour is explicit: the admission cap drops countedly
  through the shared metric registry, and the per-day accounting always
  balances (every arrival ends in exactly one bucket).
"""

from __future__ import annotations

import json
import math
import random

import pytest

from repro.bench.experiments.openloop import f6_open_loop_rows
from repro.bench.loadgen import (
    LOAD_HOST,
    DiurnalCurve,
    FlashCrowd,
    LoadEngine,
    SessionMix,
    ZipfSampler,
    expected_arrivals,
    plan_arrivals,
)
from repro.bench.runner import Cell, run_cells, strip_wall
from repro.crypto.backend import use_backend
from repro.crypto.drbg import HmacDrbg
from repro.crypto.rsa import generate_rsa_keypair
from repro.net.network import LinkSpec, Network
from repro.server.policy import VerifierPolicy
from repro.server.router import build_sharded_pool
from repro.sim import Simulator

F6_SMALL = dict(populations=(400,), seed=29)


def _canonical(value) -> str:
    return json.dumps(strip_wall(value), sort_keys=False)


def _engine(users=150, seed=23, **kwargs) -> LoadEngine:
    sim = Simulator(seed=seed)
    network = Network(sim)
    network.attach(LOAD_HOST, LinkSpec.lan())
    drbg = HmacDrbg(b"loadgen-test", personalization=str(seed).encode())
    signing_key = generate_rsa_keypair(512, drbg.fork(b"signing"))
    pool = build_sharded_pool(
        sim, network, "pool.example", VerifierPolicy(), shard_count=2,
    )
    return LoadEngine(sim, pool, users=users, signing_key=signing_key,
                      **kwargs)


class TestDiurnalCurve:
    def test_shape_range_and_symmetry(self):
        curve = DiurnalCurve(day_seconds=86_400.0, trough=0.25)
        assert curve.shape(0.0) == pytest.approx(0.25)
        assert curve.shape(43_200.0) == pytest.approx(1.0)
        assert curve.shape(21_600.0) == pytest.approx(curve.shape(64_800.0))

    def test_analytic_integral_matches_numeric(self):
        curve = DiurnalCurve(day_seconds=1_000.0, trough=0.4)
        a, b = 130.0, 870.0
        step = (b - a) / 20_000
        numeric = sum(
            curve.shape(a + (i + 0.5) * step) for i in range(20_000)
        ) * step
        assert curve.shape_integral(a, b) == pytest.approx(numeric, rel=1e-6)

    def test_bad_parameters_rejected(self):
        with pytest.raises(ValueError):
            DiurnalCurve(day_seconds=0)
        with pytest.raises(ValueError):
            DiurnalCurve(trough=0.0)
        with pytest.raises(ValueError):
            FlashCrowd(start=0, duration=-1, multiplier=2)
        with pytest.raises(ValueError):
            FlashCrowd(start=0, duration=10, multiplier=0.5)


class TestArrivalPlan:
    def test_expected_count_is_population(self):
        curve = DiurnalCurve()
        spikes = [FlashCrowd(start=40_000, duration=2_000, multiplier=5.0)]
        users = 40_000
        plan = plan_arrivals(random.Random(7), users, curve, spikes)
        # Poisson concentration: the realized day is within a few σ.
        assert abs(len(plan) - users) < 5 * math.sqrt(users)
        assert plan == sorted(plan)
        assert all(0 <= t < curve.day_seconds for t in plan)

    def test_plan_is_pure_function_of_seed(self):
        """Same seed ⇒ byte-identical arrival instants, regardless of
        crypto backend and of anything else the simulator ran."""
        curve_kwargs = dict(day_seconds=86_400.0, trough=0.25)
        spikes = [FlashCrowd(start=43_200, duration=30, multiplier=400)]

        def plan_under(backend, burn_other_streams):
            with use_backend(backend):
                sim = Simulator(seed=77)
                if burn_other_streams:
                    # Consuming unrelated named streams must not
                    # perturb the dedicated arrivals stream.
                    sim.rng.stream("noise").random()
                    sim.rng.stream("loadgen.sessions").random()
                rng = sim.rng.stream("loadgen.arrivals")
                return plan_arrivals(
                    rng, 2_000, DiurnalCurve(**curve_kwargs), spikes
                )

        reference = plan_under("accel", burn_other_streams=False)
        assert json.dumps(plan_under("pure", False)) == json.dumps(reference)
        assert json.dumps(plan_under("accel", True)) == json.dumps(reference)

    def test_flash_crowd_produces_configured_rate_multiple(self):
        curve = DiurnalCurve()
        spike = FlashCrowd(start=43_000, duration=600, multiplier=10.0)
        users = 60_000
        plan = plan_arrivals(random.Random(3), users, curve, [spike])

        def count(a, b):
            return sum(1 for t in plan if a <= t < b)

        in_spike = count(spike.start, spike.end)
        # Realized spike arrivals track the analytic expectation ...
        expected_spike = expected_arrivals(
            users, curve, [spike], spike.start, spike.end
        )
        assert in_spike == pytest.approx(expected_spike, rel=0.10)
        # ... and the window's rate is the configured multiple of the
        # adjacent baseline (same curve height just before noon).
        before = count(spike.start - 600, spike.start)
        assert in_spike / before == pytest.approx(
            spike.multiplier, rel=0.20
        )

    def test_spike_outside_day_rejected(self):
        curve = DiurnalCurve(day_seconds=1_000)
        with pytest.raises(ValueError):
            plan_arrivals(
                random.Random(1), 100, curve,
                [FlashCrowd(start=2_000, duration=10, multiplier=2)],
            )


class TestZipfSampler:
    def test_documented_frequencies_are_exact_law(self):
        sampler = ZipfSampler(50, exponent=1.1)
        total = sum(sampler.frequency(rank) for rank in range(50))
        assert total == pytest.approx(1.0)
        # Zipf ratio: P(r) / P(2r) = 2^s.
        assert sampler.frequency(0) / sampler.frequency(1) == pytest.approx(
            2 ** 1.1
        )

    def test_empirical_hits_documented_frequencies(self):
        sampler = ZipfSampler(50, exponent=1.1)
        rng = random.Random(11)
        draws = 40_000
        counts = [0] * 50
        for _ in range(draws):
            counts[sampler.sample(rng)] += 1
        for rank in (0, 1, 4):
            assert counts[rank] / draws == pytest.approx(
                sampler.frequency(rank), rel=0.08
            )
        # Skew reaches the tail too: every account can be drawn.
        assert max(counts) == counts[0]

    def test_single_account_population(self):
        sampler = ZipfSampler(1)
        assert sampler.sample(random.Random(5)) == 0
        assert sampler.frequency(0) == pytest.approx(1.0)


class TestSessionMix:
    def test_weights_validated(self):
        with pytest.raises(ValueError):
            SessionMix(one_shot=-1)
        with pytest.raises(ValueError):
            SessionMix(one_shot=0, batch=0, long_lived=0)
        with pytest.raises(ValueError):
            SessionMix(batch_size=(3, 2))

    def test_draw_respects_weights(self):
        mix = SessionMix(one_shot=1.0, batch=0.0, long_lived=0.0)
        rng = random.Random(9)
        assert all(mix.draw_kind(rng) == "one_shot" for _ in range(50))


class TestEngineAccounting:
    def test_day_accounting_balances_and_flows_through_registry(self):
        engine = _engine(users=150, seed=23)
        report = engine.run_day()
        # Every arrival ends in exactly one bucket.
        assert report.arrivals == (
            report.dropped_cap + report.sessions_completed
            + report.sessions_failed + report.sessions_unfinished
        )
        assert report.sessions_completed > 0
        assert report.sessions_unfinished == 0
        # No experiment-private counting: the registry is authoritative.
        counters = engine.simulator.metrics.counters()
        assert counters["loadgen.arrivals"] == report.arrivals
        assert counters["loadgen.dropped_cap"] == report.dropped_cap
        assert counters["loadgen.sessions_completed"] == (
            report.sessions_completed
        )
        assert counters["loadgen.sessions_failed"] == report.sessions_failed
        assert counters["loadgen.retries"] == report.retries
        assert counters["loadgen.relogins"] == report.relogins
        assert counters["loadgen.confirms"] == report.confirms_completed

    def test_admission_cap_drops_are_counted_never_silent(self):
        engine = _engine(
            users=120, seed=31, max_outstanding=1,
            spikes=[FlashCrowd(start=43_200, duration=600, multiplier=60)],
            mix=SessionMix(one_shot=0, batch=0, long_lived=1.0),
        )
        report = engine.run_day()
        assert report.dropped_cap > 0
        counters = engine.simulator.metrics.counters()
        assert counters["loadgen.dropped_cap"] == report.dropped_cap
        assert report.arrivals == (
            report.dropped_cap + report.sessions_completed
            + report.sessions_failed + report.sessions_unfinished
        )

    def test_mixed_sessions_all_shapes_arrive(self):
        engine = _engine(users=200, seed=37)
        report = engine.run_day()
        assert set(report.arrivals_by_kind) == {
            "one_shot", "batch", "long_lived"
        }
        assert all(n > 0 for n in report.arrivals_by_kind.values())
        assert sum(report.arrivals_by_kind.values()) == report.arrivals
        # Batches amortize: more confirmations than completed sessions.
        assert report.confirms_completed > report.sessions_completed


class TestF6Determinism:
    """Satellite: the F6 cell's virtual results are byte-identical
    across runner worker counts and across crypto backends."""

    def test_f6_cell_identical_across_worker_counts(self):
        cell = Cell("f6", ("f6",), f6_open_loop_rows, F6_SMALL)
        serial, _, _ = run_cells([cell], workers=1)
        pooled, _, _ = run_cells([cell], workers=4)
        assert _canonical(serial) == _canonical(pooled)

    @pytest.mark.slow
    def test_f6_cell_identical_across_backends(self):
        with use_backend("accel"):
            accel = f6_open_loop_rows(**F6_SMALL)
        with use_backend("pure"):
            pure = f6_open_loop_rows(**F6_SMALL)
        assert _canonical(accel) == _canonical(pure)


class TestFleetOpenDay:
    def test_open_day_drives_full_platforms(self):
        from repro.bench.fleet import FleetWorld

        fleet = FleetWorld(clients=3, infected=1, seed=404)
        report = fleet.run_open_day(
            arrivals=5,
            spikes=[FlashCrowd(start=43_200, duration=7_200, multiplier=4)],
        )
        assert report.arrivals == report.honest_transactions
        assert report.honest_executed == report.honest_transactions
        assert report.fraud_executed == 0
        assert report.stolen_cents == 0
        assert report.virtual_seconds > 0
