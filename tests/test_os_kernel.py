"""The untrusted OS: hooks, suspension, the Flicker driver, the browser."""

from __future__ import annotations

from typing import Dict

import pytest

from repro.drtm.pal import Pal, PalServices
from repro.drtm.session import FlickerSession
from repro.hardware.keyboard import ScanCode
from repro.net.network import LinkSpec, Network
from repro.net.rpc import RpcEndpoint
from repro.os import Browser, UntrustedOS
from repro.os.kernel import OsSuspendedError


class _EchoPal(Pal):
    name = "echo"

    def run(self, services: PalServices, inputs: Dict[str, bytes]):
        return dict(inputs)


@pytest.fixture
def os_stack(simulator, machine):
    osys = UntrustedOS(simulator, machine, hostname="host-a")
    flicker = FlickerSession(simulator, machine)
    osys.register_flicker(flicker)
    return osys


class TestKeyboardDriver:
    def test_reads_through_hooks(self, os_stack, machine):
        seen = []
        os_stack.input_hooks.append(lambda code: (seen.append(code), code)[1])
        machine.keyboard.press_physical_key(ScanCode.KEY_Y)
        assert os_stack.read_keyboard() == ScanCode.KEY_Y
        assert seen == [ScanCode.KEY_Y]

    def test_hook_can_swallow(self, os_stack, machine):
        os_stack.input_hooks.append(lambda code: None)
        machine.keyboard.press_physical_key(ScanCode.KEY_Y)
        assert os_stack.read_keyboard() is None

    def test_hook_can_replace(self, os_stack, machine):
        os_stack.input_hooks.append(lambda code: ScanCode.KEY_N)
        machine.keyboard.press_physical_key(ScanCode.KEY_Y)
        assert os_stack.read_keyboard() == ScanCode.KEY_N

    def test_empty_fifo(self, os_stack):
        assert os_stack.read_keyboard() is None

    def test_does_not_touch_pal_owned_keyboard(self, os_stack, machine):
        machine.keyboard.claim("pal")
        machine.keyboard.press_physical_key(ScanCode.KEY_Y)
        assert os_stack.read_keyboard() is None  # driver backs off
        assert machine.keyboard.pending == 1  # key still there for the PAL


class TestSuspension:
    def test_services_raise_while_suspended(self, os_stack):
        os_stack.suspend()
        with pytest.raises(OsSuspendedError):
            os_stack.read_keyboard()
        with pytest.raises(OsSuspendedError):
            os_stack.apply_outbound_hooks("dest", {})
        with pytest.raises(OsSuspendedError):
            os_stack.invoke_flicker(_EchoPal(), {})
        os_stack.resume()
        assert os_stack.read_keyboard() is None

    def test_flicker_suspends_os_around_session(self, os_stack):
        observed = []

        class SpyPal(Pal):
            name = "spy"

            def run(self, services, inputs):
                observed.append(os_stack.suspended)
                return {}

        os_stack.invoke_flicker(SpyPal(), {})
        assert observed == [True]
        assert not os_stack.suspended


class TestFlickerGate:
    def test_gate_can_suppress(self, os_stack):
        os_stack.flicker_gate.append(lambda pal, inputs: None)
        assert os_stack.invoke_flicker(_EchoPal(), {"x": b"1"}) is None

    def test_gate_can_substitute(self, os_stack):
        class Impostor(Pal):
            name = "impostor"

            def run(self, services, inputs):
                return {"impostor": b"1"}

        os_stack.flicker_gate.append(lambda pal, inputs: Impostor())
        record = os_stack.invoke_flicker(_EchoPal(), {})
        assert record.outputs == {"impostor": b"1"}

    def test_no_driver_registered(self, simulator, machine):
        osys = UntrustedOS(simulator, machine)
        with pytest.raises(RuntimeError):
            osys.invoke_flicker(_EchoPal(), {})


class TestBrowser:
    def _endpoint(self, simulator, name="svc.example"):
        network = Network(simulator)
        network.attach("host-a", LinkSpec.lan())
        network.attach(name, LinkSpec.lan())
        endpoint = RpcEndpoint(simulator, network, name)
        endpoint.register("ping", lambda request: {"pong": 1, **request})
        endpoint.register(
            "login", lambda request: {"ok": 1, "set_session": b"cookie-123"}
        )
        return endpoint

    def test_call_roundtrip(self, simulator, os_stack):
        endpoint = self._endpoint(simulator)
        browser = Browser(os_stack)
        response = browser.call(endpoint, "ping", {"value": 7})
        assert response["pong"] == 1 and response["value"] == 7

    def test_outbound_hooks_applied(self, simulator, os_stack):
        endpoint = self._endpoint(simulator)
        browser = Browser(os_stack)
        os_stack.outbound_hooks.append(
            lambda dest, message: dict(message, value=999)
        )
        response = browser.call(endpoint, "ping", {"value": 7})
        assert response["value"] == 999

    def test_inbound_hooks_applied(self, simulator, os_stack):
        endpoint = self._endpoint(simulator)
        browser = Browser(os_stack)
        os_stack.inbound_hooks.append(
            lambda source, message: dict(message, injected=1)
        )
        assert browser.call(endpoint, "ping", {})["injected"] == 1

    def test_session_cookie_stored_and_attached(self, simulator, os_stack):
        endpoint = self._endpoint(simulator)
        browser = Browser(os_stack)
        browser.call(endpoint, "login", {})
        assert browser.cookie_for(endpoint.host) == b"cookie-123"
        response = browser.call(endpoint, "ping", {})
        assert response["session"] == b"cookie-123"

    def test_call_charges_time(self, simulator, os_stack):
        endpoint = self._endpoint(simulator)
        browser = Browser(os_stack)
        before = simulator.now
        browser.call(endpoint, "ping", {})
        assert simulator.now > before
