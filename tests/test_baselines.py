"""Baseline schemes: captcha, password, iTAN — mechanics and weaknesses."""

from __future__ import annotations

import pytest

from repro.baselines.captcha import CaptchaFarm, CaptchaService, OcrBot
from repro.baselines.password import PasswordConfirmation
from repro.baselines.tan import TanScheme
from repro.crypto import HmacDrbg, sha1
from repro.sim import Simulator


@pytest.fixture
def captcha_service():
    return CaptchaService(HmacDrbg(b"captcha-tests"), difficulty=0.5)


class TestCaptchaService:
    def test_correct_answer_passes_once(self, captcha_service):
        challenge = captcha_service.issue()
        assert captcha_service.grade(challenge.challenge_id, challenge.answer)
        # Single use: the same challenge cannot be passed twice.
        assert not captcha_service.grade(challenge.challenge_id, challenge.answer)

    def test_wrong_answer_fails(self, captcha_service):
        challenge = captcha_service.issue()
        assert not captcha_service.grade(challenge.challenge_id, "wrong!")

    def test_unknown_challenge_fails(self, captcha_service):
        assert not captcha_service.grade(b"ghost", "anything")

    def test_answers_from_alphabet(self, captcha_service):
        challenge = captcha_service.issue()
        assert len(challenge.answer) == CaptchaService.ANSWER_LENGTH
        assert all(c in CaptchaService.ANSWER_ALPHABET for c in challenge.answer)

    def test_difficulty_validated(self):
        with pytest.raises(ValueError):
            CaptchaService(HmacDrbg(b"x"), difficulty=1.5)

    def test_counters(self, captcha_service):
        challenge = captcha_service.issue()
        captcha_service.grade(challenge.challenge_id, challenge.answer)
        assert captcha_service.issued == 1 and captcha_service.passed == 1


class TestOcrBot:
    def test_solve_rate_calibrated(self):
        sim = Simulator(seed=5)
        service = CaptchaService(HmacDrbg(b"rate"), difficulty=0.0)
        bot = OcrBot(sim.rng.stream("bot"), base_solve_rate=0.4)
        solved = 0
        trials = 600
        for _ in range(trials):
            challenge = service.issue()
            _, answer = bot.solve(challenge)
            if service.grade(challenge.challenge_id, answer):
                solved += 1
        assert solved / trials == pytest.approx(0.4, abs=0.07)

    def test_difficulty_lowers_rate(self):
        sim = Simulator(seed=6)
        bot = OcrBot(sim.rng.stream("bot"), base_solve_rate=0.5)
        assert bot.effective_rate(1.0) == pytest.approx(0.25)
        assert bot.effective_rate(0.0) == pytest.approx(0.5)

    def test_rate_validated(self):
        sim = Simulator(seed=7)
        with pytest.raises(ValueError):
            OcrBot(sim.rng.stream("b"), base_solve_rate=1.5)

    def test_farm_solves_accurately_but_slowly(self):
        sim = Simulator(seed=8)
        service = CaptchaService(HmacDrbg(b"farm"), difficulty=0.9)
        farm = CaptchaFarm(sim.rng.stream("farm"))
        solved = 0
        for _ in range(200):
            challenge = service.issue()
            seconds, answer = farm.solve(challenge)
            assert seconds >= 3.0
            if service.grade(challenge.challenge_id, answer):
                solved += 1
        assert solved / 200 > 0.9  # difficulty does not stop humans
        assert farm.spent_cents == 200


class TestPassword:
    def test_confirm(self):
        gate = PasswordConfirmation()
        gate.enroll("alice", "pw")
        assert gate.confirm("alice", "pw")
        assert not gate.confirm("alice", "wrong")
        assert not gate.confirm("ghost", "pw")

    def test_replayable_forever(self):
        """The structural weakness: a stolen password works N times."""
        gate = PasswordConfirmation()
        gate.enroll("alice", "pw")
        stolen = "pw"
        assert all(gate.confirm("alice", stolen) for _ in range(10))


class TestTan:
    @pytest.fixture
    def scheme(self):
        return TanScheme(HmacDrbg(b"tan-tests"))

    def test_happy_path(self, scheme):
        tan_list = scheme.enroll("alice")
        index = scheme.challenge("alice", tx_digest=sha1(b"tx"))
        assert scheme.confirm("alice", tan_list.code_at(index), sha1(b"tx"))

    def test_wrong_code_rejected(self, scheme):
        scheme.enroll("alice")
        scheme.challenge("alice", tx_digest=sha1(b"tx"))
        assert not scheme.confirm("alice", "999999", sha1(b"tx"))

    def test_codes_single_use(self, scheme):
        tan_list = scheme.enroll("alice")
        index = scheme.challenge("alice", tx_digest=sha1(b"tx"))
        code = tan_list.code_at(index)
        assert scheme.confirm("alice", code, sha1(b"tx"))
        # Force the same index again by marking the rest used: instead,
        # simply verify the used index is recorded.
        assert index in tan_list.used_indices

    def test_no_pending_challenge_rejected(self, scheme):
        scheme.enroll("alice")
        assert not scheme.confirm("alice", "123456", sha1(b"tx"))

    def test_content_not_bound_THE_FLAW(self, scheme):
        """The structural flaw the trusted path fixes: the provider's
        tx_digest can change between challenge and confirm and the TAN
        still verifies."""
        tan_list = scheme.enroll("alice")
        index = scheme.challenge("alice", tx_digest=sha1(b"pay bob 10"))
        altered = sha1(b"pay mule 99999")
        assert scheme.confirm("alice", tan_list.code_at(index), altered)

    def test_fresh_indices_unused(self, scheme):
        tan_list = scheme.enroll("alice")
        seen = set()
        for i in range(30):
            index = scheme.challenge("alice", tx_digest=sha1(b"%d" % i))
            assert index not in tan_list.used_indices
            seen.add(index)
            scheme.confirm("alice", tan_list.code_at(index), sha1(b"%d" % i))
        assert len(seen) == 30


class TestMobileTan:
    @pytest.fixture
    def scheme(self):
        from repro.baselines.tan import MobileTanScheme

        return MobileTanScheme(HmacDrbg(b"mtan-tests"))

    def test_happy_path(self, scheme):
        digest = sha1(b"pay bob 20")
        message = scheme.challenge("alice", digest, "pay bob 20.00")
        assert scheme.confirm("alice", message.code, digest)

    def test_content_IS_bound_unlike_itan(self, scheme):
        """The fix iTAN lacks: a code spent on different content fails."""
        digest = sha1(b"pay bob 20")
        message = scheme.challenge("alice", digest, "pay bob 20.00")
        assert not scheme.confirm("alice", message.code, sha1(b"pay mule 9999"))

    def test_phone_displays_the_real_content(self, scheme):
        """The alteration is visible on the independent device."""
        altered = sha1(b"altered")
        message = scheme.challenge("alice", altered, "transfer 4500.00 to mule")
        assert "mule" in message.display_text

    def test_code_single_use(self, scheme):
        digest = sha1(b"once")
        message = scheme.challenge("alice", digest, "x")
        assert scheme.confirm("alice", message.code, digest)
        assert not scheme.confirm("alice", message.code, digest)

    def test_wrong_code_rejected(self, scheme):
        digest = sha1(b"t")
        scheme.challenge("alice", digest, "x")
        assert not scheme.confirm("alice", "999999", digest)
