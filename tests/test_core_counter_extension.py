"""The anti-rollback monotonic-counter extension."""

from __future__ import annotations

import pytest

from repro.bench.world import TrustedPathWorld, WorldConfig
from repro.core.confirmation_pal import confirmation_digest
from repro.core.protocol import EVIDENCE_QUOTE
from repro.net.rpc import RpcError


@pytest.fixture(scope="module")
def counter_world() -> TrustedPathWorld:
    world = TrustedPathWorld(WorldConfig(seed=2525)).ready()
    world.policy.require_monotonic_counter = True
    world.client.enable_monotonic_counter()
    return world


class TestDigestExtension:
    def test_counter_changes_digest(self):
        base = confirmation_digest(b"t", b"n" * 20, b"accept")
        with_counter = confirmation_digest(b"t", b"n" * 20, b"accept", counter=1)
        assert base != with_counter
        assert with_counter != confirmation_digest(
            b"t", b"n" * 20, b"accept", counter=2
        )

    def test_default_is_base_protocol(self):
        assert confirmation_digest(b"t", b"n" * 20, b"accept") == (
            confirmation_digest(b"t", b"n" * 20, b"accept", counter=-1)
        )


class TestCounterFlow:
    def test_confirmations_carry_increasing_counters(self, counter_world):
        world = counter_world
        values = []
        for index in range(3):
            outcome = world.confirm(
                world.sample_transfer(amount_cents=100 + index, to=f"c{index}")
            )
            assert outcome.executed
            values.append(
                int.from_bytes(outcome.session.outputs["counter"], "big")
            )
        assert values == sorted(values)
        assert len(set(values)) == 3

    def test_quote_variant_also_works(self, counter_world):
        outcome = counter_world.confirm(
            counter_world.sample_transfer(amount_cents=55, to="qc"),
            mode=EVIDENCE_QUOTE,
        )
        assert outcome.executed

    def test_server_tracks_last_counter(self, counter_world):
        record = counter_world.bank.accounts[counter_world.config.account]
        assert record.last_counter > 0

    def test_stale_counter_rejected(self, counter_world):
        """Evidence whose counter does not advance is denied before any
        crypto runs — the rollback gate."""
        world = counter_world
        from repro.core.protocol import build_transaction_request

        response = world.browser.call(
            world.bank.endpoint, "tx.request",
            build_transaction_request(
                world.sample_transfer(amount_cents=77, to="stale")
            ),
        )
        record = world.bank.accounts[world.config.account]
        with pytest.raises(RpcError) as err:
            world.browser.call(
                world.bank.endpoint, "tx.confirm",
                {
                    "tx_id": response["tx_id"],
                    "decision": b"accept",
                    "evidence": "signed",
                    "signature": b"\x00" * 64,
                    "counter": record.last_counter,  # not advanced
                },
            )
        assert "rollback" in str(err.value)

    def test_missing_counter_rejected_when_required(self, counter_world):
        world = counter_world
        from repro.core.protocol import build_transaction_request

        response = world.browser.call(
            world.bank.endpoint, "tx.request",
            build_transaction_request(
                world.sample_transfer(amount_cents=78, to="nc")
            ),
        )
        with pytest.raises(RpcError):
            world.browser.call(
                world.bank.endpoint, "tx.confirm",
                {
                    "tx_id": response["tx_id"],
                    "decision": b"accept",
                    "evidence": "signed",
                    "signature": b"\x00" * 64,
                },
            )

    def test_counter_is_inside_the_signed_digest(self, counter_world):
        """Forging a higher counter on valid evidence breaks the
        signature: the counter is not a free-floating field."""
        world = counter_world
        outcome = world.confirm(
            world.sample_transfer(amount_cents=79, to="forge-counter")
        )
        assert outcome.executed
        # Take the valid evidence, bump the claimed counter, resubmit
        # against a fresh transaction.
        from repro.core.protocol import build_transaction_request

        response = world.browser.call(
            world.bank.endpoint, "tx.request",
            build_transaction_request(
                world.sample_transfer(amount_cents=80, to="forge-counter")
            ),
        )
        claimed = int.from_bytes(outcome.session.outputs["counter"], "big") + 1000
        with pytest.raises(RpcError) as err:
            world.browser.call(
                world.bank.endpoint, "tx.confirm",
                {
                    "tx_id": response["tx_id"],
                    "decision": b"accept",
                    "evidence": "signed",
                    "signature": outcome.session.outputs["signature"],
                    "counter": claimed,
                },
            )
        assert "signature" in str(err.value)


class TestBaseProtocolUnaffected:
    def test_counterless_deployment_still_works(self, fresh_world):
        world = fresh_world(seed=2526)
        world.ready()
        assert world.policy.require_monotonic_counter is False
        outcome = world.confirm(world.sample_transfer(amount_cents=5))
        assert outcome.executed
        assert "counter" not in outcome.session.outputs
