"""Physical memory, regions, DMA engine and the DEV."""

from __future__ import annotations

import pytest

from repro.hardware.dma import DeviceExclusionVector, DmaBlockedError, DmaEngine
from repro.hardware.memory import MemoryAccessError, MemoryRegion, PhysicalMemory


class TestMemoryRegion:
    def test_read_write_roundtrip(self):
        region = MemoryRegion("r", base=0, size=64, owner="os")
        region.write("os", b"hello", offset=10)
        assert region.read("os", offset=10, length=5) == b"hello"

    def test_bounds_checked(self):
        region = MemoryRegion("r", base=0, size=16, owner="os")
        with pytest.raises(MemoryAccessError):
            region.write("os", b"x" * 17)
        with pytest.raises(MemoryAccessError):
            region.read("os", offset=10, length=10)
        with pytest.raises(MemoryAccessError):
            region.read("os", offset=-1, length=1)

    def test_unlocked_region_is_open_to_all(self):
        # Commodity RAM: malware reads anything the OS maps.
        region = MemoryRegion("r", base=0, size=16, owner="os")
        region.write("malware", b"injected")
        assert region.read("malware", length=8) == b"injected"

    def test_locked_region_enforces_owner(self):
        region = MemoryRegion("r", base=0, size=16, owner="os")
        region.lock("pal")
        with pytest.raises(MemoryAccessError):
            region.read("os")
        with pytest.raises(MemoryAccessError):
            region.write("malware", b"x")
        region.write("pal", b"ok")
        assert region.read("pal", length=2) == b"ok"

    def test_unlock_restores_access(self):
        region = MemoryRegion("r", base=0, size=16, owner="os")
        region.lock("pal")
        region.unlock()
        region.write("os", b"fine")

    def test_zero_erases(self):
        region = MemoryRegion("r", base=0, size=8, owner="os")
        region.write("os", b"secret!!")
        region.zero("os")
        assert region.read("os") == b"\x00" * 8

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            MemoryRegion("bad", base=0, size=0, owner="os")
        with pytest.raises(ValueError):
            MemoryRegion("bad", base=-4, size=4, owner="os")


class TestPhysicalMemory:
    def test_allocation_non_overlapping(self):
        memory = PhysicalMemory(total_size=1024)
        a = memory.allocate("a", 100, "os")
        b = memory.allocate("b", 100, "os")
        assert not a.overlaps(b)

    def test_allocation_reuses_freed_space(self):
        memory = PhysicalMemory(total_size=256)
        memory.allocate("a", 200, "os")
        memory.free("a")
        memory.allocate("b", 200, "os")  # must fit again

    def test_exhaustion(self):
        memory = PhysicalMemory(total_size=128)
        memory.allocate("a", 100, "os")
        with pytest.raises(MemoryError):
            memory.allocate("b", 100, "os")

    def test_duplicate_name_rejected(self):
        memory = PhysicalMemory()
        memory.allocate("a", 10, "os")
        with pytest.raises(ValueError):
            memory.allocate("a", 10, "os")

    def test_region_at(self):
        memory = PhysicalMemory()
        region = memory.allocate("a", 100, "os")
        assert memory.region_at(region.base + 50) is region
        assert memory.region_at(region.end) is None

    def test_free_unknown_raises(self):
        with pytest.raises(KeyError):
            PhysicalMemory().free("ghost")


class TestDeviceExclusionVector:
    def test_blocks_overlapping_ranges(self):
        dev = DeviceExclusionVector()
        dev.protect(100, 50)
        assert dev.blocks(100, 1)
        assert dev.blocks(149, 1)
        assert dev.blocks(90, 20)  # straddles the start
        assert not dev.blocks(150, 10)
        assert not dev.blocks(0, 100)

    def test_unprotect_all(self):
        dev = DeviceExclusionVector()
        dev.protect(0, 10)
        dev.unprotect_all()
        assert not dev.blocks(5, 1)

    def test_zero_size_rejected(self):
        with pytest.raises(ValueError):
            DeviceExclusionVector().protect(0, 0)


class TestDmaEngine:
    def _setup(self):
        memory = PhysicalMemory(total_size=1024)
        region = memory.allocate("buf", 256, "os")
        dev = DeviceExclusionVector()
        return memory, region, dev, DmaEngine(memory, dev)

    def test_device_write_bypasses_cpu_locks(self):
        # DMA doesn't go through the CPU: a locked region without DEV
        # protection is still writable by a device — that is exactly why
        # the DEV exists.
        memory, region, dev, dma = self._setup()
        region.lock("pal")
        dma.device_write("nic", region.base, b"dma!")
        assert region.read("pal", length=4) == b"dma!"

    def test_dev_blocks_protected_write(self):
        memory, region, dev, dma = self._setup()
        dev.protect(region.base, region.size)
        with pytest.raises(DmaBlockedError):
            dma.device_write("nic", region.base + 8, b"attack")
        assert dma.transfers_blocked == 1
        assert region.read("os", offset=8, length=6) == b"\x00" * 6

    def test_dev_blocks_protected_read(self):
        memory, region, dev, dma = self._setup()
        region.write("os", b"secret")
        dev.protect(region.base, region.size)
        with pytest.raises(DmaBlockedError):
            dma.device_read("nic", region.base, 6)

    def test_unmapped_address_rejected(self):
        memory, region, dev, dma = self._setup()
        with pytest.raises(ValueError):
            dma.device_write("nic", 0x8000, b"x")

    def test_transfer_counters(self):
        memory, region, dev, dma = self._setup()
        dma.device_write("nic", region.base, b"a")
        assert dma.device_read("nic", region.base, 1) == b"a"
        assert dma.transfers_completed == 1  # reads aren't counted as completed writes
