"""Generator processes: Sleep, WaitFor, SimProcess."""

from __future__ import annotations

import pytest

from repro.sim import Simulator, Sleep, WaitFor
from repro.sim.process import SimProcess


class TestSleep:
    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Sleep(-1)

    def test_sleep_object_equivalent_to_float(self):
        sim = Simulator()
        times = []

        def process():
            yield Sleep(0.5)
            times.append(sim.now)
            yield 0.5
            times.append(sim.now)

        sim.spawn(process())
        sim.run()
        assert times == [0.5, 1.0]


class TestWaitFor:
    def test_waits_until_condition(self):
        sim = Simulator()
        flag = {"ready": False}
        outcomes = []

        def waiter():
            result = yield WaitFor(lambda: flag["ready"], poll_period=0.1)
            outcomes.append((result, sim.now))

        sim.spawn(waiter())
        sim.schedule(0.35, lambda: flag.update(ready=True))
        sim.run()
        assert outcomes[0][0] is True
        assert outcomes[0][1] == pytest.approx(0.4, abs=0.01)

    def test_timeout_returns_false(self):
        sim = Simulator()
        outcomes = []

        def waiter():
            result = yield WaitFor(lambda: False, poll_period=0.1, timeout=0.5)
            outcomes.append(result)

        sim.spawn(waiter())
        sim.run()
        assert outcomes == [False]

    def test_bad_poll_period(self):
        with pytest.raises(ValueError):
            WaitFor(lambda: True, poll_period=0)


class TestSimProcess:
    def test_result_captured(self):
        sim = Simulator()

        class Worker(SimProcess):
            def body(self):
                yield 1.0
                yield 2.0
                return "done at %.1f" % self.simulator.now

        worker = Worker(sim).start()
        sim.run()
        assert worker.done
        assert worker.result == "done at 3.0"

    def test_concurrent_processes_interleave(self):
        sim = Simulator()
        log = []

        class Ticker(SimProcess):
            def __init__(self, simulator, name, period):
                super().__init__(simulator, label=name)
                self.period = period

            def body(self):
                for _ in range(3):
                    yield self.period
                    log.append((self.label, round(self.simulator.now, 3)))

        Ticker(sim, "fast", 0.1).start()
        Ticker(sim, "slow", 0.25).start()
        sim.run()
        assert ("fast", 0.1) in log and ("slow", 0.25) in log
        times = [t for _name, t in log]
        assert times == sorted(times)

    def test_unsupported_yield_raises(self):
        sim = Simulator()

        def bad():
            yield "nonsense"

        sim.spawn(bad())
        from repro.sim import SimulationError

        with pytest.raises(SimulationError):
            sim.run()
