"""Key objects, private-parameter serialization, and wrapping."""

from __future__ import annotations

import pytest

from repro.crypto import HmacDrbg
from repro.crypto.stream import AuthenticationError
from repro.tpm.keys import (
    KeyUsage,
    TpmKey,
    deserialize_private,
    serialize_private,
    unwrap_key,
    wrap_key,
)


@pytest.fixture(scope="module")
def drbg():
    return HmacDrbg(b"keys-tests")


@pytest.fixture(scope="module")
def storage_key(drbg):
    return TpmKey.generate(KeyUsage.STORAGE, drbg, 512)


@pytest.fixture(scope="module")
def signing_key(drbg):
    return TpmKey.generate(KeyUsage.SIGNING, drbg, 512)


class TestGeneration:
    def test_storage_keys_get_wrap_secret(self, storage_key, signing_key):
        assert storage_key.wrap_secret is not None
        assert signing_key.wrap_secret is None

    def test_fingerprints_distinct(self, storage_key, signing_key):
        assert storage_key.fingerprint() != signing_key.fingerprint()


class TestSerialization:
    def test_roundtrip_preserves_everything(self, signing_key):
        restored = deserialize_private(serialize_private(signing_key))
        assert restored.usage is signing_key.usage
        assert restored.keypair == signing_key.keypair
        assert restored.wrap_secret == signing_key.wrap_secret

    def test_roundtrip_storage_key(self, storage_key):
        restored = deserialize_private(serialize_private(storage_key))
        assert restored.wrap_secret == storage_key.wrap_secret

    def test_restored_key_signs_identically(self, signing_key):
        from repro.crypto import pkcs1_sign, sha1

        restored = deserialize_private(serialize_private(signing_key))
        digest = sha1(b"same message")
        assert pkcs1_sign(restored.keypair, digest, prehashed=True) == pkcs1_sign(
            signing_key.keypair, digest, prehashed=True
        )

    def test_malformed_blob_rejected(self):
        with pytest.raises(ValueError):
            deserialize_private(b"\x00\x00\x00\x04abcd")


class TestWrapping:
    def test_wrap_unwrap_roundtrip(self, drbg, storage_key, signing_key):
        wrapped = wrap_key(storage_key, signing_key, drbg.generate(16))
        restored = unwrap_key(storage_key, wrapped)
        assert restored.keypair == signing_key.keypair

    def test_wrapped_blob_hides_private_half(self, drbg, storage_key, signing_key):
        wrapped = wrap_key(storage_key, signing_key, drbg.generate(16))
        d_bytes = signing_key.keypair.d.to_bytes(
            (signing_key.keypair.d.bit_length() + 7) // 8, "big"
        )
        assert d_bytes not in wrapped

    def test_wrong_parent_cannot_unwrap(self, drbg, storage_key, signing_key):
        other_parent = TpmKey.generate(KeyUsage.STORAGE, drbg, 512)
        wrapped = wrap_key(storage_key, signing_key, drbg.generate(16))
        with pytest.raises(AuthenticationError):
            unwrap_key(other_parent, wrapped)

    def test_non_storage_parent_refused(self, drbg, storage_key, signing_key):
        with pytest.raises(ValueError):
            wrap_key(signing_key, storage_key, drbg.generate(16))
        with pytest.raises(ValueError):
            unwrap_key(signing_key, b"blob")
