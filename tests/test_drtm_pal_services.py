"""PalServices: the capability surface handed to running PALs."""

from __future__ import annotations

from typing import Dict

import pytest

from repro.crypto.sha1 import sha1
from repro.drtm.pal import Pal, PalServices
from repro.drtm.session import FlickerSession
from repro.hardware.display import ROWS
from repro.tpm.constants import PCR_DRTM_DATA


class _ProbePal(Pal):
    """Runs a caller-supplied body with the live services object."""

    name = "probe"

    def __init__(self, body):
        self._body = body

    def config_bytes(self) -> bytes:
        return b"probe"

    def run(self, services: PalServices, inputs: Dict[str, bytes]):
        return self._body(services) or {}


@pytest.fixture
def run_pal(simulator, machine):
    session = FlickerSession(simulator, machine)

    def run(body):
        record = session.run(_ProbePal(body), {})
        assert not record.aborted, record.abort_reason
        return record

    return run


class TestTpmAccess:
    def test_pal_runs_at_locality_2(self, run_pal, machine):
        """The PAL can extend dynamic PCRs — locality 0 cannot."""

        def body(services):
            services.tpm(
                "extend", pcr_index=PCR_DRTM_DATA, measurement=sha1(b"data")
            )

        run_pal(body)

    def test_tpm_time_accounted(self, run_pal):
        record = run_pal(lambda services: services.tpm("get_random", num_bytes=8)
                         and None)
        assert record.breakdown["pal_tpm"] >= 0

    def test_random_bytes(self, run_pal):
        collected = {}

        def body(services):
            collected["bytes"] = services.random_bytes(16)

        run_pal(body)
        assert len(collected["bytes"]) == 16


class TestExtendData:
    def test_extend_data_hashes_and_logs(self, run_pal, machine):
        collected = {}

        def body(services):
            services.extend_data(b"payload-one")
            services.extend_data(b"payload-two")
            collected["outputs"] = services.extended_outputs

        run_pal(body)
        assert collected["outputs"] == [sha1(b"payload-one"), sha1(b"payload-two")]


class TestChargeLogic:
    def test_charges_clock_and_breakdown(self, simulator, machine):
        session = FlickerSession(simulator, machine)
        record = session.run(
            _ProbePal(lambda services: services.charge_logic(0.25)), {}
        )
        assert record.breakdown["pal_logic"] == pytest.approx(0.25)


class TestShowPagination:
    def test_short_content_single_frame(self, run_pal, machine):
        frames_before = len(machine.display.frames)
        run_pal(lambda services: services.show(["one", "two"]))
        pal_frames = [
            owner for owner, _ in machine.display.frames[frames_before:]
            if owner == "pal"
        ]
        assert len(pal_frames) == 1

    def test_long_content_paginates_with_markers(self, run_pal, machine):
        frames_before = len(machine.display.frames)
        lines = [f"line-{i}" for i in range(ROWS * 2)]
        run_pal(lambda services: services.show(lines))
        pal_frames = [
            snapshot
            for owner, snapshot in machine.display.frames[frames_before:]
            if owner == "pal"
        ]
        assert len(pal_frames) >= 2
        assert "continues" in pal_frames[0]
        assert "continues" not in pal_frames[-1]
        # Every line appears on some page.
        combined = "\n".join(pal_frames)
        assert all(line in combined for line in lines)
