"""Machine composition, SRTM boot, and chipset locality gating."""

from __future__ import annotations

import pytest

from repro.crypto.sha1 import sha1
from repro.hardware.cpu import HardwareError
from repro.hardware.machine import Machine, MachineConfig, build_machine
from repro.sim import Simulator
from repro.tpm.device import TpmDevice
from repro.tpm.timing import instant_profile


def _machine(simulator, config=None):
    tpm = TpmDevice(simulator.clock, instant_profile(), seed=7)
    machine = Machine(tpm, config=config)
    machine.power_on()
    return machine


class TestBoot:
    def test_srtm_measures_firmware_into_static_pcrs(self, simulator):
        machine = _machine(simulator)
        # PCR 0 must hold extend(0, SHA1(bios image)).
        bios_measurement = sha1(machine.config.firmware["bios"])
        assert machine.tpm.pcrs.read(0) == sha1(b"\x00" * 20 + bios_measurement)
        assert machine.tpm.pcrs.read(2) != b"\x00" * 20
        assert machine.tpm.pcrs.read(4) != b"\x00" * 20

    def test_different_firmware_different_pcr0(self, simulator):
        default = _machine(simulator)
        sim_b = Simulator(seed=2)
        modified = _machine(
            sim_b,
            config=MachineConfig(
                firmware={
                    "bios": b"evil-bios",
                    "option_roms": b"repro-oprom-bundle",
                    "bootloader": b"repro-grub-0.97",
                }
            ),
        )
        assert default.tpm.pcrs.read(0) != modified.tpm.pcrs.read(0)

    def test_double_power_on_rejected(self, simulator):
        machine = _machine(simulator)
        with pytest.raises(RuntimeError):
            machine.power_on()

    def test_unknown_firmware_component_rejected(self, simulator):
        tpm = TpmDevice(simulator.clock, instant_profile(), seed=8)
        machine = Machine(
            tpm, config=MachineConfig(firmware={"gpu_vbios": b"img"})
        )
        with pytest.raises(ValueError):
            machine.power_on()

    def test_build_machine_helper(self):
        simulator = Simulator(seed=5)
        machine = build_machine(simulator, vendor="atmel")
        assert machine.powered_on
        assert machine.tpm.profile.vendor == "atmel"


class TestChipsetLocalityGate:
    def test_commands_need_valid_token(self, simulator):
        machine = _machine(simulator)
        with pytest.raises(HardwareError):
            machine.chipset.tpm_command(None, "pcr_read", pcr_index=0)

    def test_integer_is_not_a_token(self, simulator):
        """Software cannot spoof a locality by passing a number."""
        machine = _machine(simulator)
        with pytest.raises(HardwareError):
            machine.chipset.tpm_command(4, "pcr_reset", pcr_index=17)

    def test_revoked_token_rejected(self, simulator):
        machine = _machine(simulator)
        token = machine.cpu.enter_late_launch()
        machine.cpu.exit_late_launch()  # revokes it
        with pytest.raises(HardwareError):
            machine.chipset.tpm_command(token, "pcr_reset", pcr_index=17)

    def test_os_convenience_runs_at_locality_0(self, simulator):
        machine = _machine(simulator)
        from repro.tpm import TpmError

        with pytest.raises(TpmError):
            machine.chipset.tpm_command_as_os(
                "extend", pcr_index=17, measurement=sha1(b"x")
            )


class TestTimingProfiles:
    def test_all_vendors_defined(self):
        from repro.tpm.timing import VENDOR_PROFILES, vendor_profile

        assert set(VENDOR_PROFILES) == {"infineon", "broadcom", "atmel", "stmicro"}
        assert vendor_profile("INFINEON").vendor == "infineon"
        with pytest.raises(KeyError):
            vendor_profile("acme")

    def test_profile_ordering_quote(self):
        from repro.tpm.timing import VENDOR_PROFILES

        means = {
            vendor: profile.mean_latency("quote")
            for vendor, profile in VENDOR_PROFILES.items()
        }
        assert means["infineon"] < means["stmicro"] < means["atmel"] < means["broadcom"]

    def test_unknown_command_uses_default(self):
        from repro.tpm.timing import vendor_profile
        import random

        profile = vendor_profile("infineon")
        latency = profile.latency_for("exotic_command", random.Random(0))
        assert 0 < latency < 0.01
