"""Unit tests for the discrete-event simulation kernel (S1)."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.sim import (
    ConstantLatency,
    EmpiricalLatency,
    NormalLatency,
    SeededRng,
    Simulator,
    SimulationError,
    Sleep,
    UniformLatency,
)
from repro.sim.clock import ClockError, VirtualClock
from repro.sim.events import EventQueue
from repro.sim.latency import scaled


class TestVirtualClock:
    def test_starts_at_zero(self):
        assert VirtualClock().now == 0.0

    def test_advance_accumulates(self):
        clock = VirtualClock()
        clock.advance(1.5)
        clock.advance(0.25)
        assert clock.now == pytest.approx(1.75)

    def test_advance_rejects_negative(self):
        with pytest.raises(ClockError):
            VirtualClock().advance(-0.1)

    def test_advance_to_rejects_past(self):
        clock = VirtualClock(start=5.0)
        with pytest.raises(ClockError):
            clock.advance_to(4.9)

    def test_negative_start_rejected(self):
        with pytest.raises(ClockError):
            VirtualClock(start=-1.0)


class TestEventQueue:
    def test_orders_by_time(self):
        queue = EventQueue()
        queue.push(2.0, lambda: None, "b")
        queue.push(1.0, lambda: None, "a")
        assert queue.pop().label == "a"
        assert queue.pop().label == "b"

    def test_same_time_fifo(self):
        queue = EventQueue()
        for name in "abc":
            queue.push(1.0, lambda: None, name)
        assert [queue.pop().label for _ in range(3)] == ["a", "b", "c"]

    def test_cancelled_events_skipped(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: None, "cancel-me")
        queue.push(2.0, lambda: None, "keep")
        event.cancel()
        assert queue.pop().label == "keep"
        assert queue.pop() is None

    def test_len_ignores_cancelled(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        event.cancel()
        assert len(queue) == 1

    def test_peek_time(self):
        queue = EventQueue()
        assert queue.peek_time() is None
        queue.push(3.0, lambda: None)
        assert queue.peek_time() == 3.0


class TestSimulator:
    def test_dispatch_advances_clock(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.0, lambda: seen.append(sim.now))
        sim.schedule(0.5, lambda: seen.append(sim.now))
        dispatched = sim.run()
        assert dispatched == 2
        assert seen == [0.5, 1.0]

    def test_run_until_stops_before_future_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(5.0, lambda: fired.append("late"))
        sim.run(until=2.0)
        assert fired == []
        assert sim.now == 2.0
        sim.run()
        assert fired == ["late"]

    def test_schedule_in_past_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda: None)
        sim.clock.advance(2.0)
        with pytest.raises(SimulationError):
            sim.schedule_at(1.0, lambda: None)

    def test_events_scheduled_during_run_execute(self):
        sim = Simulator()
        order = []

        def first():
            order.append("first")
            sim.schedule(0.5, lambda: order.append("nested"))

        sim.schedule(1.0, first)
        sim.run()
        assert order == ["first", "nested"]

    def test_max_events_guard(self):
        sim = Simulator()

        def loop():
            sim.schedule(0.0, loop)

        sim.schedule(0.0, loop)
        with pytest.raises(SimulationError):
            sim.run(max_events=100)

    def test_run_for(self):
        sim = Simulator()
        sim.clock.advance(1.0)
        sim.schedule(0.5, lambda: None)
        sim.schedule(10.0, lambda: None)
        sim.run_for(1.0)
        assert sim.now == 2.0

    def test_spawn_process_with_sleeps(self):
        sim = Simulator()
        trace = []

        def process():
            trace.append(sim.now)
            yield 1.0
            trace.append(sim.now)
            yield Sleep(2.0)
            trace.append(sim.now)

        sim.spawn(process())
        sim.run()
        assert trace == [0.0, 1.0, 3.0]

    def test_determinism_same_seed(self):
        def run(seed):
            sim = Simulator(seed=seed)
            values = []
            rng = sim.rng.stream("x")
            for delay in (rng.random() for _ in range(5)):
                sim.schedule(delay, lambda d=delay: values.append((sim.now, d)))
            sim.run()
            return values

        assert run(99) == run(99)
        assert run(99) != run(100)


class TestSeededRng:
    def test_streams_are_independent(self):
        rng = SeededRng(1)
        a_first = rng.stream("a").random()
        b_first = rng.stream("b").random()
        rng2 = SeededRng(1)
        # Drawing from b before a must not change a's sequence.
        rng2.stream("b").random()
        assert rng2.stream("a").random() == a_first
        assert a_first != b_first

    def test_derive_seed_stable(self):
        assert SeededRng(5).derive_seed("tpm") == SeededRng(5).derive_seed("tpm")
        assert SeededRng(5).derive_seed("tpm") != SeededRng(6).derive_seed("tpm")


class TestLatencyModels:
    def test_constant(self, simulator):
        model = ConstantLatency(0.25)
        assert model.sample(simulator.rng.stream("t")) == 0.25
        assert model.mean() == 0.25

    def test_constant_rejects_negative(self):
        with pytest.raises(ValueError):
            ConstantLatency(-1)

    def test_uniform_bounds(self, simulator):
        model = UniformLatency(0.1, 0.2)
        rng = simulator.rng.stream("u")
        samples = [model.sample(rng) for _ in range(200)]
        assert all(0.1 <= s <= 0.2 for s in samples)
        assert model.mean() == pytest.approx(0.15)

    def test_normal_never_negative(self, simulator):
        model = NormalLatency(mu=0.001, sigma=0.01)
        rng = simulator.rng.stream("n")
        assert all(model.sample(rng) >= 0 for _ in range(500))

    def test_empirical_quantiles(self):
        model = EmpiricalLatency([1.0, 2.0, 3.0, 4.0])
        assert model.quantile(0.0) == 1.0
        assert model.quantile(1.0) == 4.0
        assert model.quantile(0.5) == pytest.approx(2.5)
        assert model.mean() == pytest.approx(2.5)

    def test_empirical_rejects_empty_and_negative(self):
        with pytest.raises(ValueError):
            EmpiricalLatency([])
        with pytest.raises(ValueError):
            EmpiricalLatency([1.0, -0.5])

    def test_scaled(self, simulator):
        model = scaled(ConstantLatency(0.2), 3.0)
        assert model.sample(simulator.rng.stream("s")) == pytest.approx(0.6)
        assert model.mean() == pytest.approx(0.6)

    @given(st.lists(st.floats(min_value=0, max_value=1e3), min_size=1, max_size=50))
    def test_empirical_samples_within_range(self, observations):
        import random

        model = EmpiricalLatency(observations)
        rng = random.Random(0)
        low, high = min(observations), max(observations)
        slack = 1e-9 * max(high, 1.0)  # float interpolation fuzz
        for _ in range(20):
            assert low - slack <= model.sample(rng) <= high + slack


class TestMetrics:
    def test_counter(self, simulator):
        counter = simulator.metrics.counter("c")
        counter.increment()
        counter.increment(4)
        assert counter.value == 5
        with pytest.raises(ValueError):
            counter.increment(-1)

    def test_histogram_summary(self, simulator):
        histogram = simulator.metrics.histogram("h")
        histogram.observe_many([1, 2, 3, 4, 5])
        summary = histogram.summary()
        assert summary["count"] == 5
        assert summary["mean"] == pytest.approx(3.0)
        assert summary["p50"] == pytest.approx(3.0)
        assert summary["min"] == 1 and summary["max"] == 5

    def test_histogram_empty_raises(self, simulator):
        with pytest.raises(ValueError):
            simulator.metrics.histogram("empty").mean()

    def test_timer_measures_virtual_time(self, simulator):
        timer = simulator.metrics.timer("t")
        with timer:
            simulator.clock.advance(0.7)
        assert timer.histogram.values[0] == pytest.approx(0.7)

    def test_timer_misuse(self, simulator):
        timer = simulator.metrics.timer("t2")
        with pytest.raises(RuntimeError):
            timer.stop()
        timer.start()
        with pytest.raises(RuntimeError):
            timer.start()

    def test_snapshot_includes_everything(self, simulator):
        simulator.metrics.counter("a").increment()
        simulator.metrics.histogram("b").observe(1.0)
        snapshot = simulator.metrics.snapshot()
        assert "counter:a" in snapshot and "b" in snapshot

    @given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=2, max_size=100))
    def test_histogram_quantiles_monotone(self, values):
        from repro.sim.metrics import Histogram

        histogram = Histogram("prop")
        histogram.observe_many(values)
        quantiles = [histogram.quantile(q / 10) for q in range(11)]
        slack = 1e-9 * max(abs(q) for q in quantiles) + 1e-12
        for earlier, later in zip(quantiles, quantiles[1:]):
            assert later >= earlier - slack
