"""RSAES-OAEP."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto import HmacDrbg, generate_rsa_keypair
from repro.crypto.oaep import OaepError, mgf1, oaep_decrypt, oaep_encrypt


@pytest.fixture(scope="module")
def keypair():
    return generate_rsa_keypair(512, HmacDrbg(b"oaep-key"))


@pytest.fixture(scope="module")
def other_keypair():
    return generate_rsa_keypair(512, HmacDrbg(b"oaep-other"))


class TestMgf1:
    def test_deterministic_and_length_exact(self):
        assert mgf1(b"seed", 10) == mgf1(b"seed", 10)
        assert len(mgf1(b"seed", 100)) == 100
        assert mgf1(b"seed", 100)[:10] == mgf1(b"seed", 10)

    def test_seed_sensitivity(self):
        assert mgf1(b"a", 20) != mgf1(b"b", 20)


class TestOaep:
    def test_roundtrip(self, keypair):
        ciphertext = oaep_encrypt(keypair.public, b"secret", HmacDrbg(b"r"))
        assert oaep_decrypt(keypair, ciphertext) == b"secret"

    def test_empty_message(self, keypair):
        ciphertext = oaep_encrypt(keypair.public, b"", HmacDrbg(b"r"))
        assert oaep_decrypt(keypair, ciphertext) == b""

    def test_randomized_encryption(self, keypair):
        drbg = HmacDrbg(b"r")
        a = oaep_encrypt(keypair.public, b"same", drbg)
        b = oaep_encrypt(keypair.public, b"same", drbg)
        assert a != b  # fresh seed per encryption
        assert oaep_decrypt(keypair, a) == oaep_decrypt(keypair, b) == b"same"

    def test_label_binding(self, keypair):
        ciphertext = oaep_encrypt(
            keypair.public, b"m", HmacDrbg(b"r"), label=b"TCPA"
        )
        with pytest.raises(OaepError):
            oaep_decrypt(keypair, ciphertext, label=b"OTHER")

    def test_wrong_key_fails(self, keypair, other_keypair):
        ciphertext = oaep_encrypt(keypair.public, b"m", HmacDrbg(b"r"))
        with pytest.raises(OaepError):
            oaep_decrypt(other_keypair, ciphertext)

    def test_tampering_fails_uniformly(self, keypair):
        ciphertext = bytearray(
            oaep_encrypt(keypair.public, b"message", HmacDrbg(b"r"))
        )
        messages = set()
        for position in (0, len(ciphertext) // 2, len(ciphertext) - 1):
            tampered = bytearray(ciphertext)
            tampered[position] ^= 0x01
            with pytest.raises(OaepError) as err:
                oaep_decrypt(keypair, bytes(tampered))
            messages.add(str(err.value))
        # Manger countermeasure: one indistinguishable error message.
        assert messages == {"decryption error"}

    def test_too_long_rejected(self, keypair):
        limit = keypair.byte_length - 2 * 20 - 2
        with pytest.raises(ValueError):
            oaep_encrypt(keypair.public, b"x" * (limit + 1), HmacDrbg(b"r"))

    def test_max_length_ok(self, keypair):
        limit = keypair.byte_length - 2 * 20 - 2
        message = b"y" * limit
        ciphertext = oaep_encrypt(keypair.public, message, HmacDrbg(b"r"))
        assert oaep_decrypt(keypair, ciphertext) == message

    @given(st.binary(max_size=22))
    @settings(max_examples=20, deadline=None)
    def test_property_roundtrip(self, keypair, message):
        ciphertext = oaep_encrypt(keypair.public, message, HmacDrbg(b"seed"))
        assert oaep_decrypt(keypair, ciphertext) == message
