"""The batch-confirmation extension: one session, N transactions."""

from __future__ import annotations

import pytest

from repro.bench.world import TrustedPathWorld, WorldConfig
from repro.net.rpc import RpcError
from repro.server.provider import TxStatus


@pytest.fixture(scope="module")
def world() -> TrustedPathWorld:
    return TrustedPathWorld(WorldConfig(seed=9090)).ready()


def _batch(world, count, prefix="batch", amount=100):
    return [
        world.sample_transfer(amount_cents=amount + i, to=f"{prefix}-{i}")
        for i in range(count)
    ]


class TestBatchHappyPath:
    def test_all_members_execute(self, world):
        transactions = _batch(world, 4, prefix="bh")
        world.human.intend_batch(transactions)
        outcome = world.client.confirm_batch(world.bank.endpoint, transactions)
        assert outcome.executed
        for index in range(4):
            assert world.bank.balance_of(f"bh-{index}") == 100 + index

    def test_one_session_covers_the_batch(self, world):
        sessions_before = world.flicker.sessions_run
        transactions = _batch(world, 5, prefix="bs")
        world.human.intend_batch(transactions)
        world.client.confirm_batch(world.bank.endpoint, transactions)
        assert world.flicker.sessions_run == sessions_before + 1

    def test_quote_variant_batches_too(self, world):
        transactions = _batch(world, 2, prefix="bq")
        world.human.intend_batch(transactions)
        outcome = world.client.confirm_batch(
            world.bank.endpoint, transactions, mode="quote"
        )
        assert outcome.executed

    def test_pagination_reaches_the_human(self, world):
        """A 6-transaction batch spans multiple display pages; the
        attentive user still sees every line and accepts."""
        transactions = _batch(world, 6, prefix="bp")
        world.human.intend_batch(transactions)
        outcome = world.client.confirm_batch(world.bank.endpoint, transactions)
        assert outcome.executed
        # The session really produced multiple PAL frames.
        pal_frames = [o for o, _s in world.machine.display.frames if o == "pal"]
        assert len(pal_frames) >= 2


class TestBatchRejection:
    def test_unintended_member_rejects_whole_batch(self, world):
        transactions = _batch(world, 3, prefix="br")
        # The user intended only the first two: the third is malware's.
        world.human.intend_batch(transactions[:2])
        outcome = world.client.confirm_batch(world.bank.endpoint, transactions)
        assert outcome.decision == b"reject"
        for index in range(3):
            assert world.bank.balance_of(f"br-{index}") == 0

    def test_all_or_nothing_on_denial(self, world):
        """Forged evidence denies every member, none executes."""
        from repro.core.protocol import build_transaction_request
        from repro.net.messages import encode_message

        transactions = _batch(world, 3, prefix="bd")
        encoded = [
            encode_message(build_transaction_request(t)) for t in transactions
        ]
        response = world.browser.call(
            world.bank.endpoint, "tx.request_batch", {"transactions": encoded}
        )
        with pytest.raises(RpcError):
            world.browser.call(
                world.bank.endpoint, "tx.confirm_batch",
                {
                    "tx_id": response["tx_id"],
                    "decision": b"accept",
                    "evidence": "signed",
                    "signature": b"\x00" * 64,
                },
            )
        batch = world.bank.batches[response["tx_id"]]
        assert batch.status is TxStatus.DENIED
        for tx_id in batch.tx_ids:
            assert world.bank.transactions[tx_id].status is TxStatus.DENIED

    def test_nonce_single_use_across_batch(self, world):
        """Parity with the single-transaction confirm: resubmitting the
        *same* evidence replays the stored outcome idempotently (never a
        second execution), while *different* evidence against the
        settled batch stays an error."""
        transactions = _batch(world, 2, prefix="bn", amount=50)
        world.human.intend_batch(transactions)
        outcome = world.client.confirm_batch(world.bank.endpoint, transactions)
        assert outcome.executed
        batch_id = list(world.bank.batches.keys())[-1]
        balances = [world.bank.balance_of(f"bn-{i}") for i in range(2)]
        duplicates_before = world.bank.duplicate_confirms
        replayed = world.browser.call(
            world.bank.endpoint, "tx.confirm_batch",
            {
                "tx_id": batch_id,
                "decision": b"accept",
                "evidence": "signed",
                "signature": outcome.session.outputs["signature"],
            },
        )
        assert replayed["status"] == "executed"
        assert world.bank.duplicate_confirms == duplicates_before + 1
        # No member executed a second time.
        assert [world.bank.balance_of(f"bn-{i}") for i in range(2)] == balances
        # Different evidence stays a hard error — and never earns a
        # re-challenge: the consumed nonce is the replay defense.
        with pytest.raises(RpcError) as err:
            world.browser.call(
                world.bank.endpoint, "tx.confirm_batch",
                {
                    "tx_id": batch_id,
                    "decision": b"accept",
                    "evidence": "signed",
                    "signature": b"not-the-original-evidence",
                },
            )
        assert "already" in str(err.value)
        assert not err.value.rechallenge_required


class TestBatchRechallengeRecovery:
    """PR-2 recovery semantics now cover the batch path too."""

    def test_expired_nonce_recovers_via_rechallenge(self, world):
        """The batch challenge nonce ages out mid-session; the provider
        answers with the recoverable re-challenge hint; the client runs
        a fresh PAL session against the reissued nonce and every member
        still executes exactly once."""
        transactions = _batch(world, 3, prefix="brc", amount=70)
        world.human.intend_batch(transactions)
        nonces = world.bank.nonces
        original_issue = nonces.issue
        first_nonce = {}

        def expire_first_issue(tx_id, now):
            nonce = original_issue(tx_id, now)
            nonces._records[nonce].expires_at = now
            first_nonce["value"] = nonce
            nonces.issue = original_issue
            return nonce

        nonces.issue = expire_first_issue
        required_before = world.bank.rechallenges_required
        issued_before = world.bank.rechallenges_issued
        client_rechallenges_before = world.client.rechallenges
        outcome = world.client.confirm_batch(world.bank.endpoint, transactions)
        assert outcome.executed
        for index in range(3):
            assert world.bank.balance_of(f"brc-{index}") == 70 + index
        assert world.bank.rechallenges_required == required_before + 1
        assert world.bank.rechallenges_issued == issued_before + 1
        assert world.client.rechallenges == client_rechallenges_before + 1
        # The dead challenge was invalidated when the new one was minted.
        from repro.server.noncedb import NonceState

        assert (
            nonces.state_of(first_nonce["value"], now=world.simulator.now)
            is NonceState.UNKNOWN
        )


class TestBatchCounterExtension:
    """The monotonic-counter policy now gates the batch path too."""

    @pytest.fixture(scope="class")
    def counter_world(self) -> TrustedPathWorld:
        world = TrustedPathWorld(WorldConfig(seed=6161)).ready()
        world.policy.require_monotonic_counter = True
        world.client.enable_monotonic_counter()
        return world

    def test_batch_confirm_carries_an_increasing_counter(self, counter_world):
        world = counter_world
        transactions = [
            world.sample_transfer(amount_cents=100 + i, to=f"bc-{i}")
            for i in range(2)
        ]
        world.human.intend_batch(transactions)
        outcome = world.client.confirm_batch(world.bank.endpoint, transactions)
        assert outcome.executed
        record = world.bank.accounts[world.config.account]
        assert record.last_counter > 0
        assert int.from_bytes(
            outcome.session.outputs["counter"], "big"
        ) == record.last_counter

    def test_stale_counter_denied_before_any_crypto(self, counter_world):
        world = counter_world
        from repro.core.protocol import build_transaction_request
        from repro.net.messages import encode_message

        encoded = [
            encode_message(
                build_transaction_request(
                    world.sample_transfer(amount_cents=33, to="bc-stale")
                )
            )
        ]
        challenge = world.browser.call(
            world.bank.endpoint, "tx.request_batch", {"transactions": encoded}
        )
        record = world.bank.accounts[world.config.account]
        with pytest.raises(RpcError, match="rollback"):
            world.browser.call(
                world.bank.endpoint, "tx.confirm_batch",
                {
                    "tx_id": challenge["tx_id"],
                    "decision": b"accept",
                    "evidence": "signed",
                    "signature": b"\x09" * 64,
                    "counter": record.last_counter,  # does not advance
                },
            )
        batch = world.bank.batches[challenge["tx_id"]]
        assert batch.status.value == "denied"


class TestBatchValidation:
    def test_empty_batch_rejected(self, world):
        with pytest.raises(RpcError):
            world.browser.call(
                world.bank.endpoint, "tx.request_batch", {"transactions": []}
            )

    def test_oversized_batch_rejected(self, world):
        from repro.core.protocol import build_transaction_request
        from repro.net.messages import encode_message

        encoded = [
            encode_message(
                build_transaction_request(world.sample_transfer(amount_cents=1))
            )
        ] * 17
        with pytest.raises(RpcError):
            world.browser.call(
                world.bank.endpoint, "tx.request_batch", {"transactions": encoded}
            )

    def test_invalid_member_rejects_request(self, world):
        from repro.core.protocol import build_transaction_request
        from repro.net.messages import encode_message
        from repro.core import Transaction

        bad = Transaction(
            "transfer", world.config.account, {"to": "x", "amount": -1}
        )
        encoded = [encode_message(build_transaction_request(bad))]
        with pytest.raises(RpcError):
            world.browser.call(
                world.bank.endpoint, "tx.request_batch", {"transactions": encoded}
            )
