"""The batch-confirmation extension: one session, N transactions."""

from __future__ import annotations

import pytest

from repro.bench.world import TrustedPathWorld, WorldConfig
from repro.net.rpc import RpcError
from repro.server.provider import TxStatus


@pytest.fixture(scope="module")
def world() -> TrustedPathWorld:
    return TrustedPathWorld(WorldConfig(seed=9090)).ready()


def _batch(world, count, prefix="batch", amount=100):
    return [
        world.sample_transfer(amount_cents=amount + i, to=f"{prefix}-{i}")
        for i in range(count)
    ]


class TestBatchHappyPath:
    def test_all_members_execute(self, world):
        transactions = _batch(world, 4, prefix="bh")
        world.human.intend_batch(transactions)
        outcome = world.client.confirm_batch(world.bank.endpoint, transactions)
        assert outcome.executed
        for index in range(4):
            assert world.bank.balance_of(f"bh-{index}") == 100 + index

    def test_one_session_covers_the_batch(self, world):
        sessions_before = world.flicker.sessions_run
        transactions = _batch(world, 5, prefix="bs")
        world.human.intend_batch(transactions)
        world.client.confirm_batch(world.bank.endpoint, transactions)
        assert world.flicker.sessions_run == sessions_before + 1

    def test_quote_variant_batches_too(self, world):
        transactions = _batch(world, 2, prefix="bq")
        world.human.intend_batch(transactions)
        outcome = world.client.confirm_batch(
            world.bank.endpoint, transactions, mode="quote"
        )
        assert outcome.executed

    def test_pagination_reaches_the_human(self, world):
        """A 6-transaction batch spans multiple display pages; the
        attentive user still sees every line and accepts."""
        transactions = _batch(world, 6, prefix="bp")
        world.human.intend_batch(transactions)
        outcome = world.client.confirm_batch(world.bank.endpoint, transactions)
        assert outcome.executed
        # The session really produced multiple PAL frames.
        pal_frames = [o for o, _s in world.machine.display.frames if o == "pal"]
        assert len(pal_frames) >= 2


class TestBatchRejection:
    def test_unintended_member_rejects_whole_batch(self, world):
        transactions = _batch(world, 3, prefix="br")
        # The user intended only the first two: the third is malware's.
        world.human.intend_batch(transactions[:2])
        outcome = world.client.confirm_batch(world.bank.endpoint, transactions)
        assert outcome.decision == b"reject"
        for index in range(3):
            assert world.bank.balance_of(f"br-{index}") == 0

    def test_all_or_nothing_on_denial(self, world):
        """Forged evidence denies every member, none executes."""
        from repro.core.protocol import build_transaction_request
        from repro.net.messages import encode_message

        transactions = _batch(world, 3, prefix="bd")
        encoded = [
            encode_message(build_transaction_request(t)) for t in transactions
        ]
        response = world.browser.call(
            world.bank.endpoint, "tx.request_batch", {"transactions": encoded}
        )
        with pytest.raises(RpcError):
            world.browser.call(
                world.bank.endpoint, "tx.confirm_batch",
                {
                    "tx_id": response["tx_id"],
                    "decision": b"accept",
                    "evidence": "signed",
                    "signature": b"\x00" * 64,
                },
            )
        batch = world.bank.batches[response["tx_id"]]
        assert batch.status is TxStatus.DENIED
        for tx_id in batch.tx_ids:
            assert world.bank.transactions[tx_id].status is TxStatus.DENIED

    def test_nonce_single_use_across_batch(self, world):
        """Replaying a confirmed batch's evidence is rejected."""
        transactions = _batch(world, 2, prefix="bn", amount=50)
        world.human.intend_batch(transactions)
        outcome = world.client.confirm_batch(world.bank.endpoint, transactions)
        assert outcome.executed
        # Resubmit the same evidence for the same (already executed) batch.
        with pytest.raises(RpcError):
            world.browser.call(
                world.bank.endpoint, "tx.confirm_batch",
                {
                    "tx_id": list(world.bank.batches.keys())[-1],
                    "decision": b"accept",
                    "evidence": "signed",
                    "signature": outcome.session.outputs["signature"],
                },
            )


class TestBatchValidation:
    def test_empty_batch_rejected(self, world):
        with pytest.raises(RpcError):
            world.browser.call(
                world.bank.endpoint, "tx.request_batch", {"transactions": []}
            )

    def test_oversized_batch_rejected(self, world):
        from repro.core.protocol import build_transaction_request
        from repro.net.messages import encode_message

        encoded = [
            encode_message(
                build_transaction_request(world.sample_transfer(amount_cents=1))
            )
        ] * 17
        with pytest.raises(RpcError):
            world.browser.call(
                world.bank.endpoint, "tx.request_batch", {"transactions": encoded}
            )

    def test_invalid_member_rejects_request(self, world):
        from repro.core.protocol import build_transaction_request
        from repro.net.messages import encode_message
        from repro.core import Transaction

        bad = Transaction(
            "transfer", world.config.account, {"to": "x", "amount": -1}
        )
        encoded = [encode_message(build_transaction_request(bad))]
        with pytest.raises(RpcError):
            world.browser.call(
                world.bank.endpoint, "tx.request_batch", {"transactions": encoded}
            )
