"""Span tracing: collection, no-op mode, exporters and analysis."""

from __future__ import annotations

import json

import pytest

from repro.sim.clock import VirtualClock
from repro.sim.kernel import Simulator
from repro.sim.metrics import MetricRegistry
from repro.sim.tracing import (
    NULL_SPAN,
    NULL_TRACER,
    TraceAnalyzer,
    Tracer,
    TracingError,
    spans_from_dicts,
    traced,
)


@pytest.fixture
def clock():
    return VirtualClock()


@pytest.fixture
def tracer(clock):
    return Tracer(clock)


class TestScopedSpans:
    def test_nesting_builds_a_tree(self, clock, tracer):
        with tracer.span("outer") as outer:
            clock.advance(1.0)
            with tracer.span("inner") as inner:
                clock.advance(0.25)
        assert tracer.roots == [outer]
        assert outer.children == [inner]
        assert inner.parent is outer
        assert outer.duration == pytest.approx(1.25)
        assert inner.duration == pytest.approx(0.25)
        assert outer.self_seconds == pytest.approx(1.0)

    def test_current_tracks_the_stack(self, tracer):
        assert tracer.current is None
        with tracer.span("a") as a:
            assert tracer.current is a
            with tracer.span("b") as b:
                assert tracer.current is b
            assert tracer.current is a
        assert tracer.current is None

    def test_attributes_and_set(self, tracer):
        with tracer.span("op", kind="test") as span:
            span.set("result", 7)
        assert span.attributes == {"kind": "test", "result": 7}

    def test_exception_is_recorded_and_propagates(self, tracer):
        with pytest.raises(ValueError):
            with tracer.span("fails") as span:
                raise ValueError("boom")
        assert span.finished
        assert "ValueError: boom" in span.attributes["error"]
        assert tracer.current is None

    def test_reentering_finished_span_raises(self, tracer):
        with tracer.span("once") as span:
            pass
        with pytest.raises(TracingError):
            span.__enter__()


class TestUnscopedSpans:
    def test_begin_finish_crosses_events(self, clock, tracer):
        span = tracer.begin("net.link", parent=None, nbytes=42)
        clock.advance(0.5)
        tracer.finish(span)
        assert span.asynchronous
        assert span.duration == pytest.approx(0.5)
        assert tracer.roots == [span]

    def test_begin_defaults_parent_to_current_scope(self, tracer):
        with tracer.span("request") as scope:
            flight = tracer.begin("net.link")
        assert flight.parent is scope
        tracer.finish(flight)

    def test_explicit_parent_links_across_scopes(self, tracer):
        call = tracer.begin("rpc.call", parent=None)
        child = tracer.begin("rpc.queue_wait", parent=call)
        tracer.finish(child)
        tracer.finish(call)
        assert call.children == [child]

    def test_double_finish_raises(self, tracer):
        span = tracer.begin("once", parent=None)
        tracer.finish(span)
        with pytest.raises(TracingError):
            tracer.finish(span)

    def test_with_block_on_begun_span_raises(self, tracer):
        span = tracer.begin("async", parent=None)
        with pytest.raises(TracingError):
            span.__enter__()
        tracer.finish(span)


class TestNullTracer:
    def test_all_paths_are_noops(self):
        assert not NULL_TRACER.enabled
        with NULL_TRACER.span("anything", attr=1) as span:
            assert span is NULL_SPAN
            span.set("k", "v")
        flight = NULL_TRACER.begin("flight")
        NULL_TRACER.finish(flight)
        assert NULL_TRACER.current is None
        assert list(NULL_TRACER.roots) == []
        NULL_TRACER.clear()

    def test_finish_of_null_span_on_real_tracer_is_noop(self, tracer):
        # Mixed code paths hand NULL_SPAN to an enabled tracer.
        tracer.finish(NULL_SPAN)

    def test_traced_runs_are_bit_identical(self):
        """Tracing must not perturb the simulation: same seed, same result."""

        def run(tracing):
            sim = Simulator(seed=99, tracing=tracing)
            samples = []
            for i in range(5):
                sim.schedule(
                    sim.rng.stream("jitter").uniform(0.0, 1.0),
                    lambda: samples.append(sim.now),
                    label=f"tick-{i}",
                )
            sim.run()
            return samples

        assert run(False) == run(True)

    def test_simulator_records_dispatch_spans_when_enabled(self):
        sim = Simulator(seed=1, tracing=True)
        sim.schedule(0.5, lambda: None, label="tick")
        sim.run()
        names = [root.name for root in sim.tracer.roots]
        assert names == ["sim.dispatch"]
        assert sim.tracer.roots[0].attributes["label"] == "tick"


class TestExporters:
    def _record(self, clock, tracer):
        with tracer.span("session", vendor="infineon"):
            clock.advance(0.1)
            with tracer.span("tpm.quote"):
                clock.advance(0.8)
        flight = tracer.begin("net.link", parent=None)
        clock.advance(0.05)
        tracer.finish(flight)

    def test_dict_round_trip(self, clock, tracer):
        self._record(clock, tracer)
        rebuilt = spans_from_dicts(tracer.to_dicts())
        assert [s.name for s in rebuilt] == ["session", "net.link"]
        session = rebuilt[0]
        assert session.attributes == {"vendor": "infineon"}
        assert session.children[0].name == "tpm.quote"
        assert session.children[0].parent is session
        assert session.duration == pytest.approx(0.9)
        assert rebuilt[1].asynchronous

    def test_json_export(self, clock, tracer, tmp_path):
        self._record(clock, tracer)
        path = tmp_path / "trace.json"
        tracer.export_json(str(path))
        rebuilt = spans_from_dicts(json.loads(path.read_text()))
        assert [s.name for s in rebuilt] == ["session", "net.link"]

    def test_chrome_trace_export(self, clock, tracer, tmp_path):
        self._record(clock, tracer)
        path = tmp_path / "trace.chrome.json"
        count = tracer.export_chrome_trace(str(path))
        doc = json.loads(path.read_text())
        events = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert count == len(events) == 3
        quote = next(e for e in events if e["name"] == "tpm.quote")
        assert quote["ts"] == pytest.approx(0.1e6)
        assert quote["dur"] == pytest.approx(0.8e6)
        # Scoped spans and in-flight spans land on separate tracks.
        assert quote["tid"] == 1
        assert next(e for e in events if e["name"] == "net.link")["tid"] == 2

    def test_clear_resets_forest(self, clock, tracer):
        self._record(clock, tracer)
        tracer.clear()
        assert tracer.roots == []

    def test_clear_with_open_scope_raises(self, tracer):
        with tracer.span("open"):
            with pytest.raises(TracingError):
                tracer.clear()


class TestTracedDecorator:
    def test_uses_instance_tracer_when_present(self, clock, tracer):
        class Worker:
            def __init__(self, tracer=None):
                self.tracer = tracer

            @traced("work.step")
            def step(self):
                clock.advance(0.2)
                return "done"

        assert Worker(tracer).step() == "done"
        assert [s.name for s in tracer.roots] == ["work.step"]
        # Without a tracer attribute value, the same method is a no-op trace.
        assert Worker().step() == "done"
        assert len(tracer.roots) == 1


class TestTraceAnalyzer:
    def _forest(self, clock, tracer):
        with tracer.span("session"):
            with tracer.span("tpm.quote"):
                clock.advance(0.8)
            with tracer.span("tpm.extend"):
                clock.advance(0.01)
            with tracer.span("human.read"):
                clock.advance(5.0)

    def test_find_and_durations(self, clock, tracer):
        self._forest(clock, tracer)
        analyzer = TraceAnalyzer(tracer)
        assert len(analyzer.find("tpm.quote")) == 1
        durations = analyzer.durations_by_name()
        assert durations["human.read"] == [pytest.approx(5.0)]

    def test_subtree_totals(self, clock, tracer):
        self._forest(clock, tracer)
        analyzer = TraceAnalyzer(tracer)
        session = tracer.roots[0]
        assert analyzer.subtree_total_prefix(session, "tpm.") == pytest.approx(0.81)
        assert analyzer.subtree_total(session, "tpm.extend") == pytest.approx(0.01)

    def test_critical_path_follows_heaviest_child(self, clock, tracer):
        self._forest(clock, tracer)
        path = TraceAnalyzer(tracer).critical_path()
        assert [s.name for s in path] == ["session", "human.read"]

    def test_phase_aggregate_and_feed_metrics(self, clock, tracer):
        self._forest(clock, tracer)
        analyzer = TraceAnalyzer(tracer)
        aggregate = analyzer.phase_aggregate()
        assert aggregate["tpm.quote"]["count"] == 1.0
        registry = MetricRegistry(clock=clock)
        analyzer.feed_metrics(registry)
        assert registry.histogram("span:session").count == 1
        assert registry.histogram("span:tpm.quote").mean() == pytest.approx(0.8)

    def test_analyzer_accepts_rebuilt_spans(self, clock, tracer):
        self._forest(clock, tracer)
        rebuilt = spans_from_dicts(tracer.to_dicts())
        analyzer = TraceAnalyzer(rebuilt)
        assert len(analyzer.find("tpm.extend")) == 1


class TestSessionTraceIntegration:
    def test_confirmation_session_span_tree(self):
        """A traced confirmation yields DRTM, TPM and network child spans
        whose derived breakdown matches the session's own accounting."""
        from repro.bench.world import TrustedPathWorld, WorldConfig
        from repro.drtm.session import breakdown_from_span

        world = TrustedPathWorld(WorldConfig(seed=11, tracing=True)).ready()
        world.tracer.clear()
        outcome = world.confirm(world.sample_transfer())
        assert outcome.executed

        analyzer = TraceAnalyzer(world.tracer)
        sessions = analyzer.find("drtm.session")
        assert len(sessions) == 1
        session = sessions[0]
        names = {span.name for span in session.walk()}
        assert {"drtm.suspend", "drtm.skinit", "drtm.pal", "drtm.cap",
                "drtm.resume", "pal.human_wait"} <= names
        assert any(name.startswith("tpm.") for name in names)

        derived = breakdown_from_span(session)
        for phase, seconds in outcome.session.breakdown.items():
            assert derived[phase] == pytest.approx(seconds, abs=1e-9)

        # The wider trace carries the network legs of the confirmation.
        all_names = {span.name for span in analyzer.iter_spans()}
        assert "rpc.call" in all_names
        assert "verify.signed_confirmation" in all_names

    def test_chrome_export_of_real_session(self, tmp_path):
        from repro.bench.world import TrustedPathWorld, WorldConfig

        world = TrustedPathWorld(WorldConfig(seed=11, tracing=True)).ready()
        count = world.tracer.export_chrome_trace(str(tmp_path / "session.json"))
        assert count > 50
