"""SLB measurement: code identity derivation."""

from __future__ import annotations

from typing import Dict


from repro.core import ConfirmationPal, SetupPal
from repro.drtm.pal import Pal, PalServices
from repro.drtm.slb import SecureLoaderBlock, measured_image


class _PalA(Pal):
    name = "a"

    def run(self, services: PalServices, inputs: Dict[str, bytes]):
        return {"tag": b"a"}


class _PalB(Pal):
    name = "b"

    def run(self, services: PalServices, inputs: Dict[str, bytes]):
        return {"tag": b"b"}


class _PalASubclass(_PalA):
    """Overrides nothing new except this docstring — still different code."""


class _ConfiguredPal(Pal):
    def __init__(self, version: bytes) -> None:
        self.version = version

    def config_bytes(self) -> bytes:
        return self.version

    def run(self, services: PalServices, inputs: Dict[str, bytes]):
        return {}


class TestMeasuredImage:
    def test_deterministic(self):
        assert measured_image(_PalA()) == measured_image(_PalA())

    def test_different_classes_differ(self):
        assert measured_image(_PalA()) != measured_image(_PalB())

    def test_subclass_differs_from_base(self):
        # Behaviour inherited but identity changed: the measurement
        # must cover the whole MRO.
        assert measured_image(_PalASubclass()) != measured_image(_PalA())

    def test_config_bytes_included(self):
        assert measured_image(_ConfiguredPal(b"v1")) != measured_image(
            _ConfiguredPal(b"v2")
        )
        assert measured_image(_ConfiguredPal(b"v1")) == measured_image(
            _ConfiguredPal(b"v1")
        )

    def test_setup_and_confirmation_pal_share_identity(self):
        """The protocol requires one identity for both phases — that is
        why SetupPal subclasses ConfirmationPal and the client launches
        SetupPal for both (see repro.core.setup)."""
        setup_measurement = SecureLoaderBlock.package(SetupPal()).measurement()
        confirmation_measurement = SecureLoaderBlock.package(
            ConfirmationPal()
        ).measurement()
        # They are different classes, hence different measurements — the
        # client must launch the *same* class for both phases.
        assert setup_measurement != confirmation_measurement
        assert (
            SecureLoaderBlock.package(SetupPal()).measurement()
            == setup_measurement
        )


class TestSecureLoaderBlock:
    def test_padding_floor_is_image_size(self):
        slb = SecureLoaderBlock.package(_PalA(), padded_size=1)
        assert slb.padded_size == len(slb.image)

    def test_padding_respected_when_larger(self):
        slb = SecureLoaderBlock.package(_PalA(), padded_size=1 << 20)
        assert slb.padded_size == 1 << 20

    def test_measurement_is_sha1_of_image(self):
        from repro.crypto.sha1 import sha1

        slb = SecureLoaderBlock.package(_PalA())
        assert slb.measurement() == sha1(slb.image)

    def test_measurement_independent_of_padding(self):
        small = SecureLoaderBlock.package(_PalA(), padded_size=4096)
        large = SecureLoaderBlock.package(_PalA(), padded_size=1 << 20)
        assert small.measurement() == large.measurement()
