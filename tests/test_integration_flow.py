"""Whole-system happy paths: the protocol end to end, both variants."""

from __future__ import annotations

import pytest

from repro.bench.world import TrustedPathWorld, WorldConfig
from repro.core import Transaction
from repro.core.errors import SetupError
from repro.core.protocol import EVIDENCE_QUOTE


class TestSignedVariant:
    def test_transfer_executes_and_moves_money(self, shared_ready_world):
        world = shared_ready_world
        source_before = world.bank.balance_of(world.config.account)
        destination_before = world.bank.balance_of("happy-bob")
        tx = world.sample_transfer(amount_cents=1234, to="happy-bob")
        outcome = world.confirm(tx)
        assert outcome.executed
        assert outcome.decision == b"accept"
        assert world.bank.balance_of(world.config.account) == source_before - 1234
        assert world.bank.balance_of("happy-bob") == destination_before + 1234

    def test_session_breakdown_present(self, shared_ready_world):
        outcome = shared_ready_world.confirm(
            shared_ready_world.sample_transfer(amount_cents=55, to="bd")
        )
        assert outcome.session.breakdown["pal_tpm"] > 0
        assert outcome.session.breakdown["skinit"] > 0

    def test_signed_without_setup_fails_cleanly(self, fresh_world):
        world = fresh_world(seed=31)
        world.enroll_everywhere()  # no setup phase
        with pytest.raises(SetupError):
            world.confirm(world.sample_transfer())

    def test_sequential_transactions_all_execute(self, shared_ready_world):
        world = shared_ready_world
        for index in range(3):
            outcome = world.confirm(
                world.sample_transfer(amount_cents=10 + index, to=f"seq-{index}")
            )
            assert outcome.executed


class TestQuoteVariant:
    def test_transfer_executes_without_setup(self, fresh_world):
        world = fresh_world(seed=37)
        world.enroll_everywhere()  # quote variant needs no setup phase
        tx = world.sample_transfer(amount_cents=777, to="qbob")
        outcome = world.confirm(tx, mode=EVIDENCE_QUOTE)
        assert outcome.executed
        assert world.bank.balance_of("qbob") == 777

    def test_quote_variant_on_shared_world(self, shared_ready_world):
        outcome = shared_ready_world.confirm(
            shared_ready_world.sample_transfer(amount_cents=88, to="qv"),
            mode=EVIDENCE_QUOTE,
        )
        assert outcome.executed


class TestUserRejection:
    def test_reject_leaves_money_untouched(self, shared_ready_world):
        world = shared_ready_world
        balance_before = world.bank.balance_of(world.config.account)
        # The user intends one thing; the request is for another.
        world.human.intend(world.sample_transfer(amount_cents=1, to="intended"))
        outcome = world.client.confirm_transaction(
            world.bank.endpoint,
            world.sample_transfer(amount_cents=99_999, to="not-intended"),
        )
        assert outcome.decision == b"reject"
        assert outcome.server_response["status"] == "rejected_by_user"
        assert world.bank.balance_of(world.config.account) == balance_before


class TestDeterminism:
    def test_same_seed_same_world_history(self):
        def run(seed: int):
            world = TrustedPathWorld(WorldConfig(seed=seed)).ready()
            outcome = world.confirm(world.sample_transfer(amount_cents=500))
            return (
                world.simulator.now,
                outcome.session.total_seconds,
                world.bank.balance_of(world.config.account),
                world.client.published_pal_measurement(),
            )

        assert run(777) == run(777)

    def test_different_seed_different_timings(self):
        world_a = TrustedPathWorld(WorldConfig(seed=1)).ready()
        world_b = TrustedPathWorld(WorldConfig(seed=2)).ready()
        outcome_a = world_a.confirm(world_a.sample_transfer(amount_cents=500))
        outcome_b = world_b.confirm(world_b.sample_transfer(amount_cents=500))
        assert (
            outcome_a.session.total_seconds != outcome_b.session.total_seconds
        )


class TestMultiProvider:
    def test_per_provider_credentials_are_isolated(self):
        world = TrustedPathWorld(
            WorldConfig(seed=606, with_bank=True, with_shop=True)
        ).ready()
        world.shop.add_product("widget", stock=10, unit_price_cents=100)
        world.run_setup(provider=world.shop)
        bank_key = world.client.credentials.providers["bank.example"].signing_public
        shop_key = world.client.credentials.providers["shop.example"].signing_public
        assert bank_key != shop_key
        # Both providers accept their own credential.
        assert world.confirm(world.sample_transfer(amount_cents=10)).executed
        order = Transaction(
            "order", world.config.account, {"item": "widget", "quantity": 1}
        )
        assert world.confirm(order, provider=world.shop).executed


class TestVendorsAllWork:
    @pytest.mark.parametrize("vendor", ["infineon", "broadcom", "atmel", "stmicro"])
    def test_full_flow_per_vendor(self, fresh_world, vendor):
        world = fresh_world(seed=50, vendor=vendor)
        world.ready()
        outcome = world.confirm(world.sample_transfer(amount_cents=123))
        assert outcome.executed
