"""Privacy CA enrollment: the AIK credential flow."""

from __future__ import annotations

import pytest

from repro.tpm import TpmError
from repro.tpm.ca import (
    EnrollmentError,
    PrivacyCa,
    decrypt_certificate,
    deserialize_certificate,
    serialize_certificate,
)


@pytest.fixture(scope="module")
def ca() -> PrivacyCa:
    return PrivacyCa(seed=555)


class TestEnrollment:
    def test_full_flow(self, ca, instant_tpm):
        ek_public = instant_tpm.execute(0, "read_pubek")
        ca.register_manufacturer_ek(ek_public)
        aik_handle, aik_public, _wrapped = instant_tpm.execute(0, "make_identity")
        response = ca.enroll(aik_public, ek_public)
        session_key = instant_tpm.execute(
            0,
            "activate_identity",
            aik_handle=aik_handle,
            encrypted_blob=response.encrypted_activation,
        )
        certificate = decrypt_certificate(
            session_key, response.encrypted_certificate
        )
        assert certificate.aik_public == aik_public
        assert certificate.verify(ca.public_key)

    def test_unknown_ek_rejected(self, instant_tpm):
        fresh_ca = PrivacyCa(seed=777)
        _, aik_public, _w = instant_tpm.execute(0, "make_identity")
        ek_public = instant_tpm.execute(0, "read_pubek")
        with pytest.raises(EnrollmentError):
            fresh_ca.enroll(aik_public, ek_public)

    def test_activation_bound_to_aik(self, ca, instant_tpm):
        """A blob issued for AIK-1 must not activate with AIK-2: the CA
        names the AIK inside the EK-encrypted blob."""
        ek_public = instant_tpm.execute(0, "read_pubek")
        ca.register_manufacturer_ek(ek_public)
        handle_one, aik_one, _w1 = instant_tpm.execute(0, "make_identity")
        handle_two, aik_two, _w2 = instant_tpm.execute(0, "make_identity")
        response = ca.enroll(aik_one, ek_public)
        with pytest.raises(TpmError):
            instant_tpm.execute(
                0,
                "activate_identity",
                aik_handle=handle_two,
                encrypted_blob=response.encrypted_activation,
            )

    def test_activation_bound_to_ek(self, ca, simulator, instant_tpm):
        """A blob encrypted to TPM A's EK is garbage to TPM B."""
        from repro.tpm.device import TpmDevice
        from repro.tpm.timing import instant_profile

        other = TpmDevice(simulator.clock, instant_profile(), seed=31337)
        other.startup()
        ek_public = instant_tpm.execute(0, "read_pubek")
        ca.register_manufacturer_ek(ek_public)
        _, aik_public, _w = instant_tpm.execute(0, "make_identity")
        response = ca.enroll(aik_public, ek_public)
        other_handle, _, _w = other.execute(0, "make_identity")
        with pytest.raises(TpmError):
            other.execute(
                0,
                "activate_identity",
                aik_handle=other_handle,
                encrypted_blob=response.encrypted_activation,
            )

    def test_certificate_signature_covers_platform_class(self, ca, instant_tpm):
        ek_public = instant_tpm.execute(0, "read_pubek")
        ca.register_manufacturer_ek(ek_public)
        _, aik_public, _w = instant_tpm.execute(0, "make_identity")
        response = ca.enroll(aik_public, ek_public, platform_class="laptop-v1")
        session_key = None
        handle, _ = None, None
        # decrypt via a fresh activation using the right AIK
        aik_handle, aik_pub2, _w2 = instant_tpm.execute(0, "make_identity")
        response2 = ca.enroll(aik_pub2, ek_public, platform_class="laptop-v1")
        session_key = instant_tpm.execute(
            0,
            "activate_identity",
            aik_handle=aik_handle,
            encrypted_blob=response2.encrypted_activation,
        )
        certificate = decrypt_certificate(
            session_key, response2.encrypted_certificate
        )
        assert certificate.platform_class == "laptop-v1"
        # Tampering with the platform class breaks the signature.
        from dataclasses import replace

        forged = replace(certificate, platform_class="datacenter-hsm")
        assert not forged.verify(ca.public_key)

    def test_serialize_roundtrip(self, ca, instant_tpm):
        ek_public = instant_tpm.execute(0, "read_pubek")
        ca.register_manufacturer_ek(ek_public)
        aik_handle, aik_public, _wrapped = instant_tpm.execute(0, "make_identity")
        response = ca.enroll(aik_public, ek_public)
        session_key = instant_tpm.execute(
            0,
            "activate_identity",
            aik_handle=aik_handle,
            encrypted_blob=response.encrypted_activation,
        )
        certificate = decrypt_certificate(
            session_key, response.encrypted_certificate
        )
        restored = deserialize_certificate(serialize_certificate(certificate))
        assert restored == certificate

    def test_issuance_counter(self, instant_tpm):
        fresh_ca = PrivacyCa(seed=888)
        ek_public = instant_tpm.execute(0, "read_pubek")
        fresh_ca.register_manufacturer_ek(ek_public)
        _, aik_public, _w = instant_tpm.execute(0, "make_identity")
        fresh_ca.enroll(aik_public, ek_public)
        assert fresh_ca.certificates_issued == 1
