"""SKINIT and the FlickerSession lifecycle."""

from __future__ import annotations

from typing import Dict

import pytest

from repro.crypto.sha1 import sha1
from repro.drtm.pal import Pal, PalServices
from repro.drtm.sealing import CAP_MEASUREMENT, pal_pcr_selection, pcr17_after_launch
from repro.drtm.session import FlickerSession
from repro.drtm.skinit import LateLaunchError, perform_skinit
from repro.drtm.slb import SecureLoaderBlock
from repro.hardware.cpu import CpuMode
from repro.hardware.keyboard import ScanCode
from repro.tpm import TpmError
from repro.tpm.constants import PCR_DRTM_CODE, TpmResult


class _NoopPal(Pal):
    name = "noop"

    def run(self, services: PalServices, inputs: Dict[str, bytes]):
        return {"ran": b"1"}


class _SealingPal(Pal):
    name = "sealer"
    last_blob = None

    def run(self, services: PalServices, inputs: Dict[str, bytes]):
        blob = services.tpm("seal", data=b"pal-secret", selection=pal_pcr_selection())
        type(self).last_blob = blob
        assert services.tpm("unseal", blob=blob) == b"pal-secret"
        return {}


class _CrashingPal(Pal):
    name = "crasher"

    def run(self, services: PalServices, inputs: Dict[str, bytes]):
        raise RuntimeError("deliberate PAL crash")


class _TransientlyFailingPal(Pal):
    """Raises a transient TPM fault the first N runs, then succeeds."""

    name = "flaky"

    def __init__(self, failures: int = 1) -> None:
        self.failures_left = failures

    def run(self, services: PalServices, inputs: Dict[str, bytes]):
        if self.failures_left:
            self.failures_left -= 1
            raise TpmError(TpmResult.RETRY, "injected transient fault")
        return {"ran": b"1"}


class _KeyWaitingPal(Pal):
    name = "key-waiter"

    def run(self, services: PalServices, inputs: Dict[str, bytes]):
        services.show(["press any key"])
        key = services.read_key(timeout=5.0)
        return {"key": bytes([int(key)]) if key is not None else b""}


@pytest.fixture
def session(simulator, machine) -> FlickerSession:
    return FlickerSession(simulator, machine)


class TestSkinit:
    def test_requires_powered_machine(self, simulator, machine):
        machine.powered_on = False
        slb = SecureLoaderBlock.package(_NoopPal())
        with pytest.raises(LateLaunchError):
            perform_skinit(simulator, machine, slb)

    def test_pcr17_gets_slb_measurement(self, simulator, machine):
        slb = SecureLoaderBlock.package(_NoopPal())
        context = perform_skinit(simulator, machine, slb)
        assert machine.tpm.pcrs.read(PCR_DRTM_CODE) == pcr17_after_launch(
            slb.measurement()
        )
        assert context.measurement == slb.measurement()

    def test_all_dynamic_pcrs_reset(self, simulator, machine):
        perform_skinit(simulator, machine, SecureLoaderBlock.package(_NoopPal()))
        # PCR 18..22 were reset to zero (17 then got the measurement).
        for index in range(18, 23):
            assert machine.tpm.pcrs.read(index) == b"\x00" * 20

    def test_dev_protects_slb(self, simulator, machine):
        slb = SecureLoaderBlock.package(_NoopPal())
        context = perform_skinit(simulator, machine, slb)
        assert machine.chipset.dev.blocks(
            context.slb_region.base, context.slb_region.size
        )

    def test_cpu_enters_late_launch(self, simulator, machine):
        perform_skinit(simulator, machine, SecureLoaderBlock.package(_NoopPal()))
        assert machine.cpu.mode is CpuMode.LATE_LAUNCH
        assert not machine.cpu.interrupts_enabled


class TestSessionLifecycle:
    def test_outputs_returned(self, session):
        record = session.run(_NoopPal(), {})
        assert record.outputs == {"ran": b"1"}
        assert not record.aborted

    def test_pcr17_capped_after_session(self, session, machine):
        record = session.run(_NoopPal(), {})
        in_session = record.pcr17_during_session
        after = machine.tpm.pcrs.read(PCR_DRTM_CODE)
        assert after == sha1(in_session + CAP_MEASUREMENT)
        assert after != in_session

    def test_machine_restored_after_session(self, session, machine):
        session.run(_NoopPal(), {})
        assert machine.cpu.mode is CpuMode.RUNNING_OS
        assert machine.cpu.interrupts_enabled
        assert machine.keyboard.owner == "os"
        assert machine.display.owner == "os"
        assert not machine.chipset.dev.protected_ranges
        assert not any(
            region.name.startswith("slb:") for region in machine.memory.regions()
        )

    def test_pal_sealed_data_unreachable_after_session(self, session, machine):
        record = session.run(_SealingPal(), {})
        assert not record.aborted, record.abort_reason
        with pytest.raises(TpmError):
            machine.chipset.tpm_command_as_os("unseal", blob=_SealingPal.last_blob)

    def test_sealed_data_reachable_in_next_genuine_session(self, session):
        session.run(_SealingPal(), {})
        # The second run unseals the first run's blob internally (the
        # assert inside the PAL) — proving cross-session continuity.
        record = session.run(_SealingPal(), {})
        assert not record.aborted, record.abort_reason

    def test_pal_crash_does_not_wedge_machine(self, session, machine):
        record = session.run(_CrashingPal(), {})
        assert record.aborted
        assert "deliberate PAL crash" in record.abort_reason
        assert machine.cpu.mode is CpuMode.RUNNING_OS
        # And the next session works.
        assert not session.run(_NoopPal(), {}).aborted

    def test_breakdown_has_all_phases(self, session):
        record = session.run(_NoopPal(), {})
        for phase in ("suspend", "skinit", "pal_tpm", "pal_human",
                      "pal_logic", "cap", "resume"):
            assert phase in record.breakdown
        assert record.total_seconds > 0

    def test_sessions_counted(self, session):
        session.run(_NoopPal(), {})
        session.run(_NoopPal(), {})
        assert session.sessions_run == 2

    def test_different_pals_different_pcr17(self, session):
        first = session.run(_NoopPal(), {})
        second = session.run(_SealingPal(), {})
        assert first.pcr17_during_session != second.pcr17_during_session


class TestHumanInteraction:
    def test_human_key_reaches_pal(self, simulator, machine):
        def human(visible, max_wait):
            assert "press any key" in visible
            machine.keyboard.press_physical_key(ScanCode.KEY_Y)
            return 0.8

        session = FlickerSession(simulator, machine, human=human)
        record = session.run(_KeyWaitingPal(), {})
        assert record.outputs["key"] == bytes([int(ScanCode.KEY_Y)])
        assert record.breakdown["pal_human"] >= 0.75

    def test_no_human_times_out(self, session):
        record = session.run(_KeyWaitingPal(), {})
        assert record.outputs["key"] == b""
        assert record.breakdown["pal_human"] >= 5.0

    def test_unresponsive_human_times_out(self, simulator, machine):
        session = FlickerSession(
            simulator, machine, human=lambda visible, max_wait: max_wait
        )
        record = session.run(_KeyWaitingPal(), {})
        assert record.outputs["key"] == b""

    def test_stale_os_keystrokes_drained_before_pal(self, simulator, machine):
        # Keys buffered before the session (e.g. injected while the OS
        # ran) must not satisfy the PAL's prompt.
        machine.keyboard.press_physical_key(ScanCode.KEY_Y)
        session = FlickerSession(simulator, machine)
        record = session.run(_KeyWaitingPal(), {})
        assert record.outputs["key"] == b""

    def test_think_time_overlaps_pal_tpm_work(self, simulator, machine):
        """TPM work issued after show() hides under reading time."""

        class SlowThenWait(Pal):
            name = "overlapper"

            def run(self, services: PalServices, inputs):
                services.show(["press any key"])
                services.tpm("get_random", num_bytes=16)  # near-zero here
                services.charge_logic(2.0)  # 2s of work behind the prompt
                key = services.read_key(timeout=30.0)
                return {"key": bytes([int(key)]) if key else b""}

        def human(visible, max_wait):
            machine.keyboard.press_physical_key(ScanCode.KEY_Y)
            return 3.0  # thinks 3s from the moment the screen appeared

        session = FlickerSession(simulator, machine, human=human)
        record = session.run(SlowThenWait(), {})
        # The human wait the PAL observed is ~1s (3s think - 2s overlap),
        # and the total is ~3s, not ~5s.
        assert record.breakdown["pal_human"] == pytest.approx(1.0, abs=0.05)
        assert record.human_pure_seconds == pytest.approx(3.0)
        assert record.total_seconds < 3.5


class TestOsSuspension:
    def test_os_hooks_called(self, simulator, machine):
        calls = []

        class Hooks:
            def suspend(self):
                calls.append("suspend")

            def resume(self):
                calls.append("resume")

        session = FlickerSession(simulator, machine, os_hooks=Hooks())
        session.run(_NoopPal(), {})
        assert calls == ["suspend", "resume"]


class TestTransientRecovery:
    def test_transient_pal_fault_aborts_without_wedging(self, session, machine):
        record = session.run(_TransientlyFailingPal(), {})
        assert record.aborted and record.abort_transient
        # The machine unwound cleanly: peripherals are back with the OS.
        assert machine.keyboard.owner != "pal"
        assert machine.display.owner != "pal"

    def test_run_with_retry_reruns_transient_abort(self, session):
        record = session.run_with_retry(_TransientlyFailingPal(failures=2), {})
        assert not record.aborted
        assert record.outputs == {"ran": b"1"}
        assert session.transient_retries == 2
        assert session.sessions_run == 3

    def test_run_with_retry_gives_up_after_budget(self, session):
        record = session.run_with_retry(_TransientlyFailingPal(failures=99), {})
        assert record.aborted and record.abort_transient
        assert session.transient_retries == 2  # max_attempts=3 -> 2 retries

    def test_non_transient_abort_is_not_retried(self, session):
        record = session.run_with_retry(_CrashingPal(), {})
        assert record.aborted and not record.abort_transient
        assert session.transient_retries == 0
        assert session.sessions_run == 1
