"""The from-scratch hash/MAC/DRBG implementations vs the standard library.

The module-level entry points (``sha1``, ``hmac_sha256`` …) dispatch
through `repro.crypto.backend`, so this file pins the ``pure`` backend:
these are the reference-implementation tests, and under the default
``accel`` backend they would compare ``hashlib`` against itself.
"""

from __future__ import annotations

import hashlib
import hmac as std_hmac

import pytest
from hypothesis import given, strategies as st

from repro.crypto import HmacDrbg, hmac_sha1, hmac_sha256, sha1, sha256
from repro.crypto.backend import use_backend
from repro.crypto.hmac_impl import constant_time_equal
from repro.crypto.sha1 import Sha1
from repro.crypto.sha256 import Sha256


@pytest.fixture(autouse=True)
def _pure_backend():
    with use_backend("pure"):
        yield

KNOWN_VECTORS = [
    b"",
    b"abc",
    b"The quick brown fox jumps over the lazy dog",
    b"a" * 55,   # padding boundary: one byte short of needing a new block
    b"a" * 56,   # forces the length into a second block
    b"a" * 64,   # exactly one block
    b"a" * 65,
    bytes(range(256)) * 5,
]


class TestSha1:
    @pytest.mark.parametrize("message", KNOWN_VECTORS)
    def test_matches_hashlib(self, message):
        assert sha1(message) == hashlib.sha1(message).digest()

    def test_incremental_equals_oneshot(self):
        ctx = Sha1()
        ctx.update(b"hello ")
        ctx.update(b"world")
        assert ctx.digest() == sha1(b"hello world")

    def test_digest_is_idempotent(self):
        ctx = Sha1(b"data")
        assert ctx.digest() == ctx.digest()
        ctx.update(b"more")
        assert ctx.digest() == sha1(b"datamore")

    def test_copy_is_independent(self):
        ctx = Sha1(b"shared prefix ")
        clone = ctx.copy()
        ctx.update(b"left")
        clone.update(b"right")
        assert ctx.digest() == sha1(b"shared prefix left")
        assert clone.digest() == sha1(b"shared prefix right")

    def test_rejects_str(self):
        with pytest.raises(TypeError):
            Sha1().update("not bytes")  # type: ignore[arg-type]

    @pytest.mark.slow
    @given(st.binary(max_size=2048))
    def test_property_matches_hashlib(self, message):
        assert sha1(message) == hashlib.sha1(message).digest()

    @given(st.binary(max_size=300), st.integers(min_value=0, max_value=300))
    def test_property_split_invariance(self, message, split):
        split = min(split, len(message))
        ctx = Sha1(message[:split])
        ctx.update(message[split:])
        assert ctx.digest() == sha1(message)


class TestSha256:
    @pytest.mark.parametrize("message", KNOWN_VECTORS)
    def test_matches_hashlib(self, message):
        assert sha256(message) == hashlib.sha256(message).digest()

    def test_hexdigest(self):
        assert Sha256(b"abc").hexdigest() == hashlib.sha256(b"abc").hexdigest()

    @pytest.mark.slow
    @given(st.binary(max_size=2048))
    def test_property_matches_hashlib(self, message):
        assert sha256(message) == hashlib.sha256(message).digest()

    @given(st.binary(max_size=300), st.integers(min_value=0, max_value=300))
    def test_property_split_invariance(self, message, split):
        split = min(split, len(message))
        ctx = Sha256(message[:split])
        ctx.update(message[split:])
        assert ctx.digest() == sha256(message)


class TestHmac:
    @pytest.mark.parametrize("key", [b"", b"k", b"k" * 64, b"k" * 65, b"k" * 200])
    @pytest.mark.parametrize("message", [b"", b"msg", b"m" * 500])
    def test_sha1_matches_stdlib(self, key, message):
        expected = std_hmac.new(key, message, hashlib.sha1).digest()
        assert hmac_sha1(key, message) == expected

    @given(st.binary(max_size=128), st.binary(max_size=512))
    def test_sha256_matches_stdlib(self, key, message):
        expected = std_hmac.new(key, message, hashlib.sha256).digest()
        assert hmac_sha256(key, message) == expected

    def test_constant_time_equal(self):
        assert constant_time_equal(b"same", b"same")
        assert not constant_time_equal(b"same", b"sane")
        assert not constant_time_equal(b"short", b"longer")


class TestHmacDrbg:
    def test_deterministic(self):
        a = HmacDrbg(b"seed").generate(64)
        b = HmacDrbg(b"seed").generate(64)
        assert a == b

    def test_seed_sensitivity(self):
        assert HmacDrbg(b"seed1").generate(32) != HmacDrbg(b"seed2").generate(32)

    def test_personalization_separates(self):
        assert (
            HmacDrbg(b"s", personalization=b"a").generate(32)
            != HmacDrbg(b"s", personalization=b"b").generate(32)
        )

    def test_stream_continuity(self):
        whole = HmacDrbg(b"s").generate(64)
        drbg = HmacDrbg(b"s")
        parts = drbg.generate(16) + drbg.generate(48)
        # Chunked output differs from one-shot (state updates between
        # calls) but both are deterministic.
        drbg2 = HmacDrbg(b"s")
        assert parts == drbg2.generate(16) + drbg2.generate(48)
        assert len(whole) == 64

    def test_empty_seed_rejected(self):
        with pytest.raises(ValueError):
            HmacDrbg(b"")

    def test_generate_int_width(self):
        drbg = HmacDrbg(b"s")
        for bits in (8, 64, 512, 1024):
            value = drbg.generate_int(bits)
            assert value.bit_length() == bits

    @pytest.mark.slow
    def test_generate_below_uniform_range(self):
        drbg = HmacDrbg(b"s")
        values = [drbg.generate_below(10) for _ in range(500)]
        assert set(values) == set(range(10))

    def test_fork_independent(self):
        parent = HmacDrbg(b"s")
        child = parent.fork(b"child")
        assert child.generate(16) != parent.generate(16)

    @pytest.mark.slow
    @given(st.integers(min_value=1, max_value=10_000))
    def test_generate_below_in_range(self, bound):
        drbg = HmacDrbg(b"prop")
        assert 0 <= drbg.generate_below(bound) < bound
