"""Router health under crash-stop shards: degraded mode, not hangs.

One dead shard must cost exactly its own accounts' availability: the
surviving shards keep serving at full goodput, callers routed to the
dead shard get an explicit, structured refusal (dead-letter deadline
error or ``DENIAL_SHARD_DOWN``), and nobody waits forever.  Also covers
the circuit-breaker lifecycle, register-only failover, bounded-queue
load shedding, the dead-lettered ``DeferredResponse`` leg, stale-cookie
pruning, and the fault injector's crash windows.
"""

from __future__ import annotations

import pytest

from repro.core.confirmation_pal import confirmation_digest
from repro.crypto import HmacDrbg, generate_rsa_keypair, pkcs1_sign
from repro.net.network import LinkSpec, Network
from repro.net.retry import DEADLINE_ERROR_KEY, RPC_OVERLOADED_KEY
from repro.net.rpc import RpcEndpoint, RpcError
from repro.os.disk import UntrustedDisk
from repro.server.bank import BankServer
from repro.server.policy import VerifierPolicy
from repro.server.router import (
    DENIAL_SHARD_DOWN,
    SHARD_DOWN_KEY,
    CircuitBreaker,
    build_sharded_pool,
)
from repro.sim import FaultInjector, Simulator

CLIENT = "load-host"
POOL = "pool.test"


def _build(journal: bool = True, seed: int = 2024, **pool_kwargs):
    simulator = Simulator(seed=seed)
    network = Network(simulator)
    network.attach(CLIENT, LinkSpec.lan())
    policy = VerifierPolicy()
    disk = UntrustedDisk() if journal else None
    router = build_sharded_pool(
        simulator, network, POOL, policy,
        shard_count=4, provider_factory=BankServer, workers_per_shard=1,
        journal_disk=disk, **pool_kwargs,
    )
    signing_key = generate_rsa_keypair(512, HmacDrbg(b"failover-signing"))
    return simulator, router, signing_key


def _enroll(router, signing_key, name):
    router.endpoint.call_sync(
        CLIENT, "register",
        {"account": name, "password": "pw", "opening_balance": 10_000_000},
    )
    login = router.endpoint.call_sync(
        CLIENT, "login", {"account": name, "password": "pw"}
    )
    router.shard_for_account(name).register_signing_key(
        name, signing_key.public
    )
    return login["set_session"]


def _submit_transfer(router, signing_key, cookie, name, amount, outcomes):
    """Queued two-leg flow recording exactly one outcome per call."""
    def on_challenge(response):
        if response.get("error"):
            outcomes.append(response)
            return
        digest = confirmation_digest(
            response["text"], response["nonce"], b"accept"
        )
        signature = pkcs1_sign(signing_key, digest, prehashed=True)
        router.endpoint.submit(
            CLIENT, "tx.confirm",
            {
                "tx_id": response["tx_id"], "decision": b"accept",
                "evidence": "signed", "signature": signature,
                "session": cookie,
            },
            outcomes.append,
        )

    router.endpoint.submit(
        CLIENT, "tx.request",
        {
            "kind": "transfer", "account": name, "session": cookie,
            "f.to": "sink", "f.amount": amount,
        },
        on_challenge,
    )


class TestOneDeadShard:
    def test_survivors_at_full_goodput_victims_denied_explicitly(self):
        simulator, router, signing_key = _build()
        names = [f"acct-{index:02d}" for index in range(16)]
        cookies = {n: _enroll(router, signing_key, n) for n in names}
        dead = router.shards[0]
        victims = {n for n in names if router.shard_for_account(n) is dead}
        survivors = set(names) - victims
        assert victims and survivors  # 16 accounts cover all 4 shards

        dead.crash()
        per_account: dict = {}
        for index, name in enumerate(names):
            per_account[name] = []
            _submit_transfer(
                router, signing_key, cookies[name], name,
                1000 + index, per_account[name],
            )
        simulator.run(until=simulator.now + 30.0)

        # Nobody hangs: every flow produced a terminal outcome.
        assert all(per_account[name] for name in names)
        for name in survivors:
            final = per_account[name][-1]
            assert final.get("status") == "executed", (name, final)
        for name in victims:
            final = per_account[name][-1]
            assert final.get("error"), (name, final)
            assert (
                DEADLINE_ERROR_KEY in final or SHARD_DOWN_KEY in final
            ), (name, final)
        # The survivors' goodput is untouched by the neighbour's death.
        assert len(survivors) == sum(
            1 for n in survivors
            if per_account[n][-1].get("status") == "executed"
        )


class TestCircuitBreaker:
    def test_opens_after_failures_then_probe_recloses(self):
        simulator, router, signing_key = _build(
            breaker_threshold=3, breaker_reset_s=0.5,
        )
        name = "acct-00"
        _enroll(router, signing_key, name)
        shard = router.shard_for_account(name)
        index = router.shards.index(shard)
        shard.crash()

        # Transport failures accumulate until the breaker trips.
        for _ in range(3):
            with pytest.raises(RpcError):
                router.endpoint.call_sync(
                    CLIENT, "login", {"account": name, "password": "pw"}
                )
        assert router.breaker_states()[index] == "open"

        # While open: immediate structured denial, not another attempt.
        with pytest.raises(RpcError) as denied:
            router.endpoint.call_sync(
                CLIENT, "login", {"account": name, "password": "pw"}
            )
        assert denied.value.response[SHARD_DOWN_KEY] == 1
        assert DENIAL_SHARD_DOWN in denied.value.response["error"]
        assert router.denials[DENIAL_SHARD_DOWN] >= 1

        # Recovery: shard restarts, reset timeout elapses, the half-open
        # probe succeeds and the breaker recloses.
        shard.restart()
        simulator.clock.advance(0.6)
        login = router.endpoint.call_sync(
            CLIENT, "login", {"account": name, "password": "pw"}
        )
        assert login["set_session"]
        assert router.breaker_states()[index] == "closed"

    def test_half_open_failure_reopens(self):
        simulator = Simulator(seed=3)
        breaker = CircuitBreaker(failure_threshold=2, reset_timeout=1.0)
        breaker.record_failure(simulator.now)
        breaker.record_failure(simulator.now)
        assert breaker.state == "open"
        assert not breaker.allow(0.5)
        assert breaker.allow(1.5)          # the single half-open probe
        assert not breaker.allow(1.6)      # second probe refused
        breaker.record_failure(1.7)
        assert breaker.state == "open"     # failed probe reopens at once

    def test_register_fails_over_to_live_successor(self):
        simulator, router, signing_key = _build(breaker_threshold=1)
        shard0_names = [
            f"newcomer-{index}" for index in range(1000)
            if router.ring.index_for(f"newcomer-{index}") == 0
        ]
        tripper, probe = shard0_names[:2]
        router.shards[0].crash()
        with pytest.raises(RpcError):
            router.endpoint.call_sync(
                CLIENT, "login", {"account": tripper, "password": "x"}
            )
        assert router.breaker_states()[0] == "open"

        # A brand-new account has no home yet: re-homed, not denied.
        router.endpoint.call_sync(
            CLIENT, "register", {"account": probe, "password": "pw"},
        )
        assert router.register_failovers == 1
        assert router.shard_for_account(probe) is not router.shards[0]
        login = router.endpoint.call_sync(
            CLIENT, "login", {"account": probe, "password": "pw"}
        )
        assert login["set_session"]


class TestLoadShedding:
    def test_full_shard_queue_sheds_explicitly(self):
        simulator, router, signing_key = _build(max_shard_queue_depth=2)
        names = [f"acct-{index:02d}" for index in range(4)]
        cookies = {n: _enroll(router, signing_key, n) for n in names}
        target = names[0]
        outcomes: list = []
        for _ in range(40):
            router.endpoint.submit(
                CLIENT, "tx.request",
                {
                    "kind": "transfer", "account": target,
                    "session": cookies[target],
                    "f.to": "sink", "f.amount": 100,
                },
                outcomes.append,
            )
        simulator.run(until=simulator.now + 30.0)
        assert len(outcomes) == 40  # every call resolved
        shed = [r for r in outcomes if r.get(RPC_OVERLOADED_KEY)]
        assert shed, "expected explicit overload rejections"
        assert simulator.metrics.counter("router.shed").value == len(shed)
        assert all("overloaded" in r["error"] for r in shed)


class TestDeferredDeadLetter:
    def test_dead_lettered_leg_resolves_caller_without_leaks(self):
        """A shard that dies mid-flight dead-letters the forwarded leg;
        the router must resolve the caller's DeferredResponse with the
        structured deadline error and leave no deferred slot pending."""
        simulator, router, signing_key = _build()
        name = "acct-00"
        cookie = _enroll(router, signing_key, name)
        shard = router.shard_for_account(name)

        outcomes: list = []
        router.endpoint.submit(
            CLIENT, "tx.request",
            {
                "kind": "transfer", "account": name, "session": cookie,
                "f.to": "sink", "f.amount": 500,
            },
            outcomes.append,
        )
        # Kill the shard while the leg is in flight (before any service
        # completes), then run far past the leg's retry deadline.
        simulator.schedule(0.0001, shard.crash, label="test:crash")
        simulator.run(until=simulator.now + 30.0)

        assert len(outcomes) == 1
        assert outcomes[0][DEADLINE_ERROR_KEY] == 1
        # No leaked deferred slot: every response the router accepted
        # has a concrete payload cached, none is still pending.
        assert all(
            payload is not None
            for payload in router.endpoint._request_cache.values()
        )
        assert simulator.metrics.counter("rpc.dead_letters").value >= 1


class TestCookiePruning:
    def test_stale_cookie_pruned_on_denial_path(self):
        simulator, router, signing_key = _build(journal=False)
        name = "acct-00"
        cookie = _enroll(router, signing_key, name)
        shard = router.shard_for_account(name)
        assert cookie in router._cookie_shard
        shard.crash()
        shard.restart()  # journal-off: session table gone, mapping stale

        with pytest.raises(RpcError, match="not logged in"):
            router.endpoint.call_sync(
                CLIENT, "tx.request",
                {
                    "kind": "transfer", "account": name, "session": cookie,
                    "f.to": "sink", "f.amount": 100,
                },
            )
        assert cookie not in router._cookie_shard
        assert router.cookie_prunes == 1
        assert simulator.metrics.counter("router.cookie_prunes").value == 1

        # Re-login relearns the route and the account works again.
        login = router.endpoint.call_sync(
            CLIENT, "login", {"account": name, "password": "pw"}
        )
        assert login["set_session"] in router._cookie_shard


class TestCrashWindows:
    def test_crash_windows_kill_and_restart_the_endpoint(self):
        simulator = Simulator(seed=11)
        network = Network(simulator)
        network.attach("victim", LinkSpec.lan())
        endpoint = RpcEndpoint(simulator, network, "victim", workers=1)
        injector = FaultInjector(simulator, horizon=10.0, name="crashes")
        windows = injector.add_crashes(endpoint, 0.5, 0.8)
        assert windows
        # Windows never overlap after merging: each crash has a restart.
        for earlier, later in zip(windows, windows[1:]):
            assert earlier.end <= later.start

        inside = windows[0].start + 0.01
        after = windows[-1].end + 0.01
        observed = {}
        simulator.schedule_at(
            inside, lambda: observed.setdefault("inside", endpoint.crashed)
        )
        simulator.schedule_at(
            after, lambda: observed.setdefault("after", endpoint.crashed)
        )
        simulator.run(until=after + 1.0)
        assert observed == {"inside": True, "after": False}
        assert injector.crashes_scheduled == len(windows)

    def test_empty_crash_plan_is_counted(self):
        simulator = Simulator(seed=12)
        network = Network(simulator)
        network.attach("victim", LinkSpec.lan())
        endpoint = RpcEndpoint(simulator, network, "victim", workers=1)
        injector = FaultInjector(simulator, horizon=10.0, name="crashes")
        # A rate so low the Poisson draw never lands inside the horizon:
        # a configured-but-empty plan, which must be visible, not silent.
        assert injector.add_crashes(endpoint, 1e-9, 1.0) == []
        assert injector.empty_plans == {"crash:victim": 1}
        assert simulator.metrics.counter("faults.empty_plan").value == 1
