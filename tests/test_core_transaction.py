"""Transactions: canonical forms and the display binding."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core import Transaction
from repro.core.confirmation_pal import confirmation_digest

field_values = st.one_of(
    st.text(min_size=1, max_size=20).filter(lambda s: s.strip()),
    st.integers(min_value=0, max_value=10**9),
)
transactions = st.builds(
    Transaction,
    kind=st.sampled_from(["transfer", "order", "payment"]),
    account=st.text(min_size=1, max_size=12).filter(lambda s: s.strip()),
    fields=st.dictionaries(
        st.text(min_size=1, max_size=10).filter(lambda s: s.strip()),
        field_values,
        max_size=5,
    ),
)


class TestCanonicalForms:
    def test_digest_stable(self):
        tx = Transaction("transfer", "alice", {"to": "bob", "amount": 100})
        same = Transaction("transfer", "alice", {"amount": 100, "to": "bob"})
        assert tx.digest() == same.digest()

    def test_digest_sensitive_to_every_field(self):
        base = Transaction("transfer", "alice", {"to": "bob", "amount": 100})
        variants = [
            Transaction("order", "alice", {"to": "bob", "amount": 100}),
            Transaction("transfer", "mallory", {"to": "bob", "amount": 100}),
            Transaction("transfer", "alice", {"to": "mule", "amount": 100}),
            Transaction("transfer", "alice", {"to": "bob", "amount": 101}),
            Transaction("transfer", "alice", {"to": "bob", "amount": 100, "memo": "x"}),
        ]
        digests = {tx.digest() for tx in variants}
        assert base.digest() not in digests
        assert len(digests) == len(variants)

    def test_roundtrip(self):
        tx = Transaction("transfer", "alice", {"to": "bob", "amount": 100})
        assert Transaction.from_canonical_bytes(tx.canonical_bytes()) == tx

    def test_requires_kind_and_account(self):
        with pytest.raises(ValueError):
            Transaction("", "alice")
        with pytest.raises(ValueError):
            Transaction("transfer", "")

    def test_field_types_validated(self):
        with pytest.raises(ValueError):
            Transaction("transfer", "alice", {"amount": 1.5})  # type: ignore[dict-item]

    @given(transactions)
    def test_property_roundtrip(self, tx):
        assert Transaction.from_canonical_bytes(tx.canonical_bytes()) == tx

    @given(transactions, transactions)
    def test_property_digest_injective(self, a, b):
        if a != b:
            assert a.digest() != b.digest()
        else:
            assert a.digest() == b.digest()


class TestDisplayLines:
    def test_shows_all_fields(self):
        tx = Transaction("transfer", "alice", {"to": "bob", "amount": 12999})
        text = "\n".join(tx.display_lines())
        assert "transfer" in text and "alice" in text and "bob" in text

    def test_amount_rendered_as_decimal(self):
        tx = Transaction("transfer", "alice", {"amount": 12999})
        assert "129.99" in "\n".join(tx.display_lines())

    def test_banner_first(self):
        tx = Transaction("transfer", "alice", {})
        assert tx.display_lines()[0] == "=== TRANSACTION CONFIRMATION ==="

    def test_different_transactions_render_differently(self):
        a = Transaction("transfer", "alice", {"to": "bob", "amount": 100})
        b = Transaction("transfer", "alice", {"to": "mule", "amount": 100})
        assert a.display_lines() != b.display_lines()


class TestConfirmationDigest:
    def test_covers_all_inputs(self):
        base = confirmation_digest(b"text", b"n" * 20, b"accept")
        assert base != confirmation_digest(b"texT", b"n" * 20, b"accept")
        assert base != confirmation_digest(b"text", b"m" * 20, b"accept")
        assert base != confirmation_digest(b"text", b"n" * 20, b"reject")

    def test_length_framing_prevents_splicing(self):
        # (text="ab", nonce-prefix "c"...) must differ from (text="abc", ...)
        a = confirmation_digest(b"ab", b"c" * 20, b"accept")
        b = confirmation_digest(b"abc", b"c" * 20, b"accept")
        assert a != b

    @given(st.binary(max_size=100), st.binary(min_size=20, max_size=20),
           st.sampled_from([b"accept", b"reject"]))
    def test_property_deterministic(self, text, nonce, decision):
        assert confirmation_digest(text, nonce, decision) == confirmation_digest(
            text, nonce, decision
        )
