"""Providers: accounts, sessions, the transaction state machine, and the
bank/shop business rules — driven over the real RPC path."""

from __future__ import annotations

import pytest

from repro.bench.world import TrustedPathWorld, WorldConfig
from repro.core import Transaction
from repro.net.rpc import RpcError


@pytest.fixture(scope="module")
def world() -> TrustedPathWorld:
    built = TrustedPathWorld(
        WorldConfig(seed=808, with_bank=True, with_shop=True)
    ).ready()
    built.run_setup(provider=built.shop)  # setup is per-provider
    built.shop.add_product("gpu", stock=20, unit_price_cents=64900)
    built.shop.add_product("ticket", stock=5, unit_price_cents=8500)
    return built


class TestAccounts:
    def test_duplicate_register_rejected(self, world):
        with pytest.raises(RpcError):
            world.browser.call(
                world.bank.endpoint, "register",
                {"account": world.config.account, "password": "x"},
            )

    def test_bad_login_rejected(self, world):
        with pytest.raises(RpcError):
            world.browser.call(
                world.bank.endpoint, "login",
                {"account": world.config.account, "password": "wrong"},
            )

    def test_unauthenticated_request_rejected(self, world):
        # A raw endpoint call without the session cookie.
        with pytest.raises(RpcError):
            world.bank.endpoint.call_sync(
                "client-host", "tx.request",
                {"kind": "transfer", "account": world.config.account},
            )

    def test_opening_balance(self, world):
        assert world.bank.balance_of(world.config.account) > 0


class TestTransactionStateMachine:
    def test_happy_path_reaches_executed(self, world):
        tx = world.sample_transfer(amount_cents=111, to="dest-1")
        outcome = world.confirm(tx)
        assert outcome.executed
        status = world.browser.call(
            world.bank.endpoint, "tx.status",
            {"tx_id": outcome.server_response and _last_tx_id(world)},
        )
        assert status["status"] == "executed"

    def test_user_rejection_recorded(self, world):
        tx = world.sample_transfer(amount_cents=222, to="dest-2")
        # The user intends a DIFFERENT transaction: the screen won't match.
        world.human.intend(world.sample_transfer(amount_cents=999, to="elsewhere"))
        outcome = world.client.confirm_transaction(world.bank.endpoint, tx)
        assert outcome.decision == b"reject"
        assert outcome.server_response["status"] == "rejected_by_user"

    def test_double_confirm_never_double_executes(self, world):
        tx = world.sample_transfer(amount_cents=333, to="dest-3")
        world.human.intend(tx)
        balance_before = world.bank.balance_of(world.config.account)
        outcome = world.confirm(tx)
        assert outcome.executed
        balance_after = world.bank.balance_of(world.config.account)
        assert balance_after == balance_before - 333
        # Resubmitting the exact same evidence by hand is idempotent:
        # the stored outcome replays, the transaction does NOT run again.
        duplicates_before = world.bank.duplicate_confirms
        replayed = world.browser.call(
            world.bank.endpoint, "tx.confirm",
            {
                "tx_id": _last_tx_id(world),
                "decision": b"accept",
                "evidence": "signed",
                "signature": outcome.session.outputs["signature"],
            },
        )
        assert replayed["status"] == "executed"
        assert world.bank.duplicate_confirms == duplicates_before + 1
        assert world.bank.balance_of(world.config.account) == balance_after
        # DIFFERENT evidence against a settled transaction stays an error.
        with pytest.raises(RpcError) as err:
            world.browser.call(
                world.bank.endpoint, "tx.confirm",
                {
                    "tx_id": _last_tx_id(world),
                    "decision": b"accept",
                    "evidence": "signed",
                    "signature": b"not-the-same-evidence",
                },
            )
        assert "already" in str(err.value)

    def test_unknown_tx_id(self, world):
        with pytest.raises(RpcError):
            world.browser.call(
                world.bank.endpoint, "tx.confirm",
                {"tx_id": b"\x00" * 16, "decision": b"accept",
                 "evidence": "signed", "signature": b"x"},
            )

    def test_bad_decision_value(self, world):
        tx = world.sample_transfer(amount_cents=150, to="dest-4")
        from repro.core.protocol import build_transaction_request

        response = world.browser.call(
            world.bank.endpoint, "tx.request", build_transaction_request(tx)
        )
        with pytest.raises(RpcError):
            world.browser.call(
                world.bank.endpoint, "tx.confirm",
                {"tx_id": response["tx_id"], "decision": b"maybe",
                 "evidence": "signed", "signature": b"x"},
            )

    def test_pending_expires(self, world):
        from repro.core.protocol import build_transaction_request

        tx = world.sample_transfer(amount_cents=170, to="dest-5")
        response = world.browser.call(
            world.bank.endpoint, "tx.request", build_transaction_request(tx)
        )
        world.simulator.clock.advance(world.policy.nonce_lifetime_seconds + 1)
        status = world.browser.call(
            world.bank.endpoint, "tx.status", {"tx_id": response["tx_id"]}
        )
        assert status["status"] == "expired"

    def test_denial_reasons_counted(self, world):
        from repro.core.protocol import build_transaction_request

        tx = world.sample_transfer(amount_cents=180, to="dest-6")
        response = world.browser.call(
            world.bank.endpoint, "tx.request", build_transaction_request(tx)
        )
        before = dict(world.bank.denials)
        with pytest.raises(RpcError):
            world.browser.call(
                world.bank.endpoint, "tx.confirm",
                {"tx_id": response["tx_id"], "decision": b"accept",
                 "evidence": "signed", "signature": b"\x01" * 64},
            )
        assert sum(world.bank.denials.values()) == sum(before.values()) + 1


class TestRechallengeRecovery:
    def test_expired_nonce_recovers_via_rechallenge(self, world):
        """End-to-end: the challenge nonce ages out while the PAL runs,
        the provider answers with a recoverable re-challenge hint, the
        client opens a fresh PAL session against the reissued nonce, and
        the transaction still executes exactly once."""
        tx = world.sample_transfer(amount_cents=444, to="dest-rc")
        world.human.intend(tx)
        balance_before = world.bank.balance_of(world.config.account)
        nonces = world.bank.nonces
        original_issue = nonces.issue
        first_nonce = {}

        def expire_first_issue(tx_id, now):
            nonce = original_issue(tx_id, now)
            # The first challenge dies instantly; the reissued one is
            # normal.  Any nonzero PAL duration then lands the confirm
            # past expiry.
            nonces._records[nonce].expires_at = now
            first_nonce["value"] = nonce
            nonces.issue = original_issue
            return nonce

        nonces.issue = expire_first_issue
        required_before = world.bank.rechallenges_required
        issued_before = world.bank.rechallenges_issued
        client_rechallenges_before = world.client.rechallenges
        outcome = world.client.confirm_transaction(world.bank.endpoint, tx)
        assert outcome.executed
        assert world.bank.balance_of(world.config.account) == balance_before - 444
        assert world.bank.rechallenges_required == required_before + 1
        assert world.bank.rechallenges_issued == issued_before + 1
        assert world.client.rechallenges == client_rechallenges_before + 1
        # The dead challenge was invalidated when the new one was minted.
        from repro.server.noncedb import NonceState

        assert (
            nonces.state_of(first_nonce["value"], now=world.simulator.now)
            is NonceState.UNKNOWN
        )

    def test_consumed_nonce_stays_a_hard_deny(self, world):
        """Replay defense is untouched by the recovery path: a CONSUMED
        nonce never earns a re-challenge hint."""
        tx = world.sample_transfer(amount_cents=100, to="dest-hd")
        world.human.intend(tx)
        outcome = world.confirm(tx)
        assert outcome.executed
        tx_id = _last_tx_id(world)
        with pytest.raises(RpcError) as err:
            world.browser.call(
                world.bank.endpoint, "tx.confirm",
                {"tx_id": tx_id, "decision": b"reject",
                 "evidence": "signed", "signature": b"different"},
            )
        assert not err.value.rechallenge_required

    def test_rechallenge_rejected_for_settled_transaction(self, world):
        tx = world.sample_transfer(amount_cents=100, to="dest-st")
        world.human.intend(tx)
        outcome = world.confirm(tx)
        assert outcome.executed
        with pytest.raises(RpcError) as err:
            world.browser.call(
                world.bank.endpoint, "tx.rechallenge",
                {"tx_id": _last_tx_id(world)},
            )
        assert "already" in str(err.value)


class TestBankRules:
    def test_insufficient_funds_rejected_at_request(self, world):
        huge = Transaction(
            "transfer", world.config.account,
            {"to": "x", "amount": 10**12},
        )
        from repro.core.protocol import build_transaction_request

        with pytest.raises(RpcError) as err:
            world.browser.call(
                world.bank.endpoint, "tx.request", build_transaction_request(huge)
            )
        assert "insufficient" in str(err.value)

    def test_negative_amount_rejected(self, world):
        bad = Transaction(
            "transfer", world.config.account, {"to": "x", "amount": -5}
        )
        from repro.core.protocol import build_transaction_request

        with pytest.raises(RpcError):
            world.browser.call(
                world.bank.endpoint, "tx.request", build_transaction_request(bad)
            )

    def test_unsupported_kind_rejected(self, world):
        bad = Transaction("order", world.config.account, {"item": "gpu"})
        from repro.core.protocol import build_transaction_request

        with pytest.raises(RpcError):
            world.browser.call(
                world.bank.endpoint, "tx.request", build_transaction_request(bad)
            )

    def test_money_conserved(self, world):
        total_before = sum(world.bank.balances.values())
        tx = world.sample_transfer(amount_cents=440, to="dest-7")
        outcome = world.confirm(tx)
        assert outcome.executed
        assert sum(world.bank.balances.values()) == total_before

    def test_account_mismatch_rejected(self, world):
        from repro.core.protocol import build_transaction_request

        foreign = Transaction("transfer", "not-me", {"to": "x", "amount": 1})
        with pytest.raises(RpcError):
            world.browser.call(
                world.bank.endpoint, "tx.request", build_transaction_request(foreign)
            )


class TestShopRules:
    def _order(self, world, item="gpu", quantity=1):
        return Transaction(
            "order", world.config.account, {"item": item, "quantity": quantity}
        )

    def test_order_executes_and_decrements_stock(self, world):
        stock_before = world.shop.stock["gpu"]
        outcome = world.confirm(self._order(world), provider=world.shop)
        assert outcome.executed
        assert world.shop.stock["gpu"] == stock_before - 1

    def test_unknown_item_rejected(self, world):
        from repro.core.protocol import build_transaction_request

        with pytest.raises(RpcError):
            world.browser.call(
                world.shop.endpoint, "tx.request",
                build_transaction_request(self._order(world, item="unobtainium")),
            )

    def test_per_account_limit(self, world):
        from repro.core.protocol import build_transaction_request

        with pytest.raises(RpcError) as err:
            world.browser.call(
                world.shop.endpoint, "tx.request",
                build_transaction_request(self._order(world, quantity=99)),
            )
        assert "limit" in str(err.value)

    def test_stock_exhaustion(self, world):
        from repro.core.protocol import build_transaction_request

        with pytest.raises(RpcError):
            world.browser.call(
                world.shop.endpoint, "tx.request",
                build_transaction_request(self._order(world, item="ticket",
                                                      quantity=6)),
            )


class TestSessionOwnership:
    """A valid session must not reach into another account's
    transactions — regression tests for the missing ownership check on
    tx.confirm / tx.status / tx.rechallenge."""

    @pytest.fixture()
    def mallory(self, world):
        endpoint = world.bank.endpoint
        try:
            endpoint.call_sync(
                "client-host", "register",
                {"account": "mallory", "password": "mpw"},
            )
        except RpcError:
            pass  # registered by an earlier test in this module
        login = endpoint.call_sync(
            "client-host", "login", {"account": "mallory", "password": "mpw"}
        )
        return login["set_session"]

    def test_foreign_session_denied_on_every_tx_method(self, world, mallory):
        from repro.core.protocol import build_transaction_request
        from repro.server.noncedb import NonceState
        from repro.server.provider import DENIAL_NOT_OWNER

        tx = world.sample_transfer(amount_cents=260, to="dest-own")
        challenge = world.browser.call(
            world.bank.endpoint, "tx.request", build_transaction_request(tx)
        )
        denials_before = world.bank.denials.get(DENIAL_NOT_OWNER, 0)
        probes = (
            ("tx.status", {}),
            ("tx.rechallenge", {}),
            ("tx.confirm", {"decision": b"accept", "evidence": "signed",
                            "signature": b"\x07" * 64}),
        )
        for method, extra in probes:
            with pytest.raises(RpcError, match=DENIAL_NOT_OWNER):
                world.bank.endpoint.call_sync(
                    "client-host", method,
                    dict(extra, tx_id=challenge["tx_id"], session=mallory),
                )
        assert world.bank.denials[DENIAL_NOT_OWNER] == denials_before + 3
        # The probes did not perturb the victim's confirmation: still
        # PENDING, challenge nonce still live.
        status = world.browser.call(
            world.bank.endpoint, "tx.status", {"tx_id": challenge["tx_id"]}
        )
        assert status["status"] == "pending"
        assert (
            world.bank.nonces.state_of(
                challenge["nonce"], now=world.simulator.now
            )
            is NonceState.LIVE
        )

    def test_foreign_session_denied_on_batches(self, world, mallory):
        from repro.core.protocol import build_transaction_request
        from repro.net.messages import encode_message
        from repro.server.provider import DENIAL_NOT_OWNER

        encoded = [
            encode_message(
                build_transaction_request(
                    world.sample_transfer(amount_cents=10, to="dest-bo")
                )
            )
        ]
        challenge = world.browser.call(
            world.bank.endpoint, "tx.request_batch", {"transactions": encoded}
        )
        for method, extra in (
            ("tx.rechallenge", {}),
            ("tx.confirm_batch", {"decision": b"accept", "evidence": "signed",
                                  "signature": b"\x08" * 64}),
        ):
            with pytest.raises(RpcError, match=DENIAL_NOT_OWNER):
                world.bank.endpoint.call_sync(
                    "client-host", method,
                    dict(extra, tx_id=challenge["tx_id"], session=mallory),
                )
        assert world.bank.batches[challenge["tx_id"]].status.value == "pending"


class TestSessionInvalidation:
    def test_relogin_invalidates_the_previous_cookie(self, world):
        endpoint = world.bank.endpoint
        endpoint.call_sync(
            "client-host", "register", {"account": "roamer", "password": "rpw"}
        )
        first = endpoint.call_sync(
            "client-host", "login", {"account": "roamer", "password": "rpw"}
        )["set_session"]
        invalidated_before = world.bank.cookies_invalidated
        cookie_count = len(world.bank._cookies)
        second = endpoint.call_sync(
            "client-host", "login", {"account": "roamer", "password": "rpw"}
        )["set_session"]
        assert second != first
        assert world.bank.cookies_invalidated == invalidated_before + 1
        assert len(world.bank._cookies) == cookie_count  # map did not grow
        request = {
            "kind": "transfer", "account": "roamer",
            "f.to": "x", "f.amount": 1,
        }
        with pytest.raises(RpcError, match="not logged in"):
            endpoint.call_sync(
                "client-host", "tx.request", dict(request, session=first)
            )
        fresh = endpoint.call_sync(
            "client-host", "tx.request", dict(request, session=second)
        )
        assert fresh["ok"] == 1


class TestBoundedStore:
    def test_settled_records_retire_after_retention(self, world):
        tx = world.sample_transfer(amount_cents=15, to="dest-ret")
        outcome = world.confirm(tx)
        assert outcome.executed
        tx_id = _last_tx_id(world)
        retired_before = world.bank.transactions_retired
        world.simulator.clock.advance(world.bank.settled_retention_seconds + 1)
        assert world.bank.retire_settled() >= 1
        assert tx_id not in world.bank.transactions
        assert world.bank.transactions_retired > retired_before
        with pytest.raises(RpcError, match="unknown"):
            world.browser.call(
                world.bank.endpoint, "tx.status", {"tx_id": tx_id}
            )

    def test_pending_records_survive_the_sweep(self, world):
        from repro.core.protocol import build_transaction_request

        tx = world.sample_transfer(amount_cents=25, to="dest-keep")
        challenge = world.browser.call(
            world.bank.endpoint, "tx.request", build_transaction_request(tx)
        )
        world.bank.retire_settled()
        assert challenge["tx_id"] in world.bank.transactions
        assert world.bank.transactions_peak >= len(world.bank.transactions)


def _last_tx_id(world) -> bytes:
    return list(world.bank.transactions.keys())[-1]
