"""The fleet scenario: many clients, one provider, some infected."""

from __future__ import annotations

import pytest

from repro.bench.fleet import MULE, FleetWorld


@pytest.fixture(scope="module")
def fleet() -> FleetWorld:
    return FleetWorld(clients=4, infected=2, seed=1400)


@pytest.fixture(scope="module")
def report(fleet):
    return fleet.run_day(transactions_per_client=2, fraud_per_infected=3)


class TestFleetDay:
    def test_all_honest_transactions_execute(self, report):
        assert report.honest_transactions == 8
        assert report.honest_executed == 8

    def test_no_fraud_executes(self, report):
        assert report.fraud_attempts == 6
        assert report.fraud_executed == 0
        assert report.stolen_cents == 0

    def test_fraud_is_denied_not_ignored(self, report):
        assert sum(report.denials.values()) >= 6

    def test_every_client_has_own_key(self, fleet):
        keys = {
            member.client.credentials.providers["bank.example"].signing_public.n
            for member in fleet.clients
        }
        assert len(keys) == len(fleet.clients)

    def test_one_measurement_covers_the_fleet(self, fleet):
        measurements = {
            member.client.published_pal_measurement()
            for member in fleet.clients
        }
        assert len(measurements) == 1

    def test_mule_balance_zero(self, fleet):
        assert fleet.bank.balance_of(MULE) == 0

    def test_infected_param_validated(self):
        with pytest.raises(ValueError):
            FleetWorld(clients=2, infected=3)


class TestShardedFleetDay:
    """The same trading day through a 2-shard provider pool: business
    outcomes identical, state partitioned across replicas."""

    @pytest.fixture(scope="class")
    def sharded(self) -> FleetWorld:
        return FleetWorld(clients=4, infected=1, seed=1405, shards=2)

    @pytest.fixture(scope="class")
    def sharded_report(self, sharded):
        return sharded.run_day(transactions_per_client=2, fraud_per_infected=3)

    def test_honest_volume_executes_through_the_router(self, sharded_report):
        assert sharded_report.honest_transactions == 8
        assert sharded_report.honest_executed == 8

    def test_fraud_still_blocked(self, sharded_report):
        assert sharded_report.fraud_attempts == 3
        assert sharded_report.fraud_executed == 0
        assert sharded_report.stolen_cents == 0

    def test_denials_aggregate_across_shards(self, sharded_report):
        assert sum(sharded_report.denials.values()) >= 3

    def test_traffic_spread_over_both_shards(self, sharded, sharded_report):
        assert all(count > 0 for count in sharded.bank.forwards_by_shard)
        assert sharded.bank.unroutable == 0

    def test_accounts_partitioned_not_replicated(self, sharded, sharded_report):
        for member in sharded.clients:
            owner = sharded.bank.shard_for_account(member.name)
            others = [s for s in sharded.bank.shards if s is not owner]
            assert member.name in owner.accounts
            assert all(member.name not in shard.accounts for shard in others)
