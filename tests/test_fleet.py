"""The fleet scenario: many clients, one provider, some infected."""

from __future__ import annotations

import pytest

from repro.bench.fleet import MULE, FleetWorld


@pytest.fixture(scope="module")
def fleet() -> FleetWorld:
    return FleetWorld(clients=4, infected=2, seed=1400)


@pytest.fixture(scope="module")
def report(fleet):
    return fleet.run_day(transactions_per_client=2, fraud_per_infected=3)


class TestFleetDay:
    def test_all_honest_transactions_execute(self, report):
        assert report.honest_transactions == 8
        assert report.honest_executed == 8

    def test_no_fraud_executes(self, report):
        assert report.fraud_attempts == 6
        assert report.fraud_executed == 0
        assert report.stolen_cents == 0

    def test_fraud_is_denied_not_ignored(self, report):
        assert sum(report.denials.values()) >= 6

    def test_every_client_has_own_key(self, fleet):
        keys = {
            member.client.credentials.providers["bank.example"].signing_public.n
            for member in fleet.clients
        }
        assert len(keys) == len(fleet.clients)

    def test_one_measurement_covers_the_fleet(self, fleet):
        measurements = {
            member.client.published_pal_measurement()
            for member in fleet.clients
        }
        assert len(measurements) == 1

    def test_mule_balance_zero(self, fleet):
        assert fleet.bank.balance_of(MULE) == 0

    def test_infected_param_validated(self):
        with pytest.raises(ValueError):
            FleetWorld(clients=2, infected=3)
