"""Protocol message builders/parsers."""

from __future__ import annotations

import pytest

from repro.core import Transaction
from repro.core.errors import ProtocolError
from repro.core.protocol import (
    EVIDENCE_QUOTE,
    EVIDENCE_SIGNED,
    build_confirmation_submission,
    build_setup_completion,
    build_transaction_request,
    parse_challenge,
    transaction_from_request,
)


class TestTransactionRequest:
    def test_roundtrip(self):
        tx = Transaction("transfer", "alice", {"to": "bob", "amount": 10})
        assert transaction_from_request(build_transaction_request(tx)) == tx

    def test_request_fields_prefixed(self):
        tx = Transaction("transfer", "alice", {"to": "bob"})
        request = build_transaction_request(tx)
        assert request["f.to"] == "bob"
        assert request["kind"] == "transfer"

    def test_missing_kind_rejected(self):
        with pytest.raises(ProtocolError):
            transaction_from_request({"account": "alice"})

    def test_extraneous_keys_ignored(self):
        tx = transaction_from_request(
            {"kind": "transfer", "account": "a", "f.to": "b", "session": b"c"}
        )
        assert tx.fields == {"to": "b"}


class TestConfirmationSubmission:
    def test_signed_shape(self):
        submission = build_confirmation_submission(
            b"id", b"accept", EVIDENCE_SIGNED, {"signature": b"sig"}
        )
        assert submission == {
            "tx_id": b"id", "decision": b"accept",
            "evidence": "signed", "signature": b"sig",
        }

    def test_quote_shape(self):
        submission = build_confirmation_submission(
            b"id", b"reject", EVIDENCE_QUOTE, {"quote": b"bundle"}
        )
        assert submission["quote"] == b"bundle"
        assert submission["evidence"] == "quote"

    def test_unknown_evidence_rejected(self):
        with pytest.raises(ProtocolError):
            build_confirmation_submission(b"id", b"accept", "vibes", {})


class TestSetupCompletion:
    def test_shape(self):
        outputs = {"public_key": b"pk", "quote": b"q", "sealed_credential": b"s"}
        completion = build_setup_completion(outputs, b"n" * 20)
        assert completion == {
            "public_key": b"pk", "quote": b"q", "nonce": b"n" * 20
        }
        # The sealed credential stays client-side, never on the wire.
        assert "sealed_credential" not in completion

    def test_missing_outputs_rejected(self):
        with pytest.raises(ProtocolError):
            build_setup_completion({"public_key": b"pk"}, b"n" * 20)


class TestParseChallenge:
    def test_valid(self):
        challenge = parse_challenge(
            {"tx_id": b"id", "nonce": b"n" * 20, "text": "shown text", "ok": 1}
        )
        assert challenge["text"] == b"shown text"
        assert challenge["nonce"] == b"n" * 20

    def test_bytes_text_passthrough(self):
        challenge = parse_challenge(
            {"tx_id": b"id", "nonce": b"n" * 20, "text": b"bytes text"}
        )
        assert challenge["text"] == b"bytes text"

    def test_missing_field_rejected(self):
        with pytest.raises(ProtocolError):
            parse_challenge({"tx_id": b"id", "text": "x"})

    def test_bad_nonce_rejected(self):
        with pytest.raises(ProtocolError):
            parse_challenge({"tx_id": b"id", "nonce": b"short", "text": "x"})
        with pytest.raises(ProtocolError):
            parse_challenge({"tx_id": b"id", "nonce": "str" * 7, "text": "x"})
