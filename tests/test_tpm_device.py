"""The TPM device: command behaviours, key lifecycle, timing accrual."""

from __future__ import annotations

import pytest

from repro.crypto import pkcs1_verify, sha1
from repro.drtm.sealing import pal_pcr_selection
from repro.tpm import TpmError, verify_quote
from repro.tpm.constants import TpmResult
from repro.tpm.keys import KeyUsage
from repro.tpm.structures import PcrSelection


class TestStartupGate:
    def test_commands_before_startup_rejected(self, simulator):
        from repro.tpm.device import TpmDevice
        from repro.tpm.timing import instant_profile

        tpm = TpmDevice(simulator.clock, instant_profile(), seed=1)
        with pytest.raises(TpmError) as err:
            tpm.execute(0, "pcr_read", pcr_index=0)
        assert err.value.result is TpmResult.INVALID_POSTINIT

    def test_unknown_command_rejected(self, instant_tpm):
        with pytest.raises(TpmError):
            instant_tpm.execute(0, "self_destruct")


class TestRandomness:
    def test_get_random_lengths(self, instant_tpm):
        assert len(instant_tpm.execute(0, "get_random", num_bytes=20)) == 20
        with pytest.raises(TpmError):
            instant_tpm.execute(0, "get_random", num_bytes=0)
        with pytest.raises(TpmError):
            instant_tpm.execute(0, "get_random", num_bytes=5000)

    def test_get_random_not_repeating(self, instant_tpm):
        a = instant_tpm.execute(0, "get_random", num_bytes=16)
        b = instant_tpm.execute(0, "get_random", num_bytes=16)
        assert a != b

    def test_different_devices_different_streams(self, simulator):
        from repro.tpm.device import TpmDevice
        from repro.tpm.timing import instant_profile

        tpm_a = TpmDevice(simulator.clock, instant_profile(), seed=1)
        tpm_b = TpmDevice(simulator.clock, instant_profile(), seed=2)
        tpm_a.startup()
        tpm_b.startup()
        assert tpm_a.execute(0, "get_random", num_bytes=16) != tpm_b.execute(
            0, "get_random", num_bytes=16
        )


class TestQuote:
    def test_quote_verifies(self, instant_tpm):
        handle, public, _wrapped = instant_tpm.execute(0, "make_identity")
        bundle = instant_tpm.execute(
            0,
            "quote",
            key_handle=handle,
            selection=pal_pcr_selection(),
            external_data=sha1(b"nonce"),
        )
        assert verify_quote(public, bundle)

    def test_quote_reports_live_pcr_values(self, instant_tpm):
        handle, public, _wrapped = instant_tpm.execute(0, "make_identity")
        before = instant_tpm.execute(
            0, "quote", key_handle=handle,
            selection=PcrSelection(indices=(0,)), external_data=sha1(b"n1"),
        )
        instant_tpm.execute(0, "extend", pcr_index=0, measurement=sha1(b"m"))
        after = instant_tpm.execute(
            0, "quote", key_handle=handle,
            selection=PcrSelection(indices=(0,)), external_data=sha1(b"n2"),
        )
        assert before.reported_value(0) != after.reported_value(0)

    def test_quote_requires_identity_key(self, instant_tpm):
        _, wrapped = instant_tpm.execute(
            0, "create_wrap_key", parent_handle=instant_tpm.SRK_HANDLE,
            usage=KeyUsage.SIGNING,
        )
        handle = instant_tpm.execute(
            0, "load_key2", parent_handle=instant_tpm.SRK_HANDLE,
            wrapped_blob=wrapped,
        )
        with pytest.raises(TpmError):
            instant_tpm.execute(
                0, "quote", key_handle=handle,
                selection=pal_pcr_selection(), external_data=sha1(b"n"),
            )

    def test_quote_requires_20_byte_nonce(self, instant_tpm):
        handle, _, _wrapped = instant_tpm.execute(0, "make_identity")
        with pytest.raises(TpmError):
            instant_tpm.execute(
                0, "quote", key_handle=handle,
                selection=pal_pcr_selection(), external_data=b"short",
            )

    def test_forged_pcr_value_breaks_verification(self, instant_tpm):
        from dataclasses import replace

        handle, public, _wrapped = instant_tpm.execute(0, "make_identity")
        bundle = instant_tpm.execute(
            0, "quote", key_handle=handle,
            selection=pal_pcr_selection(), external_data=sha1(b"n"),
        )
        forged = replace(bundle, pcr_values=(sha1(b"fake"), bundle.pcr_values[1]))
        assert not verify_quote(public, forged)

    def test_forged_nonce_breaks_verification(self, instant_tpm):
        from dataclasses import replace

        handle, public, _wrapped = instant_tpm.execute(0, "make_identity")
        bundle = instant_tpm.execute(
            0, "quote", key_handle=handle,
            selection=pal_pcr_selection(), external_data=sha1(b"n"),
        )
        forged = replace(bundle, external_data=sha1(b"other"))
        assert not verify_quote(public, forged)


class TestSealUnseal:
    def test_roundtrip_when_pcrs_unchanged(self, instant_tpm):
        blob = instant_tpm.execute(
            0, "seal", data=b"secret", selection=PcrSelection(indices=(0,))
        )
        assert instant_tpm.execute(0, "unseal", blob=blob) == b"secret"

    def test_unseal_fails_after_pcr_change(self, instant_tpm):
        blob = instant_tpm.execute(
            0, "seal", data=b"secret", selection=PcrSelection(indices=(0,))
        )
        instant_tpm.execute(0, "extend", pcr_index=0, measurement=sha1(b"change"))
        with pytest.raises(TpmError) as err:
            instant_tpm.execute(0, "unseal", blob=blob)
        assert err.value.result is TpmResult.WRONG_PCR_VALUE

    def test_unseal_ignores_unselected_pcrs(self, instant_tpm):
        blob = instant_tpm.execute(
            0, "seal", data=b"secret", selection=PcrSelection(indices=(0,))
        )
        instant_tpm.execute(0, "extend", pcr_index=1, measurement=sha1(b"other"))
        assert instant_tpm.execute(0, "unseal", blob=blob) == b"secret"

    def test_blob_bound_to_device(self, simulator, instant_tpm):
        from repro.tpm.device import TpmDevice
        from repro.tpm.timing import instant_profile

        other = TpmDevice(simulator.clock, instant_profile(), seed=99)
        other.startup()
        blob = instant_tpm.execute(
            0, "seal", data=b"secret", selection=PcrSelection(indices=(0,))
        )
        with pytest.raises(TpmError) as err:
            other.execute(0, "unseal", blob=blob)
        assert err.value.result is TpmResult.KEY_NOT_FOUND

    def test_corrupt_blob_rejected(self, instant_tpm):
        from dataclasses import replace

        blob = instant_tpm.execute(
            0, "seal", data=b"secret", selection=PcrSelection(indices=(0,))
        )
        corrupted = replace(blob, ciphertext=b"\x00" + blob.ciphertext[1:])
        with pytest.raises(TpmError):
            instant_tpm.execute(0, "unseal", blob=corrupted)


class TestKeyLifecycle:
    def test_wrap_load_sign(self, instant_tpm):
        public, wrapped = instant_tpm.execute(
            0, "create_wrap_key", parent_handle=instant_tpm.SRK_HANDLE,
            usage=KeyUsage.SIGNING,
        )
        handle = instant_tpm.execute(
            0, "load_key2", parent_handle=instant_tpm.SRK_HANDLE,
            wrapped_blob=wrapped,
        )
        digest = sha1(b"document")
        signature = instant_tpm.execute(0, "sign", key_handle=handle, digest=digest)
        assert pkcs1_verify(public, digest, signature, prehashed=True)

    def test_sign_requires_signing_key(self, instant_tpm):
        handle, _, _wrapped = instant_tpm.execute(0, "make_identity")
        with pytest.raises(TpmError):
            instant_tpm.execute(0, "sign", key_handle=handle, digest=sha1(b"d"))

    def test_sign_requires_sha1_digest(self, instant_tpm):
        _, wrapped = instant_tpm.execute(
            0, "create_wrap_key", parent_handle=instant_tpm.SRK_HANDLE,
            usage=KeyUsage.SIGNING,
        )
        handle = instant_tpm.execute(
            0, "load_key2", parent_handle=instant_tpm.SRK_HANDLE,
            wrapped_blob=wrapped,
        )
        with pytest.raises(TpmError):
            instant_tpm.execute(0, "sign", key_handle=handle, digest=b"not-20")

    def test_flush_unloads(self, instant_tpm):
        _, wrapped = instant_tpm.execute(
            0, "create_wrap_key", parent_handle=instant_tpm.SRK_HANDLE,
            usage=KeyUsage.SIGNING,
        )
        handle = instant_tpm.execute(
            0, "load_key2", parent_handle=instant_tpm.SRK_HANDLE,
            wrapped_blob=wrapped,
        )
        instant_tpm.execute(0, "flush_context", key_handle=handle)
        with pytest.raises(TpmError):
            instant_tpm.execute(0, "sign", key_handle=handle, digest=sha1(b"d"))

    def test_srk_cannot_be_flushed(self, instant_tpm):
        with pytest.raises(TpmError):
            instant_tpm.execute(0, "flush_context", key_handle=instant_tpm.SRK_HANDLE)

    def test_tampered_wrapped_blob_rejected(self, instant_tpm):
        _, wrapped = instant_tpm.execute(
            0, "create_wrap_key", parent_handle=instant_tpm.SRK_HANDLE,
            usage=KeyUsage.SIGNING,
        )
        tampered = wrapped[:-1] + bytes([wrapped[-1] ^ 1])
        with pytest.raises(TpmError):
            instant_tpm.execute(
                0, "load_key2", parent_handle=instant_tpm.SRK_HANDLE,
                wrapped_blob=tampered,
            )

    def test_cannot_create_endorsement_keys(self, instant_tpm):
        with pytest.raises(TpmError):
            instant_tpm.execute(
                0, "create_wrap_key", parent_handle=instant_tpm.SRK_HANDLE,
                usage=KeyUsage.ENDORSEMENT,
            )

    def test_signing_key_cannot_parent(self, instant_tpm):
        _, wrapped = instant_tpm.execute(
            0, "create_wrap_key", parent_handle=instant_tpm.SRK_HANDLE,
            usage=KeyUsage.SIGNING,
        )
        handle = instant_tpm.execute(
            0, "load_key2", parent_handle=instant_tpm.SRK_HANDLE,
            wrapped_blob=wrapped,
        )
        with pytest.raises(TpmError):
            instant_tpm.execute(
                0, "create_wrap_key", parent_handle=handle, usage=KeyUsage.SIGNING
            )


class TestNvAndCounters:
    def test_nv_roundtrip_with_auth(self, instant_tpm):
        instant_tpm.execute(0, "nv_define", index=1, size=32, auth_value=b"pw")
        instant_tpm.execute(0, "nv_write", index=1, data=b"hello", auth=b"pw")
        assert instant_tpm.execute(0, "nv_read", index=1, auth=b"pw") == b"hello"
        with pytest.raises(TpmError):
            instant_tpm.execute(0, "nv_read", index=1, auth=b"wrong")

    def test_nv_size_enforced(self, instant_tpm):
        instant_tpm.execute(0, "nv_define", index=2, size=4)
        with pytest.raises(TpmError):
            instant_tpm.execute(0, "nv_write", index=2, data=b"too long")

    def test_nv_space_exhaustion(self, instant_tpm):
        with pytest.raises(TpmError) as err:
            instant_tpm.execute(0, "nv_define", index=3, size=10_000)
        assert err.value.result is TpmResult.NO_SPACE

    def test_monotonic_counter(self, instant_tpm):
        instant_tpm.execute(0, "create_counter", counter_id=1)
        assert instant_tpm.execute(0, "increment_counter", counter_id=1) == 1
        assert instant_tpm.execute(0, "increment_counter", counter_id=1) == 2
        assert instant_tpm.execute(0, "read_counter", counter_id=1) == 2

    def test_unknown_counter(self, instant_tpm):
        with pytest.raises(TpmError):
            instant_tpm.execute(0, "read_counter", counter_id=9)


class TestTiming:
    def test_commands_charge_virtual_time(self, simulator, timed_tpm):
        before = simulator.now
        timed_tpm.execute(0, "extend", pcr_index=0, measurement=sha1(b"m"))
        cheap = simulator.now - before
        handle, _, _wrapped = timed_tpm.execute(0, "make_identity")
        before = simulator.now
        timed_tpm.execute(
            0, "quote", key_handle=handle,
            selection=pal_pcr_selection(), external_data=sha1(b"n"),
        )
        expensive = simulator.now - before
        # Quote is orders of magnitude dearer than extend (T1's shape).
        assert expensive > 100 * cheap

    def test_vendor_ordering_on_quote(self, simulator):
        from repro.tpm.device import TpmDevice
        from repro.tpm.timing import vendor_profile

        durations = {}
        for vendor in ("infineon", "broadcom"):
            tpm = TpmDevice(
                simulator.clock, vendor_profile(vendor),
                seed=simulator.rng.derive_seed(vendor),
            )
            tpm.startup()
            handle, _, _wrapped = tpm.execute(0, "make_identity")
            before = simulator.now
            tpm.execute(
                0, "quote", key_handle=handle,
                selection=pal_pcr_selection(), external_data=sha1(b"n"),
            )
            durations[vendor] = simulator.now - before
        assert durations["broadcom"] > 2 * durations["infineon"]

    def test_command_counters(self, instant_tpm):
        instant_tpm.execute(0, "pcr_read", pcr_index=0)
        instant_tpm.execute(0, "pcr_read", pcr_index=1)
        assert instant_tpm.commands_executed["pcr_read"] == 2
