"""TLS-lite transport under the RPC path, and lossy-link retries."""

from __future__ import annotations

import pytest

from repro.bench.world import TrustedPathWorld, WorldConfig
from repro.crypto import HmacDrbg, generate_rsa_keypair
from repro.net.network import LinkSpec, Network
from repro.net.rpc import RpcEndpoint, RpcError
from repro.sim import ConstantLatency


class TestTlsRpc:
    def _endpoint(self, simulator, tls=True):
        network = Network(simulator)
        network.attach("c", LinkSpec(latency=ConstantLatency(0.001)))
        network.attach("s", LinkSpec(latency=ConstantLatency(0.001)))
        endpoint = RpcEndpoint(simulator, network, "s")
        endpoint.register("echo", lambda req: dict(req, ok=1))
        if tls:
            endpoint.enable_tls(generate_rsa_keypair(512, HmacDrbg(b"tls")))
        return endpoint, network

    def test_call_roundtrip_over_tls(self, simulator):
        endpoint, _ = self._endpoint(simulator)
        response = endpoint.call_sync("c", "echo", {"v": 7})
        assert response["ok"] == 1 and response["v"] == 7
        assert endpoint.tls_handshakes == 1

    def test_handshake_once_per_caller(self, simulator):
        endpoint, _ = self._endpoint(simulator)
        for _ in range(3):
            endpoint.call_sync("c", "echo", {})
        assert endpoint.tls_handshakes == 1
        # A second caller gets its own channel.
        endpoint.network.attach("c2", LinkSpec(latency=ConstantLatency(0.001)))
        endpoint.call_sync("c2", "echo", {})
        assert endpoint.tls_handshakes == 2

    def test_plaintext_never_crosses_the_wire(self, simulator):
        """Interpose on the network and grep the records for plaintext."""
        endpoint, network = self._endpoint(simulator)
        seen = []
        original = network.transfer

        def spy(source, destination, payload):
            seen.append(payload)
            return original(source, destination, payload)

        network.transfer = spy  # type: ignore[method-assign]
        endpoint.call_sync("c", "echo", {"secret_marker": b"VERY-SECRET-VALUE"})
        assert seen, "no traffic captured"
        assert all(b"VERY-SECRET-VALUE" not in blob for blob in seen)

    def test_errors_still_surface(self, simulator):
        endpoint, _ = self._endpoint(simulator)
        with pytest.raises(RpcError):
            endpoint.call_sync("c", "nope", {})


class TestLossyTransport:
    def test_retries_mask_moderate_loss(self, simulator):
        network = Network(simulator)
        network.attach(
            "c",
            LinkSpec(latency=ConstantLatency(0.001), loss_probability=0.3),
        )
        network.attach("s", LinkSpec(latency=ConstantLatency(0.001)))
        endpoint = RpcEndpoint(simulator, network, "s")
        endpoint.register("echo", lambda req: dict(req, ok=1))
        # With 30% loss and 4 attempts per transfer, 20 calls should all
        # succeed (P[fail] per transfer = 0.3^4 ≈ 0.8%).
        completed = 0
        for index in range(20):
            try:
                endpoint.call_sync("c", "echo", {"i": index})
                completed += 1
            except RpcError:
                pass
        assert completed >= 18
        assert network.packets_dropped > 0  # the loss was real

    def test_total_loss_gives_up_loudly(self, simulator):
        network = Network(simulator)
        network.attach(
            "c", LinkSpec(latency=ConstantLatency(0.001), loss_probability=1.0)
        )
        network.attach("s", LinkSpec(latency=ConstantLatency(0.001)))
        endpoint = RpcEndpoint(simulator, network, "s")
        endpoint.register("echo", lambda req: req)
        with pytest.raises(RpcError) as err:
            endpoint.call_sync("c", "echo", {})
        assert "gave up" in str(err.value)


class TestTlsWorld:
    def test_full_protocol_over_tls(self):
        """The complete trusted-path flow with the channel enabled."""
        world = TrustedPathWorld(WorldConfig(seed=3131, tls=True)).ready()
        outcome = world.confirm(world.sample_transfer(amount_cents=999))
        assert outcome.executed
        assert world.bank.endpoint.tls_handshakes >= 1
