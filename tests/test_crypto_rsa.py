"""RSA, PKCS#1, primes, and the sealing stream cipher."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto import (
    AuthenticationError,
    HmacDrbg,
    SignatureError,
    generate_prime,
    generate_rsa_keypair,
    is_probable_prime,
    open_box,
    pkcs1_decrypt,
    pkcs1_encrypt,
    pkcs1_sign,
    pkcs1_verify,
    seal_box,
    sha1,
)
from repro.crypto.pkcs1 import require_valid_signature
from repro.crypto.rsa import RsaPublicKey


@pytest.fixture(scope="module")
def keypair():
    return generate_rsa_keypair(512, HmacDrbg(b"test-rsa"))


@pytest.fixture(scope="module")
def other_keypair():
    return generate_rsa_keypair(512, HmacDrbg(b"other-rsa"))


class TestPrimes:
    def test_known_primes(self):
        for p in (2, 3, 5, 7, 97, 7919, 104729):
            assert is_probable_prime(p)

    def test_known_composites(self):
        for c in (0, 1, 4, 100, 561, 7917, 104730):
            assert not is_probable_prime(c)

    def test_carmichael_numbers_rejected(self):
        # Classic Fermat-test foolers; Miller-Rabin must catch them.
        for c in (561, 1105, 1729, 2465, 2821, 6601):
            assert not is_probable_prime(c)

    def test_generated_prime_has_exact_bits(self):
        drbg = HmacDrbg(b"primes")
        for bits in (64, 128, 256):
            p = generate_prime(bits, drbg)
            assert p.bit_length() == bits
            assert is_probable_prime(p)

    def test_tiny_primes_refused(self):
        with pytest.raises(ValueError):
            generate_prime(4, HmacDrbg(b"x"))


class TestRsaKeys:
    def test_keygen_deterministic(self):
        a = generate_rsa_keypair(512, HmacDrbg(b"det"))
        b = generate_rsa_keypair(512, HmacDrbg(b"det"))
        assert a.public == b.public and a.d == b.d

    def test_keygen_cache_replays_exact_state(self):
        """A cache hit returns the identical keypair AND leaves the DRBG
        in the identical state, so downstream draws are unaffected."""
        from repro.crypto.rsa import _KEYGEN_CACHE

        _KEYGEN_CACHE.clear()
        cold_drbg = HmacDrbg(b"cache-replay")
        cold = generate_rsa_keypair(512, cold_drbg)
        cold_after = cold_drbg.generate(32)

        warm_drbg = HmacDrbg(b"cache-replay")
        warm = generate_rsa_keypair(512, warm_drbg)
        assert warm is cold  # served from the cache, not regenerated
        assert warm_drbg.generate(32) == cold_after
        assert warm_drbg.bytes_generated == cold_drbg.bytes_generated

    @pytest.mark.slow
    def test_keygen_1024_differential_across_backends(self):
        """Full-width keygen, cache bypassed, under both crypto backends:
        the prime search consumes a long DRBG stream, so this is the
        deepest single exercise of backend stream equality."""
        from repro.crypto.backend import use_backend
        from repro.crypto.rsa import _generate_rsa_keypair

        with use_backend("pure"):
            pure = _generate_rsa_keypair(1024, HmacDrbg(b"slow-keygen"), 65537)
        with use_backend("accel"):
            accel = _generate_rsa_keypair(1024, HmacDrbg(b"slow-keygen"), 65537)
        assert pure == accel
        assert pure.public.bits >= 1023

    def test_roundtrip_raw(self, keypair):
        message = 123456789
        assert keypair.raw_decrypt(keypair.public.raw_encrypt(message)) == message

    def test_crt_matches_plain_exponentiation(self, keypair):
        c = 2**200 + 12345
        assert keypair.raw_decrypt(c) == pow(c, keypair.d, keypair.n)

    def test_public_key_serialization_roundtrip(self, keypair):
        data = keypair.public.to_bytes()
        restored = RsaPublicKey.from_bytes(data)
        assert restored == keypair.public

    def test_fingerprint_is_stable_and_distinct(self, keypair, other_keypair):
        assert keypair.public.fingerprint() == keypair.public.fingerprint()
        assert keypair.public.fingerprint() != other_keypair.public.fingerprint()

    def test_out_of_range_rejected(self, keypair):
        with pytest.raises(ValueError):
            keypair.public.raw_encrypt(keypair.n)
        with pytest.raises(ValueError):
            keypair.raw_decrypt(-1)

    def test_small_keys_refused(self):
        with pytest.raises(ValueError):
            generate_rsa_keypair(256, HmacDrbg(b"small"))


class TestMalformedSerialization:
    """`from_bytes` must reject every malformed buffer loudly — a
    truncated slice or trailing garbage silently parsing into a
    *different* key means a corrupted enrollment yields a wrong
    identity instead of an error."""

    def test_truncated_n_length_prefix(self):
        for data in (b"", b"\x00", b"\x00\x00\x04"):
            with pytest.raises(ValueError, match="malformed"):
                RsaPublicKey.from_bytes(data)

    def test_declared_n_exceeds_buffer(self, keypair):
        data = keypair.public.to_bytes()
        inflated = (len(data)).to_bytes(4, "big") + data[4:]
        with pytest.raises(ValueError, match="exceeds buffer"):
            RsaPublicKey.from_bytes(inflated)

    def test_truncated_n_slice(self, keypair):
        data = keypair.public.to_bytes()
        with pytest.raises(ValueError, match="malformed"):
            RsaPublicKey.from_bytes(data[: 4 + 10])

    def test_missing_e_length_prefix(self, keypair):
        n_len = int.from_bytes(keypair.public.to_bytes()[:4], "big")
        with pytest.raises(ValueError, match="malformed"):
            RsaPublicKey.from_bytes(keypair.public.to_bytes()[: 4 + n_len])

    def test_truncated_e_slice(self, keypair):
        data = keypair.public.to_bytes()
        with pytest.raises(ValueError, match="malformed"):
            RsaPublicKey.from_bytes(data[:-1])

    def test_trailing_garbage_rejected(self, keypair):
        data = keypair.public.to_bytes()
        with pytest.raises(ValueError, match="trailing"):
            RsaPublicKey.from_bytes(data + b"\x00")
        with pytest.raises(ValueError, match="trailing"):
            RsaPublicKey.from_bytes(data + data)

    def test_zero_length_fields_rejected(self):
        zero_n = (0).to_bytes(4, "big") + (1).to_bytes(4, "big") + b"\x03"
        with pytest.raises(ValueError, match="malformed"):
            RsaPublicKey.from_bytes(zero_n)
        zero_e = (1).to_bytes(4, "big") + b"\x05" + (0).to_bytes(4, "big")
        with pytest.raises(ValueError, match="malformed"):
            RsaPublicKey.from_bytes(zero_e)

    def test_zero_valued_key_material_rejected(self):
        data = (
            (1).to_bytes(4, "big") + b"\x00"
            + (1).to_bytes(4, "big") + b"\x03"
        )
        with pytest.raises(ValueError, match="malformed"):
            RsaPublicKey.from_bytes(data)

    @given(st.binary(max_size=64))
    @settings(max_examples=200, deadline=None)
    def test_arbitrary_bytes_never_parse_silently_wrong(self, data):
        """Any buffer either parses to a key that re-serializes into a
        buffer from_bytes accepts, or raises ValueError — never a
        silent wrong parse."""
        try:
            key = RsaPublicKey.from_bytes(data)
        except ValueError:
            return
        assert RsaPublicKey.from_bytes(key.to_bytes()) == key


class TestKeygenCacheBound:
    @pytest.fixture(autouse=True)
    def clean_cache(self, clean_keygen_cache):
        """Cold cache per test; restored by the shared conftest fixture."""

    def test_stats_shape_and_counting(self):
        from repro.crypto.rsa import keygen_cache_stats

        stats = keygen_cache_stats()
        assert stats == {"hits": 0, "misses": 0, "evictions": 0,
                         "entries": 0}
        generate_rsa_keypair(512, HmacDrbg(b"stats-a"))
        generate_rsa_keypair(512, HmacDrbg(b"stats-a"))
        generate_rsa_keypair(512, HmacDrbg(b"stats-b"))
        stats = keygen_cache_stats()
        assert stats["misses"] == 2
        assert stats["hits"] == 1
        assert stats["entries"] == 2
        assert stats["evictions"] == 0

    def test_cache_bounded_with_eviction(self, monkeypatch):
        from repro.crypto import rsa as module

        monkeypatch.setattr(module, "KEYGEN_CACHE_LIMIT", 3)
        for index in range(5):
            generate_rsa_keypair(
                512, HmacDrbg(b"evict:%d" % index)
            )
        stats = module.keygen_cache_stats()
        assert stats["entries"] == 3
        assert stats["evictions"] == 2
        # Oldest entries evicted: seed 0 regenerates (miss), the newest
        # replays (hit).
        generate_rsa_keypair(512, HmacDrbg(b"evict:4"))
        assert module.keygen_cache_stats()["hits"] == 1
        generate_rsa_keypair(512, HmacDrbg(b"evict:0"))
        assert module.keygen_cache_stats()["misses"] == 6

    def test_lru_order_hit_refreshes(self, monkeypatch):
        from repro.crypto import rsa as module

        monkeypatch.setattr(module, "KEYGEN_CACHE_LIMIT", 2)
        generate_rsa_keypair(512, HmacDrbg(b"lru:a"))
        generate_rsa_keypair(512, HmacDrbg(b"lru:b"))
        generate_rsa_keypair(512, HmacDrbg(b"lru:a"))  # refresh a
        generate_rsa_keypair(512, HmacDrbg(b"lru:c"))  # evicts b
        before = module.keygen_cache_stats()["misses"]
        generate_rsa_keypair(512, HmacDrbg(b"lru:a"))  # still cached
        assert module.keygen_cache_stats()["misses"] == before

    def test_clear_resets_everything(self):
        from repro.crypto.rsa import clear_keygen_cache, keygen_cache_stats

        generate_rsa_keypair(512, HmacDrbg(b"clear-me"))
        assert keygen_cache_stats()["entries"] == 1
        clear_keygen_cache()
        assert keygen_cache_stats() == {
            "hits": 0, "misses": 0, "evictions": 0, "entries": 0,
        }

    def test_evicted_entry_regenerates_identically(self, monkeypatch):
        from repro.crypto import rsa as module

        monkeypatch.setattr(module, "KEYGEN_CACHE_LIMIT", 1)
        first = generate_rsa_keypair(512, HmacDrbg(b"regen"))
        generate_rsa_keypair(512, HmacDrbg(b"displacer"))
        again = generate_rsa_keypair(512, HmacDrbg(b"regen"))
        assert again is not first  # regenerated, not replayed
        assert again == first      # but bit-identical


class TestPkcs1Signatures:
    def test_sign_verify_roundtrip(self, keypair):
        signature = pkcs1_sign(keypair, b"message")
        assert pkcs1_verify(keypair.public, b"message", signature)

    def test_tampered_message_fails(self, keypair):
        signature = pkcs1_sign(keypair, b"message")
        assert not pkcs1_verify(keypair.public, b"messagE", signature)

    def test_tampered_signature_fails(self, keypair):
        signature = bytearray(pkcs1_sign(keypair, b"message"))
        signature[10] ^= 0xFF
        assert not pkcs1_verify(keypair.public, b"message", bytes(signature))

    def test_wrong_key_fails(self, keypair, other_keypair):
        signature = pkcs1_sign(keypair, b"message")
        assert not pkcs1_verify(other_keypair.public, b"message", signature)

    def test_wrong_length_signature_fails(self, keypair):
        assert not pkcs1_verify(keypair.public, b"m", b"\x00" * 63)

    def test_prehashed_mode(self, keypair):
        digest = sha1(b"payload")
        signature = pkcs1_sign(keypair, digest, prehashed=True)
        assert pkcs1_verify(keypair.public, digest, signature, prehashed=True)
        # And it equals signing the message in non-prehashed mode.
        assert signature == pkcs1_sign(keypair, b"payload")

    def test_sha256_mode(self, keypair):
        signature = pkcs1_sign(keypair, b"m", hash_name="sha256")
        assert pkcs1_verify(keypair.public, b"m", signature, hash_name="sha256")
        assert not pkcs1_verify(keypair.public, b"m", signature, hash_name="sha1")

    def test_prehashed_wrong_length_rejected(self, keypair):
        with pytest.raises(ValueError):
            pkcs1_sign(keypair, b"tooshort", prehashed=True)

    def test_require_valid_signature_raises(self, keypair):
        with pytest.raises(SignatureError):
            require_valid_signature(keypair.public, b"m", b"\x01" * 64)

    @given(st.binary(min_size=1, max_size=200))
    @settings(max_examples=25, deadline=None)
    def test_property_roundtrip(self, message):
        kp = generate_rsa_keypair(512, HmacDrbg(b"prop-key"))
        signature = pkcs1_sign(kp, message)
        assert pkcs1_verify(kp.public, message, signature)
        assert not pkcs1_verify(kp.public, message + b"x", signature)


class TestPkcs1Encryption:
    def test_roundtrip(self, keypair):
        drbg = HmacDrbg(b"enc")
        ciphertext = pkcs1_encrypt(keypair.public, b"secret", drbg)
        assert pkcs1_decrypt(keypair, ciphertext) == b"secret"

    def test_too_long_rejected(self, keypair):
        limit = keypair.byte_length - 11
        with pytest.raises(ValueError):
            pkcs1_encrypt(keypair.public, b"x" * (limit + 1), HmacDrbg(b"e"))

    def test_wrong_key_decryption_fails(self, keypair, other_keypair):
        ciphertext = pkcs1_encrypt(keypair.public, b"secret", HmacDrbg(b"e"))
        with pytest.raises(SignatureError):
            pkcs1_decrypt(other_keypair, ciphertext)

    def test_truncated_ciphertext_rejected(self, keypair):
        ciphertext = pkcs1_encrypt(keypair.public, b"secret", HmacDrbg(b"e"))
        with pytest.raises(SignatureError):
            pkcs1_decrypt(keypair, ciphertext[:-1])


class TestSealBox:
    def test_roundtrip(self):
        box = seal_box(b"K" * 32, b"payload", b"N" * 16)
        assert open_box(b"K" * 32, box) == b"payload"

    def test_wrong_key_fails(self):
        box = seal_box(b"K" * 32, b"payload", b"N" * 16)
        with pytest.raises(AuthenticationError):
            open_box(b"L" * 32, box)

    def test_tamper_detected_everywhere(self):
        box = bytearray(seal_box(b"K" * 32, b"payload-abcdef", b"N" * 16))
        for position in (0, 16, len(box) - 1):
            tampered = bytearray(box)
            tampered[position] ^= 0x01
            with pytest.raises(AuthenticationError):
                open_box(b"K" * 32, bytes(tampered))

    def test_too_short_rejected(self):
        with pytest.raises(AuthenticationError):
            open_box(b"K" * 32, b"short")

    def test_bad_nonce_length_rejected(self):
        with pytest.raises(ValueError):
            seal_box(b"K" * 32, b"p", b"short-nonce")

    @given(st.binary(max_size=1024), st.binary(min_size=16, max_size=16))
    def test_property_roundtrip(self, payload, nonce):
        box = seal_box(b"key-material-000" * 2, payload, nonce)
        assert open_box(b"key-material-000" * 2, box) == payload
