"""Repository hygiene: docs exist, public API is documented, the
experiment index maps to real bench files."""

from __future__ import annotations

import importlib
import pathlib
import pkgutil


import repro

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
SUBPACKAGES = [
    "sim", "crypto", "hardware", "tpm", "drtm", "os", "net",
    "server", "core", "baselines", "user", "bench",
]


def _all_modules():
    package_path = pathlib.Path(repro.__file__).parent
    for info in pkgutil.walk_packages([str(package_path)], prefix="repro."):
        yield info.name


class TestDocumentation:
    def test_required_docs_exist(self):
        for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md"):
            path = REPO_ROOT / name
            assert path.exists(), f"{name} missing"

    def test_design_lists_every_subpackage(self):
        design = (REPO_ROOT / "DESIGN.md").read_text(encoding="utf-8")
        for subpackage in SUBPACKAGES:
            assert f"repro.{subpackage}" in design, subpackage

    def test_every_module_has_a_docstring(self):
        undocumented = []
        for name in _all_modules():
            module = importlib.import_module(name)
            if not (module.__doc__ or "").strip():
                undocumented.append(name)
        assert not undocumented, f"modules without docstrings: {undocumented}"

    def test_every_public_class_and_function_documented(self):
        import inspect

        undocumented = []
        for name in _all_modules():
            module = importlib.import_module(name)
            for attr_name, attr in vars(module).items():
                if attr_name.startswith("_"):
                    continue
                if not (inspect.isclass(attr) or inspect.isfunction(attr)):
                    continue
                if getattr(attr, "__module__", None) != name:
                    continue  # re-export; documented at its home
                if not (attr.__doc__ or "").strip():
                    undocumented.append(f"{name}.{attr_name}")
        assert not undocumented, (
            f"public items without docstrings: {undocumented}"
        )

    def test_public_api_exports_resolve(self):
        for name in repro.__all__:
            if name == "__version__":
                continue
            assert getattr(repro, name, None) is not None, name

    def test_examples_in_readme_exist(self):
        readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
        examples_dir = REPO_ROOT / "examples"
        for script in examples_dir.glob("*.py"):
            assert script.name in readme, f"{script.name} not mentioned in README"


class TestExperimentIndex:
    def test_every_index_entry_has_a_bench_file(self):
        design = (REPO_ROOT / "DESIGN.md").read_text(encoding="utf-8")
        benchmarks_dir = REPO_ROOT / "benchmarks"
        for line in design.splitlines():
            if "benchmarks/bench_" in line:
                filename = line.split("benchmarks/")[1].split("`")[0]
                assert (benchmarks_dir / filename).exists(), filename

    def test_every_bench_file_is_in_the_index(self):
        design = (REPO_ROOT / "DESIGN.md").read_text(encoding="utf-8")
        for bench in (REPO_ROOT / "benchmarks").glob("bench_*.py"):
            assert bench.name in design, f"{bench.name} not in DESIGN.md index"


class TestPackagingMetadata:
    def test_version_consistent(self):
        pyproject = (REPO_ROOT / "pyproject.toml").read_text(encoding="utf-8")
        assert f'version = "{repro.__version__}"' in pyproject

    def test_setup_shim_matches(self):
        setup_py = (REPO_ROOT / "setup.py").read_text(encoding="utf-8")
        assert repro.__version__ in setup_py
