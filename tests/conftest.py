"""Shared fixtures.

World construction costs real seconds (RSA key generation for EK, SRK,
AIK, CA), so read-mostly integration tests share module- or
session-scoped worlds, while tests that mutate state build fresh ones
through the `fresh_world` factory.  Pure unit tests use the cheap
`instant_tpm` / `simulator` fixtures and never pay for a world.
"""

from __future__ import annotations

import pytest

from repro.bench.world import TrustedPathWorld, WorldConfig
from repro.hardware.machine import Machine
from repro.sim import Simulator
from repro.tpm.device import TpmDevice
from repro.tpm.timing import instant_profile, vendor_profile


@pytest.fixture
def simulator() -> Simulator:
    return Simulator(seed=1234)


@pytest.fixture
def instant_tpm(simulator: Simulator) -> TpmDevice:
    """A started TPM with zero command latency (behavioural tests)."""
    tpm = TpmDevice(
        clock=simulator.clock,
        profile=instant_profile(),
        seed=simulator.rng.derive_seed("test-tpm"),
    )
    tpm.startup()
    return tpm


@pytest.fixture
def timed_tpm(simulator: Simulator) -> TpmDevice:
    """A started TPM with the Infineon latency profile (timing tests)."""
    tpm = TpmDevice(
        clock=simulator.clock,
        profile=vendor_profile("infineon"),
        seed=simulator.rng.derive_seed("test-tpm-timed"),
    )
    tpm.startup()
    return tpm


@pytest.fixture
def machine(simulator: Simulator) -> Machine:
    """A powered-on machine with an instant-latency TPM."""
    tpm = TpmDevice(
        clock=simulator.clock,
        profile=instant_profile(),
        seed=simulator.rng.derive_seed("machine-tpm"),
    )
    built = Machine(tpm)
    built.power_on()
    return built


@pytest.fixture
def fresh_world():
    """Factory for fully wired worlds; each call is independent."""

    def build(seed: int = 7, vendor: str = "infineon", **overrides) -> TrustedPathWorld:
        config = WorldConfig(seed=seed, vendor=vendor, **overrides)
        return TrustedPathWorld(config)

    return build


@pytest.fixture(scope="module")
def shared_ready_world() -> TrustedPathWorld:
    """A module-scoped world that completed enrollment and setup.

    Tests using it must only *add* transactions (never rely on absolute
    balances or transaction counts).
    """
    return TrustedPathWorld(WorldConfig(seed=4242)).ready()


@pytest.fixture
def clean_keygen_cache():
    """Deterministically cold RSA keygen replay cache.

    Snapshots the process-wide cache and its counters, clears both for
    the test, and restores afterwards — so cache-behaviour tests see a
    cold start without robbing the rest of the suite of its warm-cache
    speedup.
    """
    from repro.crypto import rsa as rsa_module

    saved_entries = dict(rsa_module._KEYGEN_CACHE)
    saved_stats = dict(rsa_module._KEYGEN_CACHE_STATS)
    rsa_module.clear_keygen_cache()
    yield
    rsa_module.clear_keygen_cache()
    rsa_module._KEYGEN_CACHE.update(saved_entries)
    rsa_module._KEYGEN_CACHE_STATS.update(saved_stats)
