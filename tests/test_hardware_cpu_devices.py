"""CPU modes and locality tokens; keyboard and display devices."""

from __future__ import annotations

import pytest

from repro.hardware.cpu import Cpu, CpuMode, HardwareError
from repro.hardware.display import COLUMNS, ROWS, VgaTextDisplay
from repro.hardware.keyboard import KeyboardError, Ps2KeyboardController, ScanCode


class TestCpu:
    def test_power_on_sequence(self):
        cpu = Cpu()
        assert cpu.mode is CpuMode.OFF
        cpu.power_on()
        assert cpu.mode is CpuMode.RUNNING_OS
        assert cpu.interrupts_enabled
        with pytest.raises(HardwareError):
            cpu.power_on()

    def test_late_launch_lifecycle(self):
        cpu = Cpu()
        cpu.power_on()
        token = cpu.enter_late_launch()
        assert token.locality == 4 and token.valid
        assert cpu.mode is CpuMode.LATE_LAUNCH
        assert not cpu.interrupts_enabled
        cpu.exit_late_launch()
        assert cpu.mode is CpuMode.RUNNING_OS
        assert not token.valid  # the one-shot token was revoked

    def test_no_nested_late_launch(self):
        cpu = Cpu()
        cpu.power_on()
        cpu.enter_late_launch()
        with pytest.raises(HardwareError):
            cpu.enter_late_launch()

    def test_skinit_requires_running_os(self):
        cpu = Cpu()
        with pytest.raises(HardwareError):
            cpu.enter_late_launch()

    def test_interrupts_stay_off_during_launch(self):
        cpu = Cpu()
        cpu.power_on()
        cpu.enter_late_launch()
        with pytest.raises(HardwareError):
            cpu.enable_interrupts()

    def test_locality_tokens_match_mode(self):
        cpu = Cpu()
        cpu.power_on()
        assert cpu.os_locality().locality == 0
        with pytest.raises(HardwareError):
            cpu.pal_locality()  # no PAL running
        cpu.enter_late_launch()
        assert cpu.pal_locality().locality == 2
        with pytest.raises(HardwareError):
            cpu.os_locality()  # the OS is suspended

    def test_exit_without_launch_rejected(self):
        cpu = Cpu()
        cpu.power_on()
        with pytest.raises(HardwareError):
            cpu.exit_late_launch()


class TestKeyboard:
    def test_fifo_order(self):
        keyboard = Ps2KeyboardController()
        keyboard.press_physical_key(ScanCode.KEY_Y)
        keyboard.press_physical_key(ScanCode.KEY_N)
        assert keyboard.read_scancode("os") == ScanCode.KEY_Y
        assert keyboard.read_scancode("os") == ScanCode.KEY_N
        assert keyboard.read_scancode("os") is None

    def test_overrun_drops_silently(self):
        keyboard = Ps2KeyboardController()
        for _ in range(keyboard.FIFO_CAPACITY + 5):
            keyboard.press_physical_key(ScanCode.KEY_1)
        assert keyboard.pending == keyboard.FIFO_CAPACITY
        assert keyboard.overruns == 5

    def test_ownership_enforced(self):
        keyboard = Ps2KeyboardController()
        keyboard.claim("pal")
        keyboard.press_physical_key(ScanCode.KEY_Y)
        with pytest.raises(KeyboardError):
            keyboard.read_scancode("os")
        assert keyboard.read_scancode("pal") == ScanCode.KEY_Y
        keyboard.release_to_os()
        keyboard.press_physical_key(ScanCode.KEY_N)
        assert keyboard.read_scancode("os") == ScanCode.KEY_N

    def test_drain_requires_ownership(self):
        keyboard = Ps2KeyboardController()
        keyboard.press_physical_key(ScanCode.KEY_1)
        keyboard.claim("pal")
        with pytest.raises(KeyboardError):
            keyboard.drain("os")
        keyboard.drain("pal")
        assert keyboard.pending == 0


class TestDisplay:
    def test_write_and_snapshot(self):
        display = VgaTextDisplay()
        display.write_text("os", 0, 0, "hello")
        assert display.snapshot().splitlines()[0] == "hello"

    def test_clipping_at_line_end(self):
        display = VgaTextDisplay()
        display.write_text("os", 0, COLUMNS - 3, "abcdef")
        assert display.snapshot().splitlines()[0].endswith("abc")

    def test_out_of_range_rejected(self):
        display = VgaTextDisplay()
        with pytest.raises(ValueError):
            display.write_text("os", ROWS, 0, "x")
        with pytest.raises(ValueError):
            display.write_text("os", 0, COLUMNS, "x")

    def test_ownership(self):
        display = VgaTextDisplay()
        display.acquire("malware")  # any software may paint while OS runs
        display.write_text("malware", 0, 0, "fake screen")
        with pytest.raises(PermissionError):
            display.write_text("os", 1, 0, "blocked")
        display.release("malware")
        display.write_text("os", 1, 0, "ok")

    def test_pinning_blocks_takeover(self):
        display = VgaTextDisplay()
        display.acquire("pal", pin=True)
        with pytest.raises(PermissionError):
            display.acquire("malware")
        display.release("pal")
        display.acquire("malware")  # allowed again after release

    def test_release_requires_owner(self):
        display = VgaTextDisplay()
        display.acquire("pal", pin=True)
        with pytest.raises(PermissionError):
            display.release("os")

    def test_frames_history(self):
        display = VgaTextDisplay()
        display.write_text("os", 0, 0, "frame-1")
        display.commit_frame("os")
        display.clear("os")
        display.write_text("os", 0, 0, "frame-2")
        display.commit_frame("os")
        owners = [owner for owner, _ in display.frames]
        assert owners == ["os", "os"]
        assert "frame-2" in display.last_frame()[1]

    def test_visible_text_skips_blank_lines(self):
        display = VgaTextDisplay()
        display.write_text("os", 0, 0, "top")
        display.write_text("os", 5, 0, "bottom")
        assert display.visible_text() == "top\nbottom"
