"""Untrusted disk and client-state persistence."""

from __future__ import annotations

import pytest

from repro.core.errors import TrustedPathError
from repro.os.disk import UntrustedDisk


class TestUntrustedDisk:
    def test_write_read_roundtrip(self):
        disk = UntrustedDisk()
        disk.write_file("a/b", b"data")
        assert disk.read_file("a/b") == b"data"
        assert disk.exists("a/b")

    def test_missing_file_is_none(self):
        assert UntrustedDisk().read_file("ghost") is None

    def test_malware_reads_everything(self):
        disk = UntrustedDisk()
        disk.write_file("secret", b"not actually secret")
        assert disk.malware_read("secret") == b"not actually secret"

    def test_malware_corrupt_flips_a_byte(self):
        disk = UntrustedDisk()
        disk.write_file("f", b"\x00\x00")
        assert disk.malware_corrupt("f", flip_byte=1)
        assert disk.read_file("f") == b"\x00\xff"

    def test_malware_delete(self):
        disk = UntrustedDisk()
        disk.write_file("f", b"x")
        assert disk.malware_delete("f")
        assert not disk.exists("f")
        assert not disk.malware_delete("f")

    def test_listing(self):
        disk = UntrustedDisk()
        disk.write_file("b", b"")
        disk.write_file("a", b"")
        assert disk.list_files() == ["a", "b"]
        assert list(disk) == ["a", "b"]


class TestClientStatePersistence:
    def test_save_load_roundtrip(self, shared_ready_world):
        world = shared_ready_world
        disk = UntrustedDisk()
        world.client.save_state(disk)
        saved = world.client.credentials
        world.client.credentials = None
        restored = world.client.load_state(disk)
        assert restored.aik_public == saved.aik_public
        assert restored.aik_certificate == saved.aik_certificate
        assert set(restored.providers) == set(saved.providers)
        for host in saved.providers:
            assert (
                restored.providers[host].sealed_credential
                == saved.providers[host].sealed_credential
            )

    def test_restored_state_still_confirms(self, fresh_world):
        world = fresh_world(seed=616)
        world.ready()
        disk = UntrustedDisk()
        world.client.save_state(disk)
        world.client.credentials = None
        world.client.load_state(disk)
        outcome = world.confirm(world.sample_transfer(amount_cents=42))
        assert outcome.executed

    def test_corrupt_state_rejected_loudly(self, shared_ready_world):
        world = shared_ready_world
        disk = UntrustedDisk()
        world.client.save_state(disk)
        # Flip a byte inside the AIK public key material (its first
        # occurrence is the copy embedded in the certificate): the
        # cross-check against the standalone copy must catch it.
        raw = bytearray(disk.read_file(world.client.STATE_PATH))
        needle = world.client.credentials.aik_public.to_bytes()
        offset = raw.index(needle) + len(needle) // 2
        raw[offset] ^= 0xFF
        disk.write_file(world.client.STATE_PATH, bytes(raw))
        with pytest.raises(TrustedPathError):
            world.client.load_state(disk)

    def test_missing_state_rejected(self, shared_ready_world):
        with pytest.raises(TrustedPathError):
            shared_ready_world.client.load_state(UntrustedDisk())

    def test_corrupted_sealed_blob_fails_at_unseal_not_before(self, fresh_world):
        """Malware flips a byte inside the sealed credential itself: the
        state file parses, but the TPM rejects the blob inside the next
        PAL session — a clean, detectable failure, not a forgery."""
        world = fresh_world(seed=617)
        world.ready()
        host = world.bank.endpoint.host
        credential = world.client.credentials.providers[host]
        blob = bytearray(credential.sealed_credential)
        blob[len(blob) // 2] ^= 0xFF
        credential.sealed_credential = bytes(blob)
        from repro.core.errors import TrustedPathError as TPError

        with pytest.raises(TPError):
            world.confirm(world.sample_transfer(amount_cents=10))
        # Nothing executed.
        assert not world.bank.executed_transfers
