"""Experiment E4: elastic-pool determinism and shape.

An elastic run — autoscaler ticks, account-range migrations, dual-read
redirects and all — must stay inside the repo's determinism contract:
virtual-time results are a pure function of seed + schedule, identical
across worker fan-out and crypto backends once the real-clock fields
(``wall_s``/``rebalance_wall_s``) are stripped.  The digest-parity
security argument (drained pool == never-scaled pool, bit for bit) is
unit-tested in ``tests/test_rebalance.py``; here the same check runs
through the experiment's own round-trip harness.
"""

from __future__ import annotations

import json

import pytest

from repro.bench.experiments.elasticity import e4_elastic_rows
from repro.bench.runner import Cell, run_cells, strip_wall
from repro.crypto.backend import gmpy2_available, use_backend

#: Backend arms beyond the accel reference (matches test_bench_runner).
RSA_ARMS = ["pure"] + (["gmpy2"] if gmpy2_available() else [])

#: Compressed elastic day: the ×100 spike peaks just above one shard's
#: service capacity, so the autoscaler genuinely fires — the run the
#: determinism claim is made about includes a migration, not a quiet
#: day that never rebalanced.
E4_KWARGS = dict(
    users=3_500, day_seconds=300.0, spike_start=150.0,
    spike_duration_s=10.0, spike_multiplier=100.0,
    roundtrip_accounts=4, seed=99,
)


def _canonical(value) -> str:
    return json.dumps(strip_wall(value), sort_keys=False)


class TestE4Determinism:
    def test_identical_across_worker_counts(self):
        cell = Cell("e4", ("e4",), e4_elastic_rows, E4_KWARGS)
        serial, _, _ = run_cells([cell], workers=1)
        pooled, _, _ = run_cells([cell], workers=4)
        assert _canonical(serial) == _canonical(pooled)

    @pytest.mark.slow
    @pytest.mark.parametrize("arm", RSA_ARMS)
    def test_identical_across_backends(self, arm):
        with use_backend("accel"):
            accel = e4_elastic_rows(**E4_KWARGS)
        with use_backend(arm):
            other = e4_elastic_rows(**E4_KWARGS)
        assert _canonical(accel) == _canonical(other)


class TestE4Shape:
    def test_elastic_day_scales_and_recovers(self):
        result = e4_elastic_rows(**E4_KWARGS)
        row = result["rows"][0]
        # The spike overran the starting shard and the pool responded:
        # grew into it, shrank back out in the trough.
        assert row["shed"] > 0
        assert row["scale_ups"] >= 1
        assert row["drains"] >= 1
        assert row["shards_peak"] > row["shards_start"]
        assert row["shards_end"] == row["shards_start"]
        assert row["accounts_moved"] > 0
        assert row["rebalance_bytes"] > 0
        # The acceptance bar: rebalancing never costs availability.
        assert row["availability"] >= 0.99
        assert row["availability_migration"] >= 0.99
        assert row["migration_sessions"] > 0
        # Accounting balances; nothing vanishes silently.
        assert (
            row["completed"] + row["failed"] + row["dropped_cap"]
            <= row["arrivals"]
        )
        # Round trip: the drained pool is bit-identical to a pool that
        # never scaled.
        assert result["roundtrip"]["digest_match"]
        assert result["roundtrip"]["accounts_moved"] > 0
