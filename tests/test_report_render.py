"""The EXPERIMENTS.md report renderer (formatting only; the full
generation runs via `python -m repro.bench.report`)."""

from __future__ import annotations

from repro.bench.report import _markdown_table, _section


class TestMarkdownTable:
    def test_basic_shape(self):
        rows = [{"a": 1, "b": 2.5}, {"a": 3, "b": 0.0001}]
        rendered = _markdown_table(rows)
        lines = rendered.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "|---|---|"
        assert "| 1 | 2.5 |" in rendered
        assert "0.0001" in rendered

    def test_column_selection(self):
        rows = [{"x": 1, "y": 2}]
        rendered = _markdown_table(rows, columns=["y"])
        assert "x" not in rendered.splitlines()[0]

    def test_empty(self):
        assert "(no rows)" in _markdown_table([])

    def test_missing_cell_blank(self):
        rendered = _markdown_table([{"a": 1}], columns=["a", "b"])
        assert "|  |" in rendered or "|  |" in rendered.replace("| 1 ", "")


class TestSection:
    def test_structure(self):
        section = _section("T9", "title", "expected...", "verdict...", "BODY\n")
        assert "## T9 — title" in section
        assert "**Expected shape.** expected..." in section
        assert "**Verdict.** verdict..." in section
        assert "BODY" in section
