"""The verification memo: a bounded LRU over pure signature checks.

The contract under test: a cached verdict is bit-identical to a cold
verify (same :class:`VerificationResult`, same trace shape), tampered
evidence can never alias a cached entry, and the store stays bounded.
"""

from __future__ import annotations

import pytest

from repro.core.confirmation_pal import confirmation_digest
from repro.crypto import HmacDrbg, generate_rsa_keypair, pkcs1_sign, sha1
from repro.server.policy import VerifierPolicy
from repro.server.verifier import (
    AttestationVerifier,
    VerificationCache,
    VerificationFailure,
)
from repro.sim.kernel import Simulator
from repro.sim.tracing import TraceAnalyzer
from repro.tpm.ca import AikCertificate

PAL_MEASUREMENT = sha1(b"the published PAL")


@pytest.fixture(scope="module")
def ca_key():
    return generate_rsa_keypair(512, HmacDrbg(b"memo-ca"))


@pytest.fixture(scope="module")
def aik_key():
    return generate_rsa_keypair(512, HmacDrbg(b"memo-aik"))


@pytest.fixture(scope="module")
def signing_key():
    return generate_rsa_keypair(512, HmacDrbg(b"memo-signing"))


def _policy(ca_key) -> VerifierPolicy:
    policy = VerifierPolicy()
    policy.approve_pal(PAL_MEASUREMENT)
    policy.trust_ca(ca_key.public)
    return policy


def _certificate(ca_key, aik_key, platform_class="pc") -> AikCertificate:
    body = aik_key.public.to_bytes() + platform_class.encode("utf-8")
    return AikCertificate(
        aik_public=aik_key.public,
        platform_class=platform_class,
        signature=pkcs1_sign(ca_key, body),
    )


class TestCertificateMemo:
    def test_hit_is_bit_identical_to_cold_verify(self, ca_key, aik_key):
        cache = VerificationCache()
        warm = AttestationVerifier(_policy(ca_key), cache=cache)
        cold = AttestationVerifier(_policy(ca_key), cache=None)
        certificate = _certificate(ca_key, aik_key)
        cold_result = cold.verify_aik_certificate(certificate)
        first = warm.verify_aik_certificate(certificate)
        assert cache.stats() == {
            "hits": 0, "misses": 1, "evictions": 0, "entries": 1,
        }
        second = warm.verify_aik_certificate(certificate)
        assert cache.stats()["hits"] == 1
        assert first == cold_result
        assert second == cold_result

    def test_tampered_certificate_never_aliases_the_cached_entry(
        self, ca_key, aik_key
    ):
        cache = VerificationCache()
        verifier = AttestationVerifier(_policy(ca_key), cache=cache)
        genuine = _certificate(ca_key, aik_key)
        assert verifier.verify_aik_certificate(genuine).ok
        assert verifier.verify_aik_certificate(genuine).ok  # warm
        hits_before = cache.hits
        misses_before = cache.misses
        flipped = bytes([genuine.signature[0] ^ 1]) + genuine.signature[1:]
        tampered = AikCertificate(
            aik_public=genuine.aik_public,
            platform_class=genuine.platform_class,
            signature=flipped,
        )
        result = verifier.verify_aik_certificate(tampered)
        assert not result.ok
        assert result.failure is VerificationFailure.BAD_CA_SIGNATURE
        assert cache.hits == hits_before  # no alias onto the genuine entry
        assert cache.misses == misses_before + 1

    def test_tampered_body_also_misses(self, ca_key, aik_key):
        cache = VerificationCache()
        verifier = AttestationVerifier(_policy(ca_key), cache=cache)
        genuine = _certificate(ca_key, aik_key)
        assert verifier.verify_aik_certificate(genuine).ok
        reclassed = AikCertificate(
            aik_public=genuine.aik_public,
            platform_class=genuine.platform_class + "-evil",
            signature=genuine.signature,
        )
        result = verifier.verify_aik_certificate(reclassed)
        assert not result.ok
        assert cache.hits == 0


class TestSignedConfirmationMemo:
    TEXT = b"transfer 123 to carol"
    NONCE = b"m" * 20

    def test_repeat_evidence_hits_and_matches(self, ca_key, signing_key):
        cache = VerificationCache()
        warm = AttestationVerifier(_policy(ca_key), cache=cache)
        cold = AttestationVerifier(_policy(ca_key), cache=None)
        digest = confirmation_digest(self.TEXT, self.NONCE, b"accept")
        signature = pkcs1_sign(signing_key, digest, prehashed=True)

        def verify(verifier):
            return verifier.verify_signed_confirmation(
                signing_key.public, signature, self.TEXT, self.NONCE, b"accept"
            )

        cold_result = verify(cold)
        assert verify(warm) == cold_result
        assert verify(warm) == cold_result
        assert cache.hits == 1 and cache.misses == 1

    def test_forged_signature_rejected_with_genuine_entry_cached(
        self, ca_key, signing_key
    ):
        cache = VerificationCache()
        verifier = AttestationVerifier(_policy(ca_key), cache=cache)
        digest = confirmation_digest(self.TEXT, self.NONCE, b"accept")
        genuine = pkcs1_sign(signing_key, digest, prehashed=True)
        assert verifier.verify_signed_confirmation(
            signing_key.public, genuine, self.TEXT, self.NONCE, b"accept"
        ).ok
        attacker = generate_rsa_keypair(512, HmacDrbg(b"memo-attacker"))
        forged = pkcs1_sign(attacker, digest, prehashed=True)
        result = verifier.verify_signed_confirmation(
            signing_key.public, forged, self.TEXT, self.NONCE, b"accept"
        )
        assert result.failure is VerificationFailure.BAD_SIGNATURE
        assert cache.hits == 0


class TestBounds:
    def test_lru_eviction_keeps_capacity(self, ca_key, signing_key):
        cache = VerificationCache(capacity=2)
        verifier = AttestationVerifier(_policy(ca_key), cache=cache)
        signatures = []
        for index in range(3):
            digest = confirmation_digest(
                b"tx %d" % index, b"n" * 20, b"accept"
            )
            signatures.append(
                (digest, pkcs1_sign(signing_key, digest, prehashed=True))
            )
            assert verifier.verify_signed_confirmation(
                signing_key.public, signatures[-1][1],
                b"tx %d" % index, b"n" * 20, b"accept",
            ).ok
        assert len(cache) == 2
        assert cache.evictions == 1
        # The evicted (oldest) entry re-verifies from scratch — still ok.
        misses_before = cache.misses
        assert verifier.verify_signed_confirmation(
            signing_key.public, signatures[0][1], b"tx 0", b"n" * 20, b"accept"
        ).ok
        assert cache.misses == misses_before + 1

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            VerificationCache(capacity=0)


class TestTracedDeterminism:
    def test_traced_verdicts_and_spans_identical_cache_on_and_off(
        self, ca_key, aik_key, signing_key
    ):
        """The memo must be invisible in virtual time: a traced run with
        the cache enabled records the same span forest (names, virtual
        timestamps) and the same verdicts as a cold run."""

        def run(with_cache):
            sim = Simulator(seed=5, tracing=True)
            verifier = AttestationVerifier(
                _policy(ca_key), tracer=sim.tracer,
                cache=VerificationCache() if with_cache else None,
            )
            certificate = _certificate(ca_key, aik_key)
            digest = confirmation_digest(b"t", b"n" * 20, b"accept")
            signature = pkcs1_sign(signing_key, digest, prehashed=True)
            verdicts = []
            for _ in range(3):
                verdicts.append(verifier.verify_aik_certificate(certificate))
                verdicts.append(
                    verifier.verify_signed_confirmation(
                        signing_key.public, signature, b"t", b"n" * 20,
                        b"accept",
                    )
                )
            spans = [
                (span.name, span.start, span.end)
                for span in TraceAnalyzer(sim.tracer).iter_spans()
            ]
            return verdicts, spans

        assert run(True) == run(False)
