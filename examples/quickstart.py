#!/usr/bin/env python3
"""Quickstart: one attested transaction confirmation, end to end.

Builds a complete simulated deployment — a machine with a TPM, an
untrusted OS, a human at the keyboard, a Privacy CA and a bank — then
runs the paper's protocol once and prints what happened.

Run:  python examples/quickstart.py
"""

from repro import Transaction, TrustedPathWorld


def main() -> None:
    # A fully wired world: platform + OS + human + CA + bank, with AIK
    # enrollment and the one-time setup phase already performed.
    world = TrustedPathWorld().ready()

    # The user decides to pay Bob 129.99 (amounts are integer cents).
    transaction = Transaction(
        kind="transfer",
        account="alice",
        fields={"to": "bob", "amount": 12_999},
    )

    outcome = world.confirm(transaction)

    print("decision        :", outcome.decision.decode())
    print("server status   :", outcome.server_response["status"])
    print("receipt         :", outcome.server_response["receipt"])
    print("alice's balance :", world.bank.balance_of("alice") / 100)
    print("bob's balance   :", world.bank.balance_of("bob") / 100)
    print()
    print("session latency breakdown (simulated seconds):")
    for phase, seconds in outcome.session.breakdown.items():
        print(f"  {phase:<10} {seconds:8.4f}")
    print(f"  {'total':<10} {outcome.session.total_seconds:8.4f}")
    print(
        "perceived machine overhead:",
        f"{outcome.session.perceived_overhead:.4f}s",
        "(TPM unseal hidden behind the human's reading time)",
    )

    assert outcome.executed
    print("\nOK — the provider executed only after verifying the attested,"
          " human-issued confirmation.")


if __name__ == "__main__":
    main()
