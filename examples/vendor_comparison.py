#!/usr/bin/env python3
"""Vendor comparison: how TPM choice shapes the deployment.

Reproduces the paper's performance story across the four simulated TPM
vendors: per-session latency for both evidence variants, the one-time
setup cost, and the transaction count at which the signed variant's
setup pays for itself.

Run:  python examples/vendor_comparison.py
"""

from repro.bench.experiments.amortization import crossover_k, measure_per_vendor_costs
from repro.bench.experiments.session_breakdown import table2_session_breakdown
from repro.bench.tables import format_table
from repro.tpm.timing import VENDOR_PROFILES


def main() -> None:
    vendors = tuple(sorted(VENDOR_PROFILES))
    rows = table2_session_breakdown(vendors=vendors, repetitions=3)
    print(
        format_table(
            "Per-session latency by vendor (virtual seconds)",
            rows,
            columns=["vendor", "variant", "pal_tpm", "pal_human",
                     "total", "perceived_overhead"],
        )
    )

    summary = []
    for vendor in vendors:
        costs = measure_per_vendor_costs(vendor)
        summary.append(
            {
                "vendor": vendor,
                "setup_s": costs["setup_cost"],
                "signed_tx_s": costs["signed_per_tx"],
                "quote_tx_s": costs["quote_per_tx"],
                "crossover_k": crossover_k(vendor),
            }
        )
    print(
        format_table(
            "Setup amortization by vendor",
            summary,
            notes="crossover_k = transactions until the signed variant's "
            "cumulative perceived overhead drops below the quote variant's",
        )
    )
    print("Takeaway: on every vendor the signed variant is the right "
          "deployment once a user confirms more than a handful of "
          "transactions — and its per-transaction TPM work hides behind "
          "the human's reading time.")


if __name__ == "__main__":
    main()
