#!/usr/bin/env python3
"""Online banking under attack: the paper's motivating scenario.

Alice pays her bills through a bank that requires trusted-path
confirmation, while a man-in-the-browser on her machine rewrites every
transfer to send 4,500.00 to a mule account.  The genuine PAL displays
the *server's* canonical text, so Alice sees the mule and rejects; her
legitimate transfers (untouched by the rewrite rule, which only fires
when the fields match) go through.

Run:  python examples/online_banking.py
"""

from repro import Transaction, TrustedPathWorld, WorldConfig
from repro.bench.workloads import transfer_stream
from repro.os.malware import ManInTheBrowser
from repro.server.provider import TxStatus

MULE = "mule-account-742"


def main() -> None:
    world = TrustedPathWorld(WorldConfig(seed=2024, vendor="stmicro")).ready()
    bank = world.bank

    print("== phase 1: normal bill payments ==")
    rng = world.simulator.rng.stream("workload")
    for transaction in transfer_stream("alice", rng, count=4):
        outcome = world.confirm(transaction)
        print(
            f"  {transaction.fields['to']:<14} "
            f"{transaction.fields['amount'] / 100:>9.2f}  ->  "
            f"{outcome.server_response['status']}"
        )

    print("\n== phase 2: a man-in-the-browser moves in ==")
    mitb = ManInTheBrowser(rewrite={"f.to": MULE, "f.amount": 450_000})
    world.os.install_malware(mitb)
    intended = Transaction(
        kind="transfer", account="alice", fields={"to": "rent-llc", "amount": 95_000}
    )
    outcome = world.confirm(intended)
    print("  alice intended : rent-llc 950.00")
    print(f"  malware sent   : {MULE} 4500.00")
    pal_screen = next(
        frame for owner, frame in world.machine.display.frames[::-1]
        if owner == "pal"
    )
    print("  the PAL showed the SERVER's text:")
    for line in pal_screen.splitlines()[:6]:
        print(f"    | {line}")
    print(f"  alice's decision: {outcome.decision.decode()}")
    print(f"  server status   : {outcome.server_response['status']}")

    print("\n== ground truth ==")
    print(f"  money reaching the mule : {bank.total_stolen_by(MULE) / 100:.2f}")
    print(f"  executed transfers      : {len(bank.executed_transfers)}")
    print(f"  transactions by status  : {bank.count_by_status()}")
    assert bank.total_stolen_by(MULE) == 0
    altered = list(bank.transactions.values())[-1]
    assert altered.status is TxStatus.REJECTED_BY_USER
    print("\nOK — the alteration was surfaced on the trusted display and "
          "rejected; nothing reached the mule.")


if __name__ == "__main__":
    main()
