#!/usr/bin/env python3
"""Attack gallery: the full threat model, executed.

Runs every attack from the paper's threat model against a live
deployment and reports the outcome with the evidence trail (what the
malware captured, what the server denied, what the ledger says).

Run:  python examples/attack_gallery.py
"""

from repro.baselines.adversary import ATTACKS
from repro.bench.experiments.security_matrix import trusted_path_scheme
from repro.bench.experiments.ablation import (
    run_credential_exfiltration,
    run_dma_attack,
    run_pal_substitution,
    run_replay,
)


def main() -> None:
    print("== attacks against the trusted path (full worlds, real ledgers) ==")
    scheme = trusted_path_scheme(seed=5150)
    for attack in ATTACKS:
        runner = scheme.run_attack.get(attack)
        outcome = runner() if runner else None
        print(f"  {attack:<26} -> {outcome.value if outcome else 'n/a'}")

    print("\n== what each defense is worth (disable it and re-attack) ==")
    cases = [
        ("PAL measurement whitelist",
         lambda on: run_pal_substitution(check_measurement=on, seed=6001)),
        ("replay protection",
         lambda on: run_replay(replay_protection=on, seed=6003)),
        ("session-end PCR17 cap",
         lambda on: run_credential_exfiltration(apply_cap=on, seed=6005)),
        ("DEV / DMA protection",
         lambda on: run_dma_attack(protect_dma=on, seed=6007)),
    ]
    for name, runner in cases:
        with_defense = "SUCCEEDED" if runner(True) else "prevented"
        without = "SUCCEEDED" if runner(False) else "prevented"
        print(f"  {name:<28} on: {with_defense:<10} off: {without}")

    print("\nOK — every structural attack is prevented with defenses on, "
          "and each defense provably stops its attack.")


if __name__ == "__main__":
    main()
