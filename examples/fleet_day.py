#!/usr/bin/env python3
"""A provider's view of a trading day across a client fleet.

Six customers bank through the trusted path; two of their machines are
infected with transaction-generator malware that forges transfers to a
mule using the victims' own sessions.  The bank's ledger tells the
story the paper promises service providers.

Run:  python examples/fleet_day.py
"""

from repro.bench.fleet import MULE, FleetWorld


def main() -> None:
    print("building a 6-client fleet (2 infected)...")
    fleet = FleetWorld(clients=6, infected=2, seed=314)
    report = fleet.run_day(transactions_per_client=3, fraud_per_infected=4)

    print("\n== the bank's day ==")
    print(f"  honest transactions submitted : {report.honest_transactions}")
    print(f"  honest transactions executed  : {report.honest_executed}")
    print(f"  forged transactions submitted : {report.fraud_attempts}")
    print(f"  forged transactions executed  : {report.fraud_executed}")
    print(f"  money reaching the mule       : {report.stolen_cents / 100:.2f}")
    print(f"  denial reasons                : {report.denials}")
    print(f"  simulated day length          : {report.virtual_seconds:.1f}s")

    statuses = fleet.bank.count_by_status()
    print(f"  transactions by final status  : {statuses}")

    assert report.honest_executed == report.honest_transactions
    assert report.fraud_executed == 0 and fleet.bank.balance_of(MULE) == 0
    print("\nOK — at fleet scale: all human-confirmed volume executed, "
          "zero forged volume did.")


if __name__ == "__main__":
    main()
