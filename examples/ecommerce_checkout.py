#!/usr/bin/env python3
"""E-commerce: trusted-path checkout as a captcha replacement.

A shop sells a limited sneaker drop.  A scalper bot with the victim's
session floods the shop with orders.  With a captcha gate, the bot buys
at its solve rate; with trusted-path confirmation, every bot order
stalls waiting for evidence no software can mint, while the human's
own checkout sails through.

Run:  python examples/ecommerce_checkout.py
"""

from repro import Transaction, TrustedPathWorld, WorldConfig
from repro.baselines.captcha import CaptchaService, OcrBot
from repro.core.protocol import build_transaction_request
from repro.crypto.drbg import HmacDrbg

DROP_STOCK = 40


def captcha_gated_run(bot_rate: float) -> int:
    """How many pairs a captcha-gated shop loses to the bot."""
    from repro.sim import Simulator

    sim = Simulator(seed=99)
    service = CaptchaService(HmacDrbg(b"drop"), difficulty=0.3)
    bot = OcrBot(sim.rng.stream("scalper"), base_solve_rate=bot_rate)
    bought = 0
    for _ in range(DROP_STOCK * 3):  # the bot hammers until stock gone
        if bought >= DROP_STOCK:
            break
        challenge = service.issue()
        _seconds, answer = bot.solve(challenge)
        if service.grade(challenge.challenge_id, answer):
            bought += 1
    return bought


def trusted_path_run() -> tuple:
    """(bot purchases, human purchases) under trusted-path checkout."""
    world = TrustedPathWorld(
        WorldConfig(seed=77, with_bank=False, with_shop=True)
    ).ready()
    shop = world.shop
    shop.add_product("sneaker-drop", stock=DROP_STOCK, unit_price_cents=21_000)
    shop.per_account_limit = 2

    # The bot: full OS control, the victim's session — but no human and
    # no PAL identity.  It requests orders and submits junk evidence.
    for index in range(25):
        order = Transaction(
            "order", "alice", {"item": "sneaker-drop", "quantity": 2}
        )
        response = world.browser.call(
            shop.endpoint, "tx.request", build_transaction_request(order)
        )
        try:
            world.browser.call(
                shop.endpoint, "tx.confirm",
                {
                    "tx_id": response["tx_id"],
                    "decision": b"accept",
                    "evidence": "signed",
                    "signature": bytes([index]) * 64,
                },
            )
        except Exception:
            pass  # denied, as expected
    bot_units = shop.units_sold_to("alice")

    # The human buys their pair the intended way.
    checkout = Transaction("order", "alice", {"item": "sneaker-drop", "quantity": 1})
    outcome = world.confirm(checkout, provider=shop)
    assert outcome.executed
    human_units = shop.units_sold_to("alice") - bot_units
    return bot_units, human_units, shop


def main() -> None:
    print("== captcha-gated drop ==")
    for rate in (0.15, 0.60, 0.98):
        lost = captcha_gated_run(rate)
        print(f"  bot solve rate {rate:.0%}: scalper bought "
              f"{lost}/{DROP_STOCK} pairs")

    print("\n== trusted-path-gated drop ==")
    bot_units, human_units, shop = trusted_path_run()
    print(f"  scalper bot bought : {bot_units} pairs "
          f"({sum(1 for d in shop.denials)} denial reasons recorded)")
    print(f"  human bought       : {human_units} pair")
    print(f"  denials            : {shop.denials}")
    assert bot_units == 0 and human_units == 1
    print("\nOK — the bot's success rate is not a knob an attacker can buy;"
          " it is zero by construction.")


if __name__ == "__main__":
    main()
