"""Experiment T3: end-to-end transaction confirmation latency.

Regenerates the user-visible flow cost (WAN + provider + session +
verification) per vendor and variant.  Expected shape: every run
executes; machine-added latency stays within a couple of seconds even on
the slowest TPM — the paper's practicality claim.
"""

from repro.bench.experiments import table3_end_to_end
from repro.bench.tables import format_table


def test_table3_end_to_end(benchmark):
    rows = benchmark.pedantic(
        lambda: table3_end_to_end(repetitions=3), rounds=1, iterations=1
    )
    print()
    print(
        format_table(
            "T3 — end-to-end confirmation latency (virtual seconds)",
            rows,
            columns=[
                "vendor", "variant", "end_to_end_s", "human_s",
                "machine_added_s", "executed", "of",
            ],
            notes="machine_added = end-to-end minus the human's own "
            "reading/decision time; 'practical' means this stays small",
        )
    )
    for row in rows:
        assert row["executed"] == row["of"]
        assert row["machine_added_s"] < 2.5
