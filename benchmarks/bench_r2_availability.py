"""Experiment R2: availability and exactly-once under crash-stop shards.

Regenerates the crash-rate sweep with the provider journal on and off.
Expected shape: the journaled arm keeps 100% flow success, zero hung
callers and zero duplicate executions at every crash rate, and the
deterministic replay probe's resubmitted confirmation replays
idempotently; the journal-off ablation re-executes the probe's transfer
and its flow success degrades with the crash rate.
"""

from repro.bench.experiments import r2_crash_availability
from repro.bench.tables import format_table


def test_r2_crash_availability(benchmark):
    rows = benchmark.pedantic(
        lambda: r2_crash_availability(), rounds=1, iterations=1
    )
    print()
    print(
        format_table(
            "R2 — availability and exactly-once under crash-stop shards",
            rows,
            columns=[
                "journal", "crash_rate", "flows", "goodput_rps",
                "success_rate", "p95_latency_ms", "failed", "hung",
                "resubmits", "denials_shard_down", "shed",
                "dead_letters", "breaker_opens", "crashes",
                "journal_restores", "duplicate_executions",
                "probe_idempotent", "probe_duplicates", "wall_s",
            ],
            notes="journal on: idempotent replay, no duplicates; "
            "journal off: the replay probe re-executes the transfer",
        )
    )
    for row in rows:
        assert row["hung"] == 0
        assert row["duplicate_executions"] == 0
        if row["journal"] == "on":
            assert row["success_rate"] >= 0.99
            assert row["probe_idempotent"] == 1
            assert row["probe_duplicates"] == 0
        else:
            assert row["probe_idempotent"] == 0
            assert row["probe_duplicates"] >= 1
