"""Experiment F6: open-loop population sweep — users per wall-second.

Regenerates the load-engine series: one full diurnal day of open-loop
traffic (Zipf accounts, mixed session lifetimes, a noon flash crowd)
offered to a 2-shard pool, swept over population.  Expected shape:
populations whose stampede stays inside pool capacity complete ≥99% of
admitted sessions with zero shed; at 10⁵ users the stampede overruns
the pool and every refusal is explicit and counted (router shed,
admission-cap drops, bounded-retry failures).  ``users_per_wall_s`` is
the headline kernel-throughput number tracked in BENCH_wall.json.

The full sweep simulates a 10⁵-user day (minutes of RSA signing), so
this file carries the ``slow`` marker and runs in the nightly job; use
``populations=(1_000, 10_000)`` parameters for a quick local pass.
"""

import pytest

from repro.bench.experiments import f6_open_loop_rows
from repro.bench.tables import format_table

pytestmark = pytest.mark.slow


def test_f6_open_loop_sweep(benchmark):
    rows = benchmark.pedantic(
        lambda: f6_open_loop_rows(), rounds=1, iterations=1
    )
    print()
    print(
        format_table(
            "F6 — open-loop day: population vs users/wall-second",
            rows,
            columns=[
                "users", "arrivals", "completed", "failed", "dropped_cap",
                "goodput_cps", "p95_session_ms", "shed", "retries",
                "hot_share", "ring_imbalance", "users_per_wall_s", "wall_s",
            ],
            notes="noon stampede sized to overrun the 2-shard pool only "
            "at 10^5 users; all refusals are counted, never silent",
        )
    )
    absorbed = [r for r in rows if r["shed"] == 0 and r["dropped_cap"] == 0]
    saturated = [r for r in rows if r["shed"] > 0 or r["dropped_cap"] > 0]
    # Inside capacity: the pool absorbs the whole day, ≥99% complete.
    assert absorbed, "at least one population must stay inside capacity"
    for row in absorbed:
        assert row["completed"] >= 0.99 * (row["arrivals"] - row["dropped_cap"])
    # The 10^5 row must demonstrate saturation — loudly.
    top = max(rows, key=lambda r: r["users"])
    assert top["users"] >= 100_000
    assert saturated, "the top population must overrun the pool"
    for row in saturated:
        assert row["shed"] + row["dropped_cap"] + row["failed"] > 0
    # Accounting always balances: every arrival ends somewhere.
    for row in rows:
        assert row["completed"] + row["failed"] + row["dropped_cap"] <= (
            row["arrivals"]
        )
