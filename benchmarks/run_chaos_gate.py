"""Nightly chaos gate: R3 at fixed seeds with hard-fail invariants.

The per-PR suite runs the chaos harness at one seed through the smoke
matrix; this gate is the nightly deep pass.  It runs the R3 chaos
sweep — mode × crash-rate days plus the full crash-anywhere matrix —
at several *fixed* seeds, with the system-wide invariant checker in
hard-fail mode: any invariant violation, unfinished session, failed
replay probe, or red matrix cell exits non-zero with the complete
evidence list on stderr.

Every run's exact fault plan (each window of every fault kind, per
seed) is echoed into the output artifact, so a red night is
reproducible from the artifact alone: re-run with the same seed and
the same windows fire at the same virtual times.

Usage::

    PYTHONPATH=src python benchmarks/run_chaos_gate.py \\
        --out CHAOS_gate.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Dict, List, Optional

from repro.bench.experiments.chaos import r3_chaos_sweep

#: Fixed gate seeds: the smoke-matrix seed and the full-run default.
#: Fixed, not nightly-random, so a regression bisects cleanly — the
#: same plans fire every night until the code under them changes.
GATE_SEEDS = (7, 167)


def gate_one(seed: int, users: int, day_seconds: float) -> Dict:
    """One seed's sweep, reduced to the gate's verdict + evidence."""
    started = time.perf_counter()
    result = r3_chaos_sweep(
        crash_rates=(0.0, 0.1),
        users=users,
        day_seconds=day_seconds,
        shards=2,
        recovery_s=1.5,
        seed=seed,
        matrix_accounts=3,
    )
    problems: List[str] = []
    for row in result["rows"]:
        arm = f"seed={seed} {row['mode']}@{row['crash_rate']}"
        invariants = row["invariants"]
        if not invariants["ok"]:
            for violation in invariants["violations"]:
                problems.append(f"{arm}: {violation}")
            if invariants["truncated"]:
                problems.append(
                    f"{arm}: (+{invariants['truncated']} more violations)"
                )
        if row["unfinished"]:
            problems.append(
                f"{arm}: {row['unfinished']} sessions ended uncounted"
            )
        if row["probe_idempotent"] != 1 or row["probe_duplicates"] != 0:
            problems.append(
                f"{arm}: replay probe idempotent={row['probe_idempotent']} "
                f"duplicates={row['probe_duplicates']}"
            )
    matrix = result["crash_matrix"]
    for cell in matrix["cells"]:
        if (
            cell["crash_fired"] and cell["outcome_ok"]
            and cell["digest_match"] and cell["invariants_ok"]
            and cell["busy_released"]
        ):
            continue
        problems.append(
            f"seed={seed} matrix {cell['kind']}/{cell['phase']}/"
            f"{cell['victim']}: outcome={cell['outcome']} "
            f"(expected {cell['expected']}), "
            f"digest_match={cell['digest_match']}, "
            f"invariants_ok={cell['invariants_ok']}, "
            f"busy_released={cell['busy_released']}, "
            f"violations={cell['violations']}"
        )
    return {
        "seed": seed,
        "ok": not problems,
        "problems": problems,
        "rows": [
            {k: v for k, v in row.items() if k != "wall_s"}
            for row in result["rows"]
        ],
        "matrix_ok": matrix["all_ok"],
        "matrix_cells": len(matrix["cells"]),
        # The reproduction record: every window of every fault kind.
        "fault_plans": result["fault_plans"],
        "wall_s": round(time.perf_counter() - started, 3),
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python benchmarks/run_chaos_gate.py",
        description="Run the R3 chaos sweep at fixed seeds; fail on any "
        "invariant violation or red crash-matrix cell.",
    )
    parser.add_argument(
        "--seeds", type=int, nargs="+", default=list(GATE_SEEDS),
        help=f"gate seeds (default: {list(GATE_SEEDS)})",
    )
    parser.add_argument("--users", type=int, default=800,
                        help="open-loop population per chaos day")
    parser.add_argument("--day", type=float, default=180.0,
                        help="virtual seconds per chaos day")
    parser.add_argument("--out", default=None,
                        help="write the gate artifact (verdicts, rows, "
                        "fault plans) to this JSON path")
    args = parser.parse_args(argv)

    records = [gate_one(seed, args.users, args.day) for seed in args.seeds]
    payload = {
        "schema": "chaos-gate/1",
        "seeds": args.seeds,
        "ok": all(record["ok"] for record in records),
        "runs": records,
    }
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, default=str)
        print(f"wrote {args.out}")

    failures = [p for record in records for p in record["problems"]]
    if failures:
        print("CHAOS GATE FAILED:", file=sys.stderr)
        for problem in failures:
            print(f"  {problem}", file=sys.stderr)
        return 1
    cells = sum(record["matrix_cells"] for record in records)
    print(
        f"chaos gate OK: {len(records)} seed(s), {cells} crash-matrix "
        f"cells, every invariant clean "
        f"({sum(r['wall_s'] for r in records):.1f}s wall)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
