"""Experiment F3: the captcha-replacement comparison.

Regenerates the abstract's "replacement for captchas" argument as three
panels: bot success vs captcha (sweeping solve rate), forgery success
vs the trusted path (structurally 0), and human seconds per legitimate
action under both schemes.
"""

from repro.bench.experiments import fig3_captcha_comparison
from repro.bench.tables import format_table


def test_fig3_captcha_comparison(benchmark):
    panels = benchmark.pedantic(
        lambda: fig3_captcha_comparison(), rounds=1, iterations=1
    )
    print()
    print(
        format_table(
            "F3a — automated attack success vs captcha",
            panels["captcha_attack"],
            notes="bypass fraction equals whatever solve rate the "
            "attacker buys (farms sit at ~0.98)",
        )
    )
    print(
        format_table(
            "F3b — forged confirmations vs the trusted path",
            panels["trusted_path_forgery"],
            notes="no knob exists: forgeries fail signature verification",
        )
    )
    print(
        format_table(
            "F3c — human overhead per legitimate action",
            panels["human_overhead"],
            notes="reading the transaction (which the user should do "
            "anyway) vs solving a puzzle that proves nothing about it",
        )
    )
    assert panels["trusted_path_forgery"][0]["bypassed"] == 0
    attack = panels["captcha_attack"]
    assert attack[-1]["bypass_fraction"] > 0.9  # the farm setting
