"""Experiment T2: trusted-path session latency breakdown.

Regenerates the per-phase session cost table for both evidence variants
on all four TPM vendors, plus the one-time setup-phase cost table.
Expected shape: TPM time dominates machine phases; the signed variant
has lower *perceived* overhead everywhere (its unseal hides under
reading time); launch plumbing is milliseconds.
"""

from repro.bench.experiments import table2_session_breakdown
from repro.bench.experiments.session_breakdown import setup_phase_rows
from repro.bench.tables import format_table

COLUMNS = [
    "vendor", "variant", "suspend", "skinit", "pal_tpm", "pal_human",
    "pal_logic", "cap", "resume", "total", "perceived_overhead",
]


def test_table2_session_breakdown(benchmark):
    rows = benchmark.pedantic(
        lambda: table2_session_breakdown(repetitions=3), rounds=1, iterations=1
    )
    print()
    print(
        format_table(
            "T2 — session latency breakdown (virtual seconds)",
            rows,
            columns=COLUMNS,
            notes="perceived_overhead = total - human think time; the "
            "signed variant hides its unseal behind reading",
        )
    )
    for vendor in {row["vendor"] for row in rows}:
        by_variant = {
            row["variant"]: row for row in rows if row["vendor"] == vendor
        }
        assert (
            by_variant["signed"]["perceived_overhead"]
            < by_variant["quote"]["perceived_overhead"]
        )


def test_table2b_setup_phase(benchmark):
    rows = benchmark.pedantic(lambda: setup_phase_rows(), rounds=1, iterations=1)
    print()
    print(
        format_table(
            "T2b — one-time setup phase cost (virtual seconds)",
            rows,
            notes="paid once per (platform, provider); amortization in F4",
        )
    )
    assert all(row["setup_total_s"] < 10 for row in rows)
