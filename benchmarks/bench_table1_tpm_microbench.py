"""Experiment T1: TPM command micro-benchmarks per vendor.

Regenerates the per-vendor TPM latency table (the substrate of every
performance number in the paper).  Expected shape: quote dominates,
vendor variance ≥ 2.5x, context-free commands ~1 ms.
"""

from repro.bench.experiments import table1_tpm_microbench
from repro.bench.tables import format_table


def test_table1_tpm_microbench(benchmark):
    rows = benchmark.pedantic(
        lambda: table1_tpm_microbench(), rounds=1, iterations=1
    )
    print()
    print(
        format_table(
            "T1 — TPM v1.2 command latency by vendor (virtual ms)",
            rows,
            columns=["vendor", "command", "samples", "mean_ms", "p95_ms"],
            notes="quote is the costliest per-transaction op; "
            "vendor spread on quote ~3x (Infineon fastest, Broadcom slowest)",
        )
    )

    def mean(vendor, command):
        return next(
            r["mean_ms"] for r in rows
            if r["vendor"] == vendor and r["command"] == command
        )

    assert mean("broadcom", "quote") > 2.5 * mean("infineon", "quote")
    for vendor in ("infineon", "broadcom", "atmel", "stmicro"):
        assert mean(vendor, "quote") > 5 * mean(vendor, "seal")
