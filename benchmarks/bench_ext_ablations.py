"""Extension experiments A2 and E1 (beyond the paper's tables).

A2 quantifies the latency-hiding design choice; E1 sweeps user
attention to chart the alteration residual risk the paper concedes.
"""

from repro.bench.experiments.extensions import (
    a2_latency_hiding,
    e1_attention_sweep,
    e3_batch_amortization,
)
from repro.bench.tables import format_table


def test_a2_latency_hiding(benchmark):
    rows = benchmark.pedantic(lambda: a2_latency_hiding(), rounds=1, iterations=1)
    print()
    print(
        format_table(
            "A2 — latency hiding ablation (signed variant)",
            rows,
            columns=["vendor", "latency_hiding", "perceived_overhead_s"],
            notes="hiding the unseal behind reading time removes most "
            "of the user-visible TPM cost",
        )
    )
    for vendor in {row["vendor"] for row in rows}:
        with_hiding = next(
            r for r in rows
            if r["vendor"] == vendor and r["latency_hiding"] == 1
        )
        without = next(
            r for r in rows
            if r["vendor"] == vendor and r["latency_hiding"] == 0
        )
        assert (
            with_hiding["perceived_overhead_s"]
            < 0.6 * without["perceived_overhead_s"]
        )


def test_e1_attention_sweep(benchmark):
    rows = benchmark.pedantic(lambda: e1_attention_sweep(), rounds=1, iterations=1)
    print()
    print(
        format_table(
            "E1 — MitB alteration outcome vs user attention",
            rows,
            columns=["attention", "altered_executed", "altered_rejected",
                     "stolen_cents"],
            notes="the genuine PAL always *shows* the altered text; "
            "whether it is read is the residual risk",
        )
    )
    fully_attentive = next(r for r in rows if r["attention"] == 1.0)
    fully_careless = next(r for r in rows if r["attention"] == 0.0)
    assert fully_attentive["altered_executed"] == 0
    assert fully_attentive["stolen_cents"] == 0
    assert fully_careless["altered_executed"] > 0
    assert fully_careless["stolen_cents"] > 0


def test_e3_batch_amortization(benchmark):
    rows = benchmark.pedantic(
        lambda: e3_batch_amortization(), rounds=1, iterations=1
    )
    print()
    print(
        format_table(
            "E3 — batch confirmation amortization",
            rows,
            columns=["batch_size", "session_total_s", "perceived_overhead_s",
                     "per_tx_overhead_s", "human_s", "human_per_tx_s"],
            notes="one session's machine cost divides across the batch; "
            "reading grows sub-linearly per item",
        )
    )
    by_k = {row["batch_size"]: row for row in rows}
    assert by_k[8]["per_tx_overhead_s"] < 0.3 * by_k[1]["per_tx_overhead_s"]
    assert by_k[8]["human_per_tx_s"] < by_k[1]["human_per_tx_s"]
