"""Experiment E4: elastic shard pool — live rebalancing under load.

Regenerates the elasticity series: an open-loop compressed day with a
mid-day flash crowd sized to overrun the starting single shard, offered
to a pool governed by the autoscaler.  Expected shape: the pool scales
up into the spike (journal-snapshot + WAL-tail migration, atomic ring
flip, dual-read window) and drains back out in the trough; availability
stays ≥99% over the day *and inside the migration windows*, and a
quiesced scale-up + drain round trip reproduces the never-scaled pool's
state digest bit-for-bit.

The elastic day simulates a 10⁴-user population (tens of seconds of
RSA signing), so this file carries the ``slow`` marker and runs in the
nightly job; the CI smoke matrix runs the same cell with a shorter day.
"""

import pytest

from repro.bench.experiments import e4_elastic_rows
from repro.bench.tables import format_table

pytestmark = pytest.mark.slow


def test_e4_elastic_pool(benchmark):
    result = benchmark.pedantic(
        lambda: e4_elastic_rows(), rounds=1, iterations=1
    )
    rows = result["rows"]
    roundtrip = result["roundtrip"]
    print()
    print(
        format_table(
            "E4 — elastic day: flash crowd absorbed by live rebalancing",
            rows,
            columns=[
                "users", "shards_start", "shards_peak", "shards_end",
                "arrivals", "completed", "failed", "availability",
                "availability_migration", "p95_session_ms", "shed",
                "retries", "scale_ups", "drains", "accounts_moved",
                "dual_read_redirects", "rebalance_bytes",
                "rebalance_virtual_s", "wall_s",
            ],
            notes="spike sized to overrun one shard while two absorb it; "
            "availability must hold inside the migration windows",
        )
    )
    for row in rows:
        # The scale event happened — and was elastic both ways.
        assert row["scale_ups"] >= 1
        assert row["drains"] >= 1
        assert row["shards_peak"] > row["shards_start"]
        assert row["shards_end"] == row["shards_start"]
        # The acceptance bar: moving ranges never costs availability.
        assert row["availability"] >= 0.99
        assert row["availability_migration"] >= 0.99
        assert row["migration_sessions"] > 0
        # The spike genuinely overran the starting shard (the scale-up
        # had something to absorb), and every refusal was counted.
        assert row["shed"] > 0
        assert row["completed"] + row["failed"] + row["dropped_cap"] <= (
            row["arrivals"]
        )
    # Security in one bit: the drained pool is byte-identical to a pool
    # that never scaled — migration moved everything exactly once.
    assert roundtrip["digest_match"]
    assert roundtrip["accounts_moved"] > 0
    assert roundtrip["rebalance_bytes"] > 0
