"""Experiment F1: session latency vs PAL (SLB) size.

Regenerates the launch-cost-vs-size series.  Expected shape: SKINIT
time affine in padded size with slope = 1/hash-rate per vendor; this is
why Flicker PALs stay tiny and the SLB is architecturally capped.
"""

import pytest

from repro.bench.experiments import fig1_latency_vs_pal_size
from repro.bench.tables import format_table
from repro.tpm.timing import vendor_profile


def test_fig1_pal_size(benchmark):
    rows = benchmark.pedantic(
        lambda: fig1_latency_vs_pal_size(), rounds=1, iterations=1
    )
    print()
    print(
        format_table(
            "F1 — launch cost vs SLB size (virtual seconds)",
            rows,
            columns=["vendor", "slb_bytes", "skinit_s", "machine_added_s"],
            notes="skinit grows linearly at the TPM hash interface rate",
        )
    )
    for vendor in {row["vendor"] for row in rows}:
        series = sorted(
            (r for r in rows if r["vendor"] == vendor),
            key=lambda r: r["slb_bytes"],
        )
        skinit = [r["skinit_s"] for r in series]
        assert skinit == sorted(skinit)  # monotone in size
        rate = vendor_profile(vendor).slb_hash_bytes_per_second
        expected = (series[-1]["slb_bytes"] - series[0]["slb_bytes"]) / rate
        measured = skinit[-1] - skinit[0]
        assert measured == pytest.approx(expected, rel=0.25)
