"""Experiment F3-S: sharded provider pool — throughput vs shard count.

Regenerates the scale-out series: at a fixed offered load that
saturates one shard, completed flows/s vs shard count with the
verification memo on and off.  Expected shape: throughput scales with
shards until the offered load is met (≥2x from 1 to 4), p95 collapses
once the pool leaves saturation, and the cache changes wall-clock only
— virtual-time columns are bit-identical either way.
"""

from repro.bench.experiments import f3s_sharded_scaling
from repro.bench.tables import format_table


def test_f3s_sharded_scaling(benchmark):
    rows = benchmark.pedantic(
        lambda: f3s_sharded_scaling(), rounds=1, iterations=1
    )
    print()
    print(
        format_table(
            "F3-S — sharded pool throughput vs shard count",
            rows,
            columns=[
                "shards", "cache", "offered_rps", "completed_rps",
                "p95_latency_ms", "failed", "cache_hits",
                "store_live", "store_retired", "wall_s",
            ],
            notes="one worker per shard saturates near 178 flows/s; "
            "cache on/off must agree on every virtual-time column",
        )
    )
    on = {r["shards"]: r for r in rows if r["cache"] == "on"}
    off = {r["shards"]: r for r in rows if r["cache"] == "off"}
    shard_counts = sorted(on)
    assert on[shard_counts[-1]]["completed_rps"] >= (
        2 * on[shard_counts[0]]["completed_rps"]
    )
    for shards in shard_counts:
        for field in ("completed_rps", "p95_latency_ms", "failed"):
            assert on[shards][field] == off[shards][field]
