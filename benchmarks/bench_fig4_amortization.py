"""Experiment F4: setup-phase amortization and the variant crossover.

Regenerates the cumulative perceived-overhead curves of the two
evidence variants.  Expected shape: the signed variant starts higher
(one-time setup) with a much shallower slope and crosses below the
quote variant within a handful of transactions on every vendor.
"""

from repro.bench.experiments import fig4_amortization
from repro.bench.experiments.amortization import crossover_k
from repro.bench.tables import format_table


def test_fig4_amortization(benchmark):
    rows = benchmark.pedantic(lambda: fig4_amortization(), rounds=1, iterations=1)
    print()
    print(
        format_table(
            "F4 — cumulative perceived overhead: signed vs quote",
            rows,
            columns=["vendor", "k", "signed_cum_s", "quote_cum_s", "signed_wins"],
            notes="signed = setup + k*(hidden-unseal tx); "
            "quote = k*(quote tx); crossover within a few transactions",
        )
    )
    for vendor in ("infineon", "broadcom"):
        k = crossover_k(vendor)
        print(f"crossover({vendor}) = {k} transactions")
        assert k <= 5
    final = [row for row in rows if row["k"] == max(r["k"] for r in rows)]
    assert all(row["signed_wins"] == 1 for row in final)
