"""Experiment A1: defense ablation.

Disables each defense in isolation and re-runs the attack it stops.
Expected shape: every row flips from "prevented" to "succeeded" — no
defense is redundant, none is theater.
"""

from repro.bench.experiments import a1_defense_ablation
from repro.bench.tables import format_table


def test_a1_defense_ablation(benchmark):
    rows = benchmark.pedantic(lambda: a1_defense_ablation(), rounds=1, iterations=1)
    print()
    print(
        format_table(
            "A1 — defense ablation",
            rows,
            columns=["defense", "attack", "with_defense", "without_defense"],
            notes="each toggle re-admits exactly its attack, end to end "
            "(money moves / key exfiltrated / PAL memory corrupted)",
        )
    )
    assert len(rows) == 4
    for row in rows:
        assert row["with_defense"] == "prevented"
        assert row["without_defense"] == "succeeded"
