"""Benchmark-suite configuration.

Each file here regenerates one table or figure from the paper's
evaluation (see DESIGN.md §4 and EXPERIMENTS.md).  Run with::

    pytest benchmarks/ --benchmark-only -s

The ``-s`` shows the rendered tables; without it only the
pytest-benchmark wall-clock statistics appear.  Wall-clock here measures
the *emulator's* Python cost; the numbers the paper cares about are the
virtual-time columns inside the printed tables.
"""
