"""Extension experiment E2: a fleet of clients against one provider.

Provider-side aggregate ground truth for a simulated trading day with a
partially infected client population.  Expected shape: 100% of honest
transactions execute, 0% of forged ones do, and every forgery leaves a
denial record — assurance at fleet scale, not just per-session.
"""

from repro.bench.fleet import e2_fleet_rows
from repro.bench.tables import format_table


def test_e2_fleet(benchmark):
    rows = benchmark.pedantic(
        lambda: e2_fleet_rows(clients=6, infected=2), rounds=1, iterations=1
    )
    print()
    print(
        format_table(
            "E2 — fleet day: 6 clients (2 infected), one bank",
            rows,
            notes="honest volume executes fully; fraud executes never",
        )
    )
    row = rows[0]
    assert row["honest_executed"] == row["honest_tx"]
    assert row["fraud_executed"] == 0
    assert row["stolen_cents"] == 0
