"""Experiment T4: the security evaluation matrix.

Executes (not argues) every threat-model attack against password
re-entry, captcha, iTAN and the trusted path; outcomes are read from
ledger/gate ground truth.  Expected shape: the trusted path is the only
scheme whose generation/theft/replay/substitution columns all read
"prevented", with alteration user-dependent and suppression an
irreducible DoS.
"""

from repro.baselines.adversary import ATTACKS, AttackOutcome
from repro.bench.experiments import table4_security_matrix
from repro.bench.tables import format_table


def test_table4_security_matrix(benchmark):
    rows = benchmark.pedantic(
        lambda: table4_security_matrix(), rounds=1, iterations=1
    )
    print()
    print(
        format_table(
            "T4 — attack x scheme outcome matrix",
            rows,
            columns=["scheme", *ATTACKS],
            notes="'prevented' = structurally enforced; 'user-dependent' "
            "= attentive user stops it; executed attacks, not prose",
        )
    )
    by_scheme = {row["scheme"]: row for row in rows}
    tp = by_scheme["trusted-path"]
    assert tp["transaction-generation"] == AttackOutcome.PREVENTED.value
    assert tp["credential-theft-reuse"] == AttackOutcome.PREVENTED.value
    assert tp["evidence-replay"] == AttackOutcome.PREVENTED.value
    assert tp["ui-spoofing"] == AttackOutcome.PREVENTED.value
    assert tp["pal-substitution"] == AttackOutcome.PREVENTED.value
    assert tp["transaction-alteration"] == AttackOutcome.USER_DEPENDENT.value
    assert tp["session-suppression"] == AttackOutcome.DEGRADED.value
    # The baselines all lose to transaction generation or alteration.
    assert by_scheme["password"]["transaction-generation"] == "succeeded"
    assert by_scheme["captcha"]["transaction-generation"] == "succeeded"
    assert by_scheme["iTAN"]["transaction-alteration"] == "succeeded"
