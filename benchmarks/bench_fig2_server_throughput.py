"""Experiment F2: provider-side verification throughput vs offered load.

Regenerates the open-loop queueing series: completed rps and p95
latency vs offered rps, for 1 and 4 verification workers.  Every
request carries real evidence and the handler runs the real verifier.
Expected shape: throughput tracks offered load to saturation
(workers / 2.4 ms), then plateaus while p95 explodes.
"""

from repro.bench.experiments import fig2_server_throughput
from repro.bench.tables import format_table


def test_fig2_server_throughput(benchmark):
    rows = benchmark.pedantic(
        lambda: fig2_server_throughput(duration=5.0), rounds=1, iterations=1
    )
    print()
    print(
        format_table(
            "F2 — verification throughput vs offered load",
            rows,
            columns=[
                "workers", "offered_rps", "completed_rps",
                "p95_latency_ms", "rejected",
            ],
            notes="knee at workers/service_time (~416 rps/worker); "
            "rejected must be 0 (all evidence is genuine)",
        )
    )
    assert all(row["rejected"] == 0 for row in rows)
    one_worker = [r for r in rows if r["workers"] == 1]
    heaviest = max(one_worker, key=lambda r: r["offered_rps"])
    lightest = min(one_worker, key=lambda r: r["offered_rps"])
    assert heaviest["completed_rps"] < 520  # saturation plateau
    assert heaviest["p95_latency_ms"] > 10 * lightest["p95_latency_ms"]
