"""Experiment F5: nonce database scalability and eviction.

Regenerates the replay-cache scaling series: per-operation wall-clock
cost and eviction behaviour as the live set grows to provider scale.
Expected shape: O(1) issue/consume; eviction bounds the live set.
"""

from repro.bench.experiments import fig5_noncedb_scalability
from repro.bench.tables import format_table


def test_fig5_noncedb_scalability(benchmark):
    rows = benchmark.pedantic(
        lambda: fig5_noncedb_scalability(), rounds=1, iterations=1
    )
    print()
    print(
        format_table(
            "F5 — nonce DB scalability (wall-clock per op)",
            rows,
            columns=[
                "population", "issue_us_per_op", "consume_us_per_op",
                "evicted", "evict_ms_total", "live_after_evict",
            ],
            notes="per-op cost flat in population (hash-map O(1)); "
            "eviction reclaims the whole expired set",
        )
    )
    small, large = rows[0], rows[-1]
    assert large["issue_us_per_op"] < 3 * small["issue_us_per_op"]
    assert all(row["live_after_evict"] == 0 for row in rows)
