"""CI perf-regression gate on the BENCH_wall.json trajectory.

The repository commits a wall-clock trajectory (``BENCH_wall.json``,
written by ``python -m repro.bench.report --wall``) so the bench-smoke
job can answer a question no unit test can: *did this PR make the
matrix slower?*  This script compares a freshly measured smoke artifact
against the committed one and exits non-zero when any cell — or the
total — regressed beyond tolerance.

Design points:

* **Tolerance is wide (default +30%)** because shared CI runners are
  noisy; the gate exists to catch algorithmic regressions (a cell going
  2x slower), not scheduler jitter.
* **Cells are compared by ID**; cells present in only one artifact are
  reported but never fail the gate, so adding or retiring an experiment
  does not require lock-step artifact updates.
* **Small cells are exempt** (< ``--min-seconds``, default 1.0 s): at
  that scale warm-up and scheduler jitter dominate and ratios are
  meaningless — a 0.7 s cell drifts ±40% run-to-run on a loaded
  1-core runner.  Small cells still count toward the gated
  ``total_wall_s``, so a real across-the-board slowdown is caught.
* ``users_per_wall_s`` (the F6 headline, higher = better) gates in the
  opposite direction when both artifacts record it.
* ``rsa_micro`` gates the RSAX **speedup ratios** (pure-arm µs /
  accel-arm µs per op), not the raw microseconds: both sides of the
  ratio scale with the host, so the ratio travels across machines where
  absolute timings do not.  Higher = better, same tolerance.
* ``kern_micro`` gates the KERNX **overhead ratios** (partitioned µs /
  sequential µs per event) the same machine-relative way, in the lower
  = better direction: a regression here means the parallel kernel's
  window/barrier bookkeeping got more expensive per event.

Usage::

    python benchmarks/check_wall_regression.py \\
        --fresh BENCH_wall_fresh.json --committed BENCH_wall.json
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional


def load_artifact(path: str) -> Dict:
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    schema = payload.get("schema", "")
    if not str(schema).startswith("bench-wall/"):
        raise ValueError(f"{path}: not a bench-wall artifact (schema={schema!r})")
    if "run" not in payload:
        raise ValueError(f"{path}: artifact has no 'run' record")
    return payload


def compare(
    fresh: Dict,
    committed: Dict,
    tolerance: float = 0.30,
    min_seconds: float = 1.0,
) -> List[str]:
    """Return a list of regression messages (empty = gate passes)."""
    problems: List[str] = []
    fresh_run = fresh["run"]
    committed_run = committed["run"]
    fresh_cells: Dict[str, float] = fresh_run.get("cells", {})
    committed_cells: Dict[str, float] = committed_run.get("cells", {})

    only_fresh = sorted(set(fresh_cells) - set(committed_cells))
    only_committed = sorted(set(committed_cells) - set(fresh_cells))
    if only_fresh:
        print(f"note: cells only in fresh artifact (not gated): {only_fresh}")
    if only_committed:
        print(f"note: cells only in committed artifact (not gated): "
              f"{only_committed}")

    for cell_id in sorted(set(fresh_cells) & set(committed_cells)):
        reference = committed_cells[cell_id]
        measured = fresh_cells[cell_id]
        if reference < min_seconds:
            continue
        limit = reference * (1.0 + tolerance)
        if measured > limit:
            problems.append(
                f"cell {cell_id!r}: {measured:.3f}s vs committed "
                f"{reference:.3f}s (limit {limit:.3f}s, "
                f"+{100 * (measured / reference - 1):.0f}%)"
            )

    reference_total = committed_run.get("total_wall_s", 0.0)
    measured_total = fresh_run.get("total_wall_s", 0.0)
    if reference_total >= min_seconds:
        limit = reference_total * (1.0 + tolerance)
        if measured_total > limit:
            problems.append(
                f"total_wall_s: {measured_total:.3f}s vs committed "
                f"{reference_total:.3f}s (limit {limit:.3f}s)"
            )

    # Higher is better for the F6 headline: gate the other way round.
    reference_upws = committed_run.get("users_per_wall_s")
    measured_upws = fresh_run.get("users_per_wall_s")
    if reference_upws and measured_upws:
        floor = reference_upws * (1.0 - tolerance)
        if measured_upws < floor:
            problems.append(
                f"users_per_wall_s: {measured_upws:.1f} vs committed "
                f"{reference_upws:.1f} (floor {floor:.1f}, "
                f"-{100 * (1 - measured_upws / reference_upws):.0f}%)"
            )

    # RSA microbench: gate the machine-relative speedup ratio per op.
    reference_micro = committed_run.get("rsa_micro", {})
    measured_micro = fresh_run.get("rsa_micro", {})
    for key in sorted(set(reference_micro) & set(measured_micro)):
        reference_speedup = reference_micro[key].get("speedup")
        measured_speedup = measured_micro[key].get("speedup")
        if not reference_speedup or not measured_speedup:
            continue
        floor = reference_speedup * (1.0 - tolerance)
        if measured_speedup < floor:
            problems.append(
                f"rsa_micro {key!r} speedup: {measured_speedup:.2f}x vs "
                f"committed {reference_speedup:.2f}x (floor {floor:.2f}x)"
            )

    # Kernel microbench (KERNX): gate the partitioned/sequential
    # per-event overhead ratio per scenario.  Lower is better — the
    # ratio is the parallel kernel's window/barrier bookkeeping cost,
    # and like the RSA speedups it is machine-relative: both sides of
    # the division scale with the host, so the ratio travels across
    # machines where raw µs/event do not.
    reference_kern = committed_run.get("kern_micro", {})
    measured_kern = fresh_run.get("kern_micro", {})
    for key in sorted(set(reference_kern) & set(measured_kern)):
        reference_overhead = reference_kern[key].get("overhead")
        measured_overhead = measured_kern[key].get("overhead")
        if not reference_overhead or not measured_overhead:
            continue
        limit = reference_overhead * (1.0 + tolerance)
        if measured_overhead > limit:
            problems.append(
                f"kern_micro {key!r} overhead: {measured_overhead:.2f}x vs "
                f"committed {reference_overhead:.2f}x (limit {limit:.2f}x)"
            )

    # Rebalance round trip (E4): the wall seconds gate like a cell once
    # both artifacts record them; an artifact that has the record on
    # only one side (first landing, or retirement) notes and never
    # fails, same contract as unmatched cells.  Bytes and virtual
    # seconds are deterministic — a drift there is a *behaviour*
    # change, reported for the reviewer but gated by the byte-identical
    # results artifact, not this wall gate.
    reference_rebalance = committed_run.get("rebalance")
    measured_rebalance = fresh_run.get("rebalance")
    if (reference_rebalance is None) != (measured_rebalance is None):
        side = "fresh" if measured_rebalance is not None else "committed"
        print(f"note: rebalance record only in {side} artifact (not gated)")
    elif reference_rebalance and measured_rebalance:
        reference_wall = reference_rebalance.get("wall_s", 0.0)
        measured_wall = measured_rebalance.get("wall_s", 0.0)
        if reference_wall >= min_seconds:
            limit = reference_wall * (1.0 + tolerance)
            if measured_wall > limit:
                problems.append(
                    f"rebalance wall_s: {measured_wall:.3f}s vs committed "
                    f"{reference_wall:.3f}s (limit {limit:.3f}s)"
                )
        for key in ("bytes", "virtual_s"):
            if reference_rebalance.get(key) != measured_rebalance.get(key):
                print(
                    f"note: rebalance {key} changed "
                    f"{reference_rebalance.get(key)} -> "
                    f"{measured_rebalance.get(key)} (deterministic field, "
                    f"not wall-gated)"
                )
    return problems


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python benchmarks/check_wall_regression.py",
        description="Fail when a fresh BENCH_wall.json regressed vs the "
        "committed trajectory.",
    )
    parser.add_argument("--fresh", required=True,
                        help="freshly measured artifact")
    parser.add_argument("--committed", required=True,
                        help="committed trajectory artifact")
    parser.add_argument("--tolerance", type=float, default=0.30,
                        help="allowed slowdown fraction (default 0.30)")
    parser.add_argument("--min-seconds", type=float, default=1.0,
                        help="skip cells whose committed time is below "
                        "this (default 1.0s: warm-up/jitter noise; "
                        "small cells still gate via total_wall_s)")
    args = parser.parse_args(argv)
    if args.tolerance < 0:
        parser.error("--tolerance must be >= 0")

    fresh = load_artifact(args.fresh)
    committed = load_artifact(args.committed)
    if bool(fresh.get("smoke")) != bool(committed.get("smoke")):
        print(
            f"error: smoke mismatch (fresh smoke={fresh.get('smoke')}, "
            f"committed smoke={committed.get('smoke')}) — not comparable",
            file=sys.stderr,
        )
        return 2

    problems = compare(fresh, committed, tolerance=args.tolerance,
                       min_seconds=args.min_seconds)
    if problems:
        print("WALL-CLOCK REGRESSION:", file=sys.stderr)
        for problem in problems:
            print(f"  {problem}", file=sys.stderr)
        return 1
    print(
        f"wall trajectory OK: total {fresh['run'].get('total_wall_s')}s vs "
        f"committed {committed['run'].get('total_wall_s')}s "
        f"(tolerance +{100 * args.tolerance:.0f}%)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
