"""Legacy setup shim.

The execution environment is offline and lacks the `wheel` package, so
PEP 517/660 builds (which `pip install -e .` would otherwise use) cannot
run.  This file lets pip fall back to `setup.py develop`.  All project
metadata lives in pyproject.toml; this shim only mirrors what the legacy
path needs.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'Uni-directional Trusted Path: Transaction "
        "Confirmation on Just One Device' (DSN 2011)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
)
