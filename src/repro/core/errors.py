"""Error taxonomy of the trusted-path protocol."""

from __future__ import annotations


class TrustedPathError(RuntimeError):
    """Base class for protocol-level failures."""


class ProtocolError(TrustedPathError):
    """A message violated the protocol (missing fields, bad encoding)."""


class SetupError(TrustedPathError):
    """The setup phase failed (certification rejected, seal failure)."""


class ConfirmationRejected(TrustedPathError):
    """The provider refused the submitted confirmation evidence."""


class SessionSuppressed(TrustedPathError):
    """The Flicker launch was suppressed on the client (DoS malware)."""
