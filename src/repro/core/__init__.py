"""The paper's contribution (system S11): the uni-directional trusted path.

The protocol in one paragraph: the service provider answers every
transaction request with a *confirmation challenge* (fresh nonce plus
the canonical transaction text).  The client launches the
**ConfirmationPal** under DRTM; the PAL displays the server's text,
waits for the human's physical accept/reject keystroke, and emits
TPM-rooted evidence binding ``SHA1(text || nonce || decision)`` to the
PAL's measured identity.  The provider executes the transaction only
after verifying that evidence.  Two evidence variants exist:

* **quote** — the PAL extends the digest into PCR 18 and returns a TPM
  quote over PCRs 17/18 (no setup needed; one expensive TPM_Quote per
  transaction).
* **signed** — a one-time *setup phase* creates a signing key inside a
  PAL session, certifies it with the AIK, and seals it to the PAL's
  PCR state; each confirmation unseals and signs (cheaper per
  transaction on most TPMs — the paper's practical optimization,
  quantified in experiments T2 and F4).

Public API
----------
:class:`Transaction`, :class:`ConfirmationPal`, :class:`SetupPal`,
:class:`TrustedPathClient`, :class:`ClientCredentials`, plus the
protocol message builders in :mod:`repro.core.protocol`.
"""

from repro.core.client import (
    ClientCredentials,
    ConfirmOutcome,
    ProviderCredential,
    TrustedPathClient,
)
from repro.core.confirmation_pal import ConfirmationPal, Decision
from repro.core.errors import ProtocolError, SetupError, TrustedPathError
from repro.core.setup import SetupPal
from repro.core.transaction import Transaction

__all__ = [
    "Transaction",
    "ConfirmationPal",
    "SetupPal",
    "Decision",
    "TrustedPathClient",
    "ClientCredentials",
    "ProviderCredential",
    "ConfirmOutcome",
    "TrustedPathError",
    "ProtocolError",
    "SetupError",
]
