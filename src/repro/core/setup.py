"""The setup phase: mint and certify the PAL's signing key.

Runs once per (platform, provider).  Inside a late-launch session the
SetupPal:

1. generates an RSA signing key pair **in PAL software**, seeded from
   the TPM's RNG (Flicker-style PALs do their crypto on the main CPU —
   TPM command latency is the thing being avoided);
2. extends SHA1(public key) into PCR 18 and obtains **one TPM quote**
   over (PCR 17, PCR 18): the quote proves to the provider that this
   public key was emitted by the genuine ConfirmationPal identity;
3. seals the private key to PCR 17 — the code-identity register — so
   only a future genuine-PAL session can ever release it.

The provider registers the certified public key for the account; every
subsequent confirmation costs one TPM_Unseal plus a software signature
instead of a TPM_Quote — and the unseal hides behind the human's
reading time (see `repro.drtm.session.FlickerSession.consult_human`),
which is the paper's user-perceived-latency argument.

Design subtlety: the SetupPal's measured identity must equal the
ConfirmationPal's, or the sealed key would not unseal in confirmation
sessions.  SetupPal therefore *is* a ConfirmationPal — same class
hierarchy, same config — dispatching on an input flag, exactly as the
paper's single PAL binary dispatches on its input structure.
"""

from __future__ import annotations

import struct
from typing import Dict

from repro.core.confirmation_pal import ConfirmationPal
from repro.crypto.drbg import HmacDrbg
from repro.crypto.rsa import generate_rsa_keypair
from repro.crypto.sha1 import sha1
from repro.drtm.pal import PalServices
from repro.drtm.sealing import pal_pcr_selection
from repro.tpm.constants import PCR_DRTM_CODE, PCR_DRTM_DATA
from repro.tpm.keys import KeyUsage, TpmKey, serialize_private
from repro.tpm.structures import PcrSelection

# Modeled CPU cost of RSA key generation inside the PAL on the paper's
# testbed class of hardware (RSA-1024, ~2008 desktop CPU).
PAL_KEYGEN_SECONDS = 0.182

# Key size the PAL generates.  512 keeps pure-Python keygen fast in the
# emulator; the charged virtual time above is what enters the results.
PAL_SIGNING_KEY_BITS = 512


class SetupPal(ConfirmationPal):
    """The setup-mode entry of the confirmation PAL.

    NOTE: being a subclass, its measured image contains both class
    sources; `repro.core.client` launches *SetupPal* for both phases
    (with ``phase`` selecting the behaviour) so PCR 17 is identical
    across setup and confirmation sessions.
    """

    name = "confirmation-pal.setup"

    def run(self, services: PalServices, inputs: Dict[str, bytes]) -> Dict[str, bytes]:
        if inputs.get("phase", b"confirm") == b"setup":
            return self._run_setup(services, inputs)
        return super().run(services, inputs)

    def _run_setup(
        self, services: PalServices, inputs: Dict[str, bytes]
    ) -> Dict[str, bytes]:
        setup_nonce = inputs["nonce"]
        if len(setup_nonce) != 20:
            raise ValueError("setup nonce must be 20 bytes")
        (aik_handle,) = struct.unpack(">I", inputs["aik_handle"])

        services.show(
            [
                "=== TRUSTED PATH SETUP ===",
                "Generating and certifying the",
                "confirmation signing key.",
                "No action required.",
            ]
        )

        # 1. Software key generation, seeded from the TPM's RNG.
        entropy = services.tpm("get_random", num_bytes=32)
        keypair = generate_rsa_keypair(
            PAL_SIGNING_KEY_BITS, HmacDrbg(entropy, personalization=b"pal-signing")
        )
        services.charge_logic(PAL_KEYGEN_SECONDS)
        public_bytes = keypair.public.to_bytes()

        # 2. Bind the public key to this PAL identity with one quote.
        services.tpm(
            "extend", pcr_index=PCR_DRTM_DATA, measurement=sha1(public_bytes)
        )
        quote = services.tpm(
            "quote",
            key_handle=aik_handle,
            selection=pal_pcr_selection(),
            external_data=sha1(setup_nonce),
        )

        # 3. Seal the private key to the code-identity register alone:
        #    PCR 18 differs per session (it carries per-run data), so
        #    the unseal policy must not include it.
        private_blob = serialize_private(
            TpmKey(usage=KeyUsage.SIGNING, keypair=keypair)
        )
        sealed = services.tpm(
            "seal",
            data=private_blob,
            selection=PcrSelection(indices=(PCR_DRTM_CODE,)),
        )

        return {
            "public_key": public_bytes,
            "quote": quote.to_bytes(),
            "sealed_credential": sealed.to_bytes(),
        }
