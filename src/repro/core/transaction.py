"""Transactions and their canonical forms.

The protocol binds three representations of one transaction:

* :meth:`Transaction.canonical_bytes` — the server-authoritative wire
  encoding (sorted-key message encoding from `repro.net.messages`);
* :meth:`Transaction.display_lines` — the human-readable rendering the
  PAL puts on the screen; derived *deterministically* from the same
  fields, so what the human reads is what the digest covers;
* :meth:`Transaction.digest` — SHA-1 of the canonical bytes, the value
  confirmation evidence is computed over.

Anything not reflected in canonical bytes does not exist as far as the
protocol is concerned — the repository's tests enforce that the display
rendering is injective on the canonical fields it shows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Union

from repro.crypto.sha1 import sha1
from repro.net.messages import encode_message, decode_message

FieldValue = Union[str, int]


@dataclass(frozen=True)
class Transaction:
    """One transaction a user asks a service provider to execute.

    ``kind`` is the provider-defined operation ("transfer", "order",
    ...); ``account`` identifies the requesting user; ``fields`` holds
    the operation parameters (amounts are integers in minor units —
    cents — so canonicalization never meets floating point).
    """

    kind: str
    account: str
    fields: Dict[str, FieldValue] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.kind or not self.account:
            raise ValueError("transaction needs a kind and an account")
        for key, value in self.fields.items():
            if not isinstance(key, str) or not isinstance(value, (str, int)):
                raise ValueError(
                    f"field {key!r} must map str -> str|int, got {type(value).__name__}"
                )

    # -- canonical forms ----------------------------------------------------
    def canonical_bytes(self) -> bytes:
        message = {"kind": self.kind, "account": self.account}
        for key, value in self.fields.items():
            message[f"f.{key}"] = value
        return encode_message(message)

    def digest(self) -> bytes:
        return sha1(self.canonical_bytes())

    def display_lines(self) -> List[str]:
        """The rendering the ConfirmationPal shows the human."""
        lines = [
            "=== TRANSACTION CONFIRMATION ===",
            f"operation : {self.kind}",
            f"account   : {self.account}",
        ]
        for key in sorted(self.fields):
            value = self.fields[key]
            if key.startswith("amount"):
                rendered = _format_amount(value)
            else:
                rendered = str(value)
            lines.append(f"{key:<10}: {rendered}")
        return lines

    # -- wire ------------------------------------------------------------------
    @classmethod
    def from_canonical_bytes(cls, data: bytes) -> "Transaction":
        message = decode_message(data)
        fields = {
            key[2:]: value
            for key, value in message.items()
            if key.startswith("f.")
        }
        return cls(kind=message["kind"], account=message["account"], fields=fields)

    def __str__(self) -> str:
        rendered = ", ".join(f"{k}={v}" for k, v in sorted(self.fields.items()))
        return f"{self.kind}({self.account}: {rendered})"


def _format_amount(value: FieldValue) -> str:
    """Render minor-unit integer amounts as a decimal string."""
    if isinstance(value, int):
        return f"{value // 100}.{value % 100:02d}"
    return str(value)
