"""Client-side orchestration of the trusted path.

:class:`TrustedPathClient` drives the full lifecycle on one platform:

1. **AIK enrollment** (once per platform): mint an AIK, prove TPM
   residency to the Privacy CA, obtain the certificate.
2. **Provider enrollment**: register/login, present the AIK cert.
3. **Setup phase** (once per provider, `signed` variant only): launch
   the PAL in setup mode, forward the certification evidence, store the
   sealed signing credential on the (untrusted) disk.
4. **Confirmation**: request the transaction, launch the PAL with the
   provider's challenge, submit the evidence.

All network traffic goes through the Browser — i.e. through the
malware-hookable OS layers — because that is the deployment the paper
describes: only the PAL session itself is trusted.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.confirmation_pal import Decision
from repro.core.errors import (
    ConfirmationRejected,
    ProtocolError,
    SessionSuppressed,
    SetupError,
    TrustedPathError,
)
from repro.core.protocol import (
    EVIDENCE_QUOTE,
    EVIDENCE_SIGNED,
    build_confirmation_submission,
    build_setup_completion,
    build_transaction_request,
    parse_challenge,
)
from repro.core.setup import SetupPal
from repro.core.transaction import Transaction
from repro.crypto.rsa import RsaPublicKey
from repro.drtm.session import SessionRecord
from repro.drtm.slb import SecureLoaderBlock
from repro.hardware.machine import Machine
from repro.net.messages import Message
from repro.net.rpc import RpcEndpoint, RpcError
from repro.os.browser import Browser
from repro.os.kernel import UntrustedOS
from repro.sim.kernel import Simulator
from repro.tpm.ca import (
    AikCertificate,
    PrivacyCa,
    decrypt_certificate,
    serialize_certificate,
)


@dataclass
class ProviderCredential:
    """Per-provider `signed`-variant state from one setup phase.

    The sealed blob lives on the untrusted disk by design: it is
    useless without the genuine-PAL PCR state.
    """

    sealed_credential: bytes
    signing_public: RsaPublicKey


@dataclass
class ClientCredentials:
    """Long-lived client-side trusted-path state."""

    aik_handle: int
    aik_public: RsaPublicKey
    aik_certificate: AikCertificate
    #: SRK-wrapped AIK private blob: reloadable after a reboot (AIK
    #: slots are volatile; the blob is safe on the untrusted disk).
    aik_wrapped: bytes = b""
    #: host -> credential registered with that provider.
    providers: Dict[str, ProviderCredential] = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.providers is None:
            self.providers = {}

    # Convenience accessors: the most recently completed setup (what a
    # single-provider deployment means by "the credential").
    @property
    def sealed_credential(self) -> Optional[bytes]:
        if not self.providers:
            return None
        return next(reversed(self.providers.values())).sealed_credential

    @property
    def signing_public(self) -> Optional[RsaPublicKey]:
        if not self.providers:
            return None
        return next(reversed(self.providers.values())).signing_public


@dataclass
class ConfirmOutcome:
    """Everything observable about one confirmation attempt."""

    decision: bytes
    server_response: Optional[Message]
    session: Optional[SessionRecord]

    @property
    def executed(self) -> bool:
        return bool(
            self.server_response and self.server_response.get("status") == "executed"
        )


class TrustedPathClient:
    """One user's trusted-path stack on one machine."""

    def __init__(
        self,
        simulator: Simulator,
        machine: Machine,
        os_instance: UntrustedOS,
        browser: Browser,
    ) -> None:
        self.simulator = simulator
        self.machine = machine
        self.os = os_instance
        self.browser = browser
        self.pal = SetupPal()
        self.credentials: Optional[ClientCredentials] = None
        # Anti-rollback extension (off by default, matching the paper's
        # base protocol): call enable_monotonic_counter() to turn on.
        self.counter_id: Optional[int] = None
        # -- recovery accounting (see confirm_transaction) -----------------
        self.rechallenges = 0
        self.confirm_resubmits = 0

    # ------------------------------------------------------------------
    def published_pal_measurement(self) -> bytes:
        """The SLB hash providers whitelist (what the paper publishes)."""
        return SecureLoaderBlock.package(self.pal).measurement()

    # ------------------------------------------------------------------
    # Phase 1: AIK enrollment with the Privacy CA
    # ------------------------------------------------------------------
    def enroll_with_ca(self, ca: PrivacyCa) -> ClientCredentials:
        chipset = self.machine.chipset
        aik_handle, aik_public, aik_wrapped = chipset.tpm_command_as_os(
            "make_identity"
        )
        ek_public = chipset.tpm_command_as_os("read_pubek")
        response = ca.enroll(aik_public, ek_public)
        session_key = chipset.tpm_command_as_os(
            "activate_identity",
            aik_handle=aik_handle,
            encrypted_blob=response.encrypted_activation,
        )
        certificate = decrypt_certificate(
            session_key, response.encrypted_certificate
        )
        self.credentials = ClientCredentials(
            aik_handle=aik_handle,
            aik_public=aik_public,
            aik_certificate=certificate,
            aik_wrapped=aik_wrapped,
        )
        return self.credentials

    def reattach_after_reboot(self) -> None:
        """Reload the AIK into the freshly started TPM.

        After a platform reboot every volatile key slot is empty; the
        AIK returns via its SRK-wrapped blob.  Sealed credentials need
        nothing — they live on disk and only open inside the PAL.
        """
        if self.credentials is None or not self.credentials.aik_wrapped:
            raise TrustedPathError("no AIK blob to reload")
        handle = self.machine.chipset.tpm_command_as_os(
            "load_key2",
            parent_handle=self.machine.tpm.SRK_HANDLE,
            wrapped_blob=self.credentials.aik_wrapped,
        )
        self.credentials.aik_handle = handle

    # ------------------------------------------------------------------
    # Phase 2: provider enrollment
    # ------------------------------------------------------------------
    def register_and_login(
        self,
        endpoint: RpcEndpoint,
        account: str,
        password: str,
        **extra: object,
    ) -> None:
        request: Message = {"account": account, "password": password}
        request.update(extra)  # type: ignore[arg-type]
        self.browser.call(endpoint, "register", request)
        self.browser.call(
            endpoint, "login", {"account": account, "password": password}
        )
        self.account = account

    def enroll_aik(self, endpoint: RpcEndpoint) -> None:
        if self.credentials is None:
            raise TrustedPathError("run enroll_with_ca first")
        self.browser.call(
            endpoint,
            "tp.enroll_aik",
            {"aik_certificate":
                 serialize_certificate(self.credentials.aik_certificate)},
        )

    # ------------------------------------------------------------------
    # Phase 3: setup (signed variant)
    # ------------------------------------------------------------------
    def run_setup_phase(self, endpoint: RpcEndpoint) -> SessionRecord:
        if self.credentials is None:
            raise SetupError("no AIK credentials")
        begin = self.browser.call(endpoint, "tp.setup_begin", {})
        nonce = begin["nonce"]
        inputs = {
            "phase": b"setup",
            "nonce": nonce,
            "aik_handle": struct.pack(">I", self.credentials.aik_handle),
        }
        record = self.os.invoke_flicker(self.pal, inputs)
        if record is None:
            raise SessionSuppressed("setup session suppressed")
        if record.aborted:
            raise SetupError(f"setup PAL aborted: {record.abort_reason}")
        completion = build_setup_completion(record.outputs, nonce)
        try:
            self.browser.call(endpoint, "tp.setup_complete", completion)
        except RpcError as exc:
            raise SetupError(f"provider rejected setup: {exc}") from exc
        self.credentials.providers[endpoint.host] = ProviderCredential(
            sealed_credential=record.outputs["sealed_credential"],
            signing_public=RsaPublicKey.from_bytes(record.outputs["public_key"]),
        )
        return record

    # ------------------------------------------------------------------
    # Anti-rollback extension
    # ------------------------------------------------------------------
    COUNTER_ID = 0x1001

    def enable_monotonic_counter(self) -> None:
        """Create (if needed) the TPM monotonic counter and include its
        strictly increasing value in every future confirmation digest."""
        from repro.tpm.constants import TpmError

        try:
            self.machine.chipset.tpm_command_as_os(
                "create_counter", counter_id=self.COUNTER_ID
            )
        except TpmError:
            pass  # already exists (e.g. re-enabled after a state reload)
        self.counter_id = self.COUNTER_ID

    # ------------------------------------------------------------------
    # State persistence on the untrusted disk
    # ------------------------------------------------------------------
    STATE_PATH = "trusted-path/client-state"

    def save_state(self, disk) -> None:
        """Persist long-lived credentials to the (untrusted) disk.

        Everything stored is either public (AIK certificate, public
        keys) or useless off the genuine PAL's PCR state (the sealed
        blobs) — the paper's reason the scheme needs no trusted storage.
        Integrity, however, is NOT assumed: load re-validates.
        """
        if self.credentials is None:
            raise TrustedPathError("nothing to save")
        from repro.net.messages import encode_message

        providers: Message = {}
        for host, credential in self.credentials.providers.items():
            providers[host] = [
                credential.sealed_credential,
                credential.signing_public.to_bytes(),
            ]
        state = {
            "aik_handle": self.credentials.aik_handle,
            "aik_public": self.credentials.aik_public.to_bytes(),
            "aik_wrapped": self.credentials.aik_wrapped,
            "aik_certificate": serialize_certificate(
                self.credentials.aik_certificate
            ),
            "providers": encode_message(providers),
        }
        disk.write_file(self.STATE_PATH, encode_message(state))

    def load_state(self, disk) -> ClientCredentials:
        """Restore credentials from disk, validating what can be.

        Raises :class:`TrustedPathError` on a missing or corrupt file —
        the recovery path is re-enrollment, never silent acceptance.
        """
        from repro.net.messages import MessageError, decode_message
        from repro.tpm.ca import deserialize_certificate

        raw = disk.read_file(self.STATE_PATH)
        if raw is None:
            raise TrustedPathError("no saved client state on disk")
        try:
            state = decode_message(raw)
            aik_public = RsaPublicKey.from_bytes(state["aik_public"])
            certificate = deserialize_certificate(state["aik_certificate"])
            providers_raw = decode_message(state["providers"])
            providers = {
                host: ProviderCredential(
                    sealed_credential=blob_and_key[0],
                    signing_public=RsaPublicKey.from_bytes(blob_and_key[1]),
                )
                for host, blob_and_key in providers_raw.items()
            }
        except (MessageError, KeyError, ValueError, IndexError) as exc:
            raise TrustedPathError(f"client state corrupt: {exc}") from exc
        if certificate.aik_public != aik_public:
            raise TrustedPathError("client state corrupt: AIK mismatch")
        self.credentials = ClientCredentials(
            aik_handle=int(state["aik_handle"]),
            aik_public=aik_public,
            aik_certificate=certificate,
            aik_wrapped=state.get("aik_wrapped", b""),
            providers=providers,
        )
        return self.credentials

    # ------------------------------------------------------------------
    # Phase 4: confirmation
    # ------------------------------------------------------------------
    #: How many fresh challenges confirm_transaction will chase before
    #: giving up, and how many times it resubmits evidence whose fate
    #: the transport lost track of.
    MAX_RECHALLENGES = 2
    MAX_RESUBMITS = 2

    def confirm_transaction(
        self,
        endpoint: RpcEndpoint,
        transaction: Transaction,
        mode: str = EVIDENCE_SIGNED,
    ) -> ConfirmOutcome:
        """The per-transaction flow: request → PAL session → submit.

        Two failures are recovered rather than surfaced:

        * **Expired challenge** — the provider answers ``tx.confirm``
          with a re-challenge hint; the client fetches a fresh nonce via
          ``tx.rechallenge`` and runs a *new* PAL session against it
          (the old evidence is bound to the dead nonce).
        * **Transport gave up** — the confirm's fate is unknown (it may
          have executed).  The client resubmits the *same* evidence;
          the provider's idempotent confirm replays the settled outcome
          and can never execute the transaction twice.
        """
        if self.credentials is None:
            raise TrustedPathError("no AIK credentials")
        if mode not in (EVIDENCE_SIGNED, EVIDENCE_QUOTE):
            raise ProtocolError(f"unknown evidence mode {mode!r}")
        provider_credential = self.credentials.providers.get(endpoint.host)
        if mode == EVIDENCE_SIGNED and provider_credential is None:
            raise SetupError(
                f"signed mode requires a completed setup phase at {endpoint.host}"
            )

        # 1. Ask the provider; receive the authoritative challenge.
        response = self.browser.call(
            endpoint, "tx.request", build_transaction_request(transaction)
        )
        challenge = parse_challenge(response)

        rechallenges = 0
        while True:
            # 2. Launch the PAL with the provider's text and nonce.
            inputs: Dict[str, bytes] = {
                "phase": b"confirm",
                "text": challenge["text"],
                "nonce": challenge["nonce"],
                "mode": mode.encode("ascii"),
            }
            if mode == EVIDENCE_QUOTE:
                inputs["aik_handle"] = struct.pack(
                    ">I", self.credentials.aik_handle
                )
            else:
                assert provider_credential is not None
                inputs["credential"] = provider_credential.sealed_credential
            if self.counter_id is not None:
                inputs["counter_id"] = struct.pack(">I", self.counter_id)
            record = self.os.invoke_flicker(self.pal, inputs)
            if record is None:
                raise SessionSuppressed("confirmation session suppressed")
            if record.aborted:
                raise TrustedPathError(f"PAL aborted: {record.abort_reason}")

            decision = record.outputs.get("decision", Decision.TIMEOUT)
            if decision == Decision.TIMEOUT:
                # No human answered: nothing to submit; the provider's
                # transaction will expire server-side.
                return ConfirmOutcome(
                    decision=decision, server_response=None, session=record
                )

            # 3. Submit the evidence.
            submission = build_confirmation_submission(
                tx_id=challenge["tx_id"],
                decision=decision,
                evidence_type=mode,
                evidence=record.outputs,
            )
            resubmits = 0
            while True:
                try:
                    final = self.browser.call(endpoint, "tx.confirm", submission)
                    return ConfirmOutcome(
                        decision=decision, server_response=final, session=record
                    )
                except RpcError as exc:
                    if exc.transport and resubmits < self.MAX_RESUBMITS:
                        resubmits += 1
                        self.confirm_resubmits += 1
                        continue
                    if (
                        exc.rechallenge_required
                        and rechallenges < self.MAX_RECHALLENGES
                    ):
                        rechallenges += 1
                        self.rechallenges += 1
                        refreshed = self.browser.call(
                            endpoint,
                            "tx.rechallenge",
                            {"tx_id": challenge["tx_id"]},
                        )
                        challenge = parse_challenge(refreshed)
                        break  # fresh PAL session against the new nonce
                    raise ConfirmationRejected(str(exc)) from exc

    # ------------------------------------------------------------------
    # Batch confirmation (extension)
    # ------------------------------------------------------------------
    def confirm_batch(
        self,
        endpoint: RpcEndpoint,
        transactions,
        mode: str = EVIDENCE_SIGNED,
    ) -> ConfirmOutcome:
        """Confirm several transactions in ONE PAL session.

        The provider renders all of them into one challenge text; the
        human reads the whole batch and gives one verdict; the evidence
        digest covers the entire rendering — so the session cost
        amortizes across the batch (experiment E3).

        Recovery parity with :meth:`confirm_transaction`: an expired
        challenge earns a fresh nonce via ``tx.rechallenge`` (and a new
        PAL session — the old evidence is bound to the dead nonce), and
        a transport failure resubmits the same evidence against the
        provider's idempotent batch confirm.
        """
        from repro.net.messages import encode_message

        if self.credentials is None:
            raise TrustedPathError("no AIK credentials")
        provider_credential = self.credentials.providers.get(endpoint.host)
        if mode == EVIDENCE_SIGNED and provider_credential is None:
            raise SetupError(
                f"signed mode requires a completed setup phase at {endpoint.host}"
            )
        encoded = [
            encode_message(build_transaction_request(transaction))
            for transaction in transactions
        ]
        response = self.browser.call(
            endpoint, "tx.request_batch", {"transactions": encoded}
        )
        challenge = parse_challenge(response)

        rechallenges = 0
        while True:
            inputs: Dict[str, bytes] = {
                "phase": b"confirm",
                "text": challenge["text"],
                "nonce": challenge["nonce"],
                "mode": mode.encode("ascii"),
            }
            if mode == EVIDENCE_QUOTE:
                inputs["aik_handle"] = struct.pack(
                    ">I", self.credentials.aik_handle
                )
            else:
                assert provider_credential is not None
                inputs["credential"] = provider_credential.sealed_credential
            if self.counter_id is not None:
                inputs["counter_id"] = struct.pack(">I", self.counter_id)
            record = self.os.invoke_flicker(self.pal, inputs)
            if record is None:
                raise SessionSuppressed("batch confirmation session suppressed")
            if record.aborted:
                raise TrustedPathError(f"PAL aborted: {record.abort_reason}")
            decision = record.outputs.get("decision", Decision.TIMEOUT)
            if decision == Decision.TIMEOUT:
                return ConfirmOutcome(
                    decision=decision, server_response=None, session=record
                )
            submission = build_confirmation_submission(
                tx_id=challenge["tx_id"],
                decision=decision,
                evidence_type=mode,
                evidence=record.outputs,
            )
            resubmits = 0
            while True:
                try:
                    final = self.browser.call(
                        endpoint, "tx.confirm_batch", submission
                    )
                    return ConfirmOutcome(
                        decision=decision, server_response=final, session=record
                    )
                except RpcError as exc:
                    if exc.transport and resubmits < self.MAX_RESUBMITS:
                        resubmits += 1
                        self.confirm_resubmits += 1
                        continue
                    if (
                        exc.rechallenge_required
                        and rechallenges < self.MAX_RECHALLENGES
                    ):
                        rechallenges += 1
                        self.rechallenges += 1
                        refreshed = self.browser.call(
                            endpoint,
                            "tx.rechallenge",
                            {"tx_id": challenge["tx_id"]},
                        )
                        challenge = parse_challenge(refreshed)
                        break  # fresh PAL session against the new nonce
                    raise ConfirmationRejected(str(exc)) from exc
