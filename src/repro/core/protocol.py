"""Protocol message builders and parsers.

The wire protocol between client and provider, as message dicts
(`repro.net.messages`).  Methods exposed by a trusted-path provider:

=====================  ===================================================
``register``            create an account (username, password)
``login``               password login → session cookie
``tp.setup_begin``      → setup challenge {nonce}
``tp.setup_complete``   setup evidence → key registered
``tx.request``          transaction fields → confirmation challenge
                        {tx_id, nonce, text}
``tx.confirm``          confirmation evidence → executed / rejected
``tx.status``           tx_id → pending / executed / rejected / expired
=====================  ===================================================

Builders in this module are shared by the honest client and the malware
(the adversary speaks fluent protocol; security never rests on message
syntax).
"""

from __future__ import annotations

from typing import Dict

from repro.core.errors import ProtocolError
from repro.core.transaction import Transaction
from repro.net.messages import Message

EVIDENCE_QUOTE = "quote"
EVIDENCE_SIGNED = "signed"


def build_transaction_request(transaction: Transaction) -> Message:
    """Encode a transaction as the ``tx.request`` message body."""
    request: Message = {"kind": transaction.kind, "account": transaction.account}
    for key, value in transaction.fields.items():
        request[f"f.{key}"] = value
    return request


def transaction_from_request(request: Message) -> Transaction:
    """Provider-side parse of a ``tx.request`` body (canonicalization)."""
    if "kind" not in request or "account" not in request:
        raise ProtocolError("transaction request missing kind/account")
    fields = {
        key[2:]: value for key, value in request.items() if key.startswith("f.")
    }
    return Transaction(
        kind=str(request["kind"]), account=str(request["account"]), fields=fields
    )


def build_confirmation_submission(
    tx_id: bytes, decision: bytes, evidence_type: str, evidence: Dict[str, bytes]
) -> Message:
    """Assemble the ``tx.confirm`` message from PAL session outputs."""
    submission: Message = {
        "tx_id": tx_id,
        "decision": decision,
        "evidence": evidence_type,
    }
    if evidence_type == EVIDENCE_QUOTE:
        submission["quote"] = evidence["quote"]
    elif evidence_type == EVIDENCE_SIGNED:
        submission["signature"] = evidence["signature"]
    else:
        raise ProtocolError(f"unknown evidence type {evidence_type!r}")
    if "counter" in evidence:  # anti-rollback extension
        submission["counter"] = int.from_bytes(evidence["counter"], "big")
    return submission


def build_setup_completion(outputs: Dict[str, bytes], nonce: bytes) -> Message:
    """Assemble the ``tp.setup_complete`` message (sealed blob stays local)."""
    required = ("public_key", "quote")
    for key in required:
        if key not in outputs:
            raise ProtocolError(f"setup outputs missing {key!r}")
    return {
        "public_key": outputs["public_key"],
        "quote": outputs["quote"],
        "nonce": nonce,
    }


def parse_challenge(response: Message) -> Dict[str, bytes]:
    """Extract (tx_id, nonce, text) from a ``tx.request`` response."""
    for key in ("tx_id", "nonce", "text"):
        if key not in response:
            raise ProtocolError(f"challenge missing {key!r}")
    text = response["text"]
    if isinstance(text, str):
        text = text.encode("utf-8")
    nonce = response["nonce"]
    if not isinstance(nonce, bytes) or len(nonce) != 20:
        raise ProtocolError("challenge nonce must be 20 bytes")
    return {"tx_id": response["tx_id"], "nonce": nonce, "text": text}
