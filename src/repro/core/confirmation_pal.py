"""The ConfirmationPal: the trusted path's entire TCB.

Inputs (all bytes, per the PAL ABI):

========== =============================================================
text        the server-sent canonical transaction text (UTF-8 lines)
nonce       the server's 20-byte anti-replay nonce
mode        b"quote" or b"signed"
aik_handle  4-byte handle of the loaded AIK            (quote mode)
credential  serialized sealed signing credential        (signed mode)
========== =============================================================

Behaviour: display the text, wait for the human's keystroke, compute
``D = SHA1(text || nonce || decision)`` and emit evidence for D.  A
reject decision produces evidence too — the server distinguishes "user
said no" from "no human answered", which matters for the DoS analysis.

This class's source is part of its measured identity
(`repro.drtm.slb.measured_image`): edit anything here and every sealed
credential in existence stops unsealing, exactly like re-hashing a real
PAL binary.
"""

from __future__ import annotations

import struct
from typing import Dict

from repro.crypto.sha1 import sha1
from repro.drtm.pal import Pal, PalServices
from repro.drtm.sealing import pal_pcr_selection
from repro.hardware.keyboard import ScanCode
from repro.tpm.constants import PCR_DRTM_DATA
from repro.tpm.structures import SealedBlob

PAL_VERSION = "unitp-confirmation-pal/1.0"

#: How long the PAL waits for the human before giving up.
INPUT_TIMEOUT_SECONDS = 60.0

#: Modeled CPU cost of one software RSA-1024 signature on the paper's
#: testbed class of hardware.
SOFTWARE_SIGN_SECONDS = 0.0117


class Decision:
    """The three possible confirmation outcomes."""

    ACCEPT = b"accept"
    REJECT = b"reject"
    TIMEOUT = b"timeout"


def confirmation_digest(
    text: bytes, nonce: bytes, decision: bytes, counter: int = -1
) -> bytes:
    """D = SHA1(len-framed text || nonce || decision [|| counter]).

    ``counter`` is the optional TPM monotonic counter value of the
    anti-rollback extension; -1 (the default) means the deployment does
    not use it and the digest layout is the base protocol's.
    """
    framed = struct.pack(">I", len(text)) + text + nonce + decision
    if counter >= 0:
        framed += struct.pack(">Q", counter)
    return sha1(framed)


class ConfirmationPal(Pal):
    """Displays a transaction, reads the verdict, emits evidence."""

    name = "confirmation-pal"

    def config_bytes(self) -> bytes:
        return PAL_VERSION.encode("ascii")

    def run(self, services: PalServices, inputs: Dict[str, bytes]) -> Dict[str, bytes]:
        text = inputs["text"]
        nonce = inputs["nonce"]
        mode = inputs["mode"]
        if len(nonce) != 20:
            raise ValueError("challenge nonce must be 20 bytes")
        if mode not in (b"quote", b"signed"):
            raise ValueError(f"unknown evidence mode {mode!r}")

        # 1. Show the server-authoritative transaction text.
        lines = text.decode("utf-8").splitlines()
        lines += ["", "Press  Y = confirm    N = reject"]
        services.show(lines)

        # 2. Signed mode: issue the TPM_Unseal *now*, behind the prompt —
        #    it does not depend on the decision, so its latency hides
        #    under the human's reading time (the paper's latency trick).
        signing_key = None
        if mode == b"signed":
            signing_key = self._unseal_signing_key(services, inputs)

        # 3. Physical human verdict.
        decision = self._await_decision(services)

        # 4. Optional anti-rollback extension: advance the TPM monotonic
        #    counter and bind its value into the digest, making
        #    confirmations strictly ordered even across reboots.
        counter_value = -1
        if "counter_id" in inputs:
            (counter_id,) = struct.unpack(">I", inputs["counter_id"])
            counter_value = services.tpm(
                "increment_counter", counter_id=counter_id
            )

        # 5. Bind (text, nonce, decision[, counter]) into evidence.
        digest = confirmation_digest(text, nonce, decision, counter_value)
        outputs: Dict[str, bytes] = {"decision": decision, "digest": digest}
        if counter_value >= 0:
            outputs["counter"] = struct.pack(">Q", counter_value)
        if decision == Decision.TIMEOUT:
            return outputs  # no evidence for an absent human

        if mode == b"quote":
            outputs.update(self._quote_evidence(services, inputs, digest, nonce))
        else:
            assert signing_key is not None
            outputs.update(self._signed_evidence(services, signing_key, digest))
        return outputs

    # ------------------------------------------------------------------
    def _await_decision(self, services: PalServices) -> bytes:
        deadline_budget = INPUT_TIMEOUT_SECONDS
        while True:
            key = services.read_key(timeout=deadline_budget)
            if key is None:
                return Decision.TIMEOUT
            if key == ScanCode.KEY_Y:
                return Decision.ACCEPT
            if key in (ScanCode.KEY_N, ScanCode.KEY_ESC):
                return Decision.REJECT
            # Any other key: ignore and keep waiting (human fumbled).

    def _quote_evidence(
        self,
        services: PalServices,
        inputs: Dict[str, bytes],
        digest: bytes,
        nonce: bytes,
    ) -> Dict[str, bytes]:
        """Extend D into PCR 18, then quote PCRs 17+18 with the AIK."""
        (aik_handle,) = struct.unpack(">I", inputs["aik_handle"])
        services.tpm("extend", pcr_index=PCR_DRTM_DATA, measurement=digest)
        bundle = services.tpm(
            "quote",
            key_handle=aik_handle,
            selection=pal_pcr_selection(),
            external_data=sha1(nonce),
        )
        return {"quote": bundle.to_bytes()}

    def _unseal_signing_key(self, services: PalServices, inputs: Dict[str, bytes]):
        """Release the setup-phase signing key into PAL memory.

        The unseal succeeds only because PCR 17 currently holds *this*
        PAL's launch value — the TPM enforces that, not this code.
        """
        from repro.tpm.keys import deserialize_private  # PAL-local import

        blob = SealedBlob.from_bytes(inputs["credential"])
        private_blob = services.tpm("unseal", blob=blob)
        return deserialize_private(private_blob)

    def _signed_evidence(
        self, services: PalServices, signing_key, digest: bytes
    ) -> Dict[str, bytes]:
        """Sign D in PAL software with the unsealed key.

        Software RSA on the main CPU, not TPM_Sign: that is the entire
        point of the sealed-key variant — per-transaction cost is one
        TPM_Unseal (already paid, hidden under reading time) plus a few
        milliseconds of CPU.
        """
        from repro.crypto.pkcs1 import pkcs1_sign  # PAL-local import

        services.charge_logic(SOFTWARE_SIGN_SECONDS)
        signature = pkcs1_sign(signing_key.keypair, digest, prehashed=True)
        return {"signature": signature}
