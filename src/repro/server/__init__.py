"""Service-provider side (system S10).

* :mod:`repro.server.noncedb` — challenge nonce issuance, single-use
  consumption, expiry and eviction (experiment F5).
* :mod:`repro.server.policy` — the verifier's trust anchors: the
  Privacy CA key and the known-good PAL measurement whitelist.
* :mod:`repro.server.verifier` — the attestation verifier: checks
  setup-phase CertifyInfo evidence and per-transaction quote / signed
  evidence against the policy.
* :mod:`repro.server.provider` — the protocol endpoint: accounts,
  pending transactions, challenge issuance, confirmation handling.
* :mod:`repro.server.bank` / :mod:`repro.server.shop` — two concrete
  service providers (online banking, e-commerce) with real execution
  semantics (balances move, orders ship), so "the attack failed"
  is measured in ledger state, not in log lines.
* :mod:`repro.server.router` — the sharded provider pool: a
  consistent-hash router front end over N independent provider
  replicas (experiment F3-S).
"""

from repro.server.bank import BankServer
from repro.server.noncedb import NonceDatabase, NonceState
from repro.server.policy import VerifierPolicy
from repro.server.provider import ServiceProvider, TxStatus
from repro.server.journal import JournalError, ProviderJournal
from repro.server.router import (
    DENIAL_SHARD_DOWN,
    CircuitBreaker,
    HashRing,
    ProviderRouter,
    build_sharded_pool,
)
from repro.server.shop import ShopServer
from repro.server.verifier import (
    AttestationVerifier,
    VerificationCache,
    VerificationFailure,
)

__all__ = [
    "NonceDatabase",
    "NonceState",
    "VerifierPolicy",
    "AttestationVerifier",
    "VerificationCache",
    "VerificationFailure",
    "ServiceProvider",
    "TxStatus",
    "BankServer",
    "ShopServer",
    "HashRing",
    "ProviderRouter",
    "build_sharded_pool",
    "CircuitBreaker",
    "DENIAL_SHARD_DOWN",
    "ProviderJournal",
    "JournalError",
]
