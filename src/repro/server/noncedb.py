"""Challenge nonce database.

Every confirmation challenge carries a fresh 20-byte nonce; evidence is
accepted only if its nonce is (a) known, (b) unexpired, and (c) never
consumed before.  This is the whole replay story, so the structure gets
its own scalability experiment (F5): issuance/consumption cost and the
eviction sweep as the live set grows.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Tuple

from repro.crypto.drbg import HmacDrbg


class NonceState(enum.Enum):
    """Lifecycle state a nonce is observed in at consume time."""

    UNKNOWN = "unknown"
    LIVE = "live"
    CONSUMED = "consumed"
    EXPIRED = "expired"


@dataclass
class _NonceRecord:
    tx_id: bytes
    issued_at: float
    expires_at: float
    consumed: bool = False


class NonceDatabase:
    """Single-use nonces with expiry and periodic eviction."""

    def __init__(
        self,
        drbg: HmacDrbg,
        lifetime_seconds: float = 300.0,
        eviction_interval: float = 60.0,
    ) -> None:
        self._drbg = drbg
        self.lifetime_seconds = lifetime_seconds
        self.eviction_interval = eviction_interval
        self._records: Dict[bytes, _NonceRecord] = {}
        self._last_eviction = 0.0
        self.issued = 0
        self.consumed = 0
        self.rejected_replays = 0
        self.rejected_expired = 0
        self.rejected_unknown = 0
        self.evictions = 0
        self.invalidated = 0

    def issue(self, tx_id: bytes, now: float) -> bytes:
        """Mint a fresh nonce bound to ``tx_id``."""
        nonce = self._drbg.generate(20)
        self._records[nonce] = _NonceRecord(
            tx_id=tx_id, issued_at=now, expires_at=now + self.lifetime_seconds
        )
        self.issued += 1
        self._maybe_evict(now)
        return nonce

    def consume(
        self, nonce: bytes, tx_id: bytes, now: float
    ) -> Tuple[bool, NonceState]:
        """Atomically consume a nonce for ``tx_id``.

        Returns (accepted, state-observed).  Only LIVE nonces bound to
        the same tx_id are accepted, exactly once.

        Consumption participates in the periodic eviction sweep exactly
        like issuance: a provider that is only *verifying* (a long
        confirm-heavy phase with no new challenges) must not let dead
        records pile up until the next issue() happens to run the sweep.
        """
        # Look the record up before sweeping: the sweep may drop this
        # very nonce (if expired), and the caller still deserves the
        # precise EXPIRED verdict rather than UNKNOWN.
        record = self._records.get(nonce)
        self._maybe_evict(now)
        if record is None:
            self.rejected_unknown += 1
            return False, NonceState.UNKNOWN
        if record.consumed:
            self.rejected_replays += 1
            return False, NonceState.CONSUMED
        if now > record.expires_at:
            self.rejected_expired += 1
            return False, NonceState.EXPIRED
        if record.tx_id != tx_id:
            self.rejected_unknown += 1
            return False, NonceState.UNKNOWN
        record.consumed = True
        self.consumed += 1
        return True, NonceState.LIVE

    def state_of(self, nonce: bytes, now: float) -> NonceState:
        record = self._records.get(nonce)
        if record is None:
            return NonceState.UNKNOWN
        if record.consumed:
            return NonceState.CONSUMED
        if now > record.expires_at:
            return NonceState.EXPIRED
        return NonceState.LIVE

    def invalidate(self, nonce: bytes) -> bool:
        """Forget a live nonce (re-challenge path): the old challenge
        must stop being acceptable the moment a replacement is minted."""
        if self._records.pop(nonce, None) is None:
            return False
        self.invalidated += 1
        return True

    # -- durability support (journal replay / snapshot restore) ----------
    @property
    def drbg(self) -> HmacDrbg:
        """The minting DRBG — exposed so a provider journal can capture
        and restore its exact state across a crash."""
        return self._drbg

    def replay_issue(self, nonce: bytes, tx_id: bytes, now: float) -> None:
        """Journal replay of one :meth:`issue`: recreate the recorded
        nonce *without* consuming DRBG randomness, with the same
        accounting and the same opportunistic eviction sweep."""
        self._records[nonce] = _NonceRecord(
            tx_id=tx_id, issued_at=now, expires_at=now + self.lifetime_seconds
        )
        self.issued += 1
        self._maybe_evict(now)

    def export_records(self) -> list:
        """Snapshot capture: every record as a plain tuple, in insertion
        order (the order eviction sweeps iterate in)."""
        return [
            (nonce, r.tx_id, r.issued_at, r.expires_at, int(r.consumed))
            for nonce, r in self._records.items()
        ]

    def import_records(self, records: list, last_eviction: float) -> None:
        """Snapshot restore: replace the record set wholesale."""
        self._records = {
            nonce: _NonceRecord(
                tx_id=tx_id, issued_at=issued_at,
                expires_at=expires_at, consumed=bool(consumed),
            )
            for nonce, tx_id, issued_at, expires_at, consumed in records
        }
        self._last_eviction = last_eviction

    # -- account-slice migration ------------------------------------------
    def absorb_records(self, records: list) -> None:
        """Adopt a migrated slice's nonce records as-is: no issuance
        accounting, no DRBG draw, no eviction sweep — the records keep
        the exact lifecycle state (consumed included) they had on the
        old owner, which is what keeps cross-shard replay impossible."""
        for nonce, tx_id, issued_at, expires_at, consumed in records:
            self._records[nonce] = _NonceRecord(
                tx_id=tx_id, issued_at=issued_at,
                expires_at=expires_at, consumed=bool(consumed),
            )

    def drop_bound(self, tx_ids) -> int:
        """Forget every nonce bound to one of ``tx_ids`` (the migrated
        transactions/batches now owned elsewhere); returns the count.
        Distinct from :meth:`invalidate`: these nonces are not being
        revoked — their records moved, so no counter changes."""
        bound = [
            nonce for nonce, record in self._records.items()
            if record.tx_id in tx_ids
        ]
        for nonce in bound:
            del self._records[nonce]
        return len(bound)

    def wipe(self) -> None:
        """Crash-stop: the in-memory record set is simply gone."""
        self._records.clear()

    @property
    def last_eviction(self) -> float:
        return self._last_eviction

    def _maybe_evict(self, now: float) -> None:
        if now - self._last_eviction < self.eviction_interval:
            return
        self.evict(now)

    def evict(self, now: float) -> int:
        """Drop expired and consumed records; returns how many went."""
        before = len(self._records)
        self._records = {
            nonce: record
            for nonce, record in self._records.items()
            if not record.consumed and now <= record.expires_at
        }
        self._last_eviction = now
        evicted = before - len(self._records)
        self.evictions += evicted
        return evicted

    @property
    def live_count(self) -> int:
        return len(self._records)
