"""An e-commerce shop: the paper's second deployment scenario.

Orders have stock and a per-account spending limit; the interesting
adversary here is the *bulk buyer bot* the abstract's captcha
discussion targets — an automated client draining limited stock.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.core.errors import ProtocolError
from repro.core.transaction import Transaction
from repro.net.messages import Message
from repro.server.provider import AccountRecord, ServiceProvider


@dataclass
class Order:
    account: str
    item: str
    quantity: int
    unit_price_cents: int


class ShopServer(ServiceProvider):
    """Sells items from a finite stock."""

    SUPPORTED_KINDS = ("order",)

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.stock: Dict[str, int] = {}
        self.prices: Dict[str, int] = {}
        self.orders: List[Order] = []
        self.per_account_limit = 10

    def add_product(self, item: str, stock: int, unit_price_cents: int) -> None:
        self.stock[item] = stock
        self.prices[item] = unit_price_cents

    # -- hooks ------------------------------------------------------------
    def on_account_created(self, record: AccountRecord, request: Message) -> None:
        pass

    def validate_transaction(self, transaction: Transaction) -> None:
        if transaction.kind not in self.SUPPORTED_KINDS:
            raise ProtocolError(f"shop does not support {transaction.kind!r}")
        item = transaction.fields.get("item")
        quantity = transaction.fields.get("quantity")
        if not isinstance(item, str) or item not in self.stock:
            raise ProtocolError(f"unknown item {item!r}")
        if not isinstance(quantity, int) or quantity <= 0:
            raise ProtocolError("quantity must be a positive integer")
        if quantity > self.per_account_limit:
            raise ProtocolError(
                f"quantity {quantity} exceeds per-account limit "
                f"{self.per_account_limit}"
            )
        if self.stock[item] < quantity:
            raise ProtocolError(f"only {self.stock[item]} x {item!r} left")

    def execute_transaction(self, transaction: Transaction) -> str:
        item = str(transaction.fields["item"])
        quantity = int(transaction.fields["quantity"])
        if self.stock.get(item, 0) < quantity:
            raise ProtocolError("out of stock at execution time")
        self.stock[item] -= quantity
        order = Order(
            account=transaction.account,
            item=item,
            quantity=quantity,
            unit_price_cents=self.prices[item],
        )
        self.orders.append(order)
        return f"shipped {quantity} x {item}"

    # -- experiment accessors ----------------------------------------------
    def units_sold_to(self, account: str) -> int:
        return sum(order.quantity for order in self.orders if order.account == account)
