"""The attestation verifier: the provider-side security decision.

Three verdicts, each a full cryptographic check against the policy:

* :meth:`AttestationVerifier.verify_aik_certificate` — the AIK chains
  to a trusted Privacy CA.
* :meth:`AttestationVerifier.verify_setup` — the setup quote was signed
  by that AIK under a genuine-PAL PCR 17, with PCR 18 binding exactly
  the presented public key and the expected setup nonce.
* :meth:`AttestationVerifier.verify_confirmation` — per-transaction
  evidence: either an AIK quote whose PCR 17 is an approved PAL value
  and whose PCR 18 equals exactly one extend of the expected
  confirmation digest, or a signature by the setup-registered key over
  that digest.

Every rejection carries a reason code; the security-matrix experiment
(T4) asserts on reasons, not just on booleans, so a check that silently
stopped running would be caught.
"""

from __future__ import annotations

import enum
import hashlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.core.protocol import EVIDENCE_QUOTE, EVIDENCE_SIGNED
from repro.crypto.pkcs1 import pkcs1_verify
from repro.crypto.rsa import RsaPublicKey
from repro.crypto.sha1 import sha1
from repro.core.confirmation_pal import confirmation_digest
from repro.server.policy import VerifierPolicy
from repro.sim.tracing import traced
from repro.tpm.ca import AikCertificate
from repro.tpm.constants import PCR_DRTM_CODE, PCR_DRTM_DATA
from repro.tpm.quote import QuoteBundle, verify_quote


class VerificationFailure(enum.Enum):
    """Why evidence was rejected."""

    NONE = "ok"
    BAD_CA_SIGNATURE = "aik certificate not signed by a trusted CA"
    BAD_CERTIFY_SIGNATURE = "certify-info signature invalid"
    CERTIFY_WRONG_KEY = "certify-info names a different key"
    CERTIFY_WRONG_PCRS = "key was not certified under a genuine PAL state"
    CERTIFY_WRONG_NONCE = "certify-info nonce mismatch"
    BAD_QUOTE_SIGNATURE = "quote signature invalid"
    QUOTE_WRONG_PCR17 = "quoted PCR 17 is not an approved PAL"
    QUOTE_WRONG_PCR18 = "quoted PCR 18 does not bind this confirmation"
    QUOTE_WRONG_NONCE = "quote external data mismatch"
    BAD_SIGNATURE = "confirmation signature invalid"
    NO_REGISTERED_KEY = "no setup-registered key for this account"
    MALFORMED = "evidence malformed"


@dataclass
class VerificationResult:
    ok: bool
    failure: VerificationFailure
    detail: str = ""

    @classmethod
    def success(cls) -> "VerificationResult":
        return cls(ok=True, failure=VerificationFailure.NONE)

    @classmethod
    def reject(cls, failure: VerificationFailure, detail: str = ""):
        return cls(ok=False, failure=failure, detail=detail)


_CACHE_MISS = object()


class VerificationCache:
    """Bounded LRU memo over the verifier's RSA signature checks.

    Pure-Python RSA verification dominates provider wall-clock, and the
    *same* signatures recur: every session re-presents the enrolled AIK
    certificate, and retransmitted/replayed confirms re-verify identical
    evidence.  Those checks are pure functions of ``(public key, message,
    signature)``, so memoizing the boolean verdict is sound — a cached
    hit is bit-identical to a cold verify by construction.  Policy checks
    (PCR whitelists, nonce freshness, counter monotonicity) are *never*
    cached: they depend on mutable verifier state and always re-run.

    Keys embed the public key's ``(n, e)`` directly plus a SHA-256 (via
    ``hashlib`` — this is engineering machinery, not modeled protocol
    crypto) of the message/signature material, so a tampered certificate
    or flipped signature byte can never alias a cached entry.
    """

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1: {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[Tuple, bool]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, key: Tuple):
        """Cached verdict for ``key``, or the module's miss sentinel."""
        try:
            value = self._entries[key]
        except KeyError:
            self.misses += 1
            return _CACHE_MISS
        self._entries.move_to_end(key)
        self.hits += 1
        return value

    def store(self, key: Tuple, verdict: bool) -> bool:
        self._entries[key] = verdict
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1
        return verdict

    def stats(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "entries": len(self._entries),
        }


def _blob_digest(data: bytes) -> bytes:
    return hashlib.sha256(data).digest()


class AttestationVerifier:
    """Stateless evidence checks against one policy.

    ``tracer`` (optional) records one span per verification — providers
    pass their simulator's tracer so server-side evidence checking shows
    up in session traces next to network and TPM time.

    ``cache`` (optional) is a :class:`VerificationCache` memoizing the
    raw signature checks (certificate / quote / PKCS#1) — the fast path
    for repeated evidence.  ``None`` disables memoization entirely; the
    verdict for any given evidence is identical either way.
    """

    def __init__(
        self,
        policy: VerifierPolicy,
        tracer=None,
        cache: Optional[VerificationCache] = None,
    ) -> None:
        self.policy = policy
        self.tracer = tracer
        self.cache = cache
        #: One-pass batch verifications served / members they covered.
        self.batch_legs = 0
        self.batch_members = 0

    # -- memoized signature primitives ---------------------------------
    def _cert_signature_ok(
        self, certificate: AikCertificate, ca_key: RsaPublicKey
    ) -> bool:
        """``certificate.verify(ca_key)``, memoized per (cert, CA)."""
        if self.cache is None:
            return certificate.verify(ca_key)
        key = (
            b"aik-cert",
            ca_key.n,
            ca_key.e,
            _blob_digest(certificate.signed_body() + certificate.signature),
        )
        verdict = self.cache.lookup(key)
        if verdict is not _CACHE_MISS:
            return verdict
        return self.cache.store(key, certificate.verify(ca_key))

    def _quote_signature_ok(
        self, aik_public: RsaPublicKey, quote: QuoteBundle
    ) -> bool:
        """``verify_quote``, memoized per (AIK, serialized bundle)."""
        if self.cache is None:
            return verify_quote(aik_public, quote)
        key = (
            b"quote",
            aik_public.n,
            aik_public.e,
            _blob_digest(quote.to_bytes()),
        )
        verdict = self.cache.lookup(key)
        if verdict is not _CACHE_MISS:
            return verdict
        return self.cache.store(key, verify_quote(aik_public, quote))

    def _pkcs1_ok(
        self, public_key: RsaPublicKey, digest: bytes, signature: bytes
    ) -> bool:
        """Prehashed ``pkcs1_verify``, memoized per (key, digest, sig)."""
        if self.cache is None:
            return pkcs1_verify(public_key, digest, signature, prehashed=True)
        key = (
            b"pkcs1",
            public_key.n,
            public_key.e,
            digest,
            _blob_digest(signature),
        )
        verdict = self.cache.lookup(key)
        if verdict is not _CACHE_MISS:
            return verdict
        return self.cache.store(
            key, pkcs1_verify(public_key, digest, signature, prehashed=True)
        )

    # ------------------------------------------------------------------
    @traced("verify.aik_certificate")
    def verify_aik_certificate(
        self, certificate: AikCertificate
    ) -> VerificationResult:
        for ca_key in self.policy.ca_public_keys:
            if self._cert_signature_ok(certificate, ca_key):
                return VerificationResult.success()
        return VerificationResult.reject(VerificationFailure.BAD_CA_SIGNATURE)

    # ------------------------------------------------------------------
    @traced("verify.setup")
    def verify_setup(
        self,
        aik_public: RsaPublicKey,
        presented_public_key: RsaPublicKey,
        quote: QuoteBundle,
        expected_nonce: bytes,
    ) -> VerificationResult:
        """Validate the setup phase's key-certification quote.

        A genuine setup session exhibits: PCR 17 = an approved PAL
        value, PCR 18 = exactly one extend of SHA1(public key), and
        external data = SHA1(setup nonce).
        """
        if not self._quote_signature_ok(aik_public, quote):
            return VerificationResult.reject(
                VerificationFailure.BAD_CERTIFY_SIGNATURE
            )
        if quote.external_data != sha1(expected_nonce):
            return VerificationResult.reject(VerificationFailure.CERTIFY_WRONG_NONCE)
        try:
            reported_17 = quote.reported_value(PCR_DRTM_CODE)
            reported_18 = quote.reported_value(PCR_DRTM_DATA)
        except KeyError as exc:
            return VerificationResult.reject(
                VerificationFailure.MALFORMED, detail=str(exc)
            )
        if not self.policy.pcr17_is_approved(reported_17):
            return VerificationResult.reject(VerificationFailure.CERTIFY_WRONG_PCRS)
        expected_18 = self.policy.expected_pcr18_after_digest(
            sha1(presented_public_key.to_bytes())
        )
        if reported_18 != expected_18:
            return VerificationResult.reject(VerificationFailure.CERTIFY_WRONG_KEY)
        return VerificationResult.success()

    # ------------------------------------------------------------------
    @traced("verify.quote_confirmation")
    def verify_quote_confirmation(
        self,
        aik_public: RsaPublicKey,
        quote: QuoteBundle,
        text: bytes,
        nonce: bytes,
        decision: bytes,
        counter: int = -1,
    ) -> VerificationResult:
        """Quote-variant evidence for one confirmation."""
        if not self._quote_signature_ok(aik_public, quote):
            return VerificationResult.reject(VerificationFailure.BAD_QUOTE_SIGNATURE)
        if quote.external_data != sha1(nonce):
            return VerificationResult.reject(VerificationFailure.QUOTE_WRONG_NONCE)
        try:
            reported_17 = quote.reported_value(PCR_DRTM_CODE)
            reported_18 = quote.reported_value(PCR_DRTM_DATA)
        except KeyError as exc:
            return VerificationResult.reject(
                VerificationFailure.MALFORMED, detail=str(exc)
            )
        if not self.policy.pcr17_is_approved(reported_17):
            return VerificationResult.reject(VerificationFailure.QUOTE_WRONG_PCR17)
        digest = confirmation_digest(text, nonce, decision, counter)
        if reported_18 != self.policy.expected_pcr18_after_digest(digest):
            return VerificationResult.reject(VerificationFailure.QUOTE_WRONG_PCR18)
        return VerificationResult.success()

    # ------------------------------------------------------------------
    @traced("verify.signed_confirmation")
    def verify_signed_confirmation(
        self,
        registered_key: Optional[RsaPublicKey],
        signature: bytes,
        text: bytes,
        nonce: bytes,
        decision: bytes,
        counter: int = -1,
    ) -> VerificationResult:
        """Signed-variant evidence for one confirmation."""
        if registered_key is None:
            return VerificationResult.reject(VerificationFailure.NO_REGISTERED_KEY)
        digest = confirmation_digest(text, nonce, decision, counter)
        if not self._pkcs1_ok(registered_key, digest, signature):
            return VerificationResult.reject(VerificationFailure.BAD_SIGNATURE)
        return VerificationResult.success()

    # ------------------------------------------------------------------
    @traced("verify.confirm_batch")
    def verify_confirm_batch(
        self,
        *,
        evidence_type: str,
        text: bytes,
        nonce: bytes,
        decision: bytes,
        counter: int = -1,
        members: int = 1,
        aik_certificate: Optional[AikCertificate] = None,
        quote_bytes: Optional[bytes] = None,
        registered_key: Optional[RsaPublicKey] = None,
        signature: Optional[bytes] = None,
    ) -> VerificationResult:
        """One-pass evidence check for a ``tx.confirm_batch`` leg.

        A batch presents ONE evidence blob binding the whole rendered
        batch text, so the cert / quote / PKCS#1 checks collapse into a
        single call: the confirmation digest is computed once, the AIK
        certificate re-check and the signature check both ride the
        :class:`VerificationCache` (steady-state batches hit the cache
        for the cert and pay exactly one RSA verify for the evidence),
        and the policy checks (PCR whitelists, nonce binding) run fresh
        every time — they are never memoized.

        Verdicts and reason codes are identical to routing the batch
        through the single-transaction path against the batch text;
        ``tests/test_server_verifier.py`` pins that parity.
        """
        self.batch_legs += 1
        self.batch_members += members
        digest = confirmation_digest(text, nonce, decision, counter)
        if evidence_type == EVIDENCE_QUOTE:
            if aik_certificate is None:
                return VerificationResult.reject(
                    VerificationFailure.BAD_CA_SIGNATURE, "no enrolled AIK"
                )
            # Memoized CA re-check: enrollment verified this certificate
            # already, so this is a cache hit unless the policy's CA set
            # changed — in which case a stale AIK must stop passing.
            if self.policy.ca_public_keys and not any(
                self._cert_signature_ok(aik_certificate, ca_key)
                for ca_key in self.policy.ca_public_keys
            ):
                return VerificationResult.reject(
                    VerificationFailure.BAD_CA_SIGNATURE
                )
            if not isinstance(quote_bytes, bytes):
                return VerificationResult.reject(VerificationFailure.MALFORMED)
            try:
                quote = QuoteBundle.from_bytes(quote_bytes)
            except Exception as exc:
                return VerificationResult.reject(
                    VerificationFailure.MALFORMED, str(exc)
                )
            aik_public = aik_certificate.aik_public
            if not self._quote_signature_ok(aik_public, quote):
                return VerificationResult.reject(
                    VerificationFailure.BAD_QUOTE_SIGNATURE
                )
            if quote.external_data != sha1(nonce):
                return VerificationResult.reject(
                    VerificationFailure.QUOTE_WRONG_NONCE
                )
            try:
                reported_17 = quote.reported_value(PCR_DRTM_CODE)
                reported_18 = quote.reported_value(PCR_DRTM_DATA)
            except KeyError as exc:
                return VerificationResult.reject(
                    VerificationFailure.MALFORMED, detail=str(exc)
                )
            if not self.policy.pcr17_is_approved(reported_17):
                return VerificationResult.reject(
                    VerificationFailure.QUOTE_WRONG_PCR17
                )
            if reported_18 != self.policy.expected_pcr18_after_digest(digest):
                return VerificationResult.reject(
                    VerificationFailure.QUOTE_WRONG_PCR18
                )
            return VerificationResult.success()
        if evidence_type == EVIDENCE_SIGNED:
            if not isinstance(signature, bytes):
                return VerificationResult.reject(VerificationFailure.MALFORMED)
            if registered_key is None:
                return VerificationResult.reject(
                    VerificationFailure.NO_REGISTERED_KEY
                )
            if not self._pkcs1_ok(registered_key, digest, signature):
                return VerificationResult.reject(
                    VerificationFailure.BAD_SIGNATURE
                )
            return VerificationResult.success()
        return VerificationResult.reject(
            VerificationFailure.MALFORMED, f"evidence type {evidence_type!r}"
        )
