"""The attestation verifier: the provider-side security decision.

Three verdicts, each a full cryptographic check against the policy:

* :meth:`AttestationVerifier.verify_aik_certificate` — the AIK chains
  to a trusted Privacy CA.
* :meth:`AttestationVerifier.verify_setup` — the setup quote was signed
  by that AIK under a genuine-PAL PCR 17, with PCR 18 binding exactly
  the presented public key and the expected setup nonce.
* :meth:`AttestationVerifier.verify_confirmation` — per-transaction
  evidence: either an AIK quote whose PCR 17 is an approved PAL value
  and whose PCR 18 equals exactly one extend of the expected
  confirmation digest, or a signature by the setup-registered key over
  that digest.

Every rejection carries a reason code; the security-matrix experiment
(T4) asserts on reasons, not just on booleans, so a check that silently
stopped running would be caught.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.crypto.pkcs1 import pkcs1_verify
from repro.crypto.rsa import RsaPublicKey
from repro.crypto.sha1 import sha1
from repro.core.confirmation_pal import confirmation_digest
from repro.server.policy import VerifierPolicy
from repro.sim.tracing import traced
from repro.tpm.ca import AikCertificate
from repro.tpm.constants import PCR_DRTM_CODE, PCR_DRTM_DATA
from repro.tpm.quote import QuoteBundle, verify_quote


class VerificationFailure(enum.Enum):
    """Why evidence was rejected."""

    NONE = "ok"
    BAD_CA_SIGNATURE = "aik certificate not signed by a trusted CA"
    BAD_CERTIFY_SIGNATURE = "certify-info signature invalid"
    CERTIFY_WRONG_KEY = "certify-info names a different key"
    CERTIFY_WRONG_PCRS = "key was not certified under a genuine PAL state"
    CERTIFY_WRONG_NONCE = "certify-info nonce mismatch"
    BAD_QUOTE_SIGNATURE = "quote signature invalid"
    QUOTE_WRONG_PCR17 = "quoted PCR 17 is not an approved PAL"
    QUOTE_WRONG_PCR18 = "quoted PCR 18 does not bind this confirmation"
    QUOTE_WRONG_NONCE = "quote external data mismatch"
    BAD_SIGNATURE = "confirmation signature invalid"
    NO_REGISTERED_KEY = "no setup-registered key for this account"
    MALFORMED = "evidence malformed"


@dataclass
class VerificationResult:
    ok: bool
    failure: VerificationFailure
    detail: str = ""

    @classmethod
    def success(cls) -> "VerificationResult":
        return cls(ok=True, failure=VerificationFailure.NONE)

    @classmethod
    def reject(cls, failure: VerificationFailure, detail: str = ""):
        return cls(ok=False, failure=failure, detail=detail)


class AttestationVerifier:
    """Stateless evidence checks against one policy.

    ``tracer`` (optional) records one span per verification — providers
    pass their simulator's tracer so server-side evidence checking shows
    up in session traces next to network and TPM time.
    """

    def __init__(self, policy: VerifierPolicy, tracer=None) -> None:
        self.policy = policy
        self.tracer = tracer

    # ------------------------------------------------------------------
    @traced("verify.aik_certificate")
    def verify_aik_certificate(
        self, certificate: AikCertificate
    ) -> VerificationResult:
        for ca_key in self.policy.ca_public_keys:
            if certificate.verify(ca_key):
                return VerificationResult.success()
        return VerificationResult.reject(VerificationFailure.BAD_CA_SIGNATURE)

    # ------------------------------------------------------------------
    @traced("verify.setup")
    def verify_setup(
        self,
        aik_public: RsaPublicKey,
        presented_public_key: RsaPublicKey,
        quote: QuoteBundle,
        expected_nonce: bytes,
    ) -> VerificationResult:
        """Validate the setup phase's key-certification quote.

        A genuine setup session exhibits: PCR 17 = an approved PAL
        value, PCR 18 = exactly one extend of SHA1(public key), and
        external data = SHA1(setup nonce).
        """
        if not verify_quote(aik_public, quote):
            return VerificationResult.reject(
                VerificationFailure.BAD_CERTIFY_SIGNATURE
            )
        if quote.external_data != sha1(expected_nonce):
            return VerificationResult.reject(VerificationFailure.CERTIFY_WRONG_NONCE)
        try:
            reported_17 = quote.reported_value(PCR_DRTM_CODE)
            reported_18 = quote.reported_value(PCR_DRTM_DATA)
        except KeyError as exc:
            return VerificationResult.reject(
                VerificationFailure.MALFORMED, detail=str(exc)
            )
        if not self.policy.pcr17_is_approved(reported_17):
            return VerificationResult.reject(VerificationFailure.CERTIFY_WRONG_PCRS)
        expected_18 = self.policy.expected_pcr18_after_digest(
            sha1(presented_public_key.to_bytes())
        )
        if reported_18 != expected_18:
            return VerificationResult.reject(VerificationFailure.CERTIFY_WRONG_KEY)
        return VerificationResult.success()

    # ------------------------------------------------------------------
    @traced("verify.quote_confirmation")
    def verify_quote_confirmation(
        self,
        aik_public: RsaPublicKey,
        quote: QuoteBundle,
        text: bytes,
        nonce: bytes,
        decision: bytes,
        counter: int = -1,
    ) -> VerificationResult:
        """Quote-variant evidence for one confirmation."""
        if not verify_quote(aik_public, quote):
            return VerificationResult.reject(VerificationFailure.BAD_QUOTE_SIGNATURE)
        if quote.external_data != sha1(nonce):
            return VerificationResult.reject(VerificationFailure.QUOTE_WRONG_NONCE)
        try:
            reported_17 = quote.reported_value(PCR_DRTM_CODE)
            reported_18 = quote.reported_value(PCR_DRTM_DATA)
        except KeyError as exc:
            return VerificationResult.reject(
                VerificationFailure.MALFORMED, detail=str(exc)
            )
        if not self.policy.pcr17_is_approved(reported_17):
            return VerificationResult.reject(VerificationFailure.QUOTE_WRONG_PCR17)
        digest = confirmation_digest(text, nonce, decision, counter)
        if reported_18 != self.policy.expected_pcr18_after_digest(digest):
            return VerificationResult.reject(VerificationFailure.QUOTE_WRONG_PCR18)
        return VerificationResult.success()

    # ------------------------------------------------------------------
    @traced("verify.signed_confirmation")
    def verify_signed_confirmation(
        self,
        registered_key: Optional[RsaPublicKey],
        signature: bytes,
        text: bytes,
        nonce: bytes,
        decision: bytes,
        counter: int = -1,
    ) -> VerificationResult:
        """Signed-variant evidence for one confirmation."""
        if registered_key is None:
            return VerificationResult.reject(VerificationFailure.NO_REGISTERED_KEY)
        digest = confirmation_digest(text, nonce, decision, counter)
        if not pkcs1_verify(registered_key, digest, signature, prehashed=True):
            return VerificationResult.reject(VerificationFailure.BAD_SIGNATURE)
        return VerificationResult.success()
