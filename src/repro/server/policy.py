"""Verifier trust anchors.

What a service provider must be configured with, out of band:

* the Privacy CA public key(s) it trusts to certify AIKs;
* the whitelist of **known-good PAL measurements** — the published
  SHA-1 of the ConfirmationPal's SLB.  From a measurement the policy
  derives the PCR values a genuine session exhibits (PCR 17 after
  launch, PCR 18 at its post-reset value for setup, or after exactly
  one extend of the confirmation digest for the quote variant).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.crypto.rsa import RsaPublicKey
from repro.crypto.sha1 import sha1
from repro.drtm.sealing import pal_pcr_selection, pcr17_after_launch

from repro.tpm.structures import PcrComposite

PCR18_POST_RESET = b"\x00" * 20


@dataclass
class VerifierPolicy:
    """Trust anchors and freshness limits for one provider."""

    ca_public_keys: List[RsaPublicKey] = field(default_factory=list)
    approved_pal_measurements: List[bytes] = field(default_factory=list)
    nonce_lifetime_seconds: float = 300.0
    # Defense toggles for the ablation experiment (A1).  All on by
    # default; each toggle re-admits exactly one attack class.
    check_pal_measurement: bool = True
    check_nonce_freshness: bool = True
    #: Anti-rollback extension: require a strictly increasing TPM
    #: monotonic counter value in every confirmation (off by default —
    #: the base protocol from the paper does not use it).
    require_monotonic_counter: bool = False

    def trust_ca(self, public_key: RsaPublicKey) -> None:
        self.ca_public_keys.append(public_key)

    def approve_pal(self, slb_measurement: bytes) -> None:
        """Whitelist a published PAL SLB hash."""
        if len(slb_measurement) != 20:
            raise ValueError("PAL measurement must be a SHA-1 digest")
        self.approved_pal_measurements.append(slb_measurement)

    # -- derived expectations ------------------------------------------------
    def expected_pcr17_values(self) -> List[bytes]:
        """PCR 17 during a genuine session, per approved PAL."""
        return [pcr17_after_launch(m) for m in self.approved_pal_measurements]

    def expected_setup_composites(self) -> List[bytes]:
        """Composite digests over (17, 18) during a genuine setup session
        (PCR 18 still at its post-reset value)."""
        composites = []
        for pcr17 in self.expected_pcr17_values():
            composite = PcrComposite(
                selection=pal_pcr_selection(),
                values=(pcr17, PCR18_POST_RESET),
            )
            composites.append(composite.digest())
        return composites

    def expected_pcr18_after_digest(self, confirmation_digest: bytes) -> bytes:
        """PCR 18 after the quote-variant PAL extends D exactly once."""
        return sha1(PCR18_POST_RESET + confirmation_digest)

    def pcr17_is_approved(self, reported: bytes) -> bool:
        if not self.check_pal_measurement:
            return True
        return reported in self.expected_pcr17_values()
