"""The trusted-path service provider endpoint.

Implements the protocol of `repro.core.protocol` over an
:class:`~repro.net.rpc.RpcEndpoint`.  The provider is the party the
paper gives the security guarantee to, so this class owns the decision
sequence for every transaction:

1. ``tx.request``  — authenticate the session, validate the transaction
   against business rules, **canonicalize it server-side**, mint a
   challenge nonce, and hold the transaction PENDING.
2. ``tx.confirm``  — consume the nonce (single-use, fresh), verify the
   attestation evidence against the canonical text *the provider
   itself issued*, and only then execute.

Nothing the client sends after step 1 can change what text the evidence
must bind — that server-authoritativeness is what defeats the
man-in-the-browser.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set

from repro.core.errors import ProtocolError
from repro.core.protocol import (
    EVIDENCE_QUOTE,
    EVIDENCE_SIGNED,
    transaction_from_request,
)
from repro.core.transaction import Transaction
from repro.crypto.drbg import HmacDrbg
from repro.crypto.rsa import RsaPublicKey
from repro.net.messages import Message, decode_message, encode_message
from repro.net.network import Network
from repro.net.rpc import RpcEndpoint
from repro.os.disk import UntrustedDisk
from repro.server.journal import (
    JournalError,
    ProviderJournal,
    pack_time,
    unpack_time,
)
from repro.server.noncedb import NonceDatabase, NonceState
from repro.server.policy import VerifierPolicy
from repro.server.verifier import (
    AttestationVerifier,
    VerificationCache,
    VerificationFailure,
    VerificationResult,
)
from repro.sim.kernel import Simulator
from repro.tpm.ca import (
    AikCertificate,
    deserialize_certificate,
    serialize_certificate,
)
from repro.tpm.quote import QuoteBundle


class TxStatus(enum.Enum):
    """Lifecycle of a transaction held by a provider."""

    PENDING = "pending"
    EXECUTED = "executed"
    REJECTED_BY_USER = "rejected_by_user"
    DENIED = "denied"  # evidence failed verification
    EXPIRED = "expired"


# Modeled server-side compute per request (seconds); the RSA checks in
# tx.confirm dominate.  Used as RPC service times.
SERVICE_TIMES = {
    "register": 0.0008,
    "login": 0.0009,
    "tp.enroll_aik": 0.0021,
    "tp.setup_begin": 0.0007,
    "tp.setup_complete": 0.0032,
    "tx.request": 0.0011,
    "tx.confirm": 0.0024,
    "tx.rechallenge": 0.0011,
    "tx.status": 0.0004,
    "tx.request_batch": 0.0019,
    "tx.confirm_batch": 0.0026,
}

#: Denial reason when an authenticated session touches a transaction it
#: does not own.  A dedicated reason (not a generic "unknown") so the
#: denial ledger separates cross-account probing from client bugs.
DENIAL_NOT_OWNER = "transaction not owned by session"

#: Sentinel distinguishing "caller passed no cache argument" (build a
#: private default cache) from an explicit ``None`` (disable caching —
#: the ablation arm of experiment F3-S).
_DEFAULT_CACHE = object()


@dataclass
class AccountRecord:
    name: str
    password: str
    cookie: Optional[bytes] = None
    aik_certificate: Optional[AikCertificate] = None
    registered_key: Optional[RsaPublicKey] = None
    pending_setup_nonce: Optional[bytes] = None
    #: highest monotonic counter value seen (anti-rollback extension).
    last_counter: int = 0


@dataclass
class PendingTransaction:
    tx_id: bytes
    transaction: Transaction
    canonical_text: bytes
    nonce: bytes
    issued_at: float
    status: TxStatus = TxStatus.PENDING
    detail: str = ""
    #: Digest of the evidence that settled the transaction, plus the
    #: response it produced — resubmitting the *same* evidence (a client
    #: whose transport gave up mid-confirm) replays the stored outcome
    #: instead of re-running verification or execution.
    evidence_digest: Optional[bytes] = None
    final_response: Optional[Message] = None
    #: Virtual time the transaction left PENDING (None while live).
    #: The retention sweep retires settled records after
    #: ``settled_retention_seconds`` so shard memory stays O(active).
    settled_at: Optional[float] = None


@dataclass
class PendingBatch:
    """A set of transactions under one confirmation challenge (batch
    extension): one session, one nonce, one digest — all-or-nothing."""

    batch_id: bytes
    tx_ids: list
    canonical_text: bytes
    nonce: bytes
    issued_at: float
    account: str = ""
    status: TxStatus = TxStatus.PENDING
    detail: str = ""
    #: Same idempotent-replay state as PendingTransaction: the batch
    #: path settles exactly once; resubmitted identical evidence replays
    #: the stored response instead of re-verifying or re-executing.
    evidence_digest: Optional[bytes] = None
    final_response: Optional[Message] = None
    settled_at: Optional[float] = None


class ServiceProvider:
    """Base provider; subclasses add business semantics."""

    def __init__(
        self,
        simulator: Simulator,
        network: Network,
        host: str,
        policy: VerifierPolicy,
        workers: int = 1,
        verification_cache=_DEFAULT_CACHE,
    ) -> None:
        self.simulator = simulator
        self.host = host
        self.policy = policy
        # Verification fast path: memoize the RSA signature checks (AIK
        # certificate per CA, quote bundles, PKCS#1 confirmations).  On
        # by default; pass verification_cache=None for the cold-verify
        # ablation — verdicts are identical either way.
        if verification_cache is _DEFAULT_CACHE:
            verification_cache = VerificationCache()
        self.verification_cache: Optional[VerificationCache] = verification_cache
        self.verifier = AttestationVerifier(
            policy, tracer=simulator.tracer, cache=verification_cache
        )
        self._drbg = HmacDrbg(
            simulator.rng.derive_seed(f"provider:{host}").to_bytes(8, "big")
        )
        self.nonces = NonceDatabase(
            self._drbg.fork(b"nonces"),
            lifetime_seconds=policy.nonce_lifetime_seconds,
        )
        self.endpoint = RpcEndpoint(simulator, network, host, workers=workers)
        self.accounts: Dict[str, AccountRecord] = {}
        self._cookies: Dict[bytes, str] = {}
        self.transactions: Dict[bytes, PendingTransaction] = {}
        self.batches: Dict[bytes, PendingBatch] = {}
        self.denials: Dict[str, int] = {}
        self.allow_reconfirmation = False  # ablation-only; see tx.confirm
        # -- recovery accounting -------------------------------------------
        self.rechallenges_issued = 0
        self.rechallenges_required = 0
        self.duplicate_confirms = 0
        # -- session accounting --------------------------------------------
        self.cookies_invalidated = 0
        # -- bounded transaction/session store ------------------------------
        #: How long a settled (executed/denied/rejected/expired) record
        #: stays queryable via tx.status before the sweep retires it.
        self.settled_retention_seconds = 3600.0
        #: Minimum spacing between opportunistic sweeps (piggybacked on
        #: tx.request traffic; callers may also sweep explicitly).
        self.store_sweep_interval = 60.0
        self._last_store_sweep = 0.0
        self.transactions_retired = 0
        self.batches_retired = 0
        self.transactions_peak = 0
        # -- durability (crash-stop recovery) -------------------------------
        #: Write-ahead journal; None means volatile (a crash loses the
        #: nonce DB, sessions, transactions and counters — the R2
        #: ablation arm).  Attach with :meth:`attach_journal`.
        self.journal: Optional[ProviderJournal] = None
        self._replaying = False
        self.crashes = 0
        self.restarts = 0
        self.journal_restores = 0
        self.records_replayed = 0
        # -- live rebalancing (account-slice migration) ---------------------
        #: Active migration taps: while a slice copy is in flight, every
        #: mutation record is mirrored into each tap so the coordinator
        #: can ship the WAL tail at ring-flip time (`repro.server
        #: .rebalance`).  Taps work with or without a disk journal.
        self._migration_taps: List[list] = []
        #: True while replaying a migration WAL tail (live apply or
        #: journal recovery of a ``mig_tail`` record): business effects
        #: of window settles are suppressed — the flip-time ``mig_biz``
        #: refresh delivers them instead.
        self._migration_replay = False
        self.accounts_migrated_in = 0
        self.accounts_migrated_out = 0
        self._register_handlers()

    def enable_tls(self) -> None:
        """Serve over the TLS-lite secure channel (`repro.net.channel`).

        Off by default in the simulation to keep whole-suite runs fast;
        the protocol's security does not depend on it (the endpoint OS
        is the adversary), matching the paper's trust analysis.
        """
        from repro.crypto.rsa import generate_rsa_keypair

        keypair = generate_rsa_keypair(512, self._drbg.fork(b"tls-key"))
        self.endpoint.enable_tls(keypair)

    def _register_handlers(self) -> None:
        handlers = {
            "register": self._handle_register,
            "login": self._handle_login,
            "tp.enroll_aik": self._handle_enroll_aik,
            "tp.setup_begin": self._handle_setup_begin,
            "tp.setup_complete": self._handle_setup_complete,
            "tx.request": self._handle_tx_request,
            "tx.confirm": self._handle_tx_confirm,
            "tx.rechallenge": self._handle_tx_rechallenge,
            "tx.status": self._handle_tx_status,
            "tx.request_batch": self._handle_tx_request_batch,
            "tx.confirm_batch": self._handle_tx_confirm_batch,
        }
        for method, handler in handlers.items():
            self.endpoint.register(method, handler, SERVICE_TIMES[method])

    # ------------------------------------------------------------------
    # Business hooks for subclasses
    # ------------------------------------------------------------------
    def validate_transaction(self, transaction: Transaction) -> None:
        """Raise ProtocolError if the transaction is not well-formed for
        this provider (amounts, recipients, stock...)."""

    def execute_transaction(self, transaction: Transaction) -> str:
        """Perform the confirmed transaction; returns a receipt string."""
        return "ok"

    def on_account_created(self, record: AccountRecord, request: Message) -> None:
        """Subclass hook (e.g. set the opening balance)."""

    # ------------------------------------------------------------------
    # Account handlers
    # ------------------------------------------------------------------
    def _handle_register(self, request: Message) -> Message:
        name = str(request["account"])
        if name in self.accounts:
            return {"error": f"account {name!r} exists"}
        record = AccountRecord(name=name, password=str(request["password"]))
        self.accounts[name] = record
        self.on_account_created(record, request)
        self._journal_append({"t": "reg", "req": encode_message(request)})
        return {"ok": 1}

    def _handle_login(self, request: Message) -> Message:
        record = self.accounts.get(str(request["account"]))
        if record is None or record.password != str(request["password"]):
            return {"error": "bad credentials"}
        # One live session per account: re-login evicts the previous
        # cookie, so stale cookies die and the map stays O(accounts).
        if record.cookie is not None:
            self._cookies.pop(record.cookie, None)
            self.cookies_invalidated += 1
        cookie = self._drbg.generate(16)
        record.cookie = cookie
        self._cookies[cookie] = record.name
        self._journal_append({"t": "login", "a": record.name, "c": cookie})
        return {"ok": 1, "set_session": cookie}

    def _authenticate(self, request: Message) -> AccountRecord:
        cookie = request.get("session")
        if not isinstance(cookie, bytes) or cookie not in self._cookies:
            raise ProtocolError("not logged in")
        return self.accounts[self._cookies[cookie]]

    def _deny_not_owner(self) -> Message:
        """An authenticated session touched another account's
        transaction.  Counted, refused — and the transaction's own state
        is untouched: a prober must not be able to settle, expire or
        otherwise perturb someone else's pending confirmation."""
        self.denials[DENIAL_NOT_OWNER] = (
            self.denials.get(DENIAL_NOT_OWNER, 0) + 1
        )
        return {"error": f"denied: {DENIAL_NOT_OWNER}"}

    # ------------------------------------------------------------------
    # Trusted-path enrollment / setup
    # ------------------------------------------------------------------
    def _handle_enroll_aik(self, request: Message) -> Message:
        record = self._authenticate(request)
        certificate = deserialize_certificate(request["aik_certificate"])
        result = self.verifier.verify_aik_certificate(certificate)
        if not result.ok:
            return self._denial_response(result)
        record.aik_certificate = certificate
        self._journal_append(
            {"t": "cert", "a": record.name, "cert": request["aik_certificate"]}
        )
        return {"ok": 1}

    def _handle_setup_begin(self, request: Message) -> Message:
        record = self._authenticate(request)
        if record.aik_certificate is None:
            return {"error": "enroll an AIK certificate first"}
        nonce = self._drbg.generate(20)
        record.pending_setup_nonce = nonce
        self._journal_append({"t": "sbegin", "a": record.name, "n": nonce})
        return {"ok": 1, "nonce": nonce}

    def _handle_setup_complete(self, request: Message) -> Message:
        record = self._authenticate(request)
        if record.aik_certificate is None or record.pending_setup_nonce is None:
            return {"error": "no setup in progress"}
        try:
            public_key = RsaPublicKey.from_bytes(request["public_key"])
            quote = QuoteBundle.from_bytes(request["quote"])
        except Exception as exc:
            return {"error": f"malformed setup evidence: {exc}"}
        result = self.verifier.verify_setup(
            aik_public=record.aik_certificate.aik_public,
            presented_public_key=public_key,
            quote=quote,
            expected_nonce=record.pending_setup_nonce,
        )
        record.pending_setup_nonce = None
        if not result.ok:
            self._journal_append({"t": "skey", "a": record.name})
            return self._denial_response(result)
        record.registered_key = public_key
        self._journal_append(
            {"t": "skey", "a": record.name, "k": request["public_key"]}
        )
        return {"ok": 1}

    def register_signing_key(self, account: str, public_key: RsaPublicKey) -> None:
        """Experiment/test shortcut for the setup phase: install a
        confirmed signing key directly.  Journaled like a completed
        ``tp.setup_complete``, so it survives a crash the same way."""
        self.accounts[account].registered_key = public_key
        self._journal_append(
            {"t": "skey", "a": account, "k": public_key.to_bytes()}
        )

    # ------------------------------------------------------------------
    # Transactions
    # ------------------------------------------------------------------
    def _handle_tx_request(self, request: Message) -> Message:
        record = self._authenticate(request)
        transaction = transaction_from_request(request)
        if transaction.account != record.name:
            return {"error": "transaction account does not match session"}
        self.validate_transaction(transaction)
        tx_id = self._drbg.generate(16)
        now = self.simulator.now
        self._maybe_sweep_store(now)
        nonce = self.nonces.issue(tx_id, now)
        canonical_text = "\n".join(transaction.display_lines()).encode("utf-8")
        self.transactions[tx_id] = PendingTransaction(
            tx_id=tx_id,
            transaction=transaction,
            canonical_text=canonical_text,
            nonce=nonce,
            issued_at=now,
        )
        self.transactions_peak = max(self.transactions_peak, len(self.transactions))
        self._journal_append({
            "t": "txreq", "id": tx_id, "n": nonce,
            "at": pack_time(now), "tx": transaction.canonical_bytes(),
        })
        return {"ok": 1, "tx_id": tx_id, "nonce": nonce, "text": canonical_text}

    def _handle_tx_confirm(self, request: Message) -> Message:
        record = self._authenticate(request)
        pending = self.transactions.get(request.get("tx_id", b""))
        if pending is None:
            return {"error": "unknown transaction"}
        if pending.transaction.account != record.name:
            return self._deny_not_owner()
        digest = self._confirm_digest(request)
        if pending.status is not TxStatus.PENDING:
            # Idempotent resubmission: a client whose transport gave up
            # mid-confirm re-sends the *same* evidence and gets the
            # *same* outcome — never a second execution.  Disabled under
            # allow_reconfirmation, which exists only so the replay
            # ablation (A1) can observe the undefended double execution.
            if (
                not self.allow_reconfirmation
                and pending.final_response is not None
                and pending.evidence_digest == digest
            ):
                self.duplicate_confirms += 1
                return dict(pending.final_response)
            if pending.status is TxStatus.EXPIRED:
                # The expiry sweep got here first; same recovery as an
                # expired nonce observed at consume time.
                self.rechallenges_required += 1
                return {
                    "error": "nonce expired: re-challenge required",
                    "rechallenge": 1,
                }
            # allow_reconfirmation exists only for the replay-ablation
            # experiment (A1); a production provider never re-opens an
            # executed transaction.
            reopenable = (
                self.allow_reconfirmation and pending.status is TxStatus.EXECUTED
            )
            if not reopenable:
                return {"error": f"transaction already {pending.status.value}"}
        decision = request.get("decision", b"")
        if decision not in (b"accept", b"reject"):
            return {"error": f"bad decision {decision!r}"}

        # Anti-rollback extension: when the policy demands it, evidence
        # must carry a strictly increasing TPM counter value.  ``record``
        # is the session's account — proven above to own the transaction.
        counter = request.get("counter", -1)
        if self.policy.require_monotonic_counter:
            if not isinstance(counter, int) or counter <= record.last_counter:
                response = self._deny(
                    pending,
                    f"counter rollback ({counter} <= {record.last_counter})",
                )
                self._journal_settle(pending, consumed=0)
                return response

        if self.policy.check_nonce_freshness:
            accepted, state = self.nonces.consume(
                pending.nonce, pending.tx_id, self.simulator.now
            )
            if not accepted:
                if state is NonceState.EXPIRED:
                    # Recoverable: the challenge aged out (slow network,
                    # retransmit storms, user walked away).  The
                    # transaction survives — the client re-challenges
                    # via tx.rechallenge and confirms against a fresh
                    # nonce.  A *consumed* nonce stays a hard deny:
                    # that is the replay defense, not a network fault.
                    self.rechallenges_required += 1
                    pending.status = TxStatus.EXPIRED
                    pending.detail = "nonce expired; re-challenge required"
                    pending.settled_at = self.simulator.now
                    self._journal_settle(pending, consumed=1)
                    return {
                        "error": "nonce expired: re-challenge required",
                        "rechallenge": 1,
                    }
                response = self._finalize(
                    pending, digest, self._deny(pending, f"nonce {state.value}")
                )
                self._journal_settle(pending, consumed=1)
                return response

        result = self._verify_evidence(pending, request, decision)
        if not result.ok:
            response = self._finalize(
                pending, digest, self._deny(pending, result.failure.value)
            )
            self._journal_settle(pending, consumed=1)
            return response
        if self.policy.require_monotonic_counter:
            record.last_counter = int(counter)

        if decision == b"reject":
            pending.status = TxStatus.REJECTED_BY_USER
            pending.settled_at = self.simulator.now
            response = self._finalize(
                pending, digest, {"ok": 1, "status": pending.status.value}
            )
            self._journal_settle(
                pending, consumed=1, counter_account=record.name
            )
            return response

        receipt = self.execute_transaction(pending.transaction)
        pending.status = TxStatus.EXECUTED
        pending.detail = receipt
        pending.settled_at = self.simulator.now
        response = self._finalize(
            pending,
            digest,
            {"ok": 1, "status": pending.status.value, "receipt": receipt},
        )
        self._journal_settle(pending, consumed=1, counter_account=record.name)
        return response

    def _handle_tx_rechallenge(self, request: Message) -> Message:
        """Reissue the confirmation challenge for a live transaction.

        Recovery path for an expired nonce: the canonical text is
        unchanged (still server-authoritative), only the freshness
        material rolls over.  The old nonce is invalidated the moment
        the new one is minted, so at most one challenge per transaction
        is ever acceptable.  Settled transactions are never re-opened.
        """
        record = self._authenticate(request)
        challenge_id = request.get("tx_id", b"")
        pending = self.transactions.get(challenge_id)
        if pending is None:
            batch = self.batches.get(challenge_id)
            if batch is not None:
                return self._rechallenge_batch(record, batch)
            return {"error": "unknown transaction"}
        if pending.transaction.account != record.name:
            return self._deny_not_owner()
        self._expire_if_stale(pending)
        if pending.status not in (TxStatus.PENDING, TxStatus.EXPIRED):
            return {"error": f"transaction already {pending.status.value}"}
        now = self.simulator.now
        self.nonces.invalidate(pending.nonce)
        pending.nonce = self.nonces.issue(pending.tx_id, now)
        pending.issued_at = now
        pending.status = TxStatus.PENDING
        pending.detail = ""
        pending.settled_at = None
        self.rechallenges_issued += 1
        self._journal_append({
            "t": "rechal", "id": pending.tx_id, "n": pending.nonce,
            "at": pack_time(now),
        })
        return {
            "ok": 1,
            "tx_id": pending.tx_id,
            "nonce": pending.nonce,
            "text": pending.canonical_text,
        }

    def _rechallenge_batch(
        self, record: AccountRecord, batch: PendingBatch
    ) -> Message:
        """Batch arm of tx.rechallenge: same contract as the single
        path — unchanged canonical text, fresh nonce, old one dead, and
        every member transaction rolls back to PENDING with it."""
        if batch.account != record.name:
            return self._deny_not_owner()
        self._expire_batch_if_stale(batch)
        if batch.status not in (TxStatus.PENDING, TxStatus.EXPIRED):
            return {"error": f"batch already {batch.status.value}"}
        now = self.simulator.now
        self.nonces.invalidate(batch.nonce)
        batch.nonce = self.nonces.issue(batch.batch_id, now)
        batch.issued_at = now
        batch.status = TxStatus.PENDING
        batch.detail = ""
        batch.settled_at = None
        for tx_id in batch.tx_ids:
            member = self.transactions[tx_id]
            member.nonce = batch.nonce
            member.issued_at = now
            member.status = TxStatus.PENDING
            member.detail = ""
            member.settled_at = None
        self.rechallenges_issued += 1
        self._journal_append({
            "t": "brechal", "id": batch.batch_id, "n": batch.nonce,
            "at": pack_time(now),
        })
        return {
            "ok": 1,
            "tx_id": batch.batch_id,
            "nonce": batch.nonce,
            "text": batch.canonical_text,
        }

    def _confirm_digest(self, request: Message) -> bytes:
        """Stable digest of a confirm request's evidence material, used
        to recognize a resubmission of the *same* confirmation."""
        h = hashlib.sha256()
        for key in ("decision", "evidence", "quote", "signature", "counter"):
            value = request.get(key)
            if isinstance(value, int):
                encoded = str(value).encode("ascii")
            elif isinstance(value, str):
                encoded = value.encode("utf-8")
            elif isinstance(value, bytes):
                encoded = value
            else:
                encoded = b""
            h.update(key.encode("ascii"))
            h.update(len(encoded).to_bytes(4, "big"))
            h.update(encoded)
        return h.digest()

    def _finalize(
        self, pending: PendingTransaction, digest: bytes, response: Message
    ) -> Message:
        """Record a confirm's settled outcome for idempotent replay."""
        pending.evidence_digest = digest
        pending.final_response = dict(response)
        return response

    def _verify_evidence(
        self, pending: PendingTransaction, request: Message, decision: bytes
    ) -> VerificationResult:
        record = self.accounts[pending.transaction.account]
        evidence_type = request.get("evidence")
        counter = request.get("counter", -1)
        if not isinstance(counter, int):
            counter = -1
        if evidence_type == EVIDENCE_QUOTE:
            if record.aik_certificate is None:
                return VerificationResult.reject(
                    VerificationFailure.BAD_CA_SIGNATURE, "no enrolled AIK"
                )
            try:
                quote = QuoteBundle.from_bytes(request["quote"])
            except Exception as exc:
                return VerificationResult.reject(
                    VerificationFailure.MALFORMED, str(exc)
                )
            return self.verifier.verify_quote_confirmation(
                aik_public=record.aik_certificate.aik_public,
                quote=quote,
                text=pending.canonical_text,
                nonce=pending.nonce,
                decision=decision,
                counter=counter,
            )
        if evidence_type == EVIDENCE_SIGNED:
            signature = request.get("signature")
            if not isinstance(signature, bytes):
                return VerificationResult.reject(VerificationFailure.MALFORMED)
            return self.verifier.verify_signed_confirmation(
                registered_key=record.registered_key,
                signature=signature,
                text=pending.canonical_text,
                nonce=pending.nonce,
                decision=decision,
                counter=counter,
            )
        return VerificationResult.reject(
            VerificationFailure.MALFORMED, f"evidence type {evidence_type!r}"
        )

    # ------------------------------------------------------------------
    # Batch confirmation (extension): one session covers N transactions
    # ------------------------------------------------------------------
    def _handle_tx_request_batch(self, request: Message) -> Message:
        """Validate N transactions, issue ONE challenge for all of them."""
        record = self._authenticate(request)
        from repro.net.messages import decode_message

        encoded_list = request.get("transactions")
        if not isinstance(encoded_list, list) or not encoded_list:
            return {"error": "batch needs a non-empty transaction list"}
        if len(encoded_list) > 16:
            return {"error": "batch too large (max 16)"}
        transactions = []
        for encoded in encoded_list:
            transaction = transaction_from_request(decode_message(encoded))
            if transaction.account != record.name:
                return {"error": "batch member account mismatch"}
            self.validate_transaction(transaction)
            transactions.append(transaction)

        now = self.simulator.now
        self._maybe_sweep_store(now)
        batch_id = self._drbg.generate(16)
        nonce = self.nonces.issue(batch_id, now)
        tx_ids = []
        for transaction in transactions:
            tx_id = self._drbg.generate(16)
            tx_ids.append(tx_id)
            self.transactions[tx_id] = PendingTransaction(
                tx_id=tx_id,
                transaction=transaction,
                canonical_text=b"",  # confirmed via the batch text
                nonce=nonce,
                issued_at=now,
            )
        canonical_text = self._render_batch_text(transactions)
        self.batches[batch_id] = PendingBatch(
            batch_id=batch_id,
            tx_ids=tx_ids,
            canonical_text=canonical_text,
            nonce=nonce,
            issued_at=now,
            account=record.name,
        )
        self.transactions_peak = max(self.transactions_peak, len(self.transactions))
        self._journal_append({
            "t": "breq", "id": batch_id, "n": nonce, "at": pack_time(now),
            "a": record.name, "ids": list(tx_ids),
            "txs": [t.canonical_bytes() for t in transactions],
        })
        return {
            "ok": 1,
            "tx_id": batch_id,  # challenge shape shared with tx.request
            "nonce": nonce,
            "text": canonical_text,
        }

    @staticmethod
    def _render_batch_text(transactions) -> bytes:
        """The server-authoritative rendering of a batch challenge —
        shared by the live handler and journal replay, so a restored
        batch binds evidence to byte-identical text."""
        lines = [f"BATCH CONFIRMATION — {len(transactions)} transactions", ""]
        for position, transaction in enumerate(transactions, start=1):
            lines.append(f"--- [{position}/{len(transactions)}] ---")
            lines.extend(transaction.display_lines())
        return "\n".join(lines).encode("utf-8")

    def _handle_tx_confirm_batch(self, request: Message) -> Message:
        """Verify one evidence blob; execute every member or none.

        Full parity with the single-transaction confirm: idempotent
        replay by evidence digest, expired-nonce → re-challenge hint
        (the batch survives; `tx.rechallenge` reissues), and the
        monotonic-counter policy.  A consumed nonce with different
        evidence stays the hard replay deny.
        """
        record = self._authenticate(request)
        batch = self.batches.get(request.get("tx_id", b""))
        if batch is None:
            return {"error": "unknown batch"}
        if batch.account != record.name:
            return self._deny_not_owner()
        digest = self._confirm_digest(request)
        if batch.status is not TxStatus.PENDING:
            if (
                not self.allow_reconfirmation
                and batch.final_response is not None
                and batch.evidence_digest == digest
            ):
                self.duplicate_confirms += 1
                return dict(batch.final_response)
            if batch.status is TxStatus.EXPIRED:
                self.rechallenges_required += 1
                return {
                    "error": "nonce expired: re-challenge required",
                    "rechallenge": 1,
                }
            return {"error": f"batch already {batch.status.value}"}
        decision = request.get("decision", b"")
        if decision not in (b"accept", b"reject"):
            return {"error": f"bad decision {decision!r}"}

        counter = request.get("counter", -1)
        if self.policy.require_monotonic_counter:
            if not isinstance(counter, int) or counter <= record.last_counter:
                response = self._deny_batch(
                    batch,
                    f"counter rollback ({counter} <= {record.last_counter})",
                )
                self._journal_settle_batch(batch, consumed=0)
                return response

        if self.policy.check_nonce_freshness:
            accepted, state = self.nonces.consume(
                batch.nonce, batch.batch_id, self.simulator.now
            )
            if not accepted:
                if state is NonceState.EXPIRED:
                    # Recoverable, exactly as for a single transaction:
                    # the batch survives and tx.rechallenge reissues the
                    # challenge for the unchanged canonical text.
                    self.rechallenges_required += 1
                    now = self.simulator.now
                    batch.status = TxStatus.EXPIRED
                    batch.detail = "nonce expired; re-challenge required"
                    batch.settled_at = now
                    for tx_id in batch.tx_ids:
                        member = self.transactions[tx_id]
                        member.status = TxStatus.EXPIRED
                        member.detail = batch.detail
                        member.settled_at = now
                    self._journal_settle_batch(batch, consumed=1)
                    return {
                        "error": "nonce expired: re-challenge required",
                        "rechallenge": 1,
                    }
                response = self._finalize_batch(
                    batch, digest, self._deny_batch(batch, f"nonce {state.value}")
                )
                self._journal_settle_batch(batch, consumed=1)
                return response

        # One-pass batch evidence check: a single call covers the cert,
        # quote and PKCS#1 legs against the whole rendered batch text
        # (the digest binds every member at once).
        counter_value = counter if isinstance(counter, int) else -1
        result = self.verifier.verify_confirm_batch(
            evidence_type=request.get("evidence"),
            text=batch.canonical_text,
            nonce=batch.nonce,
            decision=decision,
            counter=counter_value,
            members=len(batch.tx_ids),
            aik_certificate=record.aik_certificate,
            quote_bytes=request.get("quote"),
            registered_key=record.registered_key,
            signature=request.get("signature"),
        )
        if not result.ok:
            response = self._finalize_batch(
                batch, digest, self._deny_batch(batch, result.failure.value)
            )
            self._journal_settle_batch(batch, consumed=1)
            return response
        if self.policy.require_monotonic_counter:
            record.last_counter = int(counter)

        now = self.simulator.now
        if decision == b"reject":
            batch.status = TxStatus.REJECTED_BY_USER
            batch.settled_at = now
            for tx_id in batch.tx_ids:
                member = self.transactions[tx_id]
                member.status = TxStatus.REJECTED_BY_USER
                member.settled_at = now
            response = self._finalize_batch(
                batch, digest, {"ok": 1, "status": batch.status.value}
            )
            self._journal_settle_batch(
                batch, consumed=1, counter_account=record.name
            )
            return response

        receipts = []
        for tx_id in batch.tx_ids:
            pending = self.transactions[tx_id]
            receipts.append(self.execute_transaction(pending.transaction))
            pending.status = TxStatus.EXECUTED
            pending.settled_at = now
        batch.status = TxStatus.EXECUTED
        batch.detail = "; ".join(receipts)
        batch.settled_at = now
        response = self._finalize_batch(
            batch,
            digest,
            {"ok": 1, "status": batch.status.value, "receipt": batch.detail},
        )
        self._journal_settle_batch(batch, consumed=1, counter_account=record.name)
        return response

    def _finalize_batch(
        self, batch: PendingBatch, digest: bytes, response: Message
    ) -> Message:
        """Record a batch confirm's settled outcome for idempotent replay."""
        batch.evidence_digest = digest
        batch.final_response = dict(response)
        return response

    def _deny_batch(self, batch: PendingBatch, reason: str) -> Message:
        now = self.simulator.now
        batch.status = TxStatus.DENIED
        batch.detail = reason
        batch.settled_at = now
        for tx_id in batch.tx_ids:
            self.transactions[tx_id].status = TxStatus.DENIED
            self.transactions[tx_id].detail = reason
            self.transactions[tx_id].settled_at = now
        self.denials[reason] = self.denials.get(reason, 0) + 1
        return {"error": f"batch denied: {reason}", "status": "denied"}

    def _handle_tx_status(self, request: Message) -> Message:
        record = self._authenticate(request)
        pending = self.transactions.get(request.get("tx_id", b""))
        if pending is None:
            return {"error": "unknown transaction"}
        if pending.transaction.account != record.name:
            return self._deny_not_owner()
        self._expire_if_stale(pending)
        return {"ok": 1, "status": pending.status.value, "detail": pending.detail}

    # ------------------------------------------------------------------
    def _expire_if_stale(self, pending: PendingTransaction) -> None:
        if pending.status is not TxStatus.PENDING:
            return
        if self.simulator.now - pending.issued_at > self.policy.nonce_lifetime_seconds:
            pending.status = TxStatus.EXPIRED
            pending.detail = "confirmation never arrived"
            pending.settled_at = self.simulator.now
            self._journal_append({
                "t": "expire", "id": pending.tx_id,
                "at": pack_time(pending.settled_at),
            })

    def _expire_batch_if_stale(self, batch: PendingBatch) -> None:
        if batch.status is not TxStatus.PENDING:
            return
        if self.simulator.now - batch.issued_at > self.policy.nonce_lifetime_seconds:
            batch.status = TxStatus.EXPIRED
            batch.detail = "confirmation never arrived"
            batch.settled_at = self.simulator.now
            self._journal_append({
                "t": "bexpire", "id": batch.batch_id,
                "at": pack_time(batch.settled_at),
            })

    def expire_stale_transactions(self) -> int:
        """Sweep: mark overdue PENDING transactions/batches EXPIRED."""
        count = 0
        for pending in self.transactions.values():
            before = pending.status
            self._expire_if_stale(pending)
            if before is TxStatus.PENDING and pending.status is TxStatus.EXPIRED:
                count += 1
        for batch in self.batches.values():
            self._expire_batch_if_stale(batch)
        return count

    def retire_settled(self, now: Optional[float] = None) -> int:
        """Drop settled records older than the retention window.

        Retired transactions stop answering ``tx.status`` (the client
        already holds the final response; the idempotent-replay window
        closes with retention).  PENDING and EXPIRED-awaiting-rechallenge
        records persist until they settle or age out — memory is
        O(active + recent), not O(lifetime).
        """
        now = self.simulator.now if now is None else now
        self._journal_append({"t": "retire", "at": pack_time(now)})
        horizon = now - self.settled_retention_seconds
        dead_tx = [
            tx_id
            for tx_id, pending in self.transactions.items()
            if pending.settled_at is not None and pending.settled_at <= horizon
        ]
        for tx_id in dead_tx:
            del self.transactions[tx_id]
        self.transactions_retired += len(dead_tx)
        dead_batches = [
            batch_id
            for batch_id, batch in self.batches.items()
            if batch.settled_at is not None and batch.settled_at <= horizon
        ]
        for batch_id in dead_batches:
            del self.batches[batch_id]
        self.batches_retired += len(dead_batches)
        return len(dead_tx) + len(dead_batches)

    def _maybe_sweep_store(self, now: float) -> None:
        """Opportunistic store maintenance, piggybacked on request
        traffic and rate-limited by ``store_sweep_interval``."""
        if now - self._last_store_sweep < self.store_sweep_interval:
            return
        self._last_store_sweep = now
        # The sweep's *mutations* journal themselves (expire/retire
        # records); this marker only replays the rate-limiter state.
        self._journal_append({"t": "sweepmark", "at": pack_time(now)})
        self.expire_stale_transactions()
        self.retire_settled(now)

    def _deny(self, pending: PendingTransaction, reason: str) -> Message:
        pending.status = TxStatus.DENIED
        pending.detail = reason
        pending.settled_at = self.simulator.now
        self.denials[reason] = self.denials.get(reason, 0) + 1
        return {"error": f"confirmation denied: {reason}", "status": "denied"}

    def _denial_response(self, result: VerificationResult) -> Message:
        reason = result.failure.value
        self.denials[reason] = self.denials.get(reason, 0) + 1
        return {"error": f"denied: {reason}"}

    # ------------------------------------------------------------------
    # Durability: write-ahead journal, snapshots, crash-stop recovery
    # ------------------------------------------------------------------
    def attach_journal(
        self, disk: UntrustedDisk, snapshot_every: int = 256
    ) -> ProviderJournal:
        """Make this provider durable: every protocol-state mutation is
        journaled to ``disk`` and a crash's :meth:`restart` rebuilds the
        shard bit-identically via :meth:`restore_from_journal`.  Writes
        a baseline snapshot immediately so restore always has a floor."""
        self.journal = ProviderJournal(disk, self.host, snapshot_every=snapshot_every)
        self.journal.write_snapshot(encode_message(self.capture_state()))
        return self.journal

    def journal_stats(self) -> Dict[str, int]:
        return {} if self.journal is None else self.journal.stats()

    def _journal_append(self, record: Message) -> None:
        """Durably record one state mutation.  Each record carries the
        *post-operation* states of both DRBGs (provider ids/cookies and
        nonce minting) so a restored shard resumes the exact randomness
        streams — future nonces mint bit-identically to an uncrashed
        run, which is what makes the replay defense survive a crash.

        Active migration taps see every record too (copied *before* the
        DRBG snapshots are attached — a shipped WAL tail must never
        carry this shard's generator state to another shard), so a
        coordinator can replay the copy-window mutations on the slice's
        new owner even when the pool runs journal-less."""
        if self._replaying:
            return
        if self._migration_taps:
            mirrored = dict(record)
            for tap in self._migration_taps:
                tap.append(mirrored)
        if self.journal is None:
            return
        record["sdk"], record["sdv"], record["sdn"] = self._drbg.snapshot()
        record["ndk"], record["ndv"], record["ndn"] = self.nonces.drbg.snapshot()
        self.journal.append(encode_message(record))
        if self.journal.snapshot_due:
            self.journal.write_snapshot(encode_message(self.capture_state()))

    def _journal_settle(
        self,
        pending: PendingTransaction,
        consumed: int,
        counter_account: Optional[str] = None,
    ) -> None:
        """Journal a transaction leaving PENDING: final status/detail,
        the idempotent-replay material (evidence digest + response), and
        whether the nonce-consume attempt must be replayed (``cd``)."""
        if self._replaying or (self.journal is None and not self._migration_taps):
            return
        record: Message = {
            "t": "settle",
            "id": pending.tx_id,
            "st": pending.status.value,
            "dt": pending.detail,
            "at": pack_time(pending.settled_at),
            # consume is only *attempted* when the policy checks
            # freshness; replay must mirror the attempt, not assume it.
            "cd": consumed if self.policy.check_nonce_freshness else 0,
        }
        if pending.evidence_digest is not None:
            record["dg"] = pending.evidence_digest
        if pending.final_response is not None:
            record["fr"] = encode_message(pending.final_response)
        if counter_account is not None and self.policy.require_monotonic_counter:
            record["a"] = counter_account
            record["ctr"] = self.accounts[counter_account].last_counter
        self._journal_append(record)

    def _journal_settle_batch(
        self,
        batch: PendingBatch,
        consumed: int,
        counter_account: Optional[str] = None,
    ) -> None:
        if self._replaying or (self.journal is None and not self._migration_taps):
            return
        record: Message = {
            "t": "bsettle",
            "id": batch.batch_id,
            "st": batch.status.value,
            "dt": batch.detail,
            "at": pack_time(batch.settled_at),
            "cd": consumed if self.policy.check_nonce_freshness else 0,
        }
        if batch.evidence_digest is not None:
            record["dg"] = batch.evidence_digest
        if batch.final_response is not None:
            record["fr"] = encode_message(batch.final_response)
        if counter_account is not None and self.policy.require_monotonic_counter:
            record["a"] = counter_account
            record["ctr"] = self.accounts[counter_account].last_counter
        self._journal_append(record)

    # -- state capture / restore ----------------------------------------
    def capture_business_state(self) -> Message:
        """Subclass hook: business-side durable state (ledger...)."""
        return {}

    def restore_business_state(self, state: Message) -> None:
        """Subclass hook: inverse of :meth:`capture_business_state`."""

    # Shared element codecs for capture_state / capture_slice and their
    # inverses — one wire shape per element, used by snapshots, slice
    # migration and the journal alike.
    @staticmethod
    def _encode_account(record: AccountRecord) -> bytes:
        msg: Message = {
            "n": record.name,
            "p": record.password,
            "ctr": record.last_counter,
        }
        if record.cookie is not None:
            msg["c"] = record.cookie
        if record.aik_certificate is not None:
            msg["cert"] = serialize_certificate(record.aik_certificate)
        if record.registered_key is not None:
            msg["k"] = record.registered_key.to_bytes()
        if record.pending_setup_nonce is not None:
            msg["sn"] = record.pending_setup_nonce
        return encode_message(msg)

    @staticmethod
    def _decode_account(encoded: bytes) -> AccountRecord:
        msg = decode_message(encoded)
        record = AccountRecord(
            name=str(msg["n"]),
            password=str(msg["p"]),
            last_counter=int(msg["ctr"]),
        )
        if "c" in msg:
            record.cookie = msg["c"]
        if "cert" in msg:
            record.aik_certificate = deserialize_certificate(msg["cert"])
        if "k" in msg:
            record.registered_key = RsaPublicKey.from_bytes(msg["k"])
        if "sn" in msg:
            record.pending_setup_nonce = msg["sn"]
        return record

    @staticmethod
    def _encode_nonce(record: tuple) -> bytes:
        nonce, tx_id, issued_at, expires_at, consumed = record
        return encode_message({
            "v": nonce, "tx": tx_id, "ia": pack_time(issued_at),
            "ea": pack_time(expires_at), "cd": consumed,
        })

    @staticmethod
    def _decode_nonce(encoded: bytes) -> tuple:
        msg = decode_message(encoded)
        return (
            msg["v"], msg["tx"], unpack_time(msg["ia"]),
            unpack_time(msg["ea"]), int(msg["cd"]),
        )

    @staticmethod
    def _encode_tx(pending: PendingTransaction) -> bytes:
        msg: Message = {
            "id": pending.tx_id,
            "tx": pending.transaction.canonical_bytes(),
            "ct": pending.canonical_text,
            "n": pending.nonce,
            "ia": pack_time(pending.issued_at),
            "st": pending.status.value,
            "dt": pending.detail,
            "sa": pack_time(pending.settled_at),
        }
        if pending.evidence_digest is not None:
            msg["dg"] = pending.evidence_digest
        if pending.final_response is not None:
            msg["fr"] = encode_message(pending.final_response)
        return encode_message(msg)

    @staticmethod
    def _decode_tx(encoded: bytes) -> PendingTransaction:
        msg = decode_message(encoded)
        pending = PendingTransaction(
            tx_id=msg["id"],
            transaction=Transaction.from_canonical_bytes(msg["tx"]),
            canonical_text=msg["ct"],
            nonce=msg["n"],
            issued_at=unpack_time(msg["ia"]) or 0.0,
            status=TxStatus(str(msg["st"])),
            detail=str(msg["dt"]),
            settled_at=unpack_time(msg["sa"]),
        )
        if "dg" in msg:
            pending.evidence_digest = msg["dg"]
        if "fr" in msg:
            pending.final_response = decode_message(msg["fr"])
        return pending

    @staticmethod
    def _encode_batch(batch: PendingBatch) -> bytes:
        msg: Message = {
            "id": batch.batch_id,
            "ids": list(batch.tx_ids),
            "ct": batch.canonical_text,
            "n": batch.nonce,
            "ia": pack_time(batch.issued_at),
            "a": batch.account,
            "st": batch.status.value,
            "dt": batch.detail,
            "sa": pack_time(batch.settled_at),
        }
        if batch.evidence_digest is not None:
            msg["dg"] = batch.evidence_digest
        if batch.final_response is not None:
            msg["fr"] = encode_message(batch.final_response)
        return encode_message(msg)

    @staticmethod
    def _decode_batch(encoded: bytes) -> PendingBatch:
        msg = decode_message(encoded)
        batch = PendingBatch(
            batch_id=msg["id"],
            tx_ids=list(msg["ids"]),
            canonical_text=msg["ct"],
            nonce=msg["n"],
            issued_at=unpack_time(msg["ia"]) or 0.0,
            account=str(msg["a"]),
            status=TxStatus(str(msg["st"])),
            detail=str(msg["dt"]),
            settled_at=unpack_time(msg["sa"]),
        )
        if "dg" in msg:
            batch.evidence_digest = msg["dg"]
        if "fr" in msg:
            batch.final_response = decode_message(msg["fr"])
        return batch

    def capture_state(self) -> Message:
        """The provider's complete protocol state as two canonical
        blobs: ``core`` (everything the security argument rests on —
        hashed by :meth:`state_digest`) and ``stats`` (observability
        counters, restored but excluded from the identity check).

        Elements are serialized in *canonical key order* (accounts by
        name, nonces by value, transactions/batches by id) rather than
        dict-insertion order: a migration round-trip re-inserts entries,
        and insertion history must not leak into the state identity —
        two shards holding the same state digest equal, however the
        entries got there."""
        accounts = [
            self._encode_account(self.accounts[name])
            for name in sorted(self.accounts)
        ]
        nonce_records = [
            self._encode_nonce(record)
            for record in sorted(self.nonces.export_records())
        ]
        txs = [
            self._encode_tx(self.transactions[tx_id])
            for tx_id in sorted(self.transactions)
        ]
        batches = [
            self._encode_batch(self.batches[batch_id])
            for batch_id in sorted(self.batches)
        ]
        sdk, sdv, sdn = self._drbg.snapshot()
        ndk, ndv, ndn = self.nonces.drbg.snapshot()
        core: Message = {
            "accounts": accounts,
            "nonces": nonce_records,
            "nle": pack_time(self.nonces.last_eviction),
            "txs": txs,
            "batches": batches,
            "sweep_at": pack_time(self._last_store_sweep),
            "sdk": sdk, "sdv": sdv, "sdn": sdn,
            "ndk": ndk, "ndv": ndv, "ndn": ndn,
            "biz": encode_message(self.capture_business_state()),
        }
        stats: Message = {
            "denials": [
                encode_message({"r": reason, "c": count})
                for reason, count in self.denials.items()
            ],
            "ri": self.rechallenges_issued,
            "rr": self.rechallenges_required,
            "dc": self.duplicate_confirms,
            "ci": self.cookies_invalidated,
            "tr": self.transactions_retired,
            "br": self.batches_retired,
            "tp": self.transactions_peak,
            "ni": self.nonces.issued,
            "nc": self.nonces.consumed,
            "nrr": self.nonces.rejected_replays,
            "nre": self.nonces.rejected_expired,
            "nru": self.nonces.rejected_unknown,
            "nev": self.nonces.evictions,
            "niv": self.nonces.invalidated,
        }
        return {"core": encode_message(core), "stats": encode_message(stats)}

    def state_digest(self) -> bytes:
        """Digest of the security-relevant state (accounts, sessions,
        nonce DB, transactions, DRBG streams, business ledger).  Two
        shards with equal digests will behave identically forever —
        the acceptance check for journal-recovery bit-identity."""
        return hashlib.sha256(self.capture_state()["core"]).digest()

    def restore_state(self, state: Message) -> None:
        core = decode_message(state["core"])
        stats = decode_message(state["stats"])
        self.accounts = {}
        self._cookies = {}
        for encoded in core["accounts"]:
            record = self._decode_account(encoded)
            if record.cookie is not None:
                self._cookies[record.cookie] = record.name
            self.accounts[record.name] = record
        self.nonces.import_records(
            [self._decode_nonce(encoded) for encoded in core["nonces"]],
            unpack_time(core["nle"]) or 0.0,
        )
        self.transactions = {}
        for encoded in core["txs"]:
            pending = self._decode_tx(encoded)
            self.transactions[pending.tx_id] = pending
        self.batches = {}
        for encoded in core["batches"]:
            batch = self._decode_batch(encoded)
            self.batches[batch.batch_id] = batch
        self._last_store_sweep = unpack_time(core["sweep_at"]) or 0.0
        self._drbg.restore((core["sdk"], core["sdv"], int(core["sdn"])))
        self.nonces.drbg.restore((core["ndk"], core["ndv"], int(core["ndn"])))
        self.restore_business_state(decode_message(core["biz"]))
        self.denials = {}
        for encoded in stats["denials"]:
            msg = decode_message(encoded)
            self.denials[str(msg["r"])] = int(msg["c"])
        self.rechallenges_issued = int(stats["ri"])
        self.rechallenges_required = int(stats["rr"])
        self.duplicate_confirms = int(stats["dc"])
        self.cookies_invalidated = int(stats["ci"])
        self.transactions_retired = int(stats["tr"])
        self.batches_retired = int(stats["br"])
        self.transactions_peak = int(stats["tp"])
        self.nonces.issued = int(stats["ni"])
        self.nonces.consumed = int(stats["nc"])
        self.nonces.rejected_replays = int(stats["nrr"])
        self.nonces.rejected_expired = int(stats["nre"])
        self.nonces.rejected_unknown = int(stats["nru"])
        self.nonces.evictions = int(stats["nev"])
        self.nonces.invalidated = int(stats["niv"])

    # -- crash-stop lifecycle -------------------------------------------
    def crash(self) -> None:
        """Crash-stop: the process is gone.  The RPC endpoint drops its
        queue and dedup cache; every piece of protocol state the
        provider keeps in RAM — sessions, setup nonces, anti-rollback
        counters, the nonce DB, pending and settled transactions — dies
        with it.  The account registry (credentials, enrolled certs and
        keys) and the business ledger model a conventional durable user
        DB and survive; they are not what the paper's defense rests on.
        """
        if self.endpoint.crashed:
            return
        self.endpoint.crash()
        self.crashes += 1
        self.simulator.metrics.counter("provider.crashes").increment()
        self._cookies.clear()
        for record in self.accounts.values():
            record.cookie = None
            record.pending_setup_nonce = None
            record.last_counter = 0
        self.transactions.clear()
        self.batches.clear()
        self.nonces.wipe()
        self._last_store_sweep = 0.0
        # Migration taps are coordinator-held RAM buffers fed by this
        # process; a crash severs them.  The coordinator's recovery path
        # must treat any in-flight copy window through this shard as
        # lost and abort the migration.
        self._migration_taps.clear()

    def restart(self) -> None:
        """Bring the process back.  With a journal attached the shard is
        rebuilt bit-identically; without one it serves again from the
        wiped state — the R2 ablation arm where the replay defense and
        exactly-once confirms are lost."""
        if not self.endpoint.crashed:
            return
        self.endpoint.restart()
        self.restarts += 1
        if self.journal is not None:
            self.restore_from_journal()

    def restore_from_journal(self) -> None:
        """Snapshot + WAL tail -> the exact pre-crash provider state."""
        if self.journal is None:
            raise JournalError(f"no journal attached to {self.host}")
        snapshot = self.journal.read_snapshot()
        if snapshot is None:
            raise JournalError(f"no snapshot on disk for {self.host}")
        # A mid-append crash left a partial final frame: discard it now
        # (its operation never became durable), or the first post-restart
        # append would land after the partial bytes and corrupt the
        # framing of every later record.
        self.journal.repair_tail()
        self.restore_state(decode_message(snapshot))
        records = [decode_message(raw) for raw in self.journal.read_records()]
        self._replaying = True
        try:
            for record in records:
                self._replay_record(record)
                self.records_replayed += 1
        finally:
            self._replaying = False
        if records:
            # Replay recreated recorded randomness without consuming the
            # generators; jump both streams to their last recorded state.
            last = records[-1]
            self._drbg.restore((last["sdk"], last["sdv"], int(last["sdn"])))
            self.nonces.drbg.restore(
                (last["ndk"], last["ndv"], int(last["ndn"]))
            )
        self.journal_restores += 1

    def _replay_record(self, rec: Message) -> None:
        kind = rec["t"]
        if kind == "reg":
            request = decode_message(rec["req"])
            record = AccountRecord(
                name=str(request["account"]),
                password=str(request["password"]),
            )
            self.accounts[record.name] = record
            self.on_account_created(record, request)
        elif kind == "login":
            record = self.accounts[str(rec["a"])]
            if record.cookie is not None:
                self._cookies.pop(record.cookie, None)
                self.cookies_invalidated += 1
            record.cookie = rec["c"]
            self._cookies[record.cookie] = record.name
        elif kind == "cert":
            record = self.accounts[str(rec["a"])]
            record.aik_certificate = deserialize_certificate(rec["cert"])
        elif kind == "sbegin":
            self.accounts[str(rec["a"])].pending_setup_nonce = rec["n"]
        elif kind == "skey":
            record = self.accounts[str(rec["a"])]
            record.pending_setup_nonce = None
            if "k" in rec:
                record.registered_key = RsaPublicKey.from_bytes(rec["k"])
        elif kind == "txreq":
            at = unpack_time(rec["at"])
            transaction = Transaction.from_canonical_bytes(rec["tx"])
            self.nonces.replay_issue(rec["n"], rec["id"], at)
            self.transactions[rec["id"]] = PendingTransaction(
                tx_id=rec["id"],
                transaction=transaction,
                canonical_text="\n".join(
                    transaction.display_lines()
                ).encode("utf-8"),
                nonce=rec["n"],
                issued_at=at,
            )
            self.transactions_peak = max(
                self.transactions_peak, len(self.transactions)
            )
        elif kind == "breq":
            at = unpack_time(rec["at"])
            self.nonces.replay_issue(rec["n"], rec["id"], at)
            transactions = []
            for tx_id, encoded in zip(rec["ids"], rec["txs"]):
                transaction = Transaction.from_canonical_bytes(encoded)
                transactions.append(transaction)
                self.transactions[tx_id] = PendingTransaction(
                    tx_id=tx_id,
                    transaction=transaction,
                    canonical_text=b"",  # confirmed via the batch text
                    nonce=rec["n"],
                    issued_at=at,
                )
            self.batches[rec["id"]] = PendingBatch(
                batch_id=rec["id"],
                tx_ids=list(rec["ids"]),
                canonical_text=self._render_batch_text(transactions),
                nonce=rec["n"],
                issued_at=at,
                account=str(rec["a"]),
            )
            self.transactions_peak = max(
                self.transactions_peak, len(self.transactions)
            )
        elif kind == "rechal":
            pending = self.transactions[rec["id"]]
            at = unpack_time(rec["at"])
            self.nonces.invalidate(pending.nonce)
            self.nonces.replay_issue(rec["n"], pending.tx_id, at)
            pending.nonce = rec["n"]
            pending.issued_at = at
            pending.status = TxStatus.PENDING
            pending.detail = ""
            pending.settled_at = None
            self.rechallenges_issued += 1
        elif kind == "brechal":
            batch = self.batches[rec["id"]]
            at = unpack_time(rec["at"])
            self.nonces.invalidate(batch.nonce)
            self.nonces.replay_issue(rec["n"], batch.batch_id, at)
            batch.nonce = rec["n"]
            batch.issued_at = at
            batch.status = TxStatus.PENDING
            batch.detail = ""
            batch.settled_at = None
            for tx_id in batch.tx_ids:
                member = self.transactions[tx_id]
                member.nonce = rec["n"]
                member.issued_at = at
                member.status = TxStatus.PENDING
                member.detail = ""
                member.settled_at = None
            self.rechallenges_issued += 1
        elif kind == "settle":
            self._replay_settle(rec)
        elif kind == "bsettle":
            self._replay_settle_batch(rec)
        elif kind == "expire":
            pending = self.transactions[rec["id"]]
            pending.status = TxStatus.EXPIRED
            pending.detail = "confirmation never arrived"
            pending.settled_at = unpack_time(rec["at"])
        elif kind == "bexpire":
            batch = self.batches[rec["id"]]
            batch.status = TxStatus.EXPIRED
            batch.detail = "confirmation never arrived"
            batch.settled_at = unpack_time(rec["at"])
        elif kind == "sweepmark":
            self._last_store_sweep = unpack_time(rec["at"]) or 0.0
        elif kind == "retire":
            self.retire_settled(unpack_time(rec["at"]))
        elif kind == "mig_in":
            self._apply_slice(decode_message(rec["s"]))
        elif kind == "mig_out":
            self._drop_slice([str(name) for name in rec["a"]])
        elif kind == "mig_tail":
            # Tail records replay their *protocol* effects only; the
            # business effect of window settles is delivered separately
            # by the flip-time ``mig_biz`` refresh (the source already
            # executed them live — re-executing here would double-count
            # external accounts and the transfer log pool-wide).
            previous = self._migration_replay
            self._migration_replay = True
            try:
                for encoded in rec["rs"]:
                    self._replay_record(decode_message(encoded))
            finally:
                self._migration_replay = previous
        elif kind == "mig_biz":
            self.install_business_slice(decode_message(rec["b"]))
        elif kind == "mig_res":
            self.install_business_residual(decode_message(rec["b"]))
        elif kind in ("mig_prepare", "mig_commit", "mig_abort"):
            pass  # protocol markers: state lives in the intent log
        else:
            raise JournalError(f"unknown journal record kind {kind!r}")

    def _replay_settle(self, rec: Message) -> None:
        pending = self.transactions[rec["id"]]
        at = unpack_time(rec["at"])
        if rec.get("cd"):
            # Re-run the consume *attempt* so the nonce DB (record
            # state, counters, opportunistic eviction sweep) evolves
            # exactly as it did live; the verdict is already settled.
            self.nonces.consume(pending.nonce, pending.tx_id, at)
        status = TxStatus(str(rec["st"]))
        pending.status = status
        pending.detail = str(rec["dt"])
        pending.settled_at = at
        if "dg" in rec:
            pending.evidence_digest = rec["dg"]
        if "fr" in rec:
            pending.final_response = decode_message(rec["fr"])
        if "ctr" in rec:
            self.accounts[str(rec["a"])].last_counter = int(rec["ctr"])
        if status is TxStatus.EXECUTED:
            # Deterministic re-application of the business effect; the
            # receipt already lives in pending.detail from the record.
            # Skipped for migration tails — the flip-time business
            # refresh carries the post-window balances instead.
            if not self._migration_replay:
                self.execute_transaction(pending.transaction)
        elif status is TxStatus.DENIED:
            self.denials[pending.detail] = self.denials.get(pending.detail, 0) + 1
        elif status is TxStatus.EXPIRED:
            self.rechallenges_required += 1

    def _replay_settle_batch(self, rec: Message) -> None:
        batch = self.batches[rec["id"]]
        at = unpack_time(rec["at"])
        if rec.get("cd"):
            self.nonces.consume(batch.nonce, batch.batch_id, at)
        status = TxStatus(str(rec["st"]))
        batch.status = status
        batch.detail = str(rec["dt"])
        batch.settled_at = at
        if "dg" in rec:
            batch.evidence_digest = rec["dg"]
        if "fr" in rec:
            batch.final_response = decode_message(rec["fr"])
        if "ctr" in rec:
            self.accounts[str(rec["a"])].last_counter = int(rec["ctr"])
        if status is TxStatus.EXECUTED:
            for tx_id in batch.tx_ids:
                member = self.transactions[tx_id]
                if not self._migration_replay:
                    self.execute_transaction(member.transaction)
                member.status = TxStatus.EXECUTED
                member.settled_at = at
        elif status is TxStatus.REJECTED_BY_USER:
            for tx_id in batch.tx_ids:
                member = self.transactions[tx_id]
                member.status = status
                member.settled_at = at
        elif status is TxStatus.DENIED:
            for tx_id in batch.tx_ids:
                member = self.transactions[tx_id]
                member.status = status
                member.detail = batch.detail
                member.settled_at = at
            self.denials[batch.detail] = self.denials.get(batch.detail, 0) + 1
        elif status is TxStatus.EXPIRED:
            for tx_id in batch.tx_ids:
                member = self.transactions[tx_id]
                member.status = status
                member.detail = batch.detail
                member.settled_at = at
            self.rechallenges_required += 1

    # -- account-slice migration (live rebalancing) ----------------------
    # The elastic pool (`repro.server.rebalance`) moves an account range
    # between shards in two phases: capture_slice ships a snapshot of
    # the slice while the source keeps serving (a migration tap mirrors
    # every mutation record in the copy window), then at ring-flip time
    # apply_migration_records replays the tail on the new owner and
    # drop_slice removes the range from the source.  Consumed nonces
    # travel with their transactions, so evidence replayed cross-shard
    # after a flip is still rejected *by construction* — the nonce
    # arrives on the new owner already marked consumed.

    def capture_business_slice(self, accounts: Iterable[str]) -> Message:
        """Subclass hook: the business state bound to ``accounts``
        (e.g. their ledger balances).  Historical logs stay behind —
        they record where work *happened*, not who owns the account."""
        return {}

    def install_business_slice(self, state: Message) -> None:
        """Subclass hook: inverse of :meth:`capture_business_slice`."""

    def drop_business_slice(self, accounts: Iterable[str]) -> None:
        """Subclass hook: forget the business state of a migrated-out
        account range."""

    def capture_business_residual(self) -> Message:
        """Subclass hook: business state *not* bound to any owned
        account — external counterparty balances and historical logs.
        Captured when a shard is drained away so the pool-wide ledger
        conserves; an empty message means nothing to ship."""
        return {}

    def install_business_residual(self, state: Message) -> None:
        """Subclass hook: additively absorb a drained peer's residual
        business state (inverse of :meth:`capture_business_residual`)."""

    def install_business_refresh(self, state: Message) -> None:
        """Overwrite the migrated range's business state with its value
        at ring-flip time, journaled as one ``mig_biz`` record.  The
        copy-window tail replays protocol effects only, so this refresh
        is what delivers the window's business effects to the new owner
        — exactly once, because the source executed them exactly once."""
        self.install_business_slice(state)
        self._journal_append({"t": "mig_biz", "b": encode_message(state)})

    def install_residual(self, state: Message) -> None:
        """Absorb a drained shard's residual business state, journaled
        as one ``mig_res`` record so the absorption survives a later
        crash of this shard."""
        self.install_business_residual(state)
        self._journal_append({"t": "mig_res", "b": encode_message(state)})

    def start_migration_tap(self) -> list:
        """Begin mirroring mutation records (the live WAL tail) into a
        fresh list; runs with or without a disk journal attached."""
        tap: list = []
        self._migration_taps.append(tap)
        return tap

    def stop_migration_tap(self, tap: list) -> list:
        self._migration_taps.remove(tap)
        return tap

    def clear_migration_taps(self) -> int:
        """Abort path: drop every active tap without needing the tap
        handles (a crashed coordinator recovering from its intent log
        has none).  Safe when the shard crashed in between — the crash
        already cleared the taps."""
        dropped = len(self._migration_taps)
        self._migration_taps.clear()
        return dropped

    def note_migration(self, kind: str, op_id: str) -> None:
        """Journal a migration-protocol marker (``mig_prepare`` /
        ``mig_commit`` / ``mig_abort``) on this shard.  Markers are the
        participant-side trace of the coordinator's write-ahead intent
        log: they replay as no-ops but make every shard's WAL
        self-describing about the scale events it took part in."""
        if kind not in ("mig_prepare", "mig_commit", "mig_abort"):
            raise ValueError(f"not a migration marker kind: {kind!r}")
        self._journal_append({"t": kind, "op": op_id})

    def capture_slice(self, account_names: Iterable[str]) -> Message:
        """Snapshot everything owned by ``account_names``: the account
        records, their live and settled transactions/batches, every
        nonce bound to those ids (consumed ones included — the replay
        defense must survive the move), and the business slice.  DRBG
        states deliberately stay home: randomness streams belong to a
        host, not to an account range."""
        names = sorted(set(account_names) & self.accounts.keys())
        name_set = set(names)
        owned_txs = sorted(
            tx_id for tx_id, pending in self.transactions.items()
            if pending.transaction.account in name_set
        )
        owned_batches = sorted(
            batch_id for batch_id, batch in self.batches.items()
            if batch.account in name_set
        )
        owned_ids = set(owned_txs) | set(owned_batches)
        nonce_records = sorted(
            record for record in self.nonces.export_records()
            if record[1] in owned_ids
        )
        return {
            "names": names,
            "as": [self._encode_account(self.accounts[n]) for n in names],
            "ns": [self._encode_nonce(r) for r in nonce_records],
            "txs": [self._encode_tx(self.transactions[t]) for t in owned_txs],
            "bs": [self._encode_batch(self.batches[b]) for b in owned_batches],
            "biz": encode_message(self.capture_business_slice(names)),
        }

    def install_slice(self, blob: Message) -> List[str]:
        """Adopt a captured slice as the new owner; journaled as one
        ``mig_in`` record so a crash after the flip restores the shard
        with the migrated range intact."""
        names = self._apply_slice(blob)
        self._journal_append({"t": "mig_in", "s": encode_message(blob)})
        return names

    def _apply_slice(self, blob: Message) -> List[str]:
        names = [str(name) for name in blob["names"]]
        for encoded in blob["as"]:
            record = self._decode_account(encoded)
            previous = self.accounts.get(record.name)
            if previous is not None and previous.cookie is not None:
                self._cookies.pop(previous.cookie, None)
            self.accounts[record.name] = record
            if record.cookie is not None:
                self._cookies[record.cookie] = record.name
        for encoded in blob["txs"]:
            pending = self._decode_tx(encoded)
            self.transactions[pending.tx_id] = pending
        for encoded in blob["bs"]:
            batch = self._decode_batch(encoded)
            self.batches[batch.batch_id] = batch
        self.nonces.absorb_records(
            [self._decode_nonce(encoded) for encoded in blob["ns"]]
        )
        self.install_business_slice(decode_message(blob["biz"]))
        self.accounts_migrated_in += len(names)
        self.transactions_peak = max(
            self.transactions_peak, len(self.transactions)
        )
        return names

    def drop_slice(self, account_names: Iterable[str]) -> int:
        """Remove a migrated-out account range from this shard;
        journaled as one ``mig_out`` record."""
        names = sorted(set(account_names) & self.accounts.keys())
        if not names:
            return 0
        self._drop_slice(names)
        self._journal_append({"t": "mig_out", "a": list(names)})
        return len(names)

    def _drop_slice(self, names: List[str]) -> None:
        name_set = set(names)
        removed_ids: Set[bytes] = set()
        for tx_id in [
            tx_id for tx_id, pending in self.transactions.items()
            if pending.transaction.account in name_set
        ]:
            removed_ids.add(tx_id)
            del self.transactions[tx_id]
        for batch_id in [
            batch_id for batch_id, batch in self.batches.items()
            if batch.account in name_set
        ]:
            removed_ids.add(batch_id)
            del self.batches[batch_id]
        self.nonces.drop_bound(removed_ids)
        for name in names:
            record = self.accounts.pop(name, None)
            if record is not None and record.cookie is not None:
                self._cookies.pop(record.cookie, None)
        self.drop_business_slice(names)
        self.accounts_migrated_out += len(names)

    def apply_migration_records(
        self, records: List[Message], account_names: Iterable[str]
    ) -> int:
        """Replay a copy-window WAL tail, keeping only the records that
        concern the migrated range.  Filtering is interleaved with
        replay: a transaction *created* during the window (its ``txreq``
        is in the tail) must be visible when its own settle record is
        screened.  The applied tail is journaled as one ``mig_tail``
        record carrying this shard's own post-apply DRBG states —
        replay mints nothing, so the streams are untouched."""
        name_set = set(account_names)
        applied: List[Message] = []
        self._replaying = True
        self._migration_replay = True
        try:
            for record in records:
                if not self._migration_record_applies(record, name_set):
                    continue
                self._replay_record(record)
                applied.append(record)
        finally:
            self._replaying = False
            self._migration_replay = False
        if applied:
            self._journal_append(
                {"t": "mig_tail", "rs": [encode_message(r) for r in applied]}
            )
        return len(applied)

    def _migration_record_applies(self, rec: Message, names: Set[str]) -> bool:
        kind = rec["t"]
        if kind == "reg":
            return str(decode_message(rec["req"])["account"]) in names
        if kind in ("login", "cert", "sbegin", "skey", "breq"):
            return str(rec["a"]) in names
        if kind == "txreq":
            return Transaction.from_canonical_bytes(rec["tx"]).account in names
        if kind in ("rechal", "settle", "expire"):
            return rec["id"] in self.transactions
        if kind in ("brechal", "bsettle", "bexpire"):
            return rec["id"] in self.batches
        # retire/sweepmark pace the *source's* store maintenance;
        # nested mig_* records never ship (one migration at a time).
        return False

    # -- experiment accessors -------------------------------------------------
    def count_by_status(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for pending in self.transactions.values():
            counts[pending.status.value] = counts.get(pending.status.value, 0) + 1
        return counts
