"""Write-ahead journal + snapshot: provider durability across crashes.

A :class:`~repro.server.provider.ServiceProvider` that survives a
crash-stop failure must bring back everything its security argument
rests on: the nonce database (single-use freshness — the replay
defense), session cookie grants and evictions, transaction settlement
with the evidence digest and final response (exactly-once confirms),
and the per-account monotonic counter (anti-rollback).  This module is
the persistence layer for that state, on the simulated
:class:`~repro.os.disk.UntrustedDisk`:

* **Records** are appended as the provider mutates state — one
  canonically encoded message per mutation, length-prefixed in a single
  WAL file, each carrying the provider's post-operation DRBG states so
  a restore resumes the *exact* randomness stream (future nonces and
  cookies mint bit-identically to an uncrashed run).
* **Snapshots** bound replay time: every ``snapshot_every`` appends the
  provider's full captured state replaces the snapshot file and the WAL
  truncates.  Restore = load snapshot, replay the WAL tail.

Completed disk writes are durable, but an append interrupted by a crash
may leave a *torn tail*: a truncated final frame that
:meth:`ProviderJournal.read_records` tolerates (the interrupted record's
operation never became durable).  The chaos harness exercises this
explicitly via :meth:`ProviderJournal.tear_tail`, which models a crash
landing mid-append.  Beyond that one loss, what a crash destroys is
*memory* — and, deliberately, the RPC layer's request-dedup/response
cache, which is exactly the loss the journaled ``final_response``
compensates for.
"""

from __future__ import annotations

import struct
from typing import List, Optional

from repro.os.disk import UntrustedDisk

#: WAL framing: u32 record length, record bytes.
_LEN = struct.Struct(">I")
#: Upper bound on a plausible record length.  A frame header above this
#: is not a crash artifact (torn appends only ever *shorten* the file) —
#: it is mid-log corruption, and restore must refuse rather than skip.
_MAX_RECORD = 1 << 26
#: Timestamp encoding: the wire format (`repro.net.messages`) has no
#: float tag, so virtual times travel as exact big-endian float64.
_F64 = struct.Struct(">d")


class JournalError(RuntimeError):
    """Corrupt or unreadable journal state."""


def pack_time(value: Optional[float]) -> bytes:
    """Encode a virtual timestamp (``None`` -> empty, exact otherwise)."""
    if value is None:
        return b""
    return _F64.pack(value)


def unpack_time(raw: bytes) -> Optional[float]:
    """Inverse of :func:`pack_time`: empty bytes decode to ``None``."""
    if not raw:
        return None
    return _F64.unpack(raw)[0]


class ProviderJournal:
    """One provider's durable WAL + snapshot pair on a simulated disk.

    The journal is storage-only: it knows how to persist opaque record
    and snapshot blobs, not what they mean.  The provider owns the
    record vocabulary (see ``ServiceProvider._replay_record``).
    """

    def __init__(
        self,
        disk: UntrustedDisk,
        host: str,
        snapshot_every: int = 256,
    ) -> None:
        if snapshot_every < 1:
            raise ValueError(f"snapshot_every must be >= 1: {snapshot_every}")
        self.disk = disk
        self.host = host
        self.wal_path = f"journal/{host}.wal"
        self.snapshot_path = f"journal/{host}.snap"
        self.snapshot_every = snapshot_every
        self._since_snapshot = 0
        self.appends = 0
        self.snapshots = 0
        #: Torn trailing records tolerated by :meth:`read_records` — a
        #: crash mid-append loses the record being written, nothing else.
        self.torn_tails = 0
        #: Reusable frame buffer for :meth:`append` — grown to the
        #: largest record seen, never shrunk, so steady-state appends
        #: allocate nothing beyond the disk's own extend.
        self._frame = bytearray()

    # -- write side ---------------------------------------------------------
    def append(self, record: bytes) -> None:
        """Durably append one encoded record to the WAL.

        The length prefix and record are assembled in a preallocated
        buffer instead of ``pack(...) + record`` concatenation — one
        framed append used to cost two fresh allocations and three
        copies of the record; now the only copy is the disk's.
        """
        frame = self._frame
        needed = _LEN.size + len(record)
        if len(frame) < needed:
            frame.extend(bytes(needed - len(frame)))
        _LEN.pack_into(frame, 0, len(record))
        frame[_LEN.size:needed] = record
        self.disk.append_file(self.wal_path, memoryview(frame)[:needed])
        self.appends += 1
        self._since_snapshot += 1

    @property
    def snapshot_due(self) -> bool:
        return self._since_snapshot >= self.snapshot_every

    def write_snapshot(self, state: bytes) -> None:
        """Replace the snapshot and truncate the WAL it supersedes."""
        self.disk.write_file(self.snapshot_path, state)
        self.disk.write_file(self.wal_path, b"")
        self.snapshots += 1
        self._since_snapshot = 0

    def tear_tail(self, fraction: float = 0.5) -> int:
        """Truncate the WAL inside its final frame (torn-write fault).

        Models a crash that lands mid-append: the last complete frame is
        re-cut at ``fraction`` of its framed length, leaving a partial
        length prefix or a short record body — exactly the shape
        :meth:`read_records` tolerates as a torn tail.  Returns the
        number of bytes torn off (0 when the WAL holds no complete
        frame, in which case nothing changes).
        """
        if not 0.0 <= fraction < 1.0:
            raise ValueError(f"tear fraction must be in [0, 1): {fraction}")
        raw = self.disk.read_file(self.wal_path) or b""
        last_start = None
        last_len = 0
        offset = 0
        while offset + _LEN.size <= len(raw):
            (length,) = _LEN.unpack_from(raw, offset)
            if length > _MAX_RECORD or offset + _LEN.size + length > len(raw):
                break
            last_start = offset
            last_len = _LEN.size + length
            offset += _LEN.size + length
        if last_start is None:
            return 0
        keep = last_start + int(last_len * fraction)
        self.disk.write_file(self.wal_path, raw[:keep])
        return len(raw) - keep

    def repair_tail(self) -> int:
        """Truncate a torn tail at the last complete frame boundary.

        Recovery-time counterpart of :meth:`read_records`' tolerance:
        tolerating the partial frame on *read* is not enough, because
        the restarted shard keeps appending — and a new frame written
        after leftover partial bytes would corrupt the framing of
        everything that follows.  Called on restore, before any new
        append.  Returns the number of bytes discarded."""
        raw = self.disk.read_file(self.wal_path) or b""
        offset = 0
        while offset + _LEN.size <= len(raw):
            (length,) = _LEN.unpack_from(raw, offset)
            if length > _MAX_RECORD:
                raise JournalError(
                    f"corrupt WAL record length {length} at offset "
                    f"{offset} in {self.wal_path}"
                )
            if offset + _LEN.size + length > len(raw):
                break
            offset += _LEN.size + length
        torn = len(raw) - offset
        if torn:
            self.torn_tails += 1
            self.disk.write_file(self.wal_path, raw[:offset])
        return torn

    # -- read side ----------------------------------------------------------
    def read_snapshot(self) -> Optional[bytes]:
        return self.disk.read_file(self.snapshot_path)

    def read_records(self) -> List[bytes]:
        """Every WAL record appended since the last snapshot, in order.

        A crash that lands mid-append leaves a truncated *final* frame —
        the one loss a WAL is allowed: the interrupted record's
        operation never became durable, so restore stops at the last
        complete record instead of refusing to bring the shard back
        (counted in ``stats()['torn_tails']``).  An implausible frame
        length is *not* a crash artifact (torn appends only shorten the
        file) — that is mid-log corruption and still raises
        :class:`JournalError`.
        """
        raw = self.disk.read_file(self.wal_path) or b""
        records: List[bytes] = []
        offset = 0
        while offset < len(raw):
            if offset + _LEN.size > len(raw):
                self.torn_tails += 1
                break
            (length,) = _LEN.unpack_from(raw, offset)
            if length > _MAX_RECORD:
                raise JournalError(
                    f"corrupt WAL record length {length} at offset "
                    f"{offset} in {self.wal_path}"
                )
            offset += _LEN.size
            if offset + length > len(raw):
                self.torn_tails += 1
                break
            records.append(raw[offset : offset + length])
            offset += length
        return records

    def stats(self) -> dict:
        return {
            "appends": self.appends,
            "snapshots": self.snapshots,
            "wal_bytes": self.disk.file_size(self.wal_path) or 0,
            "torn_tails": self.torn_tails,
        }
