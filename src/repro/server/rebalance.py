"""Elastic shard pool: live migration, drain, and autoscaling.

The sharded provider (`repro.server.router`) fixes its pool size at
build time, but the paper's deployment story — confirmation as a
captcha replacement at web scale — faces diurnal load with flash
crowds (F6).  A pool sized for the spike wastes shards all night; a
pool sized for the trough sheds the spike.  This module makes the pool
*elastic* without ever weakening the security argument:

* :class:`ShardPoolManager` moves **account ranges** between shards as
  a snapshot + WAL-tail copy: capture the range's slice (accounts,
  sessions, transactions, batches, and every nonce bound to them —
  consumed ones included), ship it over a modeled transfer window while
  a migration tap mirrors the source's live mutations, then atomically
  flip ring ownership and replay the tail on the new owner.  The
  replay defense survives the move *by construction*: a nonce's record
  travels with its transaction, so evidence can no more be replayed
  across a migration than across the original shard boundary.
* Draining inverts the same machinery: a departing shard stops
  admitting new sessions, in-flight legs settle, its ranges migrate to
  the survivors, and the shard is removed — survivor state is
  bit-identical (pool ``state_digest``) to a pool that was never
  scaled.
* :class:`AutoScaler` closes the loop: a periodic controller reads the
  router's own signals (shed rate, outstanding legs, breaker states)
  and scales up under sustained pressure, drains the newest shard in
  sustained calm — with streak hysteresis and a cooldown so a single
  noisy tick never thrashes the pool.

Everything runs on the simulation's virtual clock and derives no new
randomness, so an elastic run is as deterministic as a static one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.net.messages import Message, decode_message, encode_message
from repro.server.provider import ServiceProvider
from repro.server.router import CircuitBreaker, HashRing, ProviderRouter
from repro.sim.kernel import Simulator

#: Modeled migration link: snapshot bytes stream at this rate during
#: the copy window (LAN-class replication traffic).
DEFAULT_BANDWIDTH_BYTES_PER_S = 8_000_000.0
#: Fixed per-migration setup cost (connection + coordination).
DEFAULT_TRANSFER_LATENCY_S = 0.05
#: How long after a ring flip the router re-aims disowned responses at
#: the new owner (covers legs that were in flight at the flip).
DEFAULT_DUAL_READ_WINDOW_S = 2.0


@dataclass
class MigrationReport:
    """One completed migration, for the E4 experiment ledger."""

    kind: str  # "scale_up" | "drain" | "reconcile"
    host: str  # the shard added or removed
    accounts: int
    snapshot_bytes: int
    tail_records: int
    tail_bytes: int
    started_at: float
    flipped_at: float

    @property
    def migration_s(self) -> float:
        return self.flipped_at - self.started_at


class ShardPoolManager:
    """Coordinator for account-range migration on a live shard pool.

    One migration at a time (``busy`` guards overlap — ranges in
    flight must not be re-sliced by a second operation).  The
    ``shard_factory(host)`` callable builds a fresh, network-attached
    shard; keeping construction outside the manager lets callers
    decide journaling, caching, and provider class.
    """

    def __init__(
        self,
        simulator: Simulator,
        router: ProviderRouter,
        shard_factory: Callable[[str], ServiceProvider],
        *,
        bandwidth_bytes_per_s: float = DEFAULT_BANDWIDTH_BYTES_PER_S,
        transfer_latency_s: float = DEFAULT_TRANSFER_LATENCY_S,
        dual_read_window_s: float = DEFAULT_DUAL_READ_WINDOW_S,
        drain_poll_s: float = 0.25,
        drain_grace_s: float = 30.0,
    ) -> None:
        if bandwidth_bytes_per_s <= 0:
            raise ValueError(
                f"bandwidth must be > 0: {bandwidth_bytes_per_s}"
            )
        self.simulator = simulator
        self.router = router
        self.shard_factory = shard_factory
        self.bandwidth_bytes_per_s = bandwidth_bytes_per_s
        self.transfer_latency_s = transfer_latency_s
        self.dual_read_window_s = dual_read_window_s
        self.drain_poll_s = drain_poll_s
        self.drain_grace_s = drain_grace_s
        self.reports: List[MigrationReport] = []
        self.failovers_reconciled = 0
        self._busy = False
        #: Highest shard number ever used, drained shards included — a
        #: reused hostname would re-derive the same DRBG streams.
        self._retired_seq = -1

    # ------------------------------------------------------------------
    @property
    def busy(self) -> bool:
        return self._busy

    def totals(self) -> Dict[str, float]:
        """Aggregate migration cost, for experiment rows."""
        return {
            "migrations": len(self.reports),
            "accounts_moved": sum(r.accounts for r in self.reports),
            "snapshot_bytes": sum(r.snapshot_bytes for r in self.reports),
            "tail_records": sum(r.tail_records for r in self.reports),
            "tail_bytes": sum(r.tail_bytes for r in self.reports),
            "migration_s": sum(r.migration_s for r in self.reports),
            "failovers_reconciled": self.failovers_reconciled,
        }

    def _next_host(self) -> str:
        """Monotonic shard numbering: never reuse a drained shard's
        hostname — a reused host would re-derive the *same* DRBG
        streams, and freshness must never repeat."""
        prefix = f"{self.router.host}!shard"
        highest = -1
        for shard in self.router.shards:
            if shard.host.startswith(prefix):
                try:
                    highest = max(highest, int(shard.host[len(prefix):]))
                except ValueError:
                    continue
        highest = max(highest, self._retired_seq)
        return f"{prefix}{highest + 1}"

    def _note_seq(self, host: str) -> None:
        prefix = f"{self.router.host}!shard"
        if host.startswith(prefix):
            try:
                self._retired_seq = max(
                    self._retired_seq, int(host[len(prefix):])
                )
            except ValueError:
                pass

    # ------------------------------------------------------------------
    # Scale up: add a shard, migrate its ring ranges in
    # ------------------------------------------------------------------
    def scale_up(self) -> Optional[str]:
        """Add one shard and migrate the account ranges the grown ring
        assigns to it.  Returns the new shard's host, or ``None`` if a
        migration is already in flight.

        Sequence: (1) attach the empty shard — reachable by index, owns
        nothing; (2) capture each source's slice and open a migration
        tap; (3) after the modeled copy window, replay the WAL tails,
        drop the source ranges, rebuild the ring, and rewrite the
        router's learned routes — the atomic flip.  Legs that raced the
        flip are covered by the dual-read window.
        """
        if self._busy:
            return None
        self._busy = True
        router = self.router
        new_host = self._next_host()
        self._note_seq(new_host)
        shard = self.shard_factory(new_host)
        new_index = router.add_shard(shard)
        new_ring = HashRing(
            [s.host for s in router.shards], vnodes=router._vnodes
        )
        started = self.simulator.now
        moves: List[tuple] = []  # (source, names, blob, tap)
        snapshot_bytes = 0
        for source in router.shards[:-1]:
            names = sorted(
                name for name in source.accounts
                if new_ring.index_for(name) == new_index
            )
            if not names:
                continue
            blob = source.capture_slice(names)
            snapshot_bytes += len(encode_message(blob))
            moves.append((source, names, blob, source.start_migration_tap()))
        copy_s = (
            self.transfer_latency_s
            + snapshot_bytes / self.bandwidth_bytes_per_s
        )

        def flip() -> None:
            moved: Dict[str, int] = {}
            tail_records = 0
            tail_bytes = 0
            for source, names, blob, tap in moves:
                records = source.stop_migration_tap(tap)
                tail_bytes += sum(len(encode_message(r)) for r in records)
                # Accounts *registered during the copy window* whose
                # range belongs to the new shard ride along in the tail
                # (their reg record recreates them on replay) — frozen
                # name lists would strand them on a range they no
                # longer own.
                window_names = set(names)
                for record in records:
                    if record.get("t") != "reg":
                        continue
                    account = str(decode_message(record["req"])["account"])
                    if new_ring.index_for(account) == new_index:
                        window_names.add(account)
                all_names = sorted(window_names)
                shard.install_slice(blob)
                tail_records += shard.apply_migration_records(
                    records, all_names
                )
                source.drop_slice(all_names)
                for name in all_names:
                    moved[name] = new_index
            router.rebuild_ring()
            router.complete_migration(moved, self.dual_read_window_s)
            self.reports.append(MigrationReport(
                kind="scale_up", host=new_host, accounts=len(moved),
                snapshot_bytes=snapshot_bytes, tail_records=tail_records,
                tail_bytes=tail_bytes, started_at=started,
                flipped_at=self.simulator.now,
            ))
            self.simulator.metrics.counter("rebalance.scale_ups").increment()
            self._busy = False

        self.simulator.schedule(copy_s, flip, label="rebalance.flip_up")
        return new_host

    # ------------------------------------------------------------------
    # Drain: migrate a shard's ranges out, then remove it
    # ------------------------------------------------------------------
    def drain_shard(self, host: str) -> bool:
        """Begin draining ``host`` for removal.  The shard immediately
        stops admitting new sessions; once its outstanding legs settle
        (or the grace period lapses), its ranges migrate to the ring's
        surviving owners and the shard is detached."""
        if self._busy:
            return False
        router = self.router
        if len(router.shards) <= 1:
            raise ValueError("cannot drain the last shard")
        index = next(
            (i for i, s in enumerate(router.shards) if s.host == host), None
        )
        if index is None:
            raise ValueError(f"no shard with host {host!r}")
        self._busy = True
        self._note_seq(host)
        router.draining.add(index)
        deadline = self.simulator.now + self.drain_grace_s

        def poll() -> None:
            live = next(
                i for i, s in enumerate(router.shards) if s.host == host
            )
            if (
                router.outstanding[live] > 0
                and self.simulator.now < deadline
            ):
                self.simulator.schedule(
                    self.drain_poll_s, poll, label="rebalance.drain_poll"
                )
                return
            self._begin_drain_copy(host)

        self.simulator.schedule(
            self.drain_poll_s, poll, label="rebalance.drain_poll"
        )
        return True

    def _begin_drain_copy(self, host: str) -> None:
        router = self.router
        source = next(s for s in router.shards if s.host == host)
        survivor_ring = HashRing(
            [s.host for s in router.shards if s.host != host],
            vnodes=router._vnodes,
        )
        groups: Dict[str, List[str]] = {}
        for name in sorted(source.accounts):
            groups.setdefault(survivor_ring.host_for(name), []).append(name)
        blobs = {
            dest: source.capture_slice(names)
            for dest, names in groups.items()
        }
        tap = source.start_migration_tap()
        snapshot_bytes = sum(len(encode_message(b)) for b in blobs.values())
        copy_s = (
            self.transfer_latency_s
            + snapshot_bytes / self.bandwidth_bytes_per_s
        )
        started = self.simulator.now

        def flip() -> None:
            records = source.stop_migration_tap(tap)
            tail_bytes = sum(len(encode_message(r)) for r in records)
            tail_records = 0
            dest_hosts: Dict[str, str] = {}
            all_names: List[str] = []
            for dest_host, names in groups.items():
                dest = next(
                    s for s in router.shards if s.host == dest_host
                )
                dest.install_slice(blobs[dest_host])
                tail_records += dest.apply_migration_records(records, names)
                all_names.extend(names)
                for name in names:
                    dest_hosts[name] = dest_host
            source.drop_slice(all_names)
            router.remove_shard(host)  # rebuilds ring, shifts indices
            host_index = {s.host: i for i, s in enumerate(router.shards)}
            moved = {
                name: host_index[dest] for name, dest in dest_hosts.items()
            }
            router.complete_migration(moved, self.dual_read_window_s)
            self.reports.append(MigrationReport(
                kind="drain", host=host, accounts=len(moved),
                snapshot_bytes=snapshot_bytes, tail_records=tail_records,
                tail_bytes=tail_bytes, started_at=started,
                flipped_at=self.simulator.now,
            ))
            self.simulator.metrics.counter("rebalance.drains").increment()
            self._busy = False

        self.simulator.schedule(copy_s, flip, label="rebalance.flip_drain")

    # ------------------------------------------------------------------
    # Failover reconciliation
    # ------------------------------------------------------------------
    def reconcile_failovers(self) -> int:
        """Migrate register-failover overrides back to ring ownership.

        A register that failed over during an outage left the account
        on a neighbor shard plus a router-side override entry; without
        reconciliation those overrides accumulate forever (and a router
        restart would lose them, orphaning the accounts).  Once the
        home shard's breaker is closed again, each override's account
        migrates home through the same slice machinery and the override
        is dropped.  Returns the number of accounts moved."""
        if self._busy:
            return 0
        router = self.router
        moved: Dict[str, int] = {}
        for account in sorted(router._account_shard):
            override = router._account_shard[account]
            home = router.ring.index_for(account)
            if home == override:
                del router._account_shard[account]
                continue
            source = router.shards[override]
            if account not in source.accounts:
                # The account never materialized (failed registration);
                # the override maps nothing and just goes.
                del router._account_shard[account]
                continue
            if router.breakers[home].state != CircuitBreaker.CLOSED:
                continue
            if home in router.draining:
                continue
            target = router.shards[home]
            blob = source.capture_slice([account])
            target.install_slice(blob)
            source.drop_slice([account])
            moved[account] = home
        if moved:
            router.complete_migration(moved, self.dual_read_window_s)
            self.failovers_reconciled += len(moved)
            self.reports.append(MigrationReport(
                kind="reconcile", host=router.host, accounts=len(moved),
                snapshot_bytes=0, tail_records=0, tail_bytes=0,
                started_at=self.simulator.now,
                flipped_at=self.simulator.now,
            ))
        return len(moved)


class AutoScaler:
    """Periodic control loop over the router's own load signals.

    Pressure = load shedding this tick, or a shard's outstanding
    backlog near the shedding threshold.  Calm = no shedding, shallow
    backlogs, every breaker closed.  ``up_ticks`` consecutive pressure
    ticks trigger a scale-up (to ``max_shards``); ``down_ticks``
    consecutive calm ticks drain the newest shard (to ``min_shards``).
    A cooldown after every action lets the previous migration's effect
    show up in the signals before the controller moves again —
    hysteresis against flapping on the F6 flash-crowd edge.
    """

    def __init__(
        self,
        simulator: Simulator,
        router: ProviderRouter,
        manager: ShardPoolManager,
        *,
        min_shards: int = 1,
        max_shards: int = 4,
        tick_s: float = 1.0,
        up_shed_per_tick: int = 1,
        up_outstanding: int = 48,
        up_ticks: int = 2,
        down_outstanding: int = 2,
        down_ticks: int = 20,
        cooldown_s: float = 30.0,
    ) -> None:
        if min_shards < 1 or max_shards < min_shards:
            raise ValueError(
                f"bad shard bounds: [{min_shards}, {max_shards}]"
            )
        if tick_s <= 0:
            raise ValueError(f"tick_s must be > 0: {tick_s}")
        self.simulator = simulator
        self.router = router
        self.manager = manager
        self.min_shards = min_shards
        self.max_shards = max_shards
        self.tick_s = tick_s
        self.up_shed_per_tick = up_shed_per_tick
        self.up_outstanding = up_outstanding
        self.up_ticks = up_ticks
        self.down_outstanding = down_outstanding
        self.down_ticks = down_ticks
        self.cooldown_s = cooldown_s
        self.events: List[dict] = []
        self.ticks = 0
        self._last_shed = router.shed
        self._last_action_at = float("-inf")
        self._up_streak = 0
        self._down_streak = 0

    def start(self) -> None:
        self.simulator.schedule(self.tick_s, self._tick, label="autoscaler.tick")

    def _newest_host(self) -> Optional[str]:
        """Drain candidate: the highest-numbered non-draining shard
        (newest first keeps the pool's stable core untouched)."""
        prefix = f"{self.router.host}!shard"
        best: Optional[tuple] = None
        for index, shard in enumerate(self.router.shards):
            if index in self.router.draining:
                continue
            if not shard.host.startswith(prefix):
                continue
            try:
                seq = int(shard.host[len(prefix):])
            except ValueError:
                continue
            if best is None or seq > best[0]:
                best = (seq, shard.host)
        return best[1] if best else None

    def _tick(self) -> None:
        router = self.router
        self.ticks += 1
        self.manager.reconcile_failovers()
        shed_delta = router.shed - self._last_shed
        self._last_shed = router.shed
        backlog = max(router.outstanding) if router.outstanding else 0
        open_breakers = sum(
            1 for b in router.breakers if b.state != CircuitBreaker.CLOSED
        )
        pressure = (
            shed_delta >= self.up_shed_per_tick
            or backlog >= self.up_outstanding
        )
        # Never scale down mid-outage: a trough with an open breaker is
        # missing capacity, not excess.
        calm = (
            shed_delta == 0
            and backlog <= self.down_outstanding
            and open_breakers == 0
        )
        if pressure:
            self._up_streak += 1
            self._down_streak = 0
        elif calm:
            self._down_streak += 1
            self._up_streak = 0
        else:
            self._up_streak = 0
            self._down_streak = 0
        now = self.simulator.now
        ready = (
            not self.manager.busy
            and now - self._last_action_at >= self.cooldown_s
        )
        if (
            ready
            and self._up_streak >= self.up_ticks
            and len(router.shards) < self.max_shards
        ):
            host = self.manager.scale_up()
            if host is not None:
                self.events.append({
                    "at": now, "action": "scale_up", "host": host,
                    "shards": len(router.shards),
                })
                self._last_action_at = now
                self._up_streak = 0
        elif (
            ready
            and self._down_streak >= self.down_ticks
            and len(router.shards) > self.min_shards
        ):
            host = self._newest_host()
            if host is not None and self.manager.drain_shard(host):
                self.events.append({
                    "at": now, "action": "drain", "host": host,
                    "shards": len(router.shards),
                })
                self._last_action_at = now
                self._down_streak = 0
        self.simulator.schedule(self.tick_s, self._tick, label="autoscaler.tick")
