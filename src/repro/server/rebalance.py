"""Elastic shard pool: crash-safe live migration, drain, and autoscaling.

The sharded provider (`repro.server.router`) fixes its pool size at
build time, but the paper's deployment story — confirmation as a
captcha replacement at web scale — faces diurnal load with flash
crowds (F6).  A pool sized for the spike wastes shards all night; a
pool sized for the trough sheds the spike.  This module makes the pool
*elastic* without ever weakening the security argument:

* :class:`ShardPoolManager` moves **account ranges** between shards as
  a snapshot + WAL-tail copy: capture the range's slice (accounts,
  sessions, transactions, batches, and every nonce bound to them —
  consumed ones included), ship it over a modeled transfer window while
  a migration tap mirrors the source's live mutations, then atomically
  flip ring ownership and replay the tail on the new owner.  The
  replay defense survives the move *by construction*: a nonce's record
  travels with its transaction, so evidence can no more be replayed
  across a migration than across the original shard boundary.
* Draining inverts the same machinery: a departing shard stops
  admitting new sessions, in-flight legs settle, its ranges migrate to
  the survivors, and the shard is removed — survivor state is
  bit-identical (pool ``state_digest``) to a pool that was never
  scaled.  A drain also ships the departing shard's business
  *residual* (external counterparty balances, the executed-transfer
  log) to a survivor, so pool-wide ledger conservation and
  duplicate-execution accounting survive the removal.
* :class:`AutoScaler` closes the loop: a periodic controller reads the
  router's own signals (shed rate, outstanding legs, breaker states)
  and scales up under sustained pressure, drains the newest shard in
  sustained calm — with streak hysteresis and a cooldown so a single
  noisy tick never thrashes the pool.

Crash safety — the migration write-ahead protocol
-------------------------------------------------

Every scale event runs a write-ahead intent protocol against a
durable :class:`MigrationIntentLog` plus ``mig_prepare`` /
``mig_commit`` / ``mig_abort`` marker records in the participating
shards' own journals:

* ``mig_prepare`` is logged before anything else happens; it names the
  operation, the shard added or drained, and the source ranges.
* The flip's durable transition — stop taps, log ``mig_commit``,
  install slices + replay tails + refresh business state on targets,
  drop ranges from sources, ship the drain residual, rebuild the ring
  — executes as one atomic simulation event.  The commit record is
  written *before* the transition applies (write-ahead), and the
  model's crash points (fault hooks, see ``phase_hooks``) sit strictly
  before the commit or strictly after the full transition.
* ``mig_done`` closes the operation; ``mig_abort`` records a clean
  abort.

Recovery (:meth:`ShardPoolManager.recover`, run on manager restart)
resolves every open operation deterministically: **commit logged →
idempotent resume** (re-assert drops, ring ownership, learned-route
rewrites, then ``mig_done``); **no commit → clean abort** (clear
migration taps, detach a half-added shard, clear the draining flag —
source ownership retained, ``busy`` released).  No account is ever
stranded, dropped, or owned by two shards.

A watchdog guards the non-crash failure mode too: if the scheduled
flip callback is lost, the operation aborts at its deadline instead of
latching ``busy`` forever (``rebalance.aborts``).

Everything runs on the simulation's virtual clock and derives no new
randomness, so an elastic run is as deterministic as a static one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.net.messages import Message, decode_message, encode_message
from repro.os.disk import UntrustedDisk
from repro.server.journal import ProviderJournal
from repro.server.provider import ServiceProvider
from repro.server.router import CircuitBreaker, HashRing, ProviderRouter
from repro.sim.events import Event
from repro.sim.kernel import Simulator

#: Modeled migration link: snapshot bytes stream at this rate during
#: the copy window (LAN-class replication traffic).
DEFAULT_BANDWIDTH_BYTES_PER_S = 8_000_000.0
#: Fixed per-migration setup cost (connection + coordination).
DEFAULT_TRANSFER_LATENCY_S = 0.05
#: How long after a ring flip the router re-aims disowned responses at
#: the new owner (covers legs that were in flight at the flip).
DEFAULT_DUAL_READ_WINDOW_S = 2.0
#: Watchdog slack past the expected flip time before an operation is
#: declared stuck and aborted.
DEFAULT_FLIP_GRACE_S = 10.0

#: Migration phases exposed to fault hooks, in protocol order.
MIGRATION_PHASES = (
    "capture", "copy", "drain_poll", "tail_replay", "ring_flip", "dual_read",
)


@dataclass
class MigrationReport:
    """One completed migration, for the E4 experiment ledger."""

    kind: str  # "scale_up" | "drain" | "reconcile"
    host: str  # the shard added or removed
    accounts: int
    snapshot_bytes: int
    tail_records: int
    tail_bytes: int
    started_at: float
    flipped_at: float

    @property
    def migration_s(self) -> float:
        return self.flipped_at - self.started_at


class MigrationIntentLog:
    """Durable write-ahead log of migration intent records.

    With a disk attached the log is a real WAL on the simulated
    :class:`~repro.os.disk.UntrustedDisk` (same framing and torn-tail
    tolerance as the provider journal); without one it degrades to an
    in-memory list that models an external durable configuration store
    — either way the records survive a coordinator crash, which is the
    whole point.
    """

    def __init__(
        self, disk: Optional[UntrustedDisk] = None, host: str = "pool!mgr"
    ) -> None:
        self.host = host
        self._journal = (
            ProviderJournal(disk, host) if disk is not None else None
        )
        self._memory: List[bytes] = []
        self.appends = 0

    @property
    def durable_on_disk(self) -> bool:
        return self._journal is not None

    def append(self, record: Message) -> None:
        raw = encode_message(record)
        if self._journal is not None:
            self._journal.append(raw)
        else:
            self._memory.append(raw)
        self.appends += 1

    def records(self) -> List[Message]:
        raws = (
            self._journal.read_records()
            if self._journal is not None
            else list(self._memory)
        )
        return [decode_message(raw) for raw in raws]


@dataclass
class _Operation:
    """Volatile coordinator state for one in-flight scale event.  The
    durable twin lives in the intent log; everything here may be lost
    to a coordinator crash and must be reconstructible from the log."""

    op_id: str
    kind: str  # "scale_up" | "drain"
    host: str  # shard added (scale_up) / drained (drain)
    epoch: int
    started: float
    deadline: float = 0.0
    #: (source shard, prepared names) — the ranges leaving each source.
    sources: List[Tuple[ServiceProvider, List[str]]] = field(
        default_factory=list
    )
    #: participant host -> crash count sampled at prepare; a changed
    #: count before commit means the participant lost RAM mid-protocol.
    participants: Dict[str, ServiceProvider] = field(default_factory=dict)
    epochs: Dict[str, int] = field(default_factory=dict)
    target: Optional[ServiceProvider] = None
    taps: List[Tuple[ServiceProvider, list]] = field(default_factory=list)
    snapshot_bytes: int = 0
    flip_event: Optional[Event] = None
    poll_event: Optional[Event] = None
    watchdog: Optional[Event] = None
    finished: bool = False


class ShardPoolManager:
    """Crash-safe coordinator for account-range migration on a live
    shard pool.

    One migration at a time (``busy`` guards overlap — ranges in
    flight must not be re-sliced by a second operation).  The
    ``shard_factory(host)`` callable builds a fresh, network-attached
    shard; keeping construction outside the manager lets callers
    decide journaling, caching, and provider class.

    ``phase_hooks`` is a list of ``hook(phase, info)`` callables fired
    at each protocol phase (:data:`MIGRATION_PHASES`); the chaos
    harness uses them to aim crashes at exact migration phases.  A
    hook may crash this manager or any participant — the protocol
    resolves either deterministically.
    """

    def __init__(
        self,
        simulator: Simulator,
        router: ProviderRouter,
        shard_factory: Callable[[str], ServiceProvider],
        *,
        bandwidth_bytes_per_s: float = DEFAULT_BANDWIDTH_BYTES_PER_S,
        transfer_latency_s: float = DEFAULT_TRANSFER_LATENCY_S,
        dual_read_window_s: float = DEFAULT_DUAL_READ_WINDOW_S,
        drain_poll_s: float = 0.25,
        drain_grace_s: float = 30.0,
        flip_grace_s: float = DEFAULT_FLIP_GRACE_S,
        intent_disk: Optional[UntrustedDisk] = None,
    ) -> None:
        if bandwidth_bytes_per_s <= 0:
            raise ValueError(
                f"bandwidth must be > 0: {bandwidth_bytes_per_s}"
            )
        if flip_grace_s <= 0:
            raise ValueError(f"flip_grace_s must be > 0: {flip_grace_s}")
        self.simulator = simulator
        self.router = router
        self.shard_factory = shard_factory
        self.bandwidth_bytes_per_s = bandwidth_bytes_per_s
        self.transfer_latency_s = transfer_latency_s
        self.dual_read_window_s = dual_read_window_s
        self.drain_poll_s = drain_poll_s
        self.drain_grace_s = drain_grace_s
        self.flip_grace_s = flip_grace_s
        self.intent_log = MigrationIntentLog(
            intent_disk, f"{router.host}!mgr"
        )
        self.phase_hooks: List[Callable[[str, dict], None]] = []
        self.reports: List[MigrationReport] = []
        self.failovers_reconciled = 0
        self.aborts = 0
        self.resumes = 0
        self.crashes = 0
        self.restarts = 0
        self._busy = False
        self._crashed = False
        self._epoch = 0
        self._op: Optional[_Operation] = None
        self._op_seq = 0
        #: Highest shard number ever used, drained shards included — a
        #: reused hostname would re-derive the same DRBG streams.
        self._retired_seq = -1

    # ------------------------------------------------------------------
    @property
    def busy(self) -> bool:
        return self._busy

    @property
    def crashed(self) -> bool:
        return self._crashed

    def totals(self) -> Dict[str, float]:
        """Aggregate migration cost, for experiment rows."""
        return {
            "migrations": len(self.reports),
            "accounts_moved": sum(r.accounts for r in self.reports),
            "snapshot_bytes": sum(r.snapshot_bytes for r in self.reports),
            "tail_records": sum(r.tail_records for r in self.reports),
            "tail_bytes": sum(r.tail_bytes for r in self.reports),
            "migration_s": sum(r.migration_s for r in self.reports),
            "failovers_reconciled": self.failovers_reconciled,
            "aborts": self.aborts,
            "resumes": self.resumes,
        }

    def _next_host(self) -> str:
        """Monotonic shard numbering: never reuse a drained shard's
        hostname — a reused host would re-derive the *same* DRBG
        streams, and freshness must never repeat."""
        prefix = f"{self.router.host}!shard"
        highest = -1
        for shard in self.router.shards:
            if shard.host.startswith(prefix):
                try:
                    highest = max(highest, int(shard.host[len(prefix):]))
                except ValueError:
                    continue
        highest = max(highest, self._retired_seq)
        return f"{prefix}{highest + 1}"

    def _note_seq(self, host: str) -> None:
        prefix = f"{self.router.host}!shard"
        if host.startswith(prefix):
            try:
                self._retired_seq = max(
                    self._retired_seq, int(host[len(prefix):])
                )
            except ValueError:
                pass

    # ------------------------------------------------------------------
    # Crash-stop lifecycle of the coordinator itself
    # ------------------------------------------------------------------
    def crash(self) -> None:
        """Control-plane crash-stop: every volatile handle — the active
        operation, its scheduled flip/poll/watchdog events, captured
        blobs and tap handles — is gone.  The intent log survives (it
        is the durable store), and :meth:`restart` resolves whatever
        was in flight from it."""
        if self._crashed:
            return
        self._crashed = True
        self.crashes += 1
        self._epoch += 1
        self.simulator.metrics.counter("rebalance.manager_crashes").increment()
        op = self._op
        if op is not None and not op.finished:
            self._cancel_events(op)
        self._op = None
        # _busy stays latched until recovery resolves the logged intent.

    def restart(self) -> None:
        """Bring the coordinator back and resolve the intent log."""
        if not self._crashed:
            return
        self._crashed = False
        self.restarts += 1
        self.recover()

    def recover(self) -> Dict[str, int]:
        """Resolve every open operation in the intent log.

        Deterministic outcome per operation: a logged ``mig_commit``
        means the durable transition applied — re-assert its effects
        idempotently and close with ``mig_done`` (*resume*); no commit
        means nothing durable changed hands — clear taps, detach a
        half-added shard, clear the draining flag, and close with
        ``mig_abort`` (*abort*, source ownership retained).  Always
        releases ``busy``."""
        ops: Dict[str, Dict[str, Message]] = {}
        order: List[str] = []
        for record in self.intent_log.records():
            op_id = str(record["op"])
            if op_id not in ops:
                ops[op_id] = {}
                order.append(op_id)
            kind = str(record["t"])
            if kind == "mig_prepare":
                # A drain logs a second, range-bearing prepare when the
                # copy starts; recovery acts on the latest one.
                ops[op_id]["prepare"] = record
            elif kind in ("mig_commit", "mig_abort", "mig_done"):
                ops[op_id][kind[4:]] = record
            try:
                self._op_seq = max(self._op_seq, int(op_id.rsplit("-", 1)[1]) + 1)
            except (IndexError, ValueError):
                pass
        aborted = resumed = 0
        for op_id in order:
            entry = ops[op_id]
            if "prepare" not in entry or "done" in entry or "abort" in entry:
                continue
            if "commit" in entry:
                self._resume_from_log(entry["prepare"], entry["commit"])
                resumed += 1
            else:
                self._abort_from_log(entry["prepare"])
                aborted += 1
        self._busy = False
        self._op = None
        return {"aborted": aborted, "resumed": resumed}

    # ------------------------------------------------------------------
    # Intent-log plumbing
    # ------------------------------------------------------------------
    def _begin_op(self, kind: str, host: str) -> _Operation:
        op = _Operation(
            op_id=f"{kind}-{self._op_seq}",
            kind=kind,
            host=host,
            epoch=self._epoch,
            started=self.simulator.now,
        )
        self._op_seq += 1
        self._op = op
        return op

    @staticmethod
    def _encode_sources(sources: List[Tuple[str, List[str]]]) -> List[bytes]:
        return [
            encode_message({"h": host, "ns": list(names)})
            for host, names in sources
        ]

    @staticmethod
    def _decode_sources(encoded: List[bytes]) -> List[Tuple[str, List[str]]]:
        out: List[Tuple[str, List[str]]] = []
        for raw in encoded:
            msg = decode_message(raw)
            out.append((str(msg["h"]), [str(n) for n in msg["ns"]]))
        return out

    def _log_prepare(
        self,
        op: _Operation,
        sources: List[Tuple[str, List[str]]],
        phase: str,
    ) -> None:
        self.intent_log.append({
            "t": "mig_prepare",
            "op": op.op_id,
            "k": op.kind,
            "h": op.host,
            "ph": phase,
            "srcs": self._encode_sources(sources),
        })

    def _log_commit(
        self,
        op: _Operation,
        moved_names: List[str],
        moved_hosts: List[str],
        sources: List[Tuple[str, List[str]]],
    ) -> None:
        self.intent_log.append({
            "t": "mig_commit",
            "op": op.op_id,
            "k": op.kind,
            "h": op.host,
            "mvn": list(moved_names),
            "mvh": list(moved_hosts),
            "srcs": self._encode_sources(sources),
        })

    def _log_abort(self, op_id: str, reason: str) -> None:
        self.intent_log.append({"t": "mig_abort", "op": op_id, "r": reason})

    def _log_done(self, op_id: str) -> None:
        self.intent_log.append({"t": "mig_done", "op": op_id})

    # ------------------------------------------------------------------
    # Phase hooks and crash checks
    # ------------------------------------------------------------------
    def _phase(self, phase: str, op: _Operation) -> None:
        if not self.phase_hooks:
            return
        info = {
            "op": op.op_id,
            "kind": op.kind,
            "host": op.host,
            "sources": [shard.host for shard, _ in op.sources],
            "targets": sorted(
                host for host in op.participants
                if all(shard.host != host for shard, _ in op.sources)
            ),
        }
        for hook in list(self.phase_hooks):
            hook(phase, info)

    def _abandoned(self, op: _Operation) -> bool:
        """True when the operation's coordinator context is gone — the
        op finished, or the manager crashed since it began (recovery
        owns the outcome now)."""
        return op.finished or self._crashed or op.epoch != self._epoch

    def _crashed_participants(self, op: _Operation) -> List[str]:
        return sorted(
            host
            for host, shard in op.participants.items()
            if shard.endpoint.crashed or shard.crashes != op.epochs.get(host, shard.crashes)
        )

    def _cancel_events(self, op: _Operation) -> None:
        for event in (op.flip_event, op.poll_event, op.watchdog):
            if event is not None:
                event.cancel()
        op.flip_event = op.poll_event = op.watchdog = None

    def _arm_watchdog(self, op: _Operation, deadline: float) -> None:
        op.deadline = deadline
        if op.watchdog is not None:
            op.watchdog.cancel()
        op.watchdog = self.simulator.schedule_at(
            deadline, lambda: self._watchdog_fire(op),
            label="rebalance.watchdog",
        )

    def _watchdog_fire(self, op: _Operation) -> None:
        if self._abandoned(op):
            return
        if self.simulator.now < op.deadline:
            self._arm_watchdog(op, op.deadline)
            return
        self._abort_active(op, "flip deadline lapsed")

    # ------------------------------------------------------------------
    # Abort / resume
    # ------------------------------------------------------------------
    def _abort_active(self, op: _Operation, reason: str) -> None:
        """Abort an operation whose volatile context is still held:
        nothing durable changed hands yet (aborts only happen before
        the commit record), so cleanup is clearing taps and detaching
        the half-added shard / draining flag."""
        if op.finished:
            return
        op.finished = True
        self._cancel_events(op)
        router = self.router
        for shard, _ in op.sources:
            if not shard.endpoint.crashed:
                shard.clear_migration_taps()
                shard.note_migration("mig_abort", op.op_id)
        if op.kind == "scale_up" and op.target is not None:
            if not op.target.endpoint.crashed:
                op.target.note_migration("mig_abort", op.op_id)
            if any(s.host == op.host for s in router.shards):
                router.remove_shard(op.host)
        elif op.kind == "drain":
            index = next(
                (i for i, s in enumerate(router.shards) if s.host == op.host),
                None,
            )
            if index is not None:
                router.draining.discard(index)
        self._log_abort(op.op_id, reason)
        self.aborts += 1
        self.simulator.metrics.counter("rebalance.aborts").increment()
        self._busy = False
        self._op = None

    def _abort_from_log(self, prepare: Message) -> None:
        """Abort an operation known only from the intent log (the
        coordinator crashed mid-protocol).  No commit was logged, so
        sources still own every range; cleanup mirrors
        :meth:`_abort_active` but reconstructs participants by host."""
        op_id = str(prepare["op"])
        kind = str(prepare["k"])
        host = str(prepare["h"])
        router = self.router
        by_host = {s.host: s for s in router.shards}
        for src_host, _ in self._decode_sources(prepare["srcs"]):
            shard = by_host.get(src_host)
            if shard is not None and not shard.endpoint.crashed:
                shard.clear_migration_taps()
                shard.note_migration("mig_abort", op_id)
        if kind == "scale_up":
            target = by_host.get(host)
            if target is not None:
                if not target.endpoint.crashed:
                    target.note_migration("mig_abort", op_id)
                router.remove_shard(host)
                self._note_seq(host)
        else:
            index = next(
                (i for i, s in enumerate(router.shards) if s.host == host),
                None,
            )
            if index is not None:
                router.draining.discard(index)
        self._log_abort(op_id, "recovered: no commit record")
        self.aborts += 1
        self.simulator.metrics.counter("rebalance.aborts").increment()

    def _resume_from_log(self, prepare: Message, commit: Message) -> None:
        """Resume an operation whose commit record landed: the durable
        transition (installs, tails, drops, residual, ring rebuild)
        applied atomically before any later crash point, so resumption
        re-asserts the idempotent parts — drops, ring ownership,
        learned-route rewrites — and closes the op."""
        op_id = str(commit["op"])
        kind = str(commit["k"])
        host = str(commit["h"])
        router = self.router
        by_host = {s.host: s for s in router.shards}
        for src_host, names in self._decode_sources(commit["srcs"]):
            shard = by_host.get(src_host)
            if shard is not None and not shard.endpoint.crashed:
                shard.drop_slice(names)
        if kind == "scale_up":
            router.rebuild_ring()
        else:
            if host in by_host:
                router.remove_shard(host)
        host_index = {s.host: i for i, s in enumerate(router.shards)}
        moved = {
            str(name): host_index[str(dest)]
            for name, dest in zip(commit["mvn"], commit["mvh"])
            if str(dest) in host_index
        }
        router.complete_migration(moved, self.dual_read_window_s)
        self._log_done(op_id)
        self.resumes += 1
        self.simulator.metrics.counter("rebalance.resumes").increment()

    def _finish_op(
        self,
        op: _Operation,
        *,
        accounts: int,
        tail_records: int,
        tail_bytes: int,
    ) -> None:
        self._log_done(op.op_id)
        op.finished = True
        self._cancel_events(op)
        self.reports.append(MigrationReport(
            kind=op.kind, host=op.host, accounts=accounts,
            snapshot_bytes=op.snapshot_bytes, tail_records=tail_records,
            tail_bytes=tail_bytes, started_at=op.started,
            flipped_at=self.simulator.now,
        ))
        counter = "rebalance.scale_ups" if op.kind == "scale_up" else "rebalance.drains"
        self.simulator.metrics.counter(counter).increment()
        self._busy = False
        self._op = None

    # ------------------------------------------------------------------
    # Scale up: add a shard, migrate its ring ranges in
    # ------------------------------------------------------------------
    def scale_up(self) -> Optional[str]:
        """Add one shard and migrate the account ranges the grown ring
        assigns to it.  Returns the new shard's host, or ``None`` if a
        migration is already in flight, the coordinator is down, or a
        source shard is down (capturing a crashed shard would ship its
        wiped state).

        Sequence: ``mig_prepare`` intent; attach the empty shard —
        reachable by index, owns nothing; capture each source's slice
        and open a migration tap; after the modeled copy window the
        flip commits and applies the durable transition.  Legs that
        raced the flip are covered by the dual-read window."""
        if self._busy or self._crashed:
            return None
        router = self.router
        if any(s.endpoint.crashed for s in router.shards):
            return None
        new_host = self._next_host()
        self._note_seq(new_host)
        hosts = [s.host for s in router.shards] + [new_host]
        new_ring = HashRing(hosts, vnodes=router._vnodes)
        new_index = len(router.shards)
        plan: List[Tuple[ServiceProvider, List[str]]] = []
        for source in router.shards:
            names = sorted(
                name for name in source.accounts
                if new_ring.index_for(name) == new_index
            )
            if names:
                plan.append((source, names))
        self._busy = True
        op = self._begin_op("scale_up", new_host)
        op.sources = plan
        self._log_prepare(
            op, [(s.host, names) for s, names in plan], phase="copy"
        )
        for source, _ in plan:
            source.note_migration("mig_prepare", op.op_id)
            op.participants[source.host] = source
            op.epochs[source.host] = source.crashes
        shard = self.shard_factory(new_host)
        router.add_shard(shard)
        op.target = shard
        shard.note_migration("mig_prepare", op.op_id)
        op.participants[new_host] = shard
        op.epochs[new_host] = shard.crashes
        self._phase("capture", op)
        if self._abandoned(op):
            return new_host
        if self._crashed_participants(op):
            self._abort_active(op, "participant crashed during capture")
            return None
        snapshot_bytes = 0
        moves: List[tuple] = []  # (source, names, blob, tap)
        for source, names in plan:
            blob = source.capture_slice(names)
            snapshot_bytes += len(encode_message(blob))
            tap = source.start_migration_tap()
            op.taps.append((source, tap))
            moves.append((source, names, blob, tap))
        op.snapshot_bytes = snapshot_bytes
        copy_s = (
            self.transfer_latency_s
            + snapshot_bytes / self.bandwidth_bytes_per_s
        )
        self._phase("copy", op)
        if self._abandoned(op):
            return new_host
        if self._crashed_participants(op):
            self._abort_active(op, "participant crashed opening the copy window")
            return None
        op.flip_event = self.simulator.schedule(
            copy_s,
            lambda: self._flip_scale_up(op, moves, new_ring, new_index),
            label="rebalance.flip_up",
        )
        self._arm_watchdog(op, self.simulator.now + copy_s + self.flip_grace_s)
        return new_host

    def _flip_scale_up(
        self,
        op: _Operation,
        moves: List[tuple],
        new_ring: HashRing,
        new_index: int,
    ) -> None:
        if self._abandoned(op):
            return
        self._phase("tail_replay", op)
        if self._abandoned(op):
            return
        if self._crashed_participants(op):
            self._abort_active(op, "participant crashed in the copy window")
            return
        self._phase("ring_flip", op)
        if self._abandoned(op):
            return
        if self._crashed_participants(op):
            self._abort_active(op, "participant crashed before the flip")
            return
        router = self.router
        shard = op.target
        staged: List[tuple] = []
        tail_bytes = 0
        for source, names, blob, tap in moves:
            records = source.stop_migration_tap(tap)
            tail_bytes += sum(len(encode_message(r)) for r in records)
            # Accounts *registered during the copy window* whose range
            # belongs to the new shard ride along in the tail (their
            # reg record recreates them on replay) — frozen name lists
            # would strand them on a range they no longer own.
            window_names = set(names)
            for record in records:
                if record.get("t") != "reg":
                    continue
                account = str(decode_message(record["req"])["account"])
                if new_ring.index_for(account) == new_index:
                    window_names.add(account)
            staged.append((source, sorted(window_names), blob, records))
        op.taps.clear()
        moved: Dict[str, int] = {}
        all_moved = [name for _, names, _, _ in staged for name in names]
        # ---- durable transition: write-ahead commit, then apply.  No
        # crash point (hook) sits inside this block; a later crash
        # resumes idempotently from the commit record. ----
        self._log_commit(
            op,
            all_moved,
            [op.host] * len(all_moved),
            [(source.host, names) for source, names, _, _ in staged],
        )
        tail_records = 0
        for source, all_names, blob, records in staged:
            source.note_migration("mig_commit", op.op_id)
            shard.install_slice(blob)
            tail_records += shard.apply_migration_records(records, all_names)
            refresh = source.capture_business_slice(all_names)
            tail_bytes += len(encode_message(refresh))
            shard.install_business_refresh(refresh)
            source.drop_slice(all_names)
            for name in all_names:
                moved[name] = new_index
        shard.note_migration("mig_commit", op.op_id)
        router.rebuild_ring()
        router.complete_migration(moved, self.dual_read_window_s)
        # ---- end durable transition ----
        self._phase("dual_read", op)
        if self._abandoned(op):
            return  # recovery resumes straight to mig_done
        self._finish_op(
            op,
            accounts=len(moved),
            tail_records=tail_records,
            tail_bytes=tail_bytes,
        )

    # ------------------------------------------------------------------
    # Drain: migrate a shard's ranges out, then remove it
    # ------------------------------------------------------------------
    def drain_shard(self, host: str) -> bool:
        """Begin draining ``host`` for removal.  The shard immediately
        stops admitting new sessions; once its outstanding legs settle
        (or the grace period lapses), its ranges migrate to the ring's
        surviving owners and the shard is detached."""
        if self._busy or self._crashed:
            return False
        router = self.router
        if len(router.shards) <= 1:
            raise ValueError("cannot drain the last shard")
        index = next(
            (i for i, s in enumerate(router.shards) if s.host == host), None
        )
        if index is None:
            raise ValueError(f"no shard with host {host!r}")
        source = router.shards[index]
        if source.endpoint.crashed:
            return False
        self._busy = True
        self._note_seq(host)
        op = self._begin_op("drain", host)
        op.sources = [(source, [])]
        op.participants[host] = source
        op.epochs[host] = source.crashes
        self._log_prepare(op, [(host, [])], phase="poll")
        source.note_migration("mig_prepare", op.op_id)
        router.draining.add(index)
        deadline = self.simulator.now + self.drain_grace_s

        def poll() -> None:
            if self._abandoned(op):
                return
            self._phase("drain_poll", op)
            if self._abandoned(op):
                return
            if self._crashed_participants(op):
                self._abort_active(op, "draining shard crashed")
                return
            live = next(
                i for i, s in enumerate(router.shards) if s.host == host
            )
            if (
                router.outstanding[live] > 0
                and self.simulator.now < deadline
            ):
                op.poll_event = self.simulator.schedule(
                    self.drain_poll_s, poll, label="rebalance.drain_poll"
                )
                return
            op.poll_event = None
            self._begin_drain_copy(op, source)

        op.poll_event = self.simulator.schedule(
            self.drain_poll_s, poll, label="rebalance.drain_poll"
        )
        self._arm_watchdog(
            op,
            deadline + self.drain_poll_s + self.flip_grace_s,
        )
        return True

    def _begin_drain_copy(self, op: _Operation, source: ServiceProvider) -> None:
        router = self.router
        host = op.host
        survivor_ring = HashRing(
            [s.host for s in router.shards if s.host != host],
            vnodes=router._vnodes,
        )
        groups: Dict[str, List[str]] = {}
        for name in sorted(source.accounts):
            groups.setdefault(survivor_ring.host_for(name), []).append(name)
        all_names = sorted(source.accounts)
        op.sources = [(source, all_names)]
        by_host = {s.host: s for s in router.shards}
        for dest_host in groups:
            dest = by_host[dest_host]
            op.participants[dest_host] = dest
            op.epochs[dest_host] = dest.crashes
        # Second prepare supersedes the poll-phase one: recovery now
        # knows the exact ranges in flight.
        self._log_prepare(op, [(host, all_names)], phase="copy")
        self._phase("capture", op)
        if self._abandoned(op):
            return
        if self._crashed_participants(op):
            self._abort_active(op, "participant crashed during drain capture")
            return
        blobs = {
            dest: source.capture_slice(names)
            for dest, names in groups.items()
        }
        tap = source.start_migration_tap()
        op.taps.append((source, tap))
        snapshot_bytes = sum(len(encode_message(b)) for b in blobs.values())
        op.snapshot_bytes = snapshot_bytes
        copy_s = (
            self.transfer_latency_s
            + snapshot_bytes / self.bandwidth_bytes_per_s
        )
        self._phase("copy", op)
        if self._abandoned(op):
            return
        if self._crashed_participants(op):
            self._abort_active(op, "participant crashed opening the drain copy")
            return
        op.flip_event = self.simulator.schedule(
            copy_s,
            lambda: self._flip_drain(op, source, groups, blobs, tap, survivor_ring),
            label="rebalance.flip_drain",
        )
        self._arm_watchdog(op, self.simulator.now + copy_s + self.flip_grace_s)

    def _flip_drain(
        self,
        op: _Operation,
        source: ServiceProvider,
        groups: Dict[str, List[str]],
        blobs: Dict[str, Message],
        tap: list,
        survivor_ring: HashRing,
    ) -> None:
        if self._abandoned(op):
            return
        self._phase("tail_replay", op)
        if self._abandoned(op):
            return
        if self._crashed_participants(op):
            self._abort_active(op, "participant crashed in the drain window")
            return
        self._phase("ring_flip", op)
        if self._abandoned(op):
            return
        if self._crashed_participants(op):
            self._abort_active(op, "participant crashed before the drain flip")
            return
        router = self.router
        host = op.host
        records = source.stop_migration_tap(tap)
        op.taps.clear()
        tail_bytes = sum(len(encode_message(r)) for r in records)
        moved_names: List[str] = []
        moved_hosts: List[str] = []
        for dest_host, names in groups.items():
            moved_names.extend(names)
            moved_hosts.extend([dest_host] * len(names))
        # ---- durable transition (see _flip_scale_up) ----
        self._log_commit(
            op, moved_names, moved_hosts, [(host, sorted(moved_names))]
        )
        source.note_migration("mig_commit", op.op_id)
        tail_records = 0
        dest_hosts: Dict[str, str] = {}
        by_host = {s.host: s for s in router.shards}
        for dest_host, names in groups.items():
            dest = by_host[dest_host]
            dest.note_migration("mig_commit", op.op_id)
            dest.install_slice(blobs[dest_host])
            tail_records += dest.apply_migration_records(records, names)
            refresh = source.capture_business_slice(names)
            tail_bytes += len(encode_message(refresh))
            dest.install_business_refresh(refresh)
            for name in names:
                dest_hosts[name] = dest_host
        source.drop_slice(sorted(dest_hosts))
        # The departing shard's business residual — external
        # counterparty balances and the executed-transfer log — ships
        # to a deterministic survivor, or ledger conservation and
        # duplicate-execution accounting would break with the removal.
        residual = source.capture_business_residual()
        if any(residual.values()):
            residual_host = survivor_ring.host_for(host)
            by_host[residual_host].install_residual(residual)
            tail_bytes += len(encode_message(residual))
        router.remove_shard(host)  # rebuilds ring, shifts indices
        host_index = {s.host: i for i, s in enumerate(router.shards)}
        moved = {
            name: host_index[dest] for name, dest in dest_hosts.items()
        }
        router.complete_migration(moved, self.dual_read_window_s)
        # ---- end durable transition ----
        self._phase("dual_read", op)
        if self._abandoned(op):
            return
        self._finish_op(
            op,
            accounts=len(moved),
            tail_records=tail_records,
            tail_bytes=tail_bytes,
        )

    # ------------------------------------------------------------------
    # Failover reconciliation
    # ------------------------------------------------------------------
    def reconcile_failovers(self) -> int:
        """Migrate register-failover overrides back to ring ownership.

        A register that failed over during an outage left the account
        on a neighbor shard plus a router-side override entry; without
        reconciliation those overrides accumulate forever (and a router
        restart would lose them, orphaning the accounts).  Once the
        home shard's breaker is closed again, each override's account
        migrates home through the same slice machinery and the override
        is dropped.  Runs as one atomic event (no copy window), so it
        needs no intent protocol.  Returns the number of accounts
        moved."""
        if self._busy or self._crashed:
            return 0
        router = self.router
        moved: Dict[str, int] = {}
        for account in sorted(router._account_shard):
            override = router._account_shard[account]
            home = router.ring.index_for(account)
            if home == override:
                del router._account_shard[account]
                continue
            source = router.shards[override]
            if account not in source.accounts:
                # The account never materialized (failed registration);
                # the override maps nothing and just goes.
                del router._account_shard[account]
                continue
            if router.breakers[home].state != CircuitBreaker.CLOSED:
                continue
            if home in router.draining:
                continue
            target = router.shards[home]
            if source.endpoint.crashed or target.endpoint.crashed:
                continue
            blob = source.capture_slice([account])
            target.install_slice(blob)
            source.drop_slice([account])
            moved[account] = home
        if moved:
            router.complete_migration(moved, self.dual_read_window_s)
            self.failovers_reconciled += len(moved)
            self.reports.append(MigrationReport(
                kind="reconcile", host=router.host, accounts=len(moved),
                snapshot_bytes=0, tail_records=0, tail_bytes=0,
                started_at=self.simulator.now,
                flipped_at=self.simulator.now,
            ))
        return len(moved)


class AutoScaler:
    """Periodic control loop over the router's own load signals.

    Pressure = load shedding this tick, or a shard's outstanding
    backlog near the shedding threshold.  Calm = no shedding, shallow
    backlogs, every breaker closed.  ``up_ticks`` consecutive pressure
    ticks trigger a scale-up (to ``max_shards``); ``down_ticks``
    consecutive calm ticks drain the newest shard (to ``min_shards``).
    A cooldown after every action lets the previous migration's effect
    show up in the signals before the controller moves again —
    hysteresis against flapping on the F6 flash-crowd edge.
    """

    def __init__(
        self,
        simulator: Simulator,
        router: ProviderRouter,
        manager: ShardPoolManager,
        *,
        min_shards: int = 1,
        max_shards: int = 4,
        tick_s: float = 1.0,
        up_shed_per_tick: int = 1,
        up_outstanding: int = 48,
        up_ticks: int = 2,
        down_outstanding: int = 2,
        down_ticks: int = 20,
        cooldown_s: float = 30.0,
    ) -> None:
        if min_shards < 1 or max_shards < min_shards:
            raise ValueError(
                f"bad shard bounds: [{min_shards}, {max_shards}]"
            )
        if tick_s <= 0:
            raise ValueError(f"tick_s must be > 0: {tick_s}")
        self.simulator = simulator
        self.router = router
        self.manager = manager
        self.min_shards = min_shards
        self.max_shards = max_shards
        self.tick_s = tick_s
        self.up_shed_per_tick = up_shed_per_tick
        self.up_outstanding = up_outstanding
        self.up_ticks = up_ticks
        self.down_outstanding = down_outstanding
        self.down_ticks = down_ticks
        self.cooldown_s = cooldown_s
        self.events: List[dict] = []
        self.ticks = 0
        self._last_shed = router.shed
        self._last_action_at = float("-inf")
        self._up_streak = 0
        self._down_streak = 0

    def start(self) -> None:
        self.simulator.schedule(self.tick_s, self._tick, label="autoscaler.tick")

    def _newest_host(self) -> Optional[str]:
        """Drain candidate: the highest-numbered non-draining shard
        (newest first keeps the pool's stable core untouched)."""
        prefix = f"{self.router.host}!shard"
        best: Optional[tuple] = None
        for index, shard in enumerate(self.router.shards):
            if index in self.router.draining:
                continue
            if not shard.host.startswith(prefix):
                continue
            try:
                seq = int(shard.host[len(prefix):])
            except ValueError:
                continue
            if best is None or seq > best[0]:
                best = (seq, shard.host)
        return best[1] if best else None

    def _tick(self) -> None:
        router = self.router
        self.ticks += 1
        self.manager.reconcile_failovers()
        shed_delta = router.shed - self._last_shed
        self._last_shed = router.shed
        backlog = max(router.outstanding) if router.outstanding else 0
        open_breakers = sum(
            1 for b in router.breakers if b.state != CircuitBreaker.CLOSED
        )
        pressure = (
            shed_delta >= self.up_shed_per_tick
            or backlog >= self.up_outstanding
        )
        # Never scale down mid-outage: a trough with an open breaker is
        # missing capacity, not excess.
        calm = (
            shed_delta == 0
            and backlog <= self.down_outstanding
            and open_breakers == 0
        )
        if pressure:
            self._up_streak += 1
            self._down_streak = 0
        elif calm:
            self._down_streak += 1
            self._up_streak = 0
        else:
            self._up_streak = 0
            self._down_streak = 0
        now = self.simulator.now
        ready = (
            not self.manager.busy
            and not self.manager.crashed
            and now - self._last_action_at >= self.cooldown_s
        )
        if (
            ready
            and self._up_streak >= self.up_ticks
            and len(router.shards) < self.max_shards
        ):
            host = self.manager.scale_up()
            if host is not None:
                self.events.append({
                    "at": now, "action": "scale_up", "host": host,
                    "shards": len(router.shards),
                })
                self._last_action_at = now
                self._up_streak = 0
        elif (
            ready
            and self._down_streak >= self.down_ticks
            and len(router.shards) > self.min_shards
        ):
            host = self._newest_host()
            if host is not None and self.manager.drain_shard(host):
                self.events.append({
                    "at": now, "action": "drain", "host": host,
                    "shards": len(router.shards),
                })
                self._last_action_at = now
                self._down_streak = 0
        self.simulator.schedule(self.tick_s, self._tick, label="autoscaler.tick")
