"""Sharded provider pool: a consistent-hash router over N replicas.

The paper's deployment story (a captcha replacement at web scale) is
many-clients-one-provider; one `ServiceProvider` with a small worker
pool saturates in the low hundreds of confirmations per second because
pure-Python RSA dominates its service time.  :class:`ProviderRouter`
scales the provider *out* instead of up:

* N independent :class:`~repro.server.provider.ServiceProvider` shard
  replicas, each a complete provider — its own worker pool, its own
  :class:`~repro.server.noncedb.NonceDatabase`, its own DRBG stream
  (derived from the shard's hostname, so streams never collide).
* A thin router front end speaking the *same* RPC methods on the public
  host.  ``register``/``login`` route by consistent hash of the account
  name; every session-cookie method routes by the cookie→shard map the
  router learns from ``set_session`` in login responses.
* Forwarding is transport-faithful: on the synchronous path the router
  calls the shard inline (two real network hops); on the queued path it
  returns a :class:`~repro.net.rpc.DeferredResponse`, releasing its
  worker while the shard leg is in flight — the router never becomes
  the bottleneck it exists to remove.

Sharding preserves the replay defense *by construction*: a challenge
nonce lives only in the owning shard's nonce database, so evidence can
never be replayed cross-shard — any other shard reports the nonce
UNKNOWN, which is a deny.  There is no cross-shard state to keep
coherent because accounts are partitioned, not replicated.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Callable, Dict, List, Optional, Sequence, Set

from repro.net.messages import Message
from repro.net.network import LinkSpec, Network
from repro.net.retry import (
    DEADLINE_ERROR_KEY,
    RetryPolicy,
    overload_error,
)
from repro.net.rpc import DeferredResponse, RpcEndpoint, RpcError
from repro.os.disk import UntrustedDisk
from repro.server.policy import VerifierPolicy
from repro.server.provider import SERVICE_TIMES, ServiceProvider
from repro.sim.kernel import Simulator

#: Modeled routing cost per forwarded request (hash + table lookup —
#: orders of magnitude below any shard's verification service time).
ROUTER_SERVICE_TIME = 0.0001

#: Methods that carry the account name and may legally arrive without a
#: session cookie — routed by consistent hash of the account.
_ACCOUNT_ROUTED = ("register", "login")

#: Denial reason for the degraded mode: the owning shard's breaker is
#: open.  An explicit, immediate refusal — the one thing the router must
#: never do during an outage is hang the caller.
DENIAL_SHARD_DOWN = "shard down"

#: Denial reason while a shard is being drained for removal: it stops
#: admitting *new* sessions (login) but keeps serving in-flight ones.
#: Retryable — the account's range flips to a surviving shard within
#: the copy window, so the client's next attempt lands on the new owner.
DENIAL_SHARD_DRAINING = "shard draining"

#: Response key marking a DENIAL_SHARD_DOWN refusal as retryable — the
#: shard's state is intact (or restorable); only its process is gone.
SHARD_DOWN_KEY = "shard_down"

#: Default retry policy for the router→shard leg: strictly tighter than
#: any sane caller deadline, so a black-holed leg dead-letters back to
#: the router (feeding the breaker) long before the *caller* gives up.
SHARD_LEG_POLICY = RetryPolicy(
    initial_timeout=0.2,
    backoff=2.0,
    max_timeout=1.0,
    max_attempts=4,
    deadline=4.0,
)


class CircuitBreaker:
    """Per-shard failure gate: closed -> open -> half-open -> closed.

    Transport failures (dead-lettered legs, connection refusals) count
    against ``failure_threshold``; at the threshold the breaker trips
    OPEN and the router fails fast with :data:`DENIAL_SHARD_DOWN`
    instead of queueing more work at a dead shard.  After
    ``reset_timeout`` seconds one probe request is allowed through
    (HALF_OPEN); its outcome either closes the breaker or re-opens it
    for another timeout.  Application errors are *successes* here — the
    shard answered.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(
        self, failure_threshold: int = 3, reset_timeout: float = 1.0
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(f"failure_threshold must be >= 1: {failure_threshold}")
        if reset_timeout <= 0:
            raise ValueError(f"reset_timeout must be > 0: {reset_timeout}")
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self.state = self.CLOSED
        self.failures = 0
        self.opens = 0
        self._open_until = 0.0
        self._probe_inflight = False

    def allow(self, now: float) -> bool:
        """May one request pass right now?  (May consume the probe slot.)"""
        if self.state == self.CLOSED:
            return True
        if self.state == self.OPEN:
            if now < self._open_until:
                return False
            self.state = self.HALF_OPEN
            self._probe_inflight = True
            return True
        # HALF_OPEN: exactly one probe at a time.
        if self._probe_inflight:
            return False
        self._probe_inflight = True
        return True

    def record_success(self) -> None:
        self.state = self.CLOSED
        self.failures = 0
        self._probe_inflight = False

    def record_failure(self, now: float) -> None:
        self.failures += 1
        if self.state == self.HALF_OPEN or self.failures >= self.failure_threshold:
            self.state = self.OPEN
            self._open_until = now + self.reset_timeout
            self._probe_inflight = False
            self.opens += 1


class HashRing:
    """Consistent hashing with virtual nodes.

    Each shard contributes ``vnodes`` points on a 64-bit ring (SHA-256
    of ``"host#replica"`` — engineering machinery, not protocol
    crypto); a key routes to the first point clockwise from its own
    hash.  Virtual nodes smooth the per-shard load imbalance to a few
    percent, and the mapping is a pure function of the host list — every
    router instance (or a restarted one) computes the same assignment.
    """

    def __init__(self, hosts: Sequence[str], vnodes: int = 128) -> None:
        if not hosts:
            raise ValueError("hash ring needs at least one host")
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1: {vnodes}")
        self.hosts = list(hosts)
        self.vnodes = vnodes
        points: List[tuple] = []
        for index, host in enumerate(self.hosts):
            for replica in range(vnodes):
                digest = hashlib.sha256(
                    f"{host}#{replica}".encode("utf-8")
                ).digest()
                points.append((int.from_bytes(digest[:8], "big"), index))
        points.sort()
        self._points = [p for p, _ in points]
        self._owners = [owner for _, owner in points]

    def index_for(self, key: str) -> int:
        """Shard index owning ``key`` (stable across router instances)."""
        digest = hashlib.sha256(key.encode("utf-8")).digest()
        point = int.from_bytes(digest[:8], "big")
        slot = bisect.bisect_right(self._points, point)
        if slot == len(self._points):
            slot = 0
        return self._owners[slot]

    def host_for(self, key: str) -> str:
        return self.hosts[self.index_for(key)]


class ProviderRouter:
    """Front end exposing a shard pool as one provider endpoint.

    Duck-types the provider surface the fleet and experiments consume
    (``endpoint``, ``denials``, ``expire_stale_transactions`` ...) by
    aggregating over shards, so a sharded pool drops in wherever a
    single provider was wired.
    """

    def __init__(
        self,
        simulator: Simulator,
        network: Network,
        host: str,
        shards: Sequence[ServiceProvider],
        vnodes: int = 128,
        workers: int = 8,
        breaker_threshold: int = 3,
        breaker_reset_s: float = 1.0,
        max_shard_queue_depth: int = 64,
        leg_policy: Optional[RetryPolicy] = SHARD_LEG_POLICY,
    ) -> None:
        if not shards:
            raise ValueError("router needs at least one shard")
        if max_shard_queue_depth < 1:
            raise ValueError(
                f"max_shard_queue_depth must be >= 1: {max_shard_queue_depth}"
            )
        self.simulator = simulator
        self.host = host
        self.shards = list(shards)
        self._vnodes = vnodes
        self._breaker_threshold = breaker_threshold
        self._breaker_reset_s = breaker_reset_s
        self.ring = HashRing([shard.host for shard in self.shards], vnodes=vnodes)
        if not network.is_attached(host):
            network.attach(host, LinkSpec.lan())
        self.endpoint = RpcEndpoint(simulator, network, host, workers=workers)
        for method in SERVICE_TIMES:
            self.endpoint.register(
                method, self._make_handler(method), ROUTER_SERVICE_TIME
            )
        #: session cookie -> shard index, learned from login responses.
        self._cookie_shard: Dict[bytes, int] = {}
        #: account -> its live cookie, for eviction on re-login (mirrors
        #: the shard-side one-session-per-account invalidation).
        self._account_cookie: Dict[str, bytes] = {}
        # -- shard health ---------------------------------------------------
        self.breakers = [
            CircuitBreaker(breaker_threshold, breaker_reset_s)
            for _ in self.shards
        ]
        self.max_shard_queue_depth = max_shard_queue_depth
        self.leg_policy = leg_policy
        #: Outstanding queued legs per shard — the router-local backlog
        #: signal load shedding keys on.  The shard's own queue_depth
        #: lags by a network latency (a burst is fully forwarded before
        #: the first packet lands), so the router counts what it has in
        #: flight instead.
        self.outstanding = [0] * len(self.shards)
        #: account -> shard index override, recorded when a *register*
        #: failed over from an open home shard; account-hash routing
        #: consults this first so the account stays findable.
        self._account_shard: Dict[str, int] = {}
        # -- live rebalancing (repro.server.rebalance) ----------------------
        #: Shard indices draining for removal: no new sessions admitted,
        #: in-flight legs settle, ranges migrate out before the flip.
        self.draining: Set[int] = set()
        #: End of the dual-read window (virtual time).  After a ring
        #: flip, a leg already in flight at the *old* owner may come
        #: back "not logged in"/"unknown transaction" for a migrated
        #: account; until this instant the router re-aims such a
        #: response once at the current owner instead of denying.
        self._dual_read_until = 0.0
        # -- routing accounting --------------------------------------------
        self.forwards_by_shard = [0] * len(self.shards)
        self.unroutable = 0
        self.cookie_routes = 0
        self.account_routes = 0
        self.cookies_invalidated = 0
        self.shard_down_denials = 0
        self.shed = 0
        self.register_failovers = 0
        self.cookie_prunes = 0
        self.draining_denials = 0
        self.cookie_rewrites = 0
        self.dual_read_redirects = 0
        self.router_crashes = 0
        self.router_restarts = 0

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def shard_index_for_account(self, account: str) -> int:
        # Failed-over registrations live on their override shard, not
        # the ring's nominal home — accessors must agree with _route.
        override = self._account_shard.get(account)
        return override if override is not None else self.ring.index_for(account)

    def shard_for_account(self, account: str) -> ServiceProvider:
        return self.shards[self.shard_index_for_account(account)]

    def _route(self, method: str, request: Message):
        """(shard index, None) or (None, error response)."""
        if method in _ACCOUNT_ROUTED:
            account = str(request.get("account", ""))
            if not account:
                return None, {"error": "missing account"}
            self.account_routes += 1
            override = self._account_shard.get(account)
            if override is not None:
                return override, None
            return self.ring.index_for(account), None
        cookie = request.get("session")
        if isinstance(cookie, bytes):
            index = self._cookie_shard.get(cookie)
            if index is not None:
                self.cookie_routes += 1
                return index, None
        return None, {"error": "not logged in"}

    def _observe(self, request: Message, response: Message, index: int) -> None:
        """Learn cookie→shard mappings from forwarded login responses."""
        self._inspect_response(request, response)
        cookie = response.get("set_session")
        if not isinstance(cookie, bytes):
            return
        account = str(request.get("account", ""))
        previous = self._account_cookie.get(account)
        if previous is not None and previous != cookie:
            self._cookie_shard.pop(previous, None)
            self.cookies_invalidated += 1
        self._account_cookie[account] = cookie
        self._cookie_shard[cookie] = index

    def _inspect_response(self, request: Message, response: Message) -> None:
        """Prune the cookie→shard map when the owning shard disowns a
        session (piggybacked on the denial path, so pruning costs no
        extra traffic).  Happens after a journal-less shard restarts:
        its session table is gone, the router's mapping is stale, and
        keeping it would bounce every retry off the same dead cookie
        instead of letting the client's re-login relearn the route."""
        error = response.get("error")
        if not isinstance(error, str) or "not logged in" not in error:
            return
        cookie = request.get("session")
        if not isinstance(cookie, bytes) or cookie not in self._cookie_shard:
            return
        self._cookie_shard.pop(cookie, None)
        for account, known in list(self._account_cookie.items()):
            if known == cookie:
                del self._account_cookie[account]
        self.cookie_prunes += 1
        self.simulator.metrics.counter("router.cookie_prunes").increment()

    # ------------------------------------------------------------------
    # Forwarding
    # ------------------------------------------------------------------
    def _make_handler(self, method: str) -> Callable[[Message], Message]:
        def handle(request: Message) -> Message:
            return self._forward(method, request)

        return handle

    def _shard_down_response(self) -> Message:
        self.shard_down_denials += 1
        self.simulator.metrics.counter("router.shard_down_denials").increment()
        return {"error": f"denied: {DENIAL_SHARD_DOWN}", SHARD_DOWN_KEY: 1}

    def _draining_response(self) -> Message:
        self.draining_denials += 1
        self.simulator.metrics.counter("router.draining_denials").increment()
        return {"error": f"denied: {DENIAL_SHARD_DRAINING}", SHARD_DOWN_KEY: 1}

    def _retarget_index(
        self, request: Message, response: Message, index: int
    ) -> Optional[int]:
        """Dual-read check: a leg that raced a ring flip may land on
        the *old* owner of a migrated account and come back disowned
        ("not logged in" / "unknown transaction" — or, for an
        account-routed login whose registration record already moved,
        "bad credentials").  Inside the window, if the current route
        (rewritten cookie map, or ring ownership for account-routed
        legs) already points somewhere else, re-aim the leg once at
        the current owner instead of surfacing the denial — the
        migrated state (account, cookie, nonce, transaction) is all
        there, and the true owner's verdict is authoritative either
        way."""
        if self.simulator.now >= self._dual_read_until:
            return None
        error = response.get("error")
        if not isinstance(error, str):
            return None
        if not any(
            marker in error
            for marker in (
                "not logged in", "unknown transaction", "unknown batch",
                "bad credentials",
            )
        ):
            return None
        cookie = request.get("session")
        if isinstance(cookie, bytes):
            target = self._cookie_shard.get(cookie)
            if target is not None and target != index:
                return target
            return None
        account = str(request.get("account", ""))
        if not account:
            return None
        target = self._account_shard.get(account)
        if target is None:
            target = self.ring.index_for(account)
        if target == index:
            return None
        return target

    def _failover_register(self, index: int, account: str) -> Optional[int]:
        """A *register* aimed at an open shard may be placed on the next
        live shard instead — a brand-new account has no home yet, so
        re-homing it costs nothing.  The override map keeps account-hash
        routing consistent afterwards.  Existing accounts never fail
        over: their state is partitioned, not replicated, so the honest
        answer while their shard is down is the explicit denial."""
        now = self.simulator.now
        for step in range(1, len(self.shards)):
            candidate = (index + step) % len(self.shards)
            if candidate in self.draining:
                continue
            if self.breakers[candidate].allow(now):
                self._account_shard[account] = candidate
                self.register_failovers += 1
                return candidate
        return None

    def _record_outcome(self, index: int, failed: bool) -> None:
        """Feed a forwarded leg's transport outcome to the breaker.
        Application errors count as successes — the shard answered."""
        breaker = self.breakers[index]
        if not failed:
            breaker.record_success()
            return
        opens_before = breaker.opens
        breaker.record_failure(self.simulator.now)
        if breaker.opens > opens_before:
            self.simulator.metrics.counter("router.breaker_opens").increment()

    def _forward(self, method: str, request: Message):
        index, error = self._route(method, request)
        if error is not None:
            self.unroutable += 1
            return error
        # A draining shard admits no *new* sessions: registrations are
        # placed elsewhere immediately; logins get an explicit retryable
        # refusal (the account's range flips to a survivor within the
        # copy window).  Cookie-routed methods keep flowing — in-flight
        # sessions are exactly what the drain waits for.
        if index in self.draining and method in _ACCOUNT_ROUTED:
            if method == "register":
                failover = self._failover_register(
                    index, str(request.get("account", ""))
                )
                if failover is None:
                    return self._draining_response()
                index = failover
            else:
                return self._draining_response()
        shard = self.shards[index]
        # Load shedding first: a full shard backlog is explicit back-
        # pressure, refused before it can consume a half-open breaker's
        # probe slot.  Sync dispatch has no queue to bound.
        if (
            not self.endpoint.sync_dispatch
            and self.outstanding[index] >= self.max_shard_queue_depth
        ):
            self.shed += 1
            self.simulator.metrics.counter("router.shed").increment()
            return overload_error(shard.host, self.outstanding[index])
        if not self.breakers[index].allow(self.simulator.now):
            if method == "register":
                failover = self._failover_register(
                    index, str(request.get("account", ""))
                )
                if failover is None:
                    return self._shard_down_response()
                index = failover
                shard = self.shards[index]
            else:
                return self._shard_down_response()
        self.forwards_by_shard[index] += 1
        tracer = self.simulator.tracer
        if self.endpoint.sync_dispatch:
            # Synchronous path: the shard leg runs inline (two more
            # network hops + the shard's service time on the shared
            # clock).  Error responses come back as RpcError — unwrap
            # so the router's own endpoint re-raises them to the caller
            # with every structured field (e.g. the rechallenge hint)
            # intact.
            failed = False
            with tracer.span(
                "router.forward", method=method, shard=shard.host
            ):
                try:
                    response = shard.endpoint.call_sync(
                        self.host, method, request
                    )
                except RpcError as exc:
                    failed = exc.transport  # connection refused / dead host
                    response = (
                        dict(exc.response) if exc.response
                        else {"error": str(exc)}
                    )
            self._record_outcome(index, failed)
            target = self._retarget_index(request, response, index)
            if target is not None:
                self.dual_read_redirects += 1
                self.simulator.metrics.counter(
                    "router.dual_read_redirects"
                ).increment()
                self.forwards_by_shard[target] += 1
                retry_shard = self.shards[target]
                failed = False
                with tracer.span(
                    "router.forward", method=method, shard=retry_shard.host
                ):
                    try:
                        response = retry_shard.endpoint.call_sync(
                            self.host, method, request
                        )
                    except RpcError as exc:
                        failed = exc.transport
                        response = (
                            dict(exc.response) if exc.response
                            else {"error": str(exc)}
                        )
                self._record_outcome(target, failed)
                index = target
            self._observe(request, response, index)
            return response
        # Queued path: forward via the shard's own queue and release
        # this router worker immediately.  The shard leg carries its own
        # retry policy; a dead-lettered leg resolves the deferred with
        # the structured deadline error, so the client never hangs.
        deferred = DeferredResponse()
        self.outstanding[index] += 1
        self._submit_leg(index, method, request, deferred, redirected=False)
        return deferred

    def _submit_leg(
        self,
        index: int,
        method: str,
        request: Message,
        deferred: DeferredResponse,
        redirected: bool,
    ) -> None:
        """One queued router→shard leg.  The relay closure holds the
        shard *object*, not its index: a drain can remove a shard
        (shifting every index) while this leg is in flight, so the
        live index is resolved again when the response lands."""
        shard = self.shards[index]
        tracer = self.simulator.tracer
        span = tracer.begin("router.forward", method=method, shard=shard.host)

        def relay(response: Message) -> None:
            tracer.finish(span)
            try:
                live = self.shards.index(shard)
            except ValueError:
                live = None  # shard removed while the leg was in flight
            if live is not None:
                self.outstanding[live] -= 1
                self._record_outcome(live, DEADLINE_ERROR_KEY in response)
            if not redirected:
                # A leg whose shard was removed mid-flight (live is
                # None) is the dual-read case par excellence: a drain
                # whose grace lapsed flipped ownership — and detached
                # the shard — while the leg sat in its queue.  -1 can
                # never equal a live index, so the disowned response is
                # re-aimed at whichever shard owns the range now.
                target = self._retarget_index(
                    request, response, -1 if live is None else live
                )
                if target is not None:
                    self.dual_read_redirects += 1
                    self.simulator.metrics.counter(
                        "router.dual_read_redirects"
                    ).increment()
                    self.forwards_by_shard[target] += 1
                    self.outstanding[target] += 1
                    self._submit_leg(
                        target, method, request, deferred, redirected=True
                    )
                    return
            if live is not None:
                self._observe(request, response, live)
            deferred.resolve(response)

        shard.endpoint.submit(
            self.host, method, request, relay, policy=self.leg_policy
        )

    # ------------------------------------------------------------------
    # Elasticity (driven by repro.server.rebalance)
    # ------------------------------------------------------------------
    def add_shard(self, shard: ServiceProvider) -> int:
        """Attach a new, empty shard *without* rebuilding the ring: the
        shard is reachable by index (migration legs, health accounting)
        but owns no key ranges until :meth:`rebuild_ring` flips
        ownership at the end of the copy."""
        self.shards.append(shard)
        self.breakers.append(
            CircuitBreaker(self._breaker_threshold, self._breaker_reset_s)
        )
        self.outstanding.append(0)
        self.forwards_by_shard.append(0)
        return len(self.shards) - 1

    def rebuild_ring(self) -> None:
        """Recompute ring ownership from the current shard list — the
        atomic half of a migration flip."""
        self.ring = HashRing(
            [shard.host for shard in self.shards], vnodes=self._vnodes
        )

    def remove_shard(self, host: str) -> int:
        """Detach a drained shard.  Every index above it shifts down by
        one, so all index-keyed routing state is rewritten in the same
        step — entries pointing *at* the removed shard are dropped
        (its accounts migrated out before removal; anything left is
        stale by definition).  Returns the removed index."""
        index = next(
            i for i, shard in enumerate(self.shards) if shard.host == host
        )
        del self.shards[index]
        del self.breakers[index]
        del self.outstanding[index]
        del self.forwards_by_shard[index]

        def shift(owner: int) -> Optional[int]:
            if owner == index:
                return None
            return owner - 1 if owner > index else owner

        cookies: Dict[bytes, int] = {}
        for cookie, owner in self._cookie_shard.items():
            live = shift(owner)
            if live is not None:
                cookies[cookie] = live
        self._cookie_shard = cookies
        overrides: Dict[str, int] = {}
        for account, owner in self._account_shard.items():
            live = shift(owner)
            if live is not None:
                overrides[account] = live
        self._account_shard = overrides
        draining: Set[int] = set()
        for owner in self.draining:
            live = shift(owner)
            if live is not None:
                draining.add(live)
        self.draining = draining
        self.rebuild_ring()
        return index

    def complete_migration(
        self, moved: Dict[str, int], window_s: float
    ) -> None:
        """Finish a ring flip for ``moved`` (account → new shard
        index): rewrite learned cookie routes so the next request lands
        on the new owner first try, reconcile register-failover
        overrides back to ring ownership where the ring now agrees, and
        open the dual-read window for legs that raced the flip."""
        for account, target in moved.items():
            cookie = self._account_cookie.get(account)
            if cookie is not None and self._cookie_shard.get(cookie) != target:
                self._cookie_shard[cookie] = target
                self.cookie_rewrites += 1
                self.simulator.metrics.counter(
                    "router.cookie_rewrites"
                ).increment()
            if account in self._account_shard:
                if self.ring.index_for(account) == target:
                    # The ring now homes the account where it actually
                    # lives — the override has nothing left to say.
                    del self._account_shard[account]
                else:
                    self._account_shard[account] = target
        if window_s > 0:
            self._dual_read_until = max(
                self._dual_read_until, self.simulator.now + window_s
            )

    # ------------------------------------------------------------------
    # Crash-stop lifecycle (control plane)
    # ------------------------------------------------------------------
    def crash(self) -> None:
        """Crash-stop of the routing tier: the RPC endpoint drops its
        queue and dedup cache, and every learned routing map — cookie
        routes, account cookies, register-failover overrides — dies
        with the process.  Shards are unaffected; they just become
        unreachable until :meth:`restart`."""
        if self.endpoint.crashed:
            return
        self.endpoint.crash()
        self.router_crashes += 1
        self.simulator.metrics.counter("router.crashes").increment()
        self._cookie_shard.clear()
        self._account_cookie.clear()
        self._account_shard.clear()
        self._dual_read_until = 0.0

    def restart(self) -> None:
        """Bring the routing tier back.  Cookie routes relearn lazily
        (clients re-login through the normal retry ladder), but
        register-failover overrides must be rebuilt eagerly — without
        them, accounts living off their ring home would be unroutable
        forever, not just slow."""
        if not self.endpoint.crashed:
            return
        self.endpoint.restart()
        self.router_restarts += 1
        self.recover_routes()

    def recover_routes(self) -> int:
        """Rebuild register-failover overrides from actual ownership:
        any account held by a shard that is not its ring home gets an
        override pointing where it really lives.  Deterministic scan,
        no randomness.  Returns the number of overrides rebuilt."""
        rebuilt = 0
        for index, shard in enumerate(self.shards):
            for account in shard.accounts:
                if self.ring.index_for(account) != index:
                    self._account_shard[account] = index
                    rebuilt += 1
        return rebuilt

    def state_digest(self) -> bytes:
        """Pool-level state identity: a digest over (host, shard
        digest) pairs in *host* order.  Shard-list order is an artifact
        of scaling history; host-sorted digests make "same accounts on
        the same owners with the same state" compare equal regardless
        of how the pool got there."""
        hasher = hashlib.sha256()
        for host, digest in sorted(
            (shard.host, shard.state_digest()) for shard in self.shards
        ):
            hasher.update(host.encode("utf-8"))
            hasher.update(digest)
        return hasher.digest()

    # ------------------------------------------------------------------
    # Aggregated provider surface (experiment/fleet accessors)
    # ------------------------------------------------------------------
    @property
    def denials(self) -> Dict[str, int]:
        merged: Dict[str, int] = {}
        for shard in self.shards:
            for reason, count in shard.denials.items():
                merged[reason] = merged.get(reason, 0) + count
        # Router-level degraded-mode denials sit beside the shard-side
        # reasons so reports read one uniform ledger.
        if self.shard_down_denials:
            merged[DENIAL_SHARD_DOWN] = (
                merged.get(DENIAL_SHARD_DOWN, 0) + self.shard_down_denials
            )
        return merged

    @property
    def crashes(self) -> int:
        return sum(shard.crashes for shard in self.shards)

    @property
    def restarts(self) -> int:
        return sum(shard.restarts for shard in self.shards)

    def journal_stats(self) -> Dict[str, int]:
        totals = {"appends": 0, "snapshots": 0, "wal_bytes": 0, "restores": 0}
        for shard in self.shards:
            for key, value in shard.journal_stats().items():
                totals[key] = totals.get(key, 0) + value
            totals["restores"] += shard.journal_restores
        return totals

    def breaker_states(self) -> List[str]:
        return [breaker.state for breaker in self.breakers]

    @property
    def duplicate_confirms(self) -> int:
        return sum(shard.duplicate_confirms for shard in self.shards)

    @property
    def cookies_invalidated_total(self) -> int:
        return sum(shard.cookies_invalidated for shard in self.shards)

    @property
    def transactions_retired(self) -> int:
        return sum(shard.transactions_retired for shard in self.shards)

    @property
    def transactions_live(self) -> int:
        return sum(len(shard.transactions) for shard in self.shards)

    def count_by_status(self) -> Dict[str, int]:
        merged: Dict[str, int] = {}
        for shard in self.shards:
            for status, count in shard.count_by_status().items():
                merged[status] = merged.get(status, 0) + count
        return merged

    def expire_stale_transactions(self) -> int:
        return sum(shard.expire_stale_transactions() for shard in self.shards)

    def retire_settled(self, now: Optional[float] = None) -> int:
        return sum(shard.retire_settled(now) for shard in self.shards)

    def verification_stats(self) -> Dict[str, int]:
        totals = {"hits": 0, "misses": 0, "evictions": 0, "entries": 0}
        for shard in self.shards:
            cache = shard.verification_cache
            if cache is None:
                continue
            for key, value in cache.stats().items():
                totals[key] += value
        return totals

    # Ledger accessors exist only when the shard class provides them
    # (e.g. BankServer); the router exposes the aggregate.
    @property
    def executed_transfers(self) -> list:
        transfers: list = []
        for shard in self.shards:
            transfers.extend(getattr(shard, "executed_transfers", ()))
        return transfers

    def total_stolen_by(self, destination: str) -> int:
        return sum(
            shard.total_stolen_by(destination)
            for shard in self.shards
            if hasattr(shard, "total_stolen_by")
        )

    def balance_of(self, account: str) -> int:
        return self.shard_for_account(account).balance_of(account)


def build_sharded_pool(
    simulator: Simulator,
    network: Network,
    host: str,
    policy: VerifierPolicy,
    shard_count: int,
    provider_factory: Optional[Callable[..., ServiceProvider]] = None,
    workers_per_shard: int = 1,
    verification_cache: bool = True,
    vnodes: int = 128,
    router_workers: int = 8,
    journal_disk: Optional[UntrustedDisk] = None,
    snapshot_every: int = 256,
    breaker_threshold: int = 3,
    breaker_reset_s: float = 1.0,
    max_shard_queue_depth: int = 64,
    leg_policy: Optional[RetryPolicy] = SHARD_LEG_POLICY,
) -> ProviderRouter:
    """Build N shard replicas behind a :class:`ProviderRouter`.

    ``provider_factory(simulator, network, host, policy, workers,
    verification_cache=...)`` constructs one shard (default: plain
    :class:`ServiceProvider`); shard hosts are ``{host}!shard{i}``, so
    each replica derives an independent DRBG/nonce stream from its own
    hostname.  ``verification_cache=False`` builds every shard cold
    (the F3-S cache ablation).  ``journal_disk`` makes every shard
    durable: each gets a write-ahead journal on the shared disk and
    rebuilds its state bit-identically on restart after a crash (the R2
    journal ablation passes ``None`` here).

    ``simulator`` may be a plain :class:`Simulator` or a
    :class:`~repro.sim.partition.PartitionedKernel`: each shard is
    placed on ``simulator.simulator_for_host(...)`` (identity for a
    plain simulator, round-robin over partitions for the kernel), so
    the same wiring runs sequential or partitioned.
    """
    if shard_count < 1:
        raise ValueError(f"shard_count must be >= 1: {shard_count}")
    factory = provider_factory or ServiceProvider
    extra = {} if verification_cache else {"verification_cache": None}
    shards = []
    for index in range(shard_count):
        shard_host = f"{host}!shard{index}"
        shard_sim = simulator.simulator_for_host(shard_host)
        if not network.is_attached(shard_host):
            network.attach(shard_host, LinkSpec.lan(), simulator=shard_sim)
        shard = factory(
            shard_sim, network, shard_host, policy,
            workers=workers_per_shard, **extra,
        )
        if journal_disk is not None:
            shard.attach_journal(journal_disk, snapshot_every=snapshot_every)
        shards.append(shard)
    return ProviderRouter(
        simulator, network, host, shards,
        vnodes=vnodes, workers=router_workers,
        breaker_threshold=breaker_threshold,
        breaker_reset_s=breaker_reset_s,
        max_shard_queue_depth=max_shard_queue_depth,
        leg_policy=leg_policy,
    )
