"""System-wide invariant checking for the sharded confirmation pool.

The paper's security argument leans on properties that are *global* to
the provider fleet, not local to one shard: an account must have
exactly one owner (two owners could each accept a confirmation for the
same nonce), a consumed nonce must stay consumed across any crash or
migration (the replay defense), the business ledger must conserve (a
scale event that mints or destroys money is a broken provider no
matter how available it is), and a settled transaction must exist
exactly once pool-wide.  :class:`InvariantChecker` audits all of them
in one pass over the live pool — after every fault recovery in the
chaos harness (R3) and at end-of-day — plus optional
``state_digest()`` parity against a never-crashed reference run where
the fault plan admits one.

The checker only *reads*: it consumes no randomness, schedules no
events, and mutates nothing, so attaching it cannot perturb a
deterministic run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.server.provider import TxStatus
from repro.server.rebalance import ShardPoolManager
from repro.server.router import ProviderRouter

#: Check names, in report order.
CHECKS = (
    "unique_ownership",
    "ring_coverage",
    "routability",
    "nonce_single_use",
    "consumed_stays_consumed",
    "ledger_conservation",
    "exactly_once",
    "manager_consistent",
    "digest_parity",
)

#: Cap on violation strings kept per report — a badly broken pool
#: should produce a readable report, not a megabyte of repetition.
MAX_VIOLATIONS = 50


class InvariantViolation(AssertionError):
    """Raised by :meth:`InvariantChecker.assert_ok` in hard-fail mode."""


@dataclass
class InvariantReport:
    """Outcome of one invariant sweep: named verdicts + evidence."""

    checks: Dict[str, bool] = field(default_factory=dict)
    violations: List[str] = field(default_factory=list)
    truncated: int = 0

    @property
    def ok(self) -> bool:
        return all(self.checks.values())

    def note(self, check: str, message: str) -> None:
        self.checks[check] = False
        if len(self.violations) < MAX_VIOLATIONS:
            self.violations.append(f"{check}: {message}")
        else:
            self.truncated += 1

    def to_row(self) -> dict:
        """Plain-data form for experiment rows and wall artifacts."""
        return {
            "ok": self.ok,
            "failed": sorted(k for k, v in self.checks.items() if not v),
            "violations": list(self.violations),
            "truncated": self.truncated,
        }


class InvariantChecker:
    """One-pass auditor over a :class:`ProviderRouter` pool.

    ``snapshot_baseline()`` records the pool-wide ledger total once the
    workload's money supply is fixed (after account setup); every later
    :meth:`check` asserts conservation against it.  Checks that need
    context the caller doesn't have are skipped, not failed: ledger
    conservation without a baseline, digest parity without a reference,
    manager consistency without a manager.
    """

    def __init__(
        self,
        router: ProviderRouter,
        manager: Optional[ShardPoolManager] = None,
    ) -> None:
        self.router = router
        self.manager = manager
        self.baseline_total: Optional[int] = None
        self.checks_run = 0

    # ------------------------------------------------------------------
    def _pool_balance_total(self) -> int:
        return sum(
            int(value)
            for shard in self.router.shards
            for value in getattr(shard, "balances", {}).values()
        )

    def snapshot_baseline(self) -> int:
        """Fix the conservation baseline: the pool-wide balance total.
        Call after workload setup (all registrations done); transfers
        only move money between balances, so the total is invariant
        from here on no matter what crashes or migrations happen."""
        self.baseline_total = self._pool_balance_total()
        return self.baseline_total

    # ------------------------------------------------------------------
    def check(
        self, reference_digest: Optional[bytes] = None
    ) -> InvariantReport:
        """Audit the pool; returns a report with per-check verdicts."""
        router = self.router
        report = InvariantReport()
        for name in CHECKS:
            report.checks[name] = True
        self.checks_run += 1
        router.simulator.metrics.counter("invariants.checks").increment()

        # -- exactly-one owner per account, union of ranges covers the
        #    ring, and every account routes to the shard that holds it.
        owners: Dict[str, List[int]] = {}
        for index, shard in enumerate(router.shards):
            for account in shard.accounts:
                owners.setdefault(account, []).append(index)
        for account, indices in sorted(owners.items()):
            if len(indices) > 1:
                hosts = [router.shards[i].host for i in indices]
                report.note(
                    "unique_ownership", f"{account!r} owned by {hosts}"
                )
        ring_hosts = set(router.ring.hosts)
        pool_hosts = {shard.host for shard in router.shards}
        if ring_hosts != pool_hosts:
            report.note(
                "ring_coverage",
                f"ring hosts {sorted(ring_hosts)} != pool hosts "
                f"{sorted(pool_hosts)}",
            )
        for account, indices in sorted(owners.items()):
            routed = router.shard_index_for_account(account)
            if routed not in indices:
                report.note(
                    "routability",
                    f"{account!r} routes to index {routed} but lives on "
                    f"{indices}",
                )

        # -- the replay defense, pool-wide: a nonce value exists on at
        #    most one shard, and a settled transaction's nonce, where
        #    still present, is marked consumed (a crash+migration that
        #    resurrected it as fresh would re-admit old evidence).
        nonce_owners: Dict[bytes, List[str]] = {}
        for shard in router.shards:
            records = {rec[0]: rec for rec in shard.nonces.export_records()}
            for nonce in records:
                nonce_owners.setdefault(nonce, []).append(shard.host)
            for pending in shard.transactions.values():
                if pending.status is not TxStatus.EXECUTED:
                    continue
                record = records.get(pending.nonce)
                if record is not None and not record[4]:
                    report.note(
                        "consumed_stays_consumed",
                        f"executed tx {pending.tx_id.hex()} on "
                        f"{shard.host} has an unconsumed nonce",
                    )
        for nonce, hosts in nonce_owners.items():
            if len(hosts) > 1:
                report.note(
                    "nonce_single_use",
                    f"nonce {nonce.hex()} present on {sorted(hosts)}",
                )

        # -- ledger conservation against the baseline money supply.
        if self.baseline_total is not None:
            total = self._pool_balance_total()
            if total != self.baseline_total:
                report.note(
                    "ledger_conservation",
                    f"pool total {total} != baseline "
                    f"{self.baseline_total} (delta "
                    f"{total - self.baseline_total})",
                )

        # -- settled-transaction exactly-once: a transaction or batch id
        #    exists on at most one shard (duplicates across shards mean
        #    a migration left both copies live).
        tx_owners: Dict[bytes, List[str]] = {}
        batch_owners: Dict[bytes, List[str]] = {}
        for shard in router.shards:
            for tx_id in shard.transactions:
                tx_owners.setdefault(tx_id, []).append(shard.host)
            for batch_id in shard.batches:
                batch_owners.setdefault(batch_id, []).append(shard.host)
        for ids, label in ((tx_owners, "tx"), (batch_owners, "batch")):
            for item_id, hosts in ids.items():
                if len(hosts) > 1:
                    report.note(
                        "exactly_once",
                        f"{label} {item_id.hex()} present on {sorted(hosts)}",
                    )

        # -- coordinator consistency: busy implies a live operation (or
        #    a crash pending recovery), and an idle coordinator leaves
        #    no unresolved intent in its log.
        manager = self.manager
        if manager is not None:
            if manager.busy and manager._op is None and not manager.crashed:
                report.note(
                    "manager_consistent",
                    "busy latched with no active operation and no "
                    "pending recovery",
                )
            open_ops = self._unresolved_intents(manager)
            allowed = 1 if (manager.busy or manager.crashed) else 0
            if len(open_ops) > allowed:
                report.note(
                    "manager_consistent",
                    f"intent log holds unresolved operations {open_ops} "
                    f"with busy={manager.busy}",
                )

        # -- survivor digest parity against a never-crashed reference.
        if reference_digest is not None:
            digest = router.state_digest()
            if digest != reference_digest:
                report.note(
                    "digest_parity",
                    f"pool digest {digest.hex()[:16]}... != reference "
                    f"{reference_digest.hex()[:16]}...",
                )

        if not report.ok:
            router.simulator.metrics.counter(
                "invariants.violations"
            ).increment(len(report.violations) + report.truncated)
        return report

    @staticmethod
    def _unresolved_intents(manager: ShardPoolManager) -> List[str]:
        states: Dict[str, str] = {}
        order: List[str] = []
        for record in manager.intent_log.records():
            op_id = str(record["op"])
            if op_id not in states:
                order.append(op_id)
            kind = str(record["t"])
            if kind == "mig_prepare":
                states.setdefault(op_id, "open")
            elif kind in ("mig_done", "mig_abort"):
                states[op_id] = "closed"
        return [op_id for op_id in order if states.get(op_id) == "open"]

    def assert_ok(
        self, reference_digest: Optional[bytes] = None
    ) -> InvariantReport:
        """Hard-fail mode: raise :class:`InvariantViolation` with the
        full evidence list when any check fails (CI gate)."""
        report = self.check(reference_digest)
        if not report.ok:
            raise InvariantViolation(
                "; ".join(report.violations)
                + (f" (+{report.truncated} more)" if report.truncated else "")
            )
        return report
