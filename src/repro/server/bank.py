"""An online bank: the paper's motivating service provider.

Balances are integers in cents; transfers move real ledger state, so
experiments measure attack outcomes in money that did or did not move.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.core.errors import ProtocolError
from repro.core.transaction import Transaction
from repro.net.messages import Message, decode_message, encode_message
from repro.server.provider import AccountRecord, ServiceProvider

DEFAULT_OPENING_BALANCE_CENTS = 500_000  # 5000.00


@dataclass
class Transfer:
    source: str
    destination: str
    amount_cents: int


class BankServer(ServiceProvider):
    """Transfers between accounts (external destinations auto-created
    with zero balance, representing other banks)."""

    SUPPORTED_KINDS = ("transfer",)

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.balances: Dict[str, int] = {}
        self.executed_transfers: List[Transfer] = []

    # -- hooks ------------------------------------------------------------
    def on_account_created(self, record: AccountRecord, request: Message) -> None:
        opening = request.get("opening_balance", DEFAULT_OPENING_BALANCE_CENTS)
        self.balances[record.name] = int(opening)

    def validate_transaction(self, transaction: Transaction) -> None:
        if transaction.kind not in self.SUPPORTED_KINDS:
            raise ProtocolError(f"bank does not support {transaction.kind!r}")
        destination = transaction.fields.get("to")
        amount = transaction.fields.get("amount")
        if not isinstance(destination, str) or not destination:
            raise ProtocolError("transfer needs a destination ('to')")
        if not isinstance(amount, int) or amount <= 0:
            raise ProtocolError("transfer amount must be a positive integer (cents)")
        if self.balances.get(transaction.account, 0) < amount:
            raise ProtocolError("insufficient funds")

    def execute_transaction(self, transaction: Transaction) -> str:
        source = transaction.account
        destination = str(transaction.fields["to"])
        amount = int(transaction.fields["amount"])
        if self.balances.get(source, 0) < amount:
            raise ProtocolError("insufficient funds at execution time")
        self.balances[source] -= amount
        self.balances[destination] = self.balances.get(destination, 0) + amount
        self.executed_transfers.append(
            Transfer(source=source, destination=destination, amount_cents=amount)
        )
        return f"transferred {amount} cents {source}->{destination}"

    # -- durability hooks --------------------------------------------------
    def capture_business_state(self) -> Message:
        """Ledger state for the provider journal snapshot: balances in
        insertion order plus the executed-transfer log (the log is what
        the R2 ablation counts duplicate executions in)."""
        return {
            "bal": [
                encode_message({"a": name, "v": cents})
                for name, cents in self.balances.items()
            ],
            "xf": [
                encode_message({
                    "s": transfer.source,
                    "d": transfer.destination,
                    "v": transfer.amount_cents,
                })
                for transfer in self.executed_transfers
            ],
        }

    def restore_business_state(self, state: Message) -> None:
        self.balances = {
            str(msg["a"]): int(msg["v"])
            for msg in map(decode_message, state["bal"])
        }
        self.executed_transfers = [
            Transfer(
                source=str(msg["s"]),
                destination=str(msg["d"]),
                amount_cents=int(msg["v"]),
            )
            for msg in map(decode_message, state["xf"])
        ]

    # -- experiment accessors ----------------------------------------------
    def balance_of(self, account: str) -> int:
        return self.balances.get(account, 0)

    def total_stolen_by(self, mule_account: str) -> int:
        """Money that reached a mule account via executed transfers."""
        return sum(
            transfer.amount_cents
            for transfer in self.executed_transfers
            if transfer.destination == mule_account
        )
