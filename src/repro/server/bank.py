"""An online bank: the paper's motivating service provider.

Balances are integers in cents; transfers move real ledger state, so
experiments measure attack outcomes in money that did or did not move.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.core.errors import ProtocolError
from repro.core.transaction import Transaction
from repro.net.messages import Message, decode_message, encode_message
from repro.server.provider import AccountRecord, ServiceProvider

DEFAULT_OPENING_BALANCE_CENTS = 500_000  # 5000.00


@dataclass
class Transfer:
    source: str
    destination: str
    amount_cents: int


class BankServer(ServiceProvider):
    """Transfers between accounts (external destinations auto-created
    with zero balance, representing other banks)."""

    SUPPORTED_KINDS = ("transfer",)

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.balances: Dict[str, int] = {}
        self.executed_transfers: List[Transfer] = []

    # -- hooks ------------------------------------------------------------
    def on_account_created(self, record: AccountRecord, request: Message) -> None:
        opening = request.get("opening_balance", DEFAULT_OPENING_BALANCE_CENTS)
        self.balances[record.name] = int(opening)

    def validate_transaction(self, transaction: Transaction) -> None:
        if transaction.kind not in self.SUPPORTED_KINDS:
            raise ProtocolError(f"bank does not support {transaction.kind!r}")
        destination = transaction.fields.get("to")
        amount = transaction.fields.get("amount")
        if not isinstance(destination, str) or not destination:
            raise ProtocolError("transfer needs a destination ('to')")
        if not isinstance(amount, int) or amount <= 0:
            raise ProtocolError("transfer amount must be a positive integer (cents)")
        if self.balances.get(transaction.account, 0) < amount:
            raise ProtocolError("insufficient funds")

    def execute_transaction(self, transaction: Transaction) -> str:
        source = transaction.account
        destination = str(transaction.fields["to"])
        amount = int(transaction.fields["amount"])
        if self.balances.get(source, 0) < amount:
            raise ProtocolError("insufficient funds at execution time")
        self.balances[source] -= amount
        self.balances[destination] = self.balances.get(destination, 0) + amount
        self.executed_transfers.append(
            Transfer(source=source, destination=destination, amount_cents=amount)
        )
        return f"transferred {amount} cents {source}->{destination}"

    # -- durability hooks --------------------------------------------------
    def capture_business_state(self) -> Message:
        """Ledger state for the provider journal snapshot: balances in
        canonical (name) order — a migration round-trip re-inserts
        entries, and insertion history must not change the state digest
        — plus the executed-transfer log in execution order (the log is
        what the R2 ablation counts duplicate executions in)."""
        return {
            "bal": [
                encode_message({"a": name, "v": self.balances[name]})
                for name in sorted(self.balances)
            ],
            "xf": [
                encode_message({
                    "s": transfer.source,
                    "d": transfer.destination,
                    "v": transfer.amount_cents,
                })
                for transfer in self.executed_transfers
            ],
        }

    def restore_business_state(self, state: Message) -> None:
        self.balances = {
            str(msg["a"]): int(msg["v"])
            for msg in map(decode_message, state["bal"])
        }
        self.executed_transfers = [
            Transfer(
                source=str(msg["s"]),
                destination=str(msg["d"]),
                amount_cents=int(msg["v"]),
            )
            for msg in map(decode_message, state["xf"])
        ]

    # -- account-slice migration hooks ------------------------------------
    def capture_business_slice(self, accounts) -> Message:
        """The migrated accounts' balances.  The executed-transfer log
        stays on the shard that executed the transfers: it is a record
        of where work happened, and duplicate-execution accounting must
        keep seeing every historical entry exactly once."""
        return {
            "bal": [
                encode_message({"a": name, "v": self.balances[name]})
                for name in sorted(accounts)
                if name in self.balances
            ],
        }

    def install_business_slice(self, state: Message) -> None:
        for msg in map(decode_message, state["bal"]):
            self.balances[str(msg["a"])] = int(msg["v"])

    def drop_business_slice(self, accounts) -> None:
        for name in accounts:
            self.balances.pop(name, None)

    def capture_business_residual(self) -> Message:
        """Everything the slice protocol leaves behind when this shard
        is drained away: external counterparty balances (destinations
        auto-created by transfers, never owned accounts) and the
        executed-transfer log.  Destroying either with the shard would
        break pool-wide ledger conservation and duplicate-execution
        accounting, so a drain ships this residual to a survivor."""
        external = sorted(set(self.balances) - set(self.accounts))
        return {
            "bal": [
                encode_message({"a": name, "v": self.balances[name]})
                for name in external
            ],
            "xf": [
                encode_message({
                    "s": transfer.source,
                    "d": transfer.destination,
                    "v": transfer.amount_cents,
                })
                for transfer in self.executed_transfers
            ],
        }

    def install_business_residual(self, state: Message) -> None:
        """Additive absorb: external balances sum (the survivor may hold
        its own balance for the same counterparty) and the transfer log
        extends — each historical entry still appears exactly once
        pool-wide."""
        for msg in map(decode_message, state.get("bal", [])):
            name = str(msg["a"])
            self.balances[name] = self.balances.get(name, 0) + int(msg["v"])
        for msg in map(decode_message, state.get("xf", [])):
            self.executed_transfers.append(
                Transfer(
                    source=str(msg["s"]),
                    destination=str(msg["d"]),
                    amount_cents=int(msg["v"]),
                )
            )

    # -- experiment accessors ----------------------------------------------
    def balance_of(self, account: str) -> int:
        return self.balances.get(account, 0)

    def total_stolen_by(self, mule_account: str) -> int:
        """Money that reached a mule account via executed transfers."""
        return sum(
            transfer.amount_cents
            for transfer in self.executed_transfers
            if transfer.destination == mule_account
        )
