"""SHA-1 from the FIPS 180-4 pseudocode.

TPM v1.2 is built around SHA-1 (PCRs are 20-byte SHA-1 digests, the extend
operation is ``PCR := SHA1(PCR || measurement)``), so the reproduction
carries its own implementation rather than treating the hash as a black
box.  Verified bit-for-bit against `hashlib.sha1` in the test suite.

The :class:`Sha1` class *is* the ``pure`` reference arm of
:mod:`repro.crypto.backend`; the module-level :func:`sha1` one-shot
dispatches through the active backend, so every call site in ``tpm/``,
``drtm/`` and ``net/`` follows the ``REPRO_CRYPTO_BACKEND`` selection.
"""

from __future__ import annotations

import struct

from repro.crypto import backend as _backend

_MASK32 = 0xFFFFFFFF

SHA1_DIGEST_SIZE = 20
SHA1_BLOCK_SIZE = 64

_H0 = (0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0)


def _rotl(value: int, amount: int) -> int:
    return ((value << amount) | (value >> (32 - amount))) & _MASK32


def _compress(state: tuple, block: bytes) -> tuple:
    """One SHA-1 compression round over a 64-byte block."""
    w = list(struct.unpack(">16I", block))
    for t in range(16, 80):
        w.append(_rotl(w[t - 3] ^ w[t - 8] ^ w[t - 14] ^ w[t - 16], 1))

    a, b, c, d, e = state
    for t in range(80):
        if t < 20:
            f = (b & c) | ((~b & _MASK32) & d)
            k = 0x5A827999
        elif t < 40:
            f = b ^ c ^ d
            k = 0x6ED9EBA1
        elif t < 60:
            f = (b & c) | (b & d) | (c & d)
            k = 0x8F1BBCDC
        else:
            f = b ^ c ^ d
            k = 0xCA62C1D6
        temp = (_rotl(a, 5) + f + e + k + w[t]) & _MASK32
        e = d
        d = c
        c = _rotl(b, 30)
        b = a
        a = temp

    return (
        (state[0] + a) & _MASK32,
        (state[1] + b) & _MASK32,
        (state[2] + c) & _MASK32,
        (state[3] + d) & _MASK32,
        (state[4] + e) & _MASK32,
    )


def _pad(message_length: int) -> bytes:
    """Merkle–Damgård padding for a message of ``message_length`` bytes."""
    padding = b"\x80"
    padding += b"\x00" * ((56 - (message_length + 1) % 64) % 64)
    padding += struct.pack(">Q", message_length * 8)
    return padding


class Sha1:
    """Incremental SHA-1 context with the familiar update/digest interface."""

    digest_size = SHA1_DIGEST_SIZE
    block_size = SHA1_BLOCK_SIZE
    name = "sha1"

    def __init__(self, data: bytes = b"") -> None:
        self._state = _H0
        self._buffer = b""
        self._length = 0
        if data:
            self.update(data)

    def update(self, data: bytes) -> "Sha1":
        if not isinstance(data, (bytes, bytearray, memoryview)):
            raise TypeError(f"expected bytes-like, got {type(data).__name__}")
        self._length += len(data)
        self._buffer += bytes(data)
        while len(self._buffer) >= SHA1_BLOCK_SIZE:
            block, self._buffer = (
                self._buffer[:SHA1_BLOCK_SIZE],
                self._buffer[SHA1_BLOCK_SIZE:],
            )
            self._state = _compress(self._state, block)
        return self

    def digest(self) -> bytes:
        state = self._state
        tail = self._buffer + _pad(self._length)
        for offset in range(0, len(tail), SHA1_BLOCK_SIZE):
            state = _compress(state, tail[offset : offset + SHA1_BLOCK_SIZE])
        return struct.pack(">5I", *state)

    def hexdigest(self) -> str:
        return self.digest().hex()

    def copy(self) -> "Sha1":
        clone = Sha1()
        clone._state = self._state
        clone._buffer = self._buffer
        clone._length = self._length
        return clone


def sha1(data: bytes) -> bytes:
    """One-shot SHA-1 digest of ``data`` via the active crypto backend."""
    return _backend.get_backend().sha1(data)


def new_sha1(data: bytes = b""):
    """Incremental SHA-1 context from the active crypto backend."""
    return _backend.get_backend().new_sha1(data)
