"""Modular-exponentiation strategies for the RSA backend arms.

Every RSA operation in the reproduction — TPM quote signatures, AIK
certification, the sealed signing key, OAEP to the EK, Miller–Rabin
witnesses during key generation — reduces to ``base^exp mod n``.  This
module collects the interchangeable ways to compute it:

``modexp_binary``
    Schoolbook right-to-left square-and-multiply, the textbook
    pseudocode.  The ``pure`` backend arm's reference implementation,
    analogous to the hand-rolled FIPS hash arms.

``modexp_window`` / :class:`MontgomeryContext`
    Fixed-window exponentiation over Montgomery-domain arithmetic with
    a precomputed per-modulus context (R, n', odd-power table).  The
    classic software speedup over schoolbook: ~w-fold fewer
    multiplications for a w-bit window, and reduction by shifts/masks
    instead of division.

``pow``
    CPython's built-in three-argument ``pow`` — itself a C
    implementation of windowed exponentiation.  At the 512–2048-bit
    operand sizes used here it beats any Python-level loop (each
    Montgomery step pays interpreter dispatch that C does not), so the
    ``accel`` arm dispatches to it; the ``rsax`` microbench cell
    records the honest strategy comparison per run.

``gmpy2.powmod``
    The optional ``gmpy2`` arm (GMP), another integer factor faster
    than CPython's ``pow`` when the package is installed.

All strategies are bit-identical by construction and differentially
fuzzed against each other in ``tests/test_crypto_backend.py``; the
choice is wall-clock only (DESIGN.md "determinism contract").

:class:`CrtContext` carries the precomputed Chinese-Remainder data for
one private key (d_p, d_q, q_inv) so repeated signing by the same key
— every TPM quote, every sealed-key confirmation — skips per-call
attribute traversal and recombines with Garner's formula.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable


def modexp_binary(base: int, exp: int, mod: int) -> int:
    """Schoolbook right-to-left binary square-and-multiply.

    The reference arm: exactly the pseudocode result of repeated
    squaring, bit-identical to ``pow(base, exp, mod)`` for every
    non-negative exponent.
    """
    if mod <= 0:
        raise ValueError(f"modulus must be positive: {mod}")
    if exp < 0:
        raise ValueError(f"negative exponent unsupported: {exp}")
    result = 1 % mod
    base %= mod
    while exp:
        if exp & 1:
            result = result * base % mod
        base = base * base % mod
        exp >>= 1
    return result


class MontgomeryContext:
    """Precomputed Montgomery-reduction constants for one odd modulus.

    REDC replaces each division-by-``n`` with multiplies, a mask and a
    shift; the context (R = 2^k, n' = -n^-1 mod R) is computed once per
    modulus and reused for every exponentiation under it.
    """

    __slots__ = ("n", "k", "r_mask", "n_prime", "r2")

    def __init__(self, n: int) -> None:
        if n < 3 or n % 2 == 0:
            raise ValueError("Montgomery reduction needs an odd modulus >= 3")
        self.n = n
        self.k = n.bit_length()
        r = 1 << self.k
        self.r_mask = r - 1
        self.n_prime = (-pow(n, -1, r)) & self.r_mask
        self.r2 = r * r % n  # to_mont(x) = REDC(x * r2)

    def redc(self, t: int) -> int:
        """Montgomery reduction: t * R^-1 mod n for t < n*R."""
        m = (t & self.r_mask) * self.n_prime & self.r_mask
        u = (t + m * self.n) >> self.k
        return u - self.n if u >= self.n else u

    def to_mont(self, x: int) -> int:
        return self.redc(x * self.r2)

    def mont_mul(self, a: int, b: int) -> int:
        return self.redc(a * b)


def modexp_window(
    base: int, exp: int, mod: int, window: int = 4,
    ctx: "MontgomeryContext | None" = None,
) -> int:
    """Fixed-window exponentiation in the Montgomery domain.

    Precomputes the ``2^window`` base powers once, then consumes the
    exponent ``window`` bits at a time — the standard software
    optimization over schoolbook square-and-multiply.  Bit-identical
    to ``pow(base, exp, mod)``; used by the ``rsax`` microbench to
    quantify (honestly) where the Python-level strategies sit relative
    to CPython's C implementation.
    """
    if mod <= 0:
        raise ValueError(f"modulus must be positive: {mod}")
    if exp < 0:
        raise ValueError(f"negative exponent unsupported: {exp}")
    if mod == 1:
        return 0
    if exp == 0:
        return 1
    if mod % 2 == 0:
        # Montgomery needs an odd modulus; even moduli never occur in
        # RSA use but the function stays total for the fuzz tests.
        return modexp_binary(base, exp, mod)
    context = ctx if ctx is not None else MontgomeryContext(mod)
    mont_mul = context.mont_mul
    base_m = context.to_mont(base % mod)
    table = [context.to_mont(1)]
    for _ in range((1 << window) - 1):
        table.append(mont_mul(table[-1], base_m))
    result = table[0]
    for shift in range((exp.bit_length() + window - 1) // window - 1, -1, -1):
        for _ in range(window):
            result = mont_mul(result, result)
        digit = (exp >> (shift * window)) & ((1 << window) - 1)
        if digit:
            result = mont_mul(result, table[digit])
    return context.redc(result)


@dataclass(frozen=True)
class CrtContext:
    """Precomputed CRT data for one RSA private key.

    ``sign`` recombines with Garner's formula — identical arithmetic to
    :meth:`repro.crypto.rsa.RsaKeyPair.raw_decrypt`, with the modexp
    strategy injected so every backend arm shares one recombination
    path (bit-identical by construction).
    """

    n: int
    p: int
    q: int
    d_p: int
    d_q: int
    q_inv: int

    @classmethod
    def from_key(cls, key) -> "CrtContext":
        return cls(n=key.n, p=key.p, q=key.q, d_p=key.d_p, d_q=key.d_q,
                   q_inv=key.q_inv)

    def sign(self, c: int, modexp: Callable[[int, int, int], int] = pow) -> int:
        if not 0 <= c < self.n:
            raise ValueError("ciphertext representative out of range")
        m1 = modexp(c, self.d_p, self.p)
        m2 = modexp(c, self.d_q, self.q)
        h = (self.q_inv * (m1 - m2)) % self.p
        return m2 + h * self.q
