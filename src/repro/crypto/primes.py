"""Probable-prime generation for RSA key material.

Miller–Rabin with a deterministic small-prime sieve in front.  Randomness
comes from an :class:`~repro.crypto.drbg.HmacDrbg` so that key generation
is reproducible under a fixed experiment seed.

The witness exponentiation — the dominant keygen cost — dispatches
through :func:`repro.crypto.backend.rsa_modexp`, so the backend arms
(``pure`` schoolbook / ``accel`` / ``gmpy2``) apply to prime search
exactly as they do to signing and verification.  The sieve itself runs
as a single ``gcd`` against a precomputed primorial: one C-level call
that makes the *identical* accept/reject decision the per-prime trial
division loop made, at a fraction of the interpreter cost.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.crypto import backend as _backend
from repro.crypto.drbg import HmacDrbg

# Primes below 1000, used to cheaply reject most composites before
# running Miller-Rabin rounds.
_SMALL_PRIMES = [2, 3]
for _candidate in range(5, 1000, 2):
    if all(_candidate % p for p in _SMALL_PRIMES):
        _SMALL_PRIMES.append(_candidate)

_SMALL_PRIME_SET = frozenset(_SMALL_PRIMES)
_LARGEST_SMALL_PRIME = _SMALL_PRIMES[-1]

#: Product of every sieve prime.  ``gcd(candidate, _PRIMORIAL) > 1``
#: iff some sieve prime divides the candidate — the same predicate the
#: trial-division loop computes, in one bignum gcd.
_PRIMORIAL = math.prod(_SMALL_PRIMES)


def _miller_rabin_round(candidate: int, base: int) -> bool:
    """One Miller–Rabin witness test; True means 'probably prime'."""
    d = candidate - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    x = _backend.rsa_modexp(base, d, candidate)
    if x in (1, candidate - 1):
        return True
    for _ in range(r - 1):
        x = x * x % candidate
        if x == candidate - 1:
            return True
    return False


def is_probable_prime(
    candidate: int, rounds: int = 32, drbg: Optional[HmacDrbg] = None
) -> bool:
    """Miller–Rabin primality test.

    With ``drbg`` given, witnesses are drawn from it (reproducible);
    otherwise the first ``rounds`` small primes are used as witnesses,
    which is deterministic and adequate for the sizes used here.
    """
    if candidate < 2:
        return False
    if candidate <= _LARGEST_SMALL_PRIME:
        return candidate in _SMALL_PRIME_SET
    if math.gcd(candidate, _PRIMORIAL) != 1:
        # Shares a factor with some sieve prime; being above the sieve
        # range, the candidate is a proper multiple — composite.  Same
        # verdict as trial division by each small prime, one gcd.
        return False
    for round_index in range(rounds):
        if drbg is not None:
            base = 2 + drbg.generate_below(candidate - 3)
        else:
            base = _SMALL_PRIMES[round_index % len(_SMALL_PRIMES)]
        if not _miller_rabin_round(candidate, base):
            return False
    return True


def generate_prime(bits: int, drbg: HmacDrbg, rounds: int = 16) -> int:
    """Generate a probable prime of exactly ``bits`` bits."""
    if bits < 8:
        raise ValueError(f"refusing to generate tiny {bits}-bit primes")
    while True:
        candidate = drbg.generate_int(bits) | 1
        if is_probable_prime(candidate, rounds=rounds, drbg=drbg):
            return candidate


def generate_safe_exponent_prime(bits: int, drbg: HmacDrbg, e: int) -> int:
    """Generate a prime p with gcd(p - 1, e) == 1, as RSA keygen needs."""
    while True:
        candidate = generate_prime(bits, drbg)
        if _gcd(candidate - 1, e) == 1:
            return candidate


def _gcd(a: int, b: int) -> int:
    while b:
        a, b = b, a % b
    return a
