"""Pluggable crypto backend: ``pure`` pseudocode vs ``accel`` vs ``gmpy2``.

Every virtual-time number in the reproduction is paid for in real CPU:
all randomness flows through :class:`~repro.crypto.drbg.HmacDrbg` (three
HMAC-SHA256 calls per generate), every PCR extend and SLB measurement
through SHA-1 (a 256 KB SKINIT measurement is ~4096 compression rounds),
and every quote, key certification and sealed-key confirmation through
RSA (PKCS#1 v1.5 over 1024-bit keys, primes found by Miller–Rabin).
With hand-rolled reference implementations that cost is interpreter
time, not crypto time.

This module makes the primitive layer pluggable:

``pure``
    The repository's own reference implementations: FIPS-pseudocode
    hashes (:mod:`repro.crypto.sha1`, :mod:`repro.crypto.sha256`,
    :func:`repro.crypto.hmac_impl.hmac_digest`) and schoolbook
    square-and-multiply RSA (:func:`repro.crypto.modexp.modexp_binary`
    under the same CRT recombination).  The reference arm.

``accel``
    ``hashlib`` / ``hmac`` from the standard library for hashes, and
    CPython's built-in three-argument ``pow`` (a C windowed
    exponentiation) with cached per-key CRT contexts for RSA.
    Identical output by construction; the differential fuzz tests in
    ``tests/test_crypto_backend.py`` enforce bit-for-bit agreement
    across block boundaries, DRBG streams, and RSA
    modexp/sign/verify across key sizes.

``gmpy2``
    The ``accel`` arm with RSA modular exponentiation delegated to
    ``gmpy2.powmod`` (GMP).  Optional: available only when the
    ``gmpy2`` package is installed (``pip install repro[gmpy2]``);
    selecting it without the package is an immediate, named error.

The backend affects **wall-clock only**.  Virtual-time results are a
pure function of seed + schedule (see DESIGN.md "determinism
contract"); swapping backends can never change an emitted number, only
how fast it is computed.

Selection: ``accel`` by default, overridable with the
``REPRO_CRYPTO_BACKEND`` environment variable, programmatically with
:func:`set_backend`, per-scope with :func:`use_backend`, or per
experiment via ``Simulator(crypto_backend=...)``.  Callers that want
to fail fast on a bad name *before* starting work (argument parsing,
pool worker initializers) use :func:`resolve_backend_name`.

The module-level :func:`rsa_modexp` / :func:`rsa_sign_crt` /
:func:`rsa_verify` entry points dispatch RSA operations through the
active backend and count them (:func:`rsa_op_counts`), so the bench
runner can record per-cell RSA-op counters alongside wall time.
"""

from __future__ import annotations

import hashlib
import hmac as _std_hmac
import os
from contextlib import contextmanager
from typing import Dict, Iterator, Optional, Tuple

from repro.crypto.modexp import CrtContext, modexp_binary

DEFAULT_BACKEND = "accel"
ENV_VAR = "REPRO_CRYPTO_BACKEND"

BACKEND_NAMES = ("pure", "accel", "gmpy2")

#: Per-key CRT context caches are bounded: the simulation's live key
#: population is tiny (EK/SRK/AIK/signing key per platform plus CA
#: keys), so this is a correctness backstop, not a tuning knob.
CRT_CONTEXT_LIMIT = 256


class _CrtContextCache:
    """Bounded per-key :class:`CrtContext` memo shared by the arms.

    Keyed on the full private-key CRT tuple, so two distinct keys can
    never alias; a context is a pure function of its key, so a cached
    hit is bit-identical to a cold build.
    """

    def __init__(self, limit: int = CRT_CONTEXT_LIMIT) -> None:
        self._limit = limit
        self._entries: Dict[Tuple[int, int, int, int, int], CrtContext] = {}

    def get(self, key) -> CrtContext:
        cache_key = (key.p, key.q, key.d_p, key.d_q, key.q_inv)
        ctx = self._entries.get(cache_key)
        if ctx is None:
            if len(self._entries) >= self._limit:
                self._entries.pop(next(iter(self._entries)))
            ctx = CrtContext.from_key(key)
            self._entries[cache_key] = ctx
        return ctx


class PureBackend:
    """The in-repo reference implementations (pseudocode arm)."""

    name = "pure"

    def __init__(self) -> None:
        # Imported lazily: this module must stay importable before (and
        # by) repro.crypto.sha1/sha256, which dispatch through us.
        from repro.crypto.hmac_impl import hmac_digest
        from repro.crypto.sha1 import Sha1
        from repro.crypto.sha256 import Sha256

        self._sha1_cls = Sha1
        self._sha256_cls = Sha256
        self._hmac_digest = hmac_digest
        self._crt_contexts = _CrtContextCache()

    def sha1(self, data: bytes) -> bytes:
        return self._sha1_cls(data).digest()

    def sha256(self, data: bytes) -> bytes:
        return self._sha256_cls(data).digest()

    def new_sha1(self, data: bytes = b""):
        return self._sha1_cls(data)

    def new_sha256(self, data: bytes = b""):
        return self._sha256_cls(data)

    def hmac_sha1(self, key: bytes, message: bytes) -> bytes:
        return self._hmac_digest(key, message, self._sha1_cls)

    def hmac_sha256(self, key: bytes, message: bytes) -> bytes:
        return self._hmac_digest(key, message, self._sha256_cls)

    # -- RSA: schoolbook square-and-multiply (the reference arm) -------
    def rsa_modexp(self, base: int, exp: int, mod: int) -> int:
        return modexp_binary(base, exp, mod)

    def rsa_sign_crt(self, key, c: int) -> int:
        return self._crt_contexts.get(key).sign(c, modexp_binary)

    def rsa_verify(self, public, m: int) -> int:
        return modexp_binary(m, public.e, public.n)


class AccelBackend:
    """``hashlib``/``hmac``/built-in ``pow`` — same functions, C speed.

    For RSA the C implementation behind three-argument ``pow`` *is* a
    windowed modular exponentiation; at the operand sizes used here it
    beats every Python-level strategy (including the Montgomery /
    fixed-window code in :mod:`repro.crypto.modexp`, which pays
    interpreter dispatch per multiplication — the ``rsax`` microbench
    cell records the comparison each run).  The accel arm therefore
    dispatches modexp to ``pow`` and spends its effort where Python
    overhead actually lives: precomputed, cached per-key CRT contexts
    for private operations.
    """

    name = "accel"

    def __init__(self) -> None:
        self._crt_contexts = _CrtContextCache()

    def sha1(self, data: bytes) -> bytes:
        return hashlib.sha1(bytes(data)).digest()

    def sha256(self, data: bytes) -> bytes:
        return hashlib.sha256(bytes(data)).digest()

    def new_sha1(self, data: bytes = b""):
        return hashlib.sha1(bytes(data))

    def new_sha256(self, data: bytes = b""):
        return hashlib.sha256(bytes(data))

    def hmac_sha1(self, key: bytes, message: bytes) -> bytes:
        return _std_hmac.digest(key, message, "sha1")

    def hmac_sha256(self, key: bytes, message: bytes) -> bytes:
        return _std_hmac.digest(key, message, "sha256")

    # -- RSA: built-in pow + cached CRT contexts -----------------------
    def rsa_modexp(self, base: int, exp: int, mod: int) -> int:
        return pow(base, exp, mod)

    def rsa_sign_crt(self, key, c: int) -> int:
        return self._crt_contexts.get(key).sign(c, pow)

    def rsa_verify(self, public, m: int) -> int:
        return pow(m, public.e, public.n)


def gmpy2_available() -> bool:
    """True when the optional ``gmpy2`` package is importable."""
    try:
        import gmpy2  # noqa: F401
    except ImportError:
        return False
    return True


class GmpBackend(AccelBackend):
    """The ``accel`` arm with RSA modexp delegated to ``gmpy2.powmod``.

    Hashes stay on ``hashlib``/``hmac`` (already C); only the bignum
    arithmetic moves to GMP.  Results are converted back to built-in
    ``int`` at the boundary so every downstream byte — serializations,
    digests, state hashes — is produced by the same code paths as the
    other arms.
    """

    name = "gmpy2"

    def __init__(self) -> None:
        try:
            import gmpy2
        except ImportError as exc:
            raise ValueError(
                "crypto backend 'gmpy2' requires the optional gmpy2 "
                "package (pip install gmpy2)"
            ) from exc
        super().__init__()
        self._powmod = gmpy2.powmod
        self._mpz = gmpy2.mpz

    def rsa_modexp(self, base: int, exp: int, mod: int) -> int:
        return int(self._powmod(base, exp, mod))

    def rsa_sign_crt(self, key, c: int) -> int:
        ctx = self._crt_contexts.get(key)
        return ctx.sign(c, lambda b, e, m: int(self._powmod(b, e, m)))

    def rsa_verify(self, public, m: int) -> int:
        return int(self._powmod(m, public.e, public.n))


_FACTORIES = {"pure": PureBackend, "accel": AccelBackend, "gmpy2": GmpBackend}

#: The active backend instance.  ``None`` until first use so the
#: environment variable is read lazily (imports must not depend on
#: process environment order).
_active = None


def _resolve_default() -> str:
    name = os.environ.get(ENV_VAR, DEFAULT_BACKEND)
    if name not in _FACTORIES:
        raise ValueError(
            f"{ENV_VAR}={name!r}: unknown crypto backend "
            f"(choose from {', '.join(BACKEND_NAMES)})"
        )
    return name


def resolve_backend_name(name: Optional[str] = None) -> str:
    """Validate a backend choice *eagerly*, before any work starts.

    ``None`` resolves the ``REPRO_CRYPTO_BACKEND`` environment variable
    (default ``accel``).  Raises :class:`ValueError` naming the bad
    value — callers doing argument parsing or pool-worker init use this
    so a typo fails up front instead of at the first crypto call deep
    inside a minutes-long run.  Also rejects ``gmpy2`` when the
    optional package is missing.
    """
    resolved = _resolve_default() if name is None else name
    if resolved not in _FACTORIES:
        source = f"{ENV_VAR}=" if name is None else ""
        raise ValueError(
            f"{source}{resolved!r}: unknown crypto backend "
            f"(choose from {', '.join(BACKEND_NAMES)})"
        )
    if resolved == "gmpy2" and not gmpy2_available():
        raise ValueError(
            "crypto backend 'gmpy2' requires the optional gmpy2 "
            "package (pip install gmpy2)"
        )
    return resolved


def get_backend():
    """The active backend, initializing from ``REPRO_CRYPTO_BACKEND``."""
    global _active
    if _active is None:
        _active = _FACTORIES[_resolve_default()]()
    return _active


def backend_name() -> str:
    """Name of the active backend (``pure`` or ``accel``)."""
    return get_backend().name


def set_backend(name: Optional[str]) -> str:
    """Select the active backend; returns the *previous* backend's name.

    ``None`` re-resolves the default (environment variable, else
    ``accel``) — the hook :class:`~repro.sim.kernel.Simulator` uses so
    ``crypto_backend=None`` means "leave the process setting alone".
    """
    global _active
    previous = backend_name()
    if name is None:
        name = _resolve_default()
    if name not in _FACTORIES:
        raise ValueError(
            f"unknown crypto backend {name!r} "
            f"(choose from {', '.join(BACKEND_NAMES)})"
        )
    if name != previous:
        _active = _FACTORIES[name]()
    return previous


@contextmanager
def use_backend(name: str) -> Iterator[None]:
    """Scoped backend selection (tests and ablation arms)::

        with use_backend("pure"):
            ...  # all hashing goes through the FIPS pseudocode
    """
    previous = set_backend(name)
    try:
        yield
    finally:
        set_backend(previous)


# ---------------------------------------------------------------------------
# RSA entry points: dispatch + op accounting
# ---------------------------------------------------------------------------

#: Counted RSA operations since process start (or the last reset).
#: Counts are a pure function of the simulated work — identical across
#: backend arms and worker placements — so the bench runner records
#: them per cell next to wall time.
_RSA_OPS = {"modexp": 0, "sign_crt": 0, "verify": 0}


def rsa_modexp(base: int, exp: int, mod: int) -> int:
    """``base^exp mod n`` through the active backend (Miller–Rabin
    witnesses, raw exponentiations)."""
    _RSA_OPS["modexp"] += 1
    return get_backend().rsa_modexp(base, exp, mod)


def rsa_sign_crt(key, c: int) -> int:
    """Private-key operation ``c^d mod n`` via CRT through the active
    backend; ``key`` is an :class:`~repro.crypto.rsa.RsaKeyPair`."""
    _RSA_OPS["sign_crt"] += 1
    return get_backend().rsa_sign_crt(key, c)


def rsa_verify(public, m: int) -> int:
    """Public-key operation ``m^e mod n`` through the active backend
    (signature verification and encryption share it)."""
    _RSA_OPS["verify"] += 1
    return get_backend().rsa_verify(public, m)


def rsa_op_counts() -> Dict[str, int]:
    """Snapshot of the RSA op counters (modexp / sign_crt / verify)."""
    return dict(_RSA_OPS)


def reset_rsa_op_counts() -> None:
    """Zero the process-wide RSA op counters (see :func:`rsa_op_counts`)."""
    for op in _RSA_OPS:
        _RSA_OPS[op] = 0
