"""Pluggable crypto backend: ``pure`` FIPS pseudocode vs ``accel`` stdlib.

Every virtual-time number in the reproduction is paid for in real CPU:
all randomness flows through :class:`~repro.crypto.drbg.HmacDrbg` (three
HMAC-SHA256 calls per generate), every PCR extend and SLB measurement
through SHA-1 (a 256 KB SKINIT measurement is ~4096 compression rounds).
With the hand-rolled FIPS 180-4 implementations that cost is interpreter
time, not crypto time.

This module makes the primitive layer pluggable:

``pure``
    The repository's own FIPS-pseudocode implementations
    (:mod:`repro.crypto.sha1`, :mod:`repro.crypto.sha256`,
    :func:`repro.crypto.hmac_impl.hmac_digest`).  The reference arm.

``accel``
    ``hashlib`` / ``hmac`` from the standard library.  Identical output
    by construction (same FIPS functions); the differential fuzz tests
    in ``tests/test_crypto_backend.py`` enforce bit-for-bit agreement
    across block boundaries and over long DRBG streams.

The backend affects **wall-clock only**.  Virtual-time results are a
pure function of seed + schedule (see DESIGN.md "determinism
contract"); swapping backends can never change an emitted number, only
how fast it is computed.

Selection: ``accel`` by default, overridable with the
``REPRO_CRYPTO_BACKEND`` environment variable, programmatically with
:func:`set_backend`, per-scope with :func:`use_backend`, or per
experiment via ``Simulator(crypto_backend=...)``.
"""

from __future__ import annotations

import hashlib
import hmac as _std_hmac
import os
from contextlib import contextmanager
from typing import Iterator, Optional

DEFAULT_BACKEND = "accel"
ENV_VAR = "REPRO_CRYPTO_BACKEND"

BACKEND_NAMES = ("pure", "accel")


class PureBackend:
    """The in-repo FIPS-pseudocode implementations (reference arm)."""

    name = "pure"

    def __init__(self) -> None:
        # Imported lazily: this module must stay importable before (and
        # by) repro.crypto.sha1/sha256, which dispatch through us.
        from repro.crypto.hmac_impl import hmac_digest
        from repro.crypto.sha1 import Sha1
        from repro.crypto.sha256 import Sha256

        self._sha1_cls = Sha1
        self._sha256_cls = Sha256
        self._hmac_digest = hmac_digest

    def sha1(self, data: bytes) -> bytes:
        return self._sha1_cls(data).digest()

    def sha256(self, data: bytes) -> bytes:
        return self._sha256_cls(data).digest()

    def new_sha1(self, data: bytes = b""):
        return self._sha1_cls(data)

    def new_sha256(self, data: bytes = b""):
        return self._sha256_cls(data)

    def hmac_sha1(self, key: bytes, message: bytes) -> bytes:
        return self._hmac_digest(key, message, self._sha1_cls)

    def hmac_sha256(self, key: bytes, message: bytes) -> bytes:
        return self._hmac_digest(key, message, self._sha256_cls)


class AccelBackend:
    """``hashlib``/``hmac`` delegation — same FIPS functions, C speed."""

    name = "accel"

    def sha1(self, data: bytes) -> bytes:
        return hashlib.sha1(bytes(data)).digest()

    def sha256(self, data: bytes) -> bytes:
        return hashlib.sha256(bytes(data)).digest()

    def new_sha1(self, data: bytes = b""):
        return hashlib.sha1(bytes(data))

    def new_sha256(self, data: bytes = b""):
        return hashlib.sha256(bytes(data))

    def hmac_sha1(self, key: bytes, message: bytes) -> bytes:
        return _std_hmac.digest(key, message, "sha1")

    def hmac_sha256(self, key: bytes, message: bytes) -> bytes:
        return _std_hmac.digest(key, message, "sha256")


_FACTORIES = {"pure": PureBackend, "accel": AccelBackend}

#: The active backend instance.  ``None`` until first use so the
#: environment variable is read lazily (imports must not depend on
#: process environment order).
_active = None


def _resolve_default() -> str:
    name = os.environ.get(ENV_VAR, DEFAULT_BACKEND)
    if name not in _FACTORIES:
        raise ValueError(
            f"{ENV_VAR}={name!r}: unknown crypto backend "
            f"(choose from {', '.join(BACKEND_NAMES)})"
        )
    return name


def get_backend():
    """The active backend, initializing from ``REPRO_CRYPTO_BACKEND``."""
    global _active
    if _active is None:
        _active = _FACTORIES[_resolve_default()]()
    return _active


def backend_name() -> str:
    """Name of the active backend (``pure`` or ``accel``)."""
    return get_backend().name


def set_backend(name: Optional[str]) -> str:
    """Select the active backend; returns the *previous* backend's name.

    ``None`` re-resolves the default (environment variable, else
    ``accel``) — the hook :class:`~repro.sim.kernel.Simulator` uses so
    ``crypto_backend=None`` means "leave the process setting alone".
    """
    global _active
    previous = backend_name()
    if name is None:
        name = _resolve_default()
    if name not in _FACTORIES:
        raise ValueError(
            f"unknown crypto backend {name!r} "
            f"(choose from {', '.join(BACKEND_NAMES)})"
        )
    if name != previous:
        _active = _FACTORIES[name]()
    return previous


@contextmanager
def use_backend(name: str) -> Iterator[None]:
    """Scoped backend selection (tests and ablation arms)::

        with use_backend("pure"):
            ...  # all hashing goes through the FIPS pseudocode
    """
    previous = set_backend(name)
    try:
        yield
    finally:
        set_backend(previous)
