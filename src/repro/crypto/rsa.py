"""RSA key generation and raw modular operations.

The TPM 1.2 key hierarchy (EK, SRK, AIKs, storage and signing keys) is
RSA; quotes are RSA-PKCS#1 v1.5 signatures.  Keys default to 1024 bits —
the era-accurate TPM default — but all sizes >= 512 are accepted so tests
can use fast small keys when only structural identity matters.

Private operations use the Chinese Remainder Theorem, as real TPM
firmware does.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.drbg import HmacDrbg
from repro.crypto.primes import generate_safe_exponent_prime

DEFAULT_PUBLIC_EXPONENT = 65537
DEFAULT_KEY_BITS = 1024


def _modinv(a: int, m: int) -> int:
    """Modular inverse by extended Euclid; raises if gcd(a, m) != 1."""
    g, x = _extended_gcd(a, m)
    if g != 1:
        raise ValueError("modular inverse does not exist")
    return x % m


def _extended_gcd(a: int, b: int) -> tuple:
    old_r, r = a, b
    old_s, s = 1, 0
    while r:
        quotient = old_r // r
        old_r, r = r, old_r - quotient * r
        old_s, s = s, old_s - quotient * s
    return old_r, old_s


@dataclass(frozen=True)
class RsaPublicKey:
    """Public half: modulus n and exponent e."""

    n: int
    e: int

    @property
    def bits(self) -> int:
        return self.n.bit_length()

    @property
    def byte_length(self) -> int:
        return (self.n.bit_length() + 7) // 8

    def raw_encrypt(self, m: int) -> int:
        """c = m^e mod n (no padding — callers use pkcs1)."""
        if not 0 <= m < self.n:
            raise ValueError("message representative out of range")
        return pow(m, self.e, self.n)

    raw_verify = raw_encrypt  # verification is the same public-key operation

    def fingerprint(self) -> bytes:
        """SHA-1 over the serialized public key; used as a key identity."""
        from repro.crypto.sha1 import sha1

        return sha1(self.to_bytes())

    def to_bytes(self) -> bytes:
        """Length-prefixed big-endian serialization of (n, e)."""
        n_bytes = self.n.to_bytes(self.byte_length, "big")
        e_bytes = self.e.to_bytes((self.e.bit_length() + 7) // 8 or 1, "big")
        return (
            len(n_bytes).to_bytes(4, "big")
            + n_bytes
            + len(e_bytes).to_bytes(4, "big")
            + e_bytes
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "RsaPublicKey":
        n_len = int.from_bytes(data[:4], "big")
        n = int.from_bytes(data[4 : 4 + n_len], "big")
        offset = 4 + n_len
        e_len = int.from_bytes(data[offset : offset + 4], "big")
        e = int.from_bytes(data[offset + 4 : offset + 4 + e_len], "big")
        if n <= 0 or e <= 0:
            raise ValueError("malformed public key serialization")
        return cls(n=n, e=e)


@dataclass(frozen=True)
class RsaKeyPair:
    """Full key pair with CRT parameters."""

    public: RsaPublicKey
    d: int
    p: int
    q: int
    d_p: int
    d_q: int
    q_inv: int

    @property
    def n(self) -> int:
        return self.public.n

    @property
    def byte_length(self) -> int:
        return self.public.byte_length

    def raw_decrypt(self, c: int) -> int:
        """m = c^d mod n via CRT (≈4x faster than the naive exponent)."""
        if not 0 <= c < self.n:
            raise ValueError("ciphertext representative out of range")
        m1 = pow(c, self.d_p, self.p)
        m2 = pow(c, self.d_q, self.q)
        h = (self.q_inv * (m1 - m2)) % self.p
        return m2 + h * self.q

    raw_sign = raw_decrypt  # signing is the same private-key operation


#: Keygen replay cache.  HMAC-DRBG output is a pure function of its
#: (key, value) state, so identical entry state + parameters yield the
#: identical keypair and leave the generator in the identical exit
#: state.  Every re-seeded world (each experiment repetition, each
#: test) replays its prime search from here instead of re-running ~20 s
#: of pure-Python arithmetic; results are bit-identical either way.
_KEYGEN_CACHE: dict = {}


def generate_rsa_keypair(
    bits: int,
    drbg: HmacDrbg,
    e: int = DEFAULT_PUBLIC_EXPONENT,
) -> RsaKeyPair:
    """Generate an RSA key pair of (approximately) ``bits`` modulus bits."""
    if bits < 512:
        raise ValueError(f"refusing RSA keys under 512 bits (got {bits})")
    entry_key, entry_value, entry_count = drbg.snapshot()
    cache_key = (bits, e, entry_key, entry_value)
    cached = _KEYGEN_CACHE.get(cache_key)
    if cached is not None:
        keypair, exit_key, exit_value, consumed = cached
        drbg.restore((exit_key, exit_value, entry_count + consumed))
        return keypair
    keypair = _generate_rsa_keypair(bits, drbg, e)
    exit_key, exit_value, exit_count = drbg.snapshot()
    _KEYGEN_CACHE[cache_key] = (
        keypair, exit_key, exit_value, exit_count - entry_count,
    )
    return keypair


def _generate_rsa_keypair(bits: int, drbg: HmacDrbg, e: int) -> RsaKeyPair:
    half = bits // 2
    while True:
        p = generate_safe_exponent_prime(half, drbg, e)
        q = generate_safe_exponent_prime(bits - half, drbg, e)
        if p == q:
            continue
        n = p * q
        if n.bit_length() < bits - 1:
            continue
        phi = (p - 1) * (q - 1)
        d = _modinv(e, phi)
        return RsaKeyPair(
            public=RsaPublicKey(n=n, e=e),
            d=d,
            p=p,
            q=q,
            d_p=d % (p - 1),
            d_q=d % (q - 1),
            q_inv=_modinv(q, p),
        )
