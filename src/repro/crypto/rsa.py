"""RSA key generation and raw modular operations.

The TPM 1.2 key hierarchy (EK, SRK, AIKs, storage and signing keys) is
RSA; quotes are RSA-PKCS#1 v1.5 signatures.  Keys default to 1024 bits —
the era-accurate TPM default — but all sizes >= 512 are accepted so tests
can use fast small keys when only structural identity matters.

Private operations use the Chinese Remainder Theorem, as real TPM
firmware does.

The raw modular operations dispatch through the RSA entry points of
:mod:`repro.crypto.backend` (``rsa_verify`` for the public op,
``rsa_sign_crt`` for the private op), so the ``pure`` / ``accel`` /
``gmpy2`` arms apply uniformly to every signature, quote and sealed
blob in the system — bit-identically, wall-clock only.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict

from repro.crypto import backend as _backend
from repro.crypto.drbg import HmacDrbg
from repro.crypto.primes import generate_safe_exponent_prime

DEFAULT_PUBLIC_EXPONENT = 65537
DEFAULT_KEY_BITS = 1024


def _modinv(a: int, m: int) -> int:
    """Modular inverse by extended Euclid; raises if gcd(a, m) != 1."""
    g, x = _extended_gcd(a, m)
    if g != 1:
        raise ValueError("modular inverse does not exist")
    return x % m


def _extended_gcd(a: int, b: int) -> tuple:
    old_r, r = a, b
    old_s, s = 1, 0
    while r:
        quotient = old_r // r
        old_r, r = r, old_r - quotient * r
        old_s, s = s, old_s - quotient * s
    return old_r, old_s


@dataclass(frozen=True)
class RsaPublicKey:
    """Public half: modulus n and exponent e."""

    n: int
    e: int

    @property
    def bits(self) -> int:
        return self.n.bit_length()

    @property
    def byte_length(self) -> int:
        return (self.n.bit_length() + 7) // 8

    def raw_encrypt(self, m: int) -> int:
        """c = m^e mod n (no padding — callers use pkcs1)."""
        if not 0 <= m < self.n:
            raise ValueError("message representative out of range")
        return _backend.rsa_verify(self, m)

    raw_verify = raw_encrypt  # verification is the same public-key operation

    def fingerprint(self) -> bytes:
        """SHA-1 over the serialized public key; used as a key identity."""
        from repro.crypto.sha1 import sha1

        return sha1(self.to_bytes())

    def to_bytes(self) -> bytes:
        """Length-prefixed big-endian serialization of (n, e)."""
        n_bytes = self.n.to_bytes(self.byte_length, "big")
        e_bytes = self.e.to_bytes((self.e.bit_length() + 7) // 8 or 1, "big")
        return (
            len(n_bytes).to_bytes(4, "big")
            + n_bytes
            + len(e_bytes).to_bytes(4, "big")
            + e_bytes
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "RsaPublicKey":
        """Strict inverse of :meth:`to_bytes`.

        Every declared length is validated against the buffer and every
        byte must be consumed: a truncated ``n``/``e`` slice or trailing
        garbage raises instead of silently yielding a *different* key
        with a *different* fingerprint — a parsing bug that would turn
        a corrupted enrollment message into a wrong identity rather
        than a loud error.
        """
        if len(data) < 4:
            raise ValueError("malformed public key serialization: "
                             "truncated n length prefix")
        n_len = int.from_bytes(data[:4], "big")
        offset = 4 + n_len
        if n_len == 0 or len(data) < offset:
            raise ValueError("malformed public key serialization: "
                             f"declared n length {n_len} exceeds buffer")
        n = int.from_bytes(data[4:offset], "big")
        if len(data) < offset + 4:
            raise ValueError("malformed public key serialization: "
                             "truncated e length prefix")
        e_len = int.from_bytes(data[offset : offset + 4], "big")
        end = offset + 4 + e_len
        if e_len == 0 or len(data) < end:
            raise ValueError("malformed public key serialization: "
                             f"declared e length {e_len} exceeds buffer")
        e = int.from_bytes(data[offset + 4 : end], "big")
        if len(data) != end:
            raise ValueError("malformed public key serialization: "
                             f"{len(data) - end} unconsumed trailing bytes")
        if n <= 0 or e <= 0:
            raise ValueError("malformed public key serialization")
        return cls(n=n, e=e)


@dataclass(frozen=True)
class RsaKeyPair:
    """Full key pair with CRT parameters."""

    public: RsaPublicKey
    d: int
    p: int
    q: int
    d_p: int
    d_q: int
    q_inv: int

    @property
    def n(self) -> int:
        return self.public.n

    @property
    def byte_length(self) -> int:
        return self.public.byte_length

    def raw_decrypt(self, c: int) -> int:
        """m = c^d mod n via CRT (≈4x faster than the naive exponent).

        Dispatches through the backend's ``rsa_sign_crt`` entry point;
        every arm recombines with the same Garner formula over a cached
        per-key CRT context (range check included there)."""
        return _backend.rsa_sign_crt(self, c)

    raw_sign = raw_decrypt  # signing is the same private-key operation


#: Keygen replay cache.  HMAC-DRBG output is a pure function of its
#: (key, value) state, so identical entry state + parameters yield the
#: identical keypair and leave the generator in the identical exit
#: state.  Every re-seeded world (each experiment repetition, each
#: test) replays its prime search from here instead of re-running ~20 s
#: of pure-Python arithmetic; results are bit-identical either way.
#:
#: The cache is **bounded**: entries are LRU-evicted past
#: :data:`KEYGEN_CACHE_LIMIT`, so a long pytest session or a pooled
#: worker that churns through many distinct seeds cannot grow it
#: without limit.  Eviction only costs a future re-generation — never
#: correctness.
_KEYGEN_CACHE: "OrderedDict" = OrderedDict()

#: Generous relative to any single run: the full experiment matrix
#: touches a few dozen distinct (bits, e, entry-state) tuples.
KEYGEN_CACHE_LIMIT = 128

_KEYGEN_CACHE_STATS = {"hits": 0, "misses": 0, "evictions": 0}


def keygen_cache_stats() -> Dict[str, int]:
    """Hits / misses / evictions since process start (or last clear)."""
    return dict(_KEYGEN_CACHE_STATS, entries=len(_KEYGEN_CACHE))


def clear_keygen_cache() -> None:
    """Drop every cached keypair and reset the counters.

    Test fixtures use this to get cold-cache behaviour deterministically
    instead of depending on what earlier tests happened to generate.
    """
    _KEYGEN_CACHE.clear()
    for counter in _KEYGEN_CACHE_STATS:
        _KEYGEN_CACHE_STATS[counter] = 0


def generate_rsa_keypair(
    bits: int,
    drbg: HmacDrbg,
    e: int = DEFAULT_PUBLIC_EXPONENT,
) -> RsaKeyPair:
    """Generate an RSA key pair of (approximately) ``bits`` modulus bits."""
    if bits < 512:
        raise ValueError(f"refusing RSA keys under 512 bits (got {bits})")
    entry_key, entry_value, entry_count = drbg.snapshot()
    cache_key = (bits, e, entry_key, entry_value)
    cached = _KEYGEN_CACHE.get(cache_key)
    if cached is not None:
        _KEYGEN_CACHE.move_to_end(cache_key)
        _KEYGEN_CACHE_STATS["hits"] += 1
        keypair, exit_key, exit_value, consumed = cached
        drbg.restore((exit_key, exit_value, entry_count + consumed))
        return keypair
    _KEYGEN_CACHE_STATS["misses"] += 1
    keypair = _generate_rsa_keypair(bits, drbg, e)
    exit_key, exit_value, exit_count = drbg.snapshot()
    _KEYGEN_CACHE[cache_key] = (
        keypair, exit_key, exit_value, exit_count - entry_count,
    )
    while len(_KEYGEN_CACHE) > KEYGEN_CACHE_LIMIT:
        _KEYGEN_CACHE.popitem(last=False)
        _KEYGEN_CACHE_STATS["evictions"] += 1
    return keypair


def _generate_rsa_keypair(bits: int, drbg: HmacDrbg, e: int) -> RsaKeyPair:
    half = bits // 2
    while True:
        p = generate_safe_exponent_prime(half, drbg, e)
        q = generate_safe_exponent_prime(bits - half, drbg, e)
        if p == q:
            continue
        n = p * q
        if n.bit_length() < bits - 1:
            continue
        phi = (p - 1) * (q - 1)
        d = _modinv(e, phi)
        return RsaKeyPair(
            public=RsaPublicKey(n=n, e=e),
            d=d,
            p=p,
            q=q,
            d_p=d % (p - 1),
            d_q=d % (q - 1),
            q_inv=_modinv(q, p),
        )
