"""PKCS#1 v1.5 signatures and encryption (RFC 3447 / RSASSA- and
RSAES-PKCS1-v1_5).

TPM 1.2 signs quotes with RSASSA-PKCS1-v1_5 over SHA-1; the Privacy CA
and the setup-phase key certification in `repro.core` use the same
scheme.  Encryption padding is used for the small asymmetric layer of
sealed blobs.

All modular arithmetic flows through ``RsaPublicKey.raw_verify`` /
``RsaKeyPair.raw_sign``, which dispatch to the active
:mod:`repro.crypto.backend` RSA arm — so every padding check here is
bit-identical across ``pure``/``accel``/``gmpy2``.
:func:`pkcs1_verify_many` amortizes the per-call setup when a verifier
checks a whole ``tx.confirm_batch`` leg under one public key.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

from repro.crypto.drbg import HmacDrbg
from repro.crypto.rsa import RsaKeyPair, RsaPublicKey
from repro.crypto.sha1 import Sha1, sha1
from repro.crypto.sha256 import Sha256, sha256


class SignatureError(ValueError):
    """Raised when a signature or padding check fails."""


# DigestInfo prefixes from RFC 3447 section 9.2.
_DIGEST_INFO_PREFIX = {
    "sha1": bytes.fromhex("3021300906052b0e03021a05000414"),
    "sha256": bytes.fromhex("3031300d060960864801650304020105000420"),
}

_HASHERS = {"sha1": sha1, "sha256": sha256}
_DIGEST_SIZES = {"sha1": Sha1.digest_size, "sha256": Sha256.digest_size}


def _encode_digest_info(message: bytes, hash_name: str, prehashed: bool) -> bytes:
    if hash_name not in _DIGEST_INFO_PREFIX:
        raise ValueError(f"unsupported hash {hash_name!r}")
    if prehashed:
        digest = message
        if len(digest) != _DIGEST_SIZES[hash_name]:
            raise ValueError(
                f"prehashed digest has wrong length for {hash_name}: {len(digest)}"
            )
    else:
        digest = _HASHERS[hash_name](message)
    return _DIGEST_INFO_PREFIX[hash_name] + digest


def _emsa_pkcs1_encode(
    message: bytes, em_len: int, hash_name: str, prehashed: bool
) -> bytes:
    t = _encode_digest_info(message, hash_name, prehashed)
    if em_len < len(t) + 11:
        raise SignatureError("intended encoded message length too short")
    padding = b"\xff" * (em_len - len(t) - 3)
    return b"\x00\x01" + padding + b"\x00" + t


def pkcs1_sign(
    key: RsaKeyPair,
    message: bytes,
    hash_name: str = "sha1",
    prehashed: bool = False,
) -> bytes:
    """RSASSA-PKCS1-v1_5 signature of ``message``."""
    em = _emsa_pkcs1_encode(message, key.byte_length, hash_name, prehashed)
    signature_int = key.raw_sign(int.from_bytes(em, "big"))
    return signature_int.to_bytes(key.byte_length, "big")


def pkcs1_verify(
    public: RsaPublicKey,
    message: bytes,
    signature: bytes,
    hash_name: str = "sha1",
    prehashed: bool = False,
) -> bool:
    """Verify an RSASSA-PKCS1-v1_5 signature; returns True/False."""
    if len(signature) != public.byte_length:
        return False
    try:
        em_int = public.raw_verify(int.from_bytes(signature, "big"))
        expected = _emsa_pkcs1_encode(
            message, public.byte_length, hash_name, prehashed
        )
    except (ValueError, SignatureError):
        return False
    # Integer compare: em_int == big-endian(expected) iff the encoded
    # messages match, without materializing em_int back to bytes.
    return em_int == int.from_bytes(expected, "big")


def pkcs1_verify_many(
    public: RsaPublicKey,
    items: Iterable[Tuple[bytes, bytes]],
    hash_name: str = "sha1",
    prehashed: bool = False,
) -> List[bool]:
    """Verify many ``(message, signature)`` pairs under one public key.

    One-pass helper for ``tx.confirm_batch`` legs: the key's byte
    length and the padding prefix are resolved once and each pair gets
    exactly the verdict :func:`pkcs1_verify` would give it (the loop is
    total — a malformed pair yields ``False``, never an exception).
    """
    k = public.byte_length
    verdicts: List[bool] = []
    for message, signature in items:
        if len(signature) != k:
            verdicts.append(False)
            continue
        try:
            em_int = public.raw_verify(int.from_bytes(signature, "big"))
            expected = _emsa_pkcs1_encode(message, k, hash_name, prehashed)
        except (ValueError, SignatureError):
            verdicts.append(False)
            continue
        verdicts.append(em_int == int.from_bytes(expected, "big"))
    return verdicts


def require_valid_signature(
    public: RsaPublicKey,
    message: bytes,
    signature: bytes,
    hash_name: str = "sha1",
    prehashed: bool = False,
) -> None:
    """Verify or raise :class:`SignatureError` (verifier-side helper)."""
    if not pkcs1_verify(public, message, signature, hash_name, prehashed):
        raise SignatureError("PKCS#1 v1.5 signature verification failed")


def pkcs1_encrypt(public: RsaPublicKey, message: bytes, drbg: HmacDrbg) -> bytes:
    """RSAES-PKCS1-v1_5 encryption of a short ``message``."""
    k = public.byte_length
    if len(message) > k - 11:
        raise ValueError(f"message too long for {k}-byte modulus: {len(message)}")
    padding = bytearray()
    while len(padding) < k - len(message) - 3:
        byte = drbg.generate(1)
        if byte != b"\x00":
            padding += byte
    em = b"\x00\x02" + bytes(padding) + b"\x00" + message
    ciphertext_int = public.raw_encrypt(int.from_bytes(em, "big"))
    return ciphertext_int.to_bytes(k, "big")


def pkcs1_decrypt(key: RsaKeyPair, ciphertext: bytes) -> bytes:
    """RSAES-PKCS1-v1_5 decryption; raises :class:`SignatureError` on
    malformed padding."""
    k = key.byte_length
    if len(ciphertext) != k:
        raise SignatureError("ciphertext length mismatch")
    em_int = key.raw_decrypt(int.from_bytes(ciphertext, "big"))
    em = em_int.to_bytes(k, "big")
    if not em.startswith(b"\x00\x02"):
        raise SignatureError("bad encryption padding header")
    try:
        separator = em.index(b"\x00", 2)
    except ValueError as exc:
        raise SignatureError("missing padding separator") from exc
    if separator < 10:
        raise SignatureError("padding string too short")
    return em[separator + 1 :]
