"""Cryptographic substrate (system S2), implemented from scratch.

A v1.2 TPM is, internally, SHA-1 + HMAC + RSA.  To keep the reproduction
self-contained the primitives are implemented here in pure Python and
cross-checked against `hashlib`/`hmac` in the test suite:

* :mod:`repro.crypto.sha1`, :mod:`repro.crypto.sha256` — Merkle–Damgård
  hash cores written from the FIPS pseudocode.
* :mod:`repro.crypto.hmac_impl` — HMAC (RFC 2104) over either hash.
* :mod:`repro.crypto.drbg` — HMAC-DRBG (NIST SP 800-90A shape) providing
  deterministic randomness for key generation and nonces.
* :mod:`repro.crypto.primes` — Miller–Rabin probable-prime generation.
* :mod:`repro.crypto.rsa` — RSA key generation and raw modular exponent
  operations (CRT on the private side).
* :mod:`repro.crypto.pkcs1` — PKCS#1 v1.5 signatures and encryption
  (the signature scheme TPM 1.2 quotes actually use).
* :mod:`repro.crypto.oaep` — RSAES-OAEP with MGF1-SHA1 (what the TPM
  uses for EK encryption, e.g. AIK activation blobs).
* :mod:`repro.crypto.stream` — an HMAC-counter keystream cipher with
  encrypt-then-MAC, used for the symmetric layer of sealed blobs.

Performance note: RSA keygen in pure Python is slow for large moduli, so
components default to 1024-bit keys (the TPM 1.2 era default) and the test
suite uses smaller keys where identity, not strength, is being tested.

Backend note: the hash/HMAC entry points dispatch through
:mod:`repro.crypto.backend` — ``accel`` (``hashlib``/``hmac``, the
default) or ``pure`` (the FIPS-pseudocode reference, selected with
``REPRO_CRYPTO_BACKEND=pure``).  Both produce bit-identical output;
only wall-clock changes.
"""

from repro.crypto.backend import (
    backend_name,
    get_backend,
    set_backend,
    use_backend,
)
from repro.crypto.drbg import HmacDrbg
from repro.crypto.hmac_impl import hmac_digest, hmac_sha1, hmac_sha256
from repro.crypto.oaep import OaepError, oaep_decrypt, oaep_encrypt
from repro.crypto.pkcs1 import (
    SignatureError,
    pkcs1_decrypt,
    pkcs1_encrypt,
    pkcs1_sign,
    pkcs1_verify,
)
from repro.crypto.primes import generate_prime, is_probable_prime
from repro.crypto.rsa import RsaKeyPair, RsaPublicKey, generate_rsa_keypair
from repro.crypto.sha1 import sha1
from repro.crypto.sha256 import sha256
from repro.crypto.stream import AuthenticationError, open_box, seal_box

__all__ = [
    "backend_name",
    "get_backend",
    "set_backend",
    "use_backend",
    "sha1",
    "sha256",
    "hmac_digest",
    "hmac_sha1",
    "hmac_sha256",
    "HmacDrbg",
    "generate_prime",
    "is_probable_prime",
    "RsaKeyPair",
    "RsaPublicKey",
    "generate_rsa_keypair",
    "pkcs1_sign",
    "pkcs1_verify",
    "pkcs1_encrypt",
    "pkcs1_decrypt",
    "SignatureError",
    "oaep_encrypt",
    "oaep_decrypt",
    "OaepError",
    "seal_box",
    "open_box",
    "AuthenticationError",
]
