"""SHA-256 from the FIPS 180-4 pseudocode.

Used by the higher layers of the reproduction (secure channel MACs,
transaction canonical digests) where the paper's implementation would have
used an OpenSSL SHA-256.  Verified against `hashlib.sha256` in the tests.

The :class:`Sha256` class is the ``pure`` reference arm of
:mod:`repro.crypto.backend`; the module-level :func:`sha256` one-shot
dispatches through the active backend.
"""

from __future__ import annotations

import struct

from repro.crypto import backend as _backend

_MASK32 = 0xFFFFFFFF

SHA256_DIGEST_SIZE = 32
SHA256_BLOCK_SIZE = 64

_K = (
    0x428A2F98, 0x71374491, 0xB5C0FBCF, 0xE9B5DBA5, 0x3956C25B, 0x59F111F1,
    0x923F82A4, 0xAB1C5ED5, 0xD807AA98, 0x12835B01, 0x243185BE, 0x550C7DC3,
    0x72BE5D74, 0x80DEB1FE, 0x9BDC06A7, 0xC19BF174, 0xE49B69C1, 0xEFBE4786,
    0x0FC19DC6, 0x240CA1CC, 0x2DE92C6F, 0x4A7484AA, 0x5CB0A9DC, 0x76F988DA,
    0x983E5152, 0xA831C66D, 0xB00327C8, 0xBF597FC7, 0xC6E00BF3, 0xD5A79147,
    0x06CA6351, 0x14292967, 0x27B70A85, 0x2E1B2138, 0x4D2C6DFC, 0x53380D13,
    0x650A7354, 0x766A0ABB, 0x81C2C92E, 0x92722C85, 0xA2BFE8A1, 0xA81A664B,
    0xC24B8B70, 0xC76C51A3, 0xD192E819, 0xD6990624, 0xF40E3585, 0x106AA070,
    0x19A4C116, 0x1E376C08, 0x2748774C, 0x34B0BCB5, 0x391C0CB3, 0x4ED8AA4A,
    0x5B9CCA4F, 0x682E6FF3, 0x748F82EE, 0x78A5636F, 0x84C87814, 0x8CC70208,
    0x90BEFFFA, 0xA4506CEB, 0xBEF9A3F7, 0xC67178F2,
)

_H0 = (
    0x6A09E667, 0xBB67AE85, 0x3C6EF372, 0xA54FF53A,
    0x510E527F, 0x9B05688C, 0x1F83D9AB, 0x5BE0CD19,
)


def _rotr(value: int, amount: int) -> int:
    return ((value >> amount) | (value << (32 - amount))) & _MASK32


def _compress(state: tuple, block: bytes) -> tuple:
    w = list(struct.unpack(">16I", block))
    for t in range(16, 64):
        s0 = _rotr(w[t - 15], 7) ^ _rotr(w[t - 15], 18) ^ (w[t - 15] >> 3)
        s1 = _rotr(w[t - 2], 17) ^ _rotr(w[t - 2], 19) ^ (w[t - 2] >> 10)
        w.append((w[t - 16] + s0 + w[t - 7] + s1) & _MASK32)

    a, b, c, d, e, f, g, h = state
    for t in range(64):
        big_s1 = _rotr(e, 6) ^ _rotr(e, 11) ^ _rotr(e, 25)
        ch = (e & f) ^ ((~e & _MASK32) & g)
        temp1 = (h + big_s1 + ch + _K[t] + w[t]) & _MASK32
        big_s0 = _rotr(a, 2) ^ _rotr(a, 13) ^ _rotr(a, 22)
        maj = (a & b) ^ (a & c) ^ (b & c)
        temp2 = (big_s0 + maj) & _MASK32
        h = g
        g = f
        f = e
        e = (d + temp1) & _MASK32
        d = c
        c = b
        b = a
        a = (temp1 + temp2) & _MASK32

    return tuple(
        (orig + new) & _MASK32
        for orig, new in zip(state, (a, b, c, d, e, f, g, h))
    )


def _pad(message_length: int) -> bytes:
    padding = b"\x80"
    padding += b"\x00" * ((56 - (message_length + 1) % 64) % 64)
    padding += struct.pack(">Q", message_length * 8)
    return padding


class Sha256:
    """Incremental SHA-256 context."""

    digest_size = SHA256_DIGEST_SIZE
    block_size = SHA256_BLOCK_SIZE
    name = "sha256"

    def __init__(self, data: bytes = b"") -> None:
        self._state = _H0
        self._buffer = b""
        self._length = 0
        if data:
            self.update(data)

    def update(self, data: bytes) -> "Sha256":
        if not isinstance(data, (bytes, bytearray, memoryview)):
            raise TypeError(f"expected bytes-like, got {type(data).__name__}")
        self._length += len(data)
        self._buffer += bytes(data)
        while len(self._buffer) >= SHA256_BLOCK_SIZE:
            block, self._buffer = (
                self._buffer[:SHA256_BLOCK_SIZE],
                self._buffer[SHA256_BLOCK_SIZE:],
            )
            self._state = _compress(self._state, block)
        return self

    def digest(self) -> bytes:
        state = self._state
        tail = self._buffer + _pad(self._length)
        for offset in range(0, len(tail), SHA256_BLOCK_SIZE):
            state = _compress(state, tail[offset : offset + SHA256_BLOCK_SIZE])
        return struct.pack(">8I", *state)

    def hexdigest(self) -> str:
        return self.digest().hex()

    def copy(self) -> "Sha256":
        clone = Sha256()
        clone._state = self._state
        clone._buffer = self._buffer
        clone._length = self._length
        return clone


def sha256(data: bytes) -> bytes:
    """One-shot SHA-256 digest of ``data`` via the active crypto backend."""
    return _backend.get_backend().sha256(data)


def new_sha256(data: bytes = b""):
    """Incremental SHA-256 context from the active crypto backend."""
    return _backend.get_backend().new_sha256(data)
