"""RSAES-OAEP (RFC 3447 §7.1) with MGF1-SHA1.

TPM v1.2 encrypts to the EK with OAEP (label "TCPA"), not PKCS#1 v1.5;
the AIK activation path (`repro.tpm.device._cmd_activate_identity` /
`repro.tpm.ca`) uses this implementation.  Verified by roundtrip and
negative tests in ``tests/test_crypto_oaep.py``.

The modular operations ride ``raw_encrypt``/``raw_decrypt`` and hence
the :mod:`repro.crypto.backend` RSA arms; OAEP output is bit-identical
across ``pure``/``accel``/``gmpy2`` (seed bytes come from the caller's
DRBG, whose stream no arm may alter).
"""

from __future__ import annotations

from repro.crypto.drbg import HmacDrbg
from repro.crypto.rsa import RsaKeyPair, RsaPublicKey
from repro.crypto.sha1 import SHA1_DIGEST_SIZE, sha1


class OaepError(ValueError):
    """Decryption/decoding failure (deliberately unspecific)."""


#: TPM 1.2's OAEP label ("pSecret" in the spec is the ASCII bytes TCPA).
TPM_OAEP_LABEL = b"TCPA"


def mgf1(seed: bytes, length: int) -> bytes:
    """MGF1 mask generation with SHA-1."""
    output = b""
    counter = 0
    while len(output) < length:
        output += sha1(seed + counter.to_bytes(4, "big"))
        counter += 1
    return output[:length]


def _xor(left: bytes, right: bytes) -> bytes:
    return bytes(a ^ b for a, b in zip(left, right))


def oaep_encrypt(
    public: RsaPublicKey,
    message: bytes,
    drbg: HmacDrbg,
    label: bytes = TPM_OAEP_LABEL,
) -> bytes:
    """RSAES-OAEP-ENCRYPT with a DRBG-sourced seed."""
    k = public.byte_length
    h_len = SHA1_DIGEST_SIZE
    if len(message) > k - 2 * h_len - 2:
        raise ValueError(
            f"message too long for {k}-byte modulus under OAEP: {len(message)}"
        )
    l_hash = sha1(label)
    padding = b"\x00" * (k - len(message) - 2 * h_len - 2)
    data_block = l_hash + padding + b"\x01" + message
    seed = drbg.generate(h_len)
    masked_db = _xor(data_block, mgf1(seed, k - h_len - 1))
    masked_seed = _xor(seed, mgf1(masked_db, h_len))
    encoded = b"\x00" + masked_seed + masked_db
    ciphertext_int = public.raw_encrypt(int.from_bytes(encoded, "big"))
    return ciphertext_int.to_bytes(k, "big")


def oaep_decrypt(
    key: RsaKeyPair, ciphertext: bytes, label: bytes = TPM_OAEP_LABEL
) -> bytes:
    """RSAES-OAEP-DECRYPT; raises :class:`OaepError` on any defect.

    All failure modes raise the same exception with the same message —
    the Manger-attack countermeasure a real implementation needs.
    """
    k = key.byte_length
    h_len = SHA1_DIGEST_SIZE
    if len(ciphertext) != k or k < 2 * h_len + 2:
        raise OaepError("decryption error")
    encoded_int = key.raw_decrypt(int.from_bytes(ciphertext, "big"))
    encoded = encoded_int.to_bytes(k, "big")
    first_byte, masked_seed, masked_db = (
        encoded[0],
        encoded[1 : 1 + h_len],
        encoded[1 + h_len :],
    )
    seed = _xor(masked_seed, mgf1(masked_db, h_len))
    data_block = _xor(masked_db, mgf1(seed, k - h_len - 1))
    l_hash = data_block[:h_len]
    rest = data_block[h_len:]
    separator = rest.find(b"\x01")
    # Constant-shape failure evaluation (no early returns on which
    # check failed).
    failed = (
        first_byte != 0
        or l_hash != sha1(label)
        or separator < 0
        or any(rest[:separator])
    )
    if failed:
        raise OaepError("decryption error")
    return rest[separator + 1 :]
