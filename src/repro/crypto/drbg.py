"""Deterministic random bit generator in the HMAC-DRBG (SP 800-90A) shape.

Every source of "hardware" randomness in the reproduction — the TPM's RNG,
key generation, server nonces — draws from an :class:`HmacDrbg` seeded
from the experiment's master seed, which is what makes whole-system runs
bit-reproducible.

The underlying HMAC-SHA256 dispatches through
:mod:`repro.crypto.backend`; the output stream is bit-identical under
the ``pure`` and ``accel`` backends (enforced by the differential tests
in ``tests/test_crypto_backend.py``), so backend choice never perturbs
a seeded experiment.
"""

from __future__ import annotations

from repro.crypto.hmac_impl import hmac_sha256


class HmacDrbg:
    """HMAC-SHA256 DRBG.

    Follows the update/generate structure of SP 800-90A (without the
    reseed-counter bureaucracy, which adds nothing to the experiments).
    """

    def __init__(self, seed: bytes, personalization: bytes = b"") -> None:
        if not seed:
            raise ValueError("DRBG requires a non-empty seed")
        self._key = b"\x00" * 32
        self._value = b"\x01" * 32
        self._update(seed + personalization)
        self.bytes_generated = 0

    def _update(self, provided_data: bytes = b"") -> None:
        self._key = hmac_sha256(self._key, self._value + b"\x00" + provided_data)
        self._value = hmac_sha256(self._key, self._value)
        if provided_data:
            self._key = hmac_sha256(self._key, self._value + b"\x01" + provided_data)
            self._value = hmac_sha256(self._key, self._value)

    def generate(self, num_bytes: int) -> bytes:
        """Return ``num_bytes`` of deterministic pseudo-random output."""
        if num_bytes < 0:
            raise ValueError(f"cannot generate {num_bytes} bytes")
        output = b""
        while len(output) < num_bytes:
            self._value = hmac_sha256(self._key, self._value)
            output += self._value
        self._update()
        self.bytes_generated += num_bytes
        return output[:num_bytes]

    def generate_int(self, bits: int) -> int:
        """Return a uniformly random integer with exactly ``bits`` bits set
        in range (top bit forced to 1 so the width is exact)."""
        if bits < 2:
            raise ValueError("need at least 2 bits")
        num_bytes = (bits + 7) // 8
        raw = int.from_bytes(self.generate(num_bytes), "big")
        raw &= (1 << bits) - 1
        raw |= 1 << (bits - 1)
        return raw

    def generate_below(self, bound: int) -> int:
        """Return a uniform integer in [0, bound) by rejection sampling."""
        if bound <= 0:
            raise ValueError(f"bound must be positive, got {bound}")
        bits = bound.bit_length()
        num_bytes = (bits + 7) // 8
        while True:
            candidate = int.from_bytes(self.generate(num_bytes), "big")
            candidate &= (1 << bits) - 1
            if candidate < bound:
                return candidate

    def snapshot(self) -> tuple:
        """The complete generator state; output is a pure function of it."""
        return (self._key, self._value, self.bytes_generated)

    def restore(self, state: tuple) -> None:
        """Reset to a state captured by :meth:`snapshot`."""
        self._key, self._value, self.bytes_generated = state

    def fork(self, label: bytes) -> "HmacDrbg":
        """Derive an independent child DRBG; used to give each simulated
        device its own stream without sharing state."""
        return HmacDrbg(self.generate(32), personalization=label)
