"""Authenticated symmetric encryption for sealed blobs.

Real TPM 1.2 sealing encrypts under the SRK with OAEP; blobs larger than
one RSA block use a symmetric layer.  Our substitution keeps the same
*interface contract* — confidentiality plus integrity, bound to a secret
key — using an HMAC-SHA256 counter keystream with encrypt-then-MAC.
DESIGN.md records this substitution; none of the paper's claims depend on
the particular symmetric cipher.
"""

from __future__ import annotations

import struct

from repro.crypto.hmac_impl import constant_time_equal, hmac_sha256

_MAC_SIZE = 32
_NONCE_SIZE = 16


class AuthenticationError(ValueError):
    """Raised when a sealed box fails its integrity check."""


def _keystream(key: bytes, nonce: bytes, length: int) -> bytes:
    """HMAC-SHA256 in counter mode: KS_i = HMAC(key, nonce || i)."""
    blocks = []
    for counter in range((length + 31) // 32):
        blocks.append(hmac_sha256(key, nonce + struct.pack(">Q", counter)))
    return b"".join(blocks)[:length]


def _derive(key: bytes, label: bytes) -> bytes:
    return hmac_sha256(key, b"derive:" + label)


def seal_box(key: bytes, plaintext: bytes, nonce: bytes) -> bytes:
    """Encrypt-then-MAC ``plaintext`` under ``key``.

    ``nonce`` must be unique per (key, message); callers draw it from the
    TPM's DRBG.  Layout: nonce || ciphertext || mac.
    """
    if len(nonce) != _NONCE_SIZE:
        raise ValueError(f"nonce must be {_NONCE_SIZE} bytes, got {len(nonce)}")
    enc_key = _derive(key, b"enc")
    mac_key = _derive(key, b"mac")
    ciphertext = bytes(
        p ^ k for p, k in zip(plaintext, _keystream(enc_key, nonce, len(plaintext)))
    )
    mac = hmac_sha256(mac_key, nonce + ciphertext)
    return nonce + ciphertext + mac


def open_box(key: bytes, box: bytes) -> bytes:
    """Verify and decrypt a box produced by :func:`seal_box`."""
    if len(box) < _NONCE_SIZE + _MAC_SIZE:
        raise AuthenticationError("sealed box too short")
    nonce = box[:_NONCE_SIZE]
    ciphertext = box[_NONCE_SIZE:-_MAC_SIZE]
    mac = box[-_MAC_SIZE:]
    enc_key = _derive(key, b"enc")
    mac_key = _derive(key, b"mac")
    expected_mac = hmac_sha256(mac_key, nonce + ciphertext)
    if not constant_time_equal(mac, expected_mac):
        raise AuthenticationError("sealed box MAC mismatch")
    return bytes(
        c ^ k for c, k in zip(ciphertext, _keystream(enc_key, nonce, len(ciphertext)))
    )
