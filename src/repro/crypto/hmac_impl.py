"""HMAC (RFC 2104) over the in-repo hash implementations.

TPM 1.2 uses HMAC-SHA1 for command authorization sessions; the secure
channel in `repro.net` uses HMAC-SHA256 record MACs.  Cross-checked
against the standard library `hmac` module in the tests.

:func:`hmac_digest` is the ``pure`` reference arm of
:mod:`repro.crypto.backend`; the :func:`hmac_sha1` / :func:`hmac_sha256`
entry points (what the TPM, the secure channel and the DRBG call)
dispatch through the active backend.
"""

from __future__ import annotations

from typing import Type, Union

from repro.crypto import backend as _backend
from repro.crypto.sha1 import Sha1
from repro.crypto.sha256 import Sha256

HashClass = Union[Type[Sha1], Type[Sha256]]


def hmac_digest(key: bytes, message: bytes, hash_cls: HashClass) -> bytes:
    """Compute HMAC(key, message) with the given hash class (pure arm)."""
    block_size = hash_cls.block_size
    if len(key) > block_size:
        key = hash_cls(key).digest()
    key = key.ljust(block_size, b"\x00")
    inner_pad = bytes(byte ^ 0x36 for byte in key)
    outer_pad = bytes(byte ^ 0x5C for byte in key)
    inner = hash_cls(inner_pad).update(message).digest()
    return hash_cls(outer_pad).update(inner).digest()


def hmac_sha1(key: bytes, message: bytes) -> bytes:
    """HMAC-SHA1, the TPM 1.2 authorization MAC (backend-dispatched)."""
    return _backend.get_backend().hmac_sha1(key, message)


def hmac_sha256(key: bytes, message: bytes) -> bytes:
    """HMAC-SHA256, used by the secure channel and the DRBG
    (backend-dispatched)."""
    return _backend.get_backend().hmac_sha256(key, message)


def constant_time_equal(left: bytes, right: bytes) -> bool:
    """Compare two byte strings without early exit on the first mismatch.

    The simulation has no real side channels, but verifier code uses this
    anyway so the implementation mirrors what a deployment must do.
    """
    if len(left) != len(right):
        return False
    accumulator = 0
    for a, b in zip(left, right):
        accumulator |= a ^ b
    return accumulator == 0
