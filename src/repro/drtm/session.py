"""FlickerSession: one complete late-launch cycle.

Phases and their accounting (virtual seconds), reported per session in a
:class:`SessionRecord` — this is the raw material of the paper's session
latency breakdown (experiment T2):

========== ==========================================================
suspend    quiescing the OS before SKINIT
skinit     microcode + dynamic PCR reset + SLB hash into PCR 17
pal_tpm    TPM commands issued by the PAL (quote, unseal, sign, ...)
pal_human  waiting for, and consumed by, the human at the keyboard
pal_logic  explicit PAL compute
cap        the PCR 17 session-end cap extend
resume     OS resume (device re-init)
========== ==========================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.drtm.pal import Pal, PalServices
from repro.drtm.sealing import CAP_MEASUREMENT
from repro.drtm.skinit import (
    OS_RESUME_SECONDS,
    OS_SUSPEND_SECONDS,
    perform_skinit,
    teardown_launch,
)
from repro.drtm.slb import SecureLoaderBlock
from repro.hardware.machine import Machine
from repro.sim.kernel import Simulator
from repro.tpm.constants import PCR_DRTM_CODE, TpmError

# Human model: a callable taking (visible_screen_text, max_wait_seconds)
# and returning how long it thought before its keypresses landed (it
# injects them into the keyboard itself).  None means "no human present".
HumanActor = Callable[[str, float], float]

#: span name → SessionRecord.breakdown phase for the launch plumbing.
_PHASE_FOR_SPAN = {
    "drtm.suspend": "suspend",
    "drtm.skinit": "skinit",
    "drtm.cap": "cap",
    "drtm.resume": "resume",
}


def breakdown_from_span(session_span) -> Dict[str, float]:
    """Recover the per-phase breakdown from a ``drtm.session`` span tree.

    The launch phases map one child span each; inside ``drtm.pal`` the
    TPM commands (``tpm.*``) and human waits (``pal.human_wait``) are
    summed and the remainder is PAL logic — the same arithmetic
    :meth:`FlickerSession.run` performs with inline clock marks, so the
    result matches :attr:`SessionRecord.breakdown` to float precision.
    """
    breakdown = {
        "suspend": 0.0, "skinit": 0.0, "pal_tpm": 0.0, "pal_human": 0.0,
        "pal_logic": 0.0, "cap": 0.0, "resume": 0.0,
    }
    for child in session_span.children:
        phase = _PHASE_FOR_SPAN.get(child.name)
        if phase is not None:
            breakdown[phase] += child.duration
        elif child.name == "drtm.pal":
            tpm = sum(
                span.duration
                for span in child.walk()
                if span is not child and span.name.startswith("tpm.")
            )
            human = sum(
                grandchild.duration
                for grandchild in child.children
                if grandchild.name == "pal.human_wait"
            )
            breakdown["pal_tpm"] += tpm
            breakdown["pal_human"] += human
            breakdown["pal_logic"] += child.duration - (tpm + human)
    return breakdown


@dataclass
class SessionRecord:
    """Everything observable about one completed session."""

    outputs: Dict[str, bytes]
    breakdown: Dict[str, float]
    pcr17_during_session: bytes
    slb_measurement: bytes
    aborted: bool = False
    abort_reason: str = ""
    #: True when the abort came from a *transient* TPM fault
    #: (`TpmResult.RETRY`) — the session is safe to rerun as-is.
    abort_transient: bool = False
    #: the human's intrinsic think time (reading + decision + keystroke),
    #: independent of machine latency; see `perceived_overhead`.
    human_pure_seconds: float = 0.0

    @property
    def total_seconds(self) -> float:
        return sum(self.breakdown.values())

    def total_excluding_human(self) -> float:
        return self.total_seconds - self.breakdown.get("pal_human", 0.0)

    @property
    def perceived_overhead(self) -> float:
        """Session time the *machine* added on top of what the human
        would spend reading and deciding anyway.  This is the paper's
        user-facing cost metric: TPM work hidden behind reading time
        does not appear here."""
        return max(self.total_seconds - self.human_pure_seconds, 0.0)


class FlickerSession:
    """Runs PALs on one machine, one at a time.

    Parameters
    ----------
    simulator, machine:
        The platform.
    human:
        Optional human actor consulted when the PAL waits for input.
    os_hooks:
        Optional object with ``suspend()`` / ``resume()`` called around
        the launch (the untrusted OS model registers itself here so its
        malware provably cannot run mid-session).
    """

    def __init__(
        self,
        simulator: Simulator,
        machine: Machine,
        human: Optional[HumanActor] = None,
        os_hooks: Optional[object] = None,
        apply_cap: bool = True,
        protect_dma: bool = True,
        hide_latency: bool = True,
    ) -> None:
        # apply_cap / protect_dma exist for the defense-ablation
        # experiment (A1); production semantics are both True.
        # hide_latency toggles the reading-time overlap optimization
        # (ablation A2): False serializes human think time after all
        # PAL work, as a naive implementation would.
        self.apply_cap = apply_cap
        self.protect_dma = protect_dma
        self.hide_latency = hide_latency
        self.simulator = simulator
        self.machine = machine
        self.human = human
        self.os_hooks = os_hooks
        self.sessions_run = 0
        self.transient_retries = 0
        self._active_services: Optional[PalServices] = None
        self._last_show_at: Optional[float] = None
        self._human_think_accum = 0.0
        self._frames_at_start = 0

    # ------------------------------------------------------------------
    def run(
        self,
        pal: Pal,
        inputs: Dict[str, bytes],
        padded_size: int = 64 * 1024,
    ) -> SessionRecord:
        """Execute one complete late-launch session for ``pal``.

        Under tracing every phase of the launch becomes a child span of
        one ``drtm.session`` span, with the PAL's TPM commands and human
        waits nested below ``drtm.pal`` — the span tree reproduces the
        :class:`SessionRecord` breakdown exactly (see
        :func:`breakdown_from_span`).
        """
        clock = self.simulator.clock
        tracer = self.simulator.tracer
        breakdown: Dict[str, float] = {}

        with tracer.span(
            "drtm.session", pal=pal.name, vendor=self.machine.tpm.profile.vendor
        ) as session_span:
            # -- suspend the OS ---------------------------------------------
            mark = clock.now
            with tracer.span("drtm.suspend"):
                if self.os_hooks is not None:
                    self.os_hooks.suspend()
                clock.advance(OS_SUSPEND_SECONDS)
                self.machine.keyboard.claim("pal")
                self.machine.keyboard.drain("pal")
                self.machine.display.acquire("pal", pin=True)
            breakdown["suspend"] = clock.now - mark

            # -- SKINIT ------------------------------------------------------
            outputs: Dict[str, bytes] = {}
            aborted = False
            abort_reason = ""
            abort_transient = False
            context = None
            self._human_think_accum = 0.0
            mark = clock.now
            with tracer.span("drtm.skinit", padded_size=padded_size):
                slb = SecureLoaderBlock.package(pal, padded_size=padded_size)
                try:
                    context = perform_skinit(
                        self.simulator, self.machine, slb,
                        protect_dma=self.protect_dma,
                    )
                except TpmError as exc:
                    # A *transient* TPM fault during the launch aborts
                    # the session but must not wedge the machine: the
                    # claimed keyboard/display are released below and
                    # the caller may simply rerun.  Anything else is a
                    # genuine platform error and propagates as before.
                    if not exc.transient:
                        raise
                    aborted = True
                    abort_reason = f"{type(exc).__name__}: {exc}"
                    abort_transient = True
            breakdown["skinit"] = clock.now - mark
            pcr17 = self.machine.tpm.pcrs.read(PCR_DRTM_CODE)

            if context is not None:
                # -- run the PAL ---------------------------------------------
                services = PalServices(self)
                self._active_services = services
                self._last_show_at = None
                self._human_think_accum = 0.0
                self._frames_at_start = len(self.machine.display.frames)
                mark = clock.now
                with tracer.span("drtm.pal", pal=pal.name):
                    try:
                        outputs = pal.run(services, inputs)
                    except Exception as exc:  # PAL aborts must not wedge the machine
                        aborted = True
                        abort_reason = f"{type(exc).__name__}: {exc}"
                        abort_transient = (
                            isinstance(exc, TpmError) and exc.transient
                        )
                    finally:
                        self._active_services = None
                pal_total = clock.now - mark
                breakdown["pal_tpm"] = services.timings["tpm"]
                breakdown["pal_human"] = services.timings["human"]
                breakdown["pal_logic"] = pal_total - (
                    services.timings["tpm"] + services.timings["human"]
                )

                # -- cap PCR 17 so the resumed OS cannot reuse the PAL's
                # identity
                mark = clock.now
                with tracer.span("drtm.cap", applied=self.apply_cap):
                    if self.apply_cap:
                        self.machine.chipset.tpm_command(
                            self.machine.cpu.pal_locality(),
                            "extend",
                            pcr_index=PCR_DRTM_CODE,
                            measurement=CAP_MEASUREMENT,
                        )
                breakdown["cap"] = clock.now - mark
            else:
                breakdown["pal_tpm"] = 0.0
                breakdown["pal_human"] = 0.0
                breakdown["pal_logic"] = 0.0
                breakdown["cap"] = 0.0

            # -- teardown + resume -------------------------------------------
            mark = clock.now
            with tracer.span("drtm.resume"):
                if context is not None:
                    teardown_launch(context)
                self.machine.display.release("pal")
                self.machine.keyboard.release_to_os()
                clock.advance(OS_RESUME_SECONDS)
                if self.os_hooks is not None:
                    self.os_hooks.resume()
            breakdown["resume"] = clock.now - mark
            session_span.set("aborted", aborted)

        self.sessions_run += 1
        return SessionRecord(
            outputs=outputs,
            human_pure_seconds=self._human_think_accum,
            breakdown=breakdown,
            pcr17_during_session=pcr17,
            slb_measurement=(
                context.measurement if context is not None else slb.measurement()
            ),
            aborted=aborted,
            abort_reason=abort_reason,
            abort_transient=abort_transient,
        )

    def run_with_retry(
        self,
        pal: Pal,
        inputs: Dict[str, bytes],
        padded_size: int = 64 * 1024,
        max_attempts: int = 3,
    ) -> SessionRecord:
        """Run a session, rerunning it on *transient* TPM faults.

        A `TpmResult.RETRY` fault (injected or real — a busy TPM) aborts
        one session attempt; the launch itself is side-effect-free until
        the PAL commits outputs, so rerunning is always safe.  Permanent
        aborts and hard TPM errors are returned/raised unchanged.  The
        last attempt's record is returned even if still transient, so
        callers observe the fault rather than an infinite loop.
        """
        record = self.run(pal, inputs, padded_size=padded_size)
        for _ in range(max_attempts - 1):
            if not (record.aborted and record.abort_transient):
                break
            self.transient_retries += 1
            record = self.run(pal, inputs, padded_size=padded_size)
        return record

    # ------------------------------------------------------------------
    def visible_to_human(self) -> str:
        """Everything the PAL has shown this session, in page order.

        A human at the machine watches the pages as the PAL presents
        them (pagination for content past 25 rows), so their decision is
        based on the whole sequence, not just the final frame.
        """
        frames = self.machine.display.frames[self._frames_at_start :]
        pal_pages = [
            "\n".join(
                line for line in snapshot.splitlines() if line.strip()
            )
            for owner, snapshot in frames
            if owner == "pal"
        ]
        if not pal_pages:
            return self.machine.display.visible_text()
        return "\n".join(pal_pages)

    def note_show(self) -> None:
        """Record when the PAL last presented a frame.

        The human starts reading at presentation time, so TPM work the
        PAL performs *after* showing the screen overlaps with reading —
        the latency-hiding the paper's practical argument leans on.
        """
        self._last_show_at = self.simulator.clock.now

    def consult_human(self, max_wait: float) -> None:
        """Ask the human actor to look at the screen and (maybe) type.

        Called by PalServices.read_key when the FIFO is empty.  The
        human's think time is anchored at the last `show`, so time the
        PAL already spent (e.g. a TPM_Unseal issued behind the prompt)
        counts against it.  With no human attached, the full wait
        elapses — the PAL will time out.
        """
        clock = self.simulator.clock
        if self.human is None:
            clock.advance(max_wait)
            return
        visible = self.visible_to_human()
        think_seconds = max(self.human(visible, max_wait), 0.0)
        if self.machine.keyboard.pending:
            # The human actually acted: record their intrinsic think
            # time (used by experiments to separate perceived machine
            # overhead from time the user would spend reading anyway).
            self._human_think_accum += think_seconds
        if self.hide_latency and self._last_show_at is not None:
            anchor = self._last_show_at
        else:
            anchor = clock.now
        delay = min(max(anchor + think_seconds - clock.now, 0.0), max_wait)
        if delay == 0.0 and self.machine.keyboard.pending == 0:
            # The human looked but did not act; burn the wait so the
            # PAL's input deadline makes progress.
            delay = max_wait
        clock.advance(delay)
