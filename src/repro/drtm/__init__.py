"""DRTM late launch and PAL runtime (system S6) — the Flicker substrate.

This package implements the dynamic root of trust for measurement the
paper's trusted path stands on:

* :mod:`repro.drtm.slb` — the Secure Loader Block: a PAL plus the bytes
  that constitute its measured identity.
* :mod:`repro.drtm.skinit` — the SKINIT late-launch sequence: suspend
  state checks, DMA protection, the locality-4 dynamic-PCR reset, and
  the measurement of the SLB into PCR 17.
* :mod:`repro.drtm.pal` — the PAL programming interface: a PAL receives
  a restricted :class:`~repro.drtm.pal.PalServices` capability surface
  (TPM at locality 2, exclusive display and keyboard) and nothing else.
* :mod:`repro.drtm.session` — :class:`FlickerSession`: the full
  suspend → launch → run → cap → teardown → resume cycle, with a
  per-phase latency breakdown (experiment T2).
* :mod:`repro.drtm.sealing` — helpers for sealing data to a PAL's
  identity, including the session-end "cap" extend that closes the
  post-session unseal window.
"""

from repro.drtm.pal import Pal, PalAbortError, PalServices, PalTimeoutError
from repro.drtm.session import FlickerSession, SessionRecord
from repro.drtm.skinit import LateLaunchError, perform_skinit
from repro.drtm.slb import SecureLoaderBlock, measured_image
from repro.drtm.sealing import CAP_MEASUREMENT, pal_pcr_selection

__all__ = [
    "Pal",
    "PalServices",
    "PalAbortError",
    "PalTimeoutError",
    "FlickerSession",
    "SessionRecord",
    "perform_skinit",
    "LateLaunchError",
    "SecureLoaderBlock",
    "measured_image",
    "CAP_MEASUREMENT",
    "pal_pcr_selection",
]
