"""The Secure Loader Block: code identity for late launch.

On real hardware, SKINIT hashes the literal bytes of the SLB.  In the
simulation a PAL's behaviour lives in Python code, so the honest
analogue is to derive the measured image from the **source code** of the
PAL's class hierarchy plus its configuration bytes: change the PAL's
behaviour (subclass it, edit a method) and its measurement changes, so
PCR 17 diverges and sealed credentials stay out of reach — the same
consequence the hardware enforces.

(Limit of the model: monkey-patching a method at runtime would change
behaviour without changing the measured source.  Nothing in this repo
does that, and the adversary models attack the protocol, not the Python
runtime; DESIGN.md §substitutions discusses this boundary.)
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.crypto.sha1 import sha1

if TYPE_CHECKING:  # pragma: no cover
    from repro.drtm.pal import Pal


def measured_image(pal: "Pal") -> bytes:
    """Bytes constituting the PAL's measured identity.

    Concatenates the source of every class in the PAL's MRO (so
    inherited behaviour is covered) with the PAL's configuration bytes.
    Per-invocation *data* (the transaction text, the nonce) is NOT part
    of the image — the PAL extends that into PCR 18 itself, mirroring
    how Flicker separates code identity from inputs.
    """
    sources = []
    for cls in type(pal).__mro__:
        if cls is object:
            continue
        try:
            sources.append(inspect.getsource(cls))
        except (OSError, TypeError):
            # Classes without retrievable source (e.g. defined in a REPL)
            # fall back to their qualified name; still behaviour-coupled
            # for everything defined in this repository.
            sources.append(f"<unsourced:{cls.__module__}.{cls.__qualname__}>")
    blob = "\n".join(sources).encode("utf-8")
    return blob + b"\x00CONFIG\x00" + pal.config_bytes()


@dataclass(frozen=True)
class SecureLoaderBlock:
    """A PAL packaged for launch, with its measured image.

    ``padded_size`` models the real SLB's size on the bus: SKINIT
    streams this many bytes through the hash engine, which is what makes
    session latency grow with PAL size (experiment F1).  Real SLBs are
    capped at 64 KiB; we allow larger values so the sweep can show the
    trend past the architectural limit.
    """

    pal: "Pal"
    image: bytes
    padded_size: int

    @classmethod
    def package(cls, pal: "Pal", padded_size: int = 64 * 1024) -> "SecureLoaderBlock":
        image = measured_image(pal)
        if padded_size < len(image):
            padded_size = len(image)
        return cls(pal=pal, image=image, padded_size=padded_size)

    def measurement(self) -> bytes:
        """SHA-1 of the SLB image — the value SKINIT puts in PCR 17."""
        return sha1(self.image)

    def __repr__(self) -> str:
        return (
            f"SecureLoaderBlock(pal={type(self.pal).__name__}, "
            f"image={len(self.image)}B, padded={self.padded_size}B, "
            f"measurement={self.measurement().hex()[:16]}...)"
        )
