"""The SKINIT late-launch sequence.

`perform_skinit` is the microcode: the only code path in the repository
that obtains a locality-4 token, and therefore the only way the dynamic
PCRs ever reset.  The sequence follows AMD's documented semantics:

1. CPU enters the late-launch mode (interrupts hard-disabled).
2. The SLB's memory region is locked and added to the Device Exclusion
   Vector, so neither the (suspended) OS nor any DMA-capable device can
   touch the PAL.
3. Dynamic PCRs 17–22 reset to zero **at locality 4**.
4. The SLB image streams through the TPM's hash interface — time
   proportional to its padded size — and its SHA-1 lands in PCR 17 via
   a locality-4 extend.

After step 4, PCR 17 == SHA1(0x00^20 || SHA1(slb_image)) — a value
reachable only by launching exactly that code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.hardware.machine import Machine
from repro.hardware.memory import MemoryRegion
from repro.sim.kernel import Simulator
from repro.drtm.slb import SecureLoaderBlock
from repro.tpm.constants import DYNAMIC_PCR_FIRST, DYNAMIC_PCR_LAST, PCR_DRTM_CODE

# Fixed microcode overhead of SKINIT before hashing starts (mode switch,
# DEV programming, TPM locality 4 open): on-era AMD parts ~10ms.
SKINIT_BASE_SECONDS = 0.0104

# OS quiesce before SKINIT (drivers paused, state saved) and resume after
# the session (device re-init, timers): Flicker reported resume costs
# dominated by device re-initialization.
OS_SUSPEND_SECONDS = 0.0021
OS_RESUME_SECONDS = 0.0158


class LateLaunchError(RuntimeError):
    """The late launch could not be performed."""


@dataclass
class LaunchContext:
    """State of an active late launch, consumed by FlickerSession."""

    machine: Machine
    slb: SecureLoaderBlock
    slb_region: MemoryRegion
    launch_token: Any  # locality-4 token, revoked at teardown
    measurement: bytes
    skinit_seconds: float


def perform_skinit(
    simulator: Simulator,
    machine: Machine,
    slb: SecureLoaderBlock,
    protect_dma: bool = True,
) -> LaunchContext:
    """Execute the SKINIT instruction on ``machine`` for ``slb``.

    ``protect_dma=False`` models defective hardware/firmware that skips
    the DEV programming step — the ablation experiment (A1) uses it to
    show which attack that single step prevents.  Everything else about
    the launch is unchanged.
    """
    if not machine.powered_on:
        raise LateLaunchError("machine is not powered on")
    clock = simulator.clock
    started = clock.now

    # 1. CPU transition: this is where the locality-4 capability is born.
    token4 = machine.cpu.enter_late_launch()

    # 2. Isolate the SLB: lock its memory and shield it from DMA.
    region_name = f"slb:{id(slb):x}"
    slb_region = machine.memory.allocate(region_name, slb.padded_size, owner="pal")
    slb_region.write("pal", slb.image)
    slb_region.lock("pal")
    if protect_dma:
        machine.chipset.dev.protect(slb_region.base, slb_region.size)

    clock.advance(SKINIT_BASE_SECONDS)

    # 3. Locality-4 reset of every dynamic PCR.
    for pcr_index in range(DYNAMIC_PCR_FIRST, DYNAMIC_PCR_LAST + 1):
        machine.chipset.tpm_command(token4, "pcr_reset", pcr_index=pcr_index)

    # 4. Stream the SLB through the hash engine and extend PCR 17.
    hash_rate = machine.tpm.profile.slb_hash_bytes_per_second
    if hash_rate != float("inf"):
        clock.advance(slb.padded_size / hash_rate)
    measurement = slb.measurement()
    machine.chipset.tpm_command(
        token4, "extend", pcr_index=PCR_DRTM_CODE, measurement=measurement
    )

    return LaunchContext(
        machine=machine,
        slb=slb,
        slb_region=slb_region,
        launch_token=token4,
        measurement=measurement,
        skinit_seconds=clock.now - started,
    )


def teardown_launch(context: LaunchContext) -> None:
    """End the late launch: scrub the SLB, lift protections, resume CPU."""
    machine = context.machine
    context.slb_region.zero("pal")
    context.slb_region.unlock()
    machine.chipset.dev.unprotect_all()
    machine.memory.free(context.slb_region.name)
    machine.cpu.exit_late_launch()
