"""Sealing helpers and the session-end cap.

Sealing to ``(PCR 17, PCR 18)`` binds data to *which code launched* and
*what it has extended so far*.  The subtlety this module owns is the
**cap**: if PCR 17 still held the PAL's value after the session, the
resumed (malicious) OS could simply issue TPM_Unseal itself and walk
away with the sealed signing key.  Flicker therefore extends PCR 17
with a well-known constant before returning to the OS; the PCR can then
never again reach the unseal-eligible value without a fresh SKINIT of
the genuine PAL.  `FlickerSession` applies the cap unconditionally —
and an ablation benchmark (`bench_ablation_defenses`) shows the key
exfiltration attack that becomes possible when it is disabled.
"""

from __future__ import annotations

from repro.crypto.sha1 import sha1
from repro.tpm.constants import PCR_DRTM_CODE, PCR_DRTM_DATA
from repro.tpm.structures import PcrSelection

#: The well-known measurement extended into PCR 17 at session end.
CAP_MEASUREMENT = sha1(b"repro.drtm: end of launch session")


def pal_pcr_selection() -> PcrSelection:
    """The PCR selection trusted-path credentials are bound to."""
    return PcrSelection(indices=(PCR_DRTM_CODE, PCR_DRTM_DATA))


def pcr17_after_launch(slb_measurement: bytes) -> bytes:
    """Predict PCR 17's value inside a session that launched ``slb``.

    reset(0^20) then extend(m):  SHA1(0^20 || m).  Service providers use
    this to compute the known-good value from a published PAL hash.
    """
    return sha1(b"\x00" * 20 + slb_measurement)


def pcr18_after_extends(digests: list) -> bytes:
    """Predict PCR 18 after the PAL extends ``digests`` in order."""
    value = b"\x00" * 20
    for digest in digests:
        value = sha1(value + digest)
    return value
