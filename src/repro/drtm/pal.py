"""The PAL programming interface.

A PAL (Piece of Application Logic) is the only code that runs during a
late-launch session.  It gets a :class:`PalServices` object — a
deliberately narrow capability surface — and returns a dict of output
bytes.  Everything a PAL can observe or affect flows through services,
which also account virtual time per category so the session can report
the breakdown the paper's evaluation tables need.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Dict, List, Optional, TYPE_CHECKING

from repro.crypto.sha1 import sha1
from repro.hardware.keyboard import ScanCode
from repro.tpm.constants import PCR_DRTM_DATA

if TYPE_CHECKING:  # pragma: no cover
    from repro.drtm.session import FlickerSession


class PalAbortError(RuntimeError):
    """The PAL aborted deliberately (e.g. malformed inputs)."""


class PalTimeoutError(RuntimeError):
    """The human did not respond within the PAL's input deadline."""


class Pal(ABC):
    """Base class for PALs.

    Subclasses implement :meth:`run` and may override
    :meth:`config_bytes` to bake static configuration into their
    measured identity (see `repro.drtm.slb.measured_image`).
    """

    #: Human-readable name, shown in traces.
    name: str = "pal"

    def config_bytes(self) -> bytes:
        """Static configuration included in the measured image."""
        return b""

    @abstractmethod
    def run(
        self, services: "PalServices", inputs: Dict[str, bytes]
    ) -> Dict[str, bytes]:
        """Execute the PAL's logic; returns its outputs."""


class PalServices:
    """What a running PAL is allowed to do.

    Categories charged to the timing breakdown:

    * ``tpm``   — virtual time spent inside TPM commands,
    * ``human`` — time waiting for (and consumed by) the human,
    * ``logic`` — everything else the PAL charges explicitly.
    """

    # A PAL's compute is modeled as negligible next to TPM and human
    # time (Flicker PALs are tiny); PALs that hash large inputs charge
    # time explicitly via `charge_logic`.
    HUMAN_POLL_LIMIT = 32

    def __init__(self, session: "FlickerSession") -> None:
        self._session = session
        self.timings: Dict[str, float] = {"tpm": 0.0, "human": 0.0, "logic": 0.0}
        self._extended_outputs: List[bytes] = []

    # -- TPM at locality 2 --------------------------------------------------
    def tpm(self, command: str, **arguments: Any) -> Any:
        """Execute a TPM command at the PAL's locality (2)."""
        machine = self._session.machine
        clock = self._session.simulator.clock
        before = clock.now
        try:
            return machine.chipset.tpm_command(
                machine.cpu.pal_locality(), command, **arguments
            )
        finally:
            self.timings["tpm"] += clock.now - before

    def extend_data(self, data: bytes) -> bytes:
        """Extend SHA1(data) into PCR 18 (the DRTM data register)."""
        digest = sha1(data)
        self._extended_outputs.append(digest)
        return self.tpm(
            "extend", pcr_index=PCR_DRTM_DATA, measurement=digest
        )

    # -- display ------------------------------------------------------------
    def show(self, lines: List[str]) -> None:
        """Present ``lines`` to the human, paginating past 25 rows.

        The VGA text screen holds 25 lines; longer content (e.g. a batch
        confirmation) is committed as successive pages with a
        continuation marker, like the real PAL would scroll.  The
        human-actor protocol exposes every page of the session
        (`FlickerSession.visible_to_human`).

        Marks the human's reading anchor: TPM work issued after `show`
        overlaps with reading time (see FlickerSession.consult_human).
        """
        from repro.hardware.display import ROWS

        display = self._session.machine.display
        page_size = ROWS - 1  # last row reserved for the marker
        pages = [lines[i : i + page_size] for i in range(0, len(lines), page_size)]
        if not pages:
            pages = [[]]
        for index, page in enumerate(pages):
            display.clear("pal")
            display.write_lines("pal", page)
            if index + 1 < len(pages):
                display.write_text(
                    "pal", ROWS - 1, 0,
                    f"--- page {index + 1}/{len(pages)}, continues ---",
                )
            display.commit_frame("pal")
        self._session.note_show()

    # -- keyboard -----------------------------------------------------------
    def read_key(self, timeout: float) -> Optional[ScanCode]:
        """Block (in virtual time) until the human presses a key.

        The session's human model is consulted when the FIFO is empty:
        it reads the current screen and responds after its think time.
        Returns None on timeout.  The whole wait is one
        ``pal.human_wait`` span, so the session span tree carries the
        human phase the breakdown tables report.
        """
        session = self._session
        keyboard = session.machine.keyboard
        clock = session.simulator.clock
        with session.simulator.tracer.span(
            "pal.human_wait", timeout_s=timeout
        ) as span:
            started = clock.now
            polls = 0
            while True:
                code = keyboard.read_scancode("pal")
                if code is not None:
                    self.timings["human"] += clock.now - started
                    return code
                remaining = timeout - (clock.now - started)
                if remaining <= 0 or polls >= self.HUMAN_POLL_LIMIT:
                    self.timings["human"] += clock.now - started
                    span.set("timed_out", True)
                    return None
                polls += 1
                session.consult_human(remaining)

    # -- misc ---------------------------------------------------------------
    def random_bytes(self, count: int) -> bytes:
        return self.tpm("get_random", num_bytes=count)

    def charge_logic(self, seconds: float) -> None:
        """Charge explicit PAL compute time (e.g. hashing large inputs)."""
        self._session.simulator.clock.advance(seconds)
        self.timings["logic"] += seconds

    @property
    def extended_outputs(self) -> List[bytes]:
        """Digests this PAL extended into PCR 18, in order."""
        return list(self._extended_outputs)
