"""TPM key objects and the EK/SRK hierarchy.

Key material never leaves the device unwrapped: ``TPM_CreateWrapKey``
returns the private half encrypted under its parent storage key, and
``TPM_LoadKey2`` decrypts it back into a volatile slot.  The emulator
reproduces that flow (with the repo's own crypto) because the
trusted-path setup phase depends on it: the PAL's signing key exists
outside the TPM only as a wrapped blob sealed to PCR state.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass
from typing import Optional

from repro.crypto.drbg import HmacDrbg
from repro.crypto.rsa import RsaKeyPair, RsaPublicKey, generate_rsa_keypair
from repro.crypto.stream import open_box, seal_box


class KeyUsage(enum.Enum):
    """TPM_KEY_USAGE values this emulator supports."""

    STORAGE = "storage"
    SIGNING = "signing"
    IDENTITY = "identity"  # AIK
    ENDORSEMENT = "endorsement"


@dataclass
class TpmKey:
    """A key living inside the TPM (or loadable into it).

    ``wrap_secret`` is the symmetric secret a *storage* key uses to wrap
    children (real TPMs use the RSA key itself with OAEP; the hybrid
    substitution is documented in DESIGN.md and `repro.crypto.stream`).

    ``usage_auth`` is the 20-byte OIAP usage secret; None (or the
    well-known all-zero secret) means private-key use needs no
    authorization.  It travels inside the wrapped blob, so a reloaded
    key keeps its requirement.
    """

    usage: KeyUsage
    keypair: RsaKeyPair
    wrap_secret: Optional[bytes] = None
    usage_auth: Optional[bytes] = None

    @property
    def public(self) -> RsaPublicKey:
        return self.keypair.public

    def fingerprint(self) -> bytes:
        return self.public.fingerprint()

    @classmethod
    def generate(
        cls, usage: KeyUsage, drbg: HmacDrbg, bits: int
    ) -> "TpmKey":
        keypair = generate_rsa_keypair(bits, drbg)
        wrap_secret = None
        if usage in (KeyUsage.STORAGE, KeyUsage.ENDORSEMENT):
            wrap_secret = drbg.generate(32)
        return cls(usage=usage, keypair=keypair, wrap_secret=wrap_secret)


def serialize_private(key: TpmKey) -> bytes:
    """Serialize the private parameters for wrapping."""
    fields = [
        key.usage.value.encode("ascii"),
        _int_bytes(key.keypair.public.n),
        _int_bytes(key.keypair.public.e),
        _int_bytes(key.keypair.d),
        _int_bytes(key.keypair.p),
        _int_bytes(key.keypair.q),
        _int_bytes(key.keypair.d_p),
        _int_bytes(key.keypair.d_q),
        _int_bytes(key.keypair.q_inv),
        key.wrap_secret or b"",
        key.usage_auth or b"",
    ]
    return b"".join(struct.pack(">I", len(f)) + f for f in fields)


def deserialize_private(blob: bytes) -> TpmKey:
    """Rebuild a key from its serialized private parameters."""
    fields = []
    offset = 0
    while offset < len(blob):
        (length,) = struct.unpack(">I", blob[offset : offset + 4])
        fields.append(blob[offset + 4 : offset + 4 + length])
        offset += 4 + length
    if len(fields) != 11:
        raise ValueError(f"malformed private key blob ({len(fields)} fields)")
    usage = KeyUsage(fields[0].decode("ascii"))
    n, e, d, p, q, d_p, d_q, q_inv = (int.from_bytes(f, "big") for f in fields[1:9])
    keypair = RsaKeyPair(
        public=RsaPublicKey(n=n, e=e), d=d, p=p, q=q, d_p=d_p, d_q=d_q, q_inv=q_inv
    )
    return TpmKey(
        usage=usage,
        keypair=keypair,
        wrap_secret=fields[9] or None,
        usage_auth=fields[10] or None,
    )


def wrap_key(parent: TpmKey, child: TpmKey, nonce: bytes) -> bytes:
    """Encrypt ``child``'s private half under ``parent``'s wrap secret."""
    if parent.wrap_secret is None:
        raise ValueError(f"{parent.usage.value} key cannot wrap children")
    return seal_box(parent.wrap_secret, serialize_private(child), nonce)


def unwrap_key(parent: TpmKey, wrapped: bytes) -> TpmKey:
    """Decrypt a wrapped key blob under ``parent``."""
    if parent.wrap_secret is None:
        raise ValueError(f"{parent.usage.value} key cannot unwrap children")
    return deserialize_private(open_box(parent.wrap_secret, wrapped))


def _int_bytes(value: int) -> bytes:
    return value.to_bytes((value.bit_length() + 7) // 8 or 1, "big")
