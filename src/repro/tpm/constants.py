"""TPM v1.2 constants, PCR layout and error codes.

PCR usage follows the TCG PC Client and DRTM conventions the paper's
platform used:

* PCRs 0–15: static, reset only by TPM_Startup(CLEAR) at reboot.
* PCR 16: debug.
* **PCR 17**: DRTM — receives the measurement of the late-launched code
  (the SLB/PAL).  Resettable only at locality 4, i.e. only by the
  SKINIT microcode.  This one register carries the whole scheme.
* **PCR 18**: DRTM data — the PAL extends its inputs/outputs here.
* PCRs 19–22: additional dynamic PCRs.
* PCR 23: application, resettable at any locality.
"""

from __future__ import annotations

import enum

NUM_PCRS = 24
SHA1_SIZE = 20

DYNAMIC_PCR_FIRST = 17
DYNAMIC_PCR_LAST = 22

PCR_DEBUG = 16
PCR_DRTM_CODE = 17
PCR_DRTM_DATA = 18
PCR_APPLICATION = 23

# Dynamic PCRs read as all-ones until a late launch has occurred, and are
# reset to all-zeros by the locality-4 reset.  Static PCRs start at zero.
DYNAMIC_PCR_DEFAULT = b"\xff" * SHA1_SIZE
STATIC_PCR_DEFAULT = b"\x00" * SHA1_SIZE

# Localities: 0 = ordinary software, 1 = dynamic OS, 2 = the late-launched
# environment (PAL), 3 = auxiliary, 4 = CPU microcode during SKINIT.
LOCALITY_SOFTWARE = 0
LOCALITY_PAL = 2
LOCALITY_MICROCODE = 4

# Localities allowed to extend / reset each dynamic PCR (TCG DRTM spec,
# simplified to the registers this reproduction uses).
DYNAMIC_EXTEND_LOCALITIES = frozenset({2, 3, 4})
DYNAMIC_RESET_LOCALITIES = frozenset({4})
APPLICATION_RESET_LOCALITIES = frozenset({0, 1, 2, 3, 4})


class TpmResult(enum.Enum):
    """Outcome codes surfaced by TPM commands (subset of TPM_RESULT)."""

    SUCCESS = 0
    BAD_PARAMETER = 3
    DEACTIVATED = 6
    KEY_NOT_FOUND = 13
    BAD_LOCALITY = 44
    WRONG_PCR_VALUE = 24
    AUTH_FAIL = 1
    NO_SPACE = 17
    INVALID_POSTINIT = 38
    # TPM_NON_FATAL | TPM_RETRY: the command failed transiently and may
    # be reissued — the class of fault `repro.sim.faults` injects.
    RETRY = 0x800


class TpmError(RuntimeError):
    """A TPM command failed; carries the TPM_RESULT code."""

    def __init__(self, result: TpmResult, message: str) -> None:
        super().__init__(f"{result.name}: {message}")
        self.result = result

    @property
    def transient(self) -> bool:
        """True for retryable faults (``TPM_RETRY``); a robust driver
        reissues the command instead of failing the session."""
        return self.result is TpmResult.RETRY


def is_dynamic_pcr(index: int) -> bool:
    """True for the DRTM-resettable registers (17–22)."""
    return DYNAMIC_PCR_FIRST <= index <= DYNAMIC_PCR_LAST


def validate_pcr_index(index: int) -> None:
    """Raise TpmError(BAD_PARAMETER) for an out-of-range PCR index."""
    if not 0 <= index < NUM_PCRS:
        raise TpmError(
            TpmResult.BAD_PARAMETER, f"PCR index {index} out of range 0..{NUM_PCRS-1}"
        )
