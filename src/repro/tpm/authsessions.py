"""OIAP authorization sessions (TPM 1.2 command authorization).

Real v1.2 TPMs gate key usage behind an HMAC protocol: the caller opens
an Object-Independent Authorization Protocol session (TPM_OIAP), and
every authorized command carries
``HMAC(usage_secret, param_digest || nonce_even || nonce_odd || continue)``
with rolling nonces — so the usage secret never crosses the bus and
replaying an authorization is useless.

Flicker-style deployments typically create keys with the well-known
(all-zero) secret, which is why the rest of this repository can call
commands without an auth block; this module exists because the
substrate should implement the mechanism, not assume it away.  Keys
created with ``usage_auth=...`` require a live OIAP proof on ``sign``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.crypto.hmac_impl import constant_time_equal, hmac_sha1
from repro.crypto.sha1 import sha1
from repro.tpm.constants import TpmError, TpmResult

#: TPM 1.2's "well-known secret": 20 zero bytes, meaning "no auth".
WELL_KNOWN_SECRET = b"\x00" * 20


@dataclass
class OiapSession:
    """TPM-side state of one open OIAP session."""

    handle: int
    nonce_even: bytes
    active: bool = True


@dataclass(frozen=True)
class AuthBlock:
    """The authorization trailer a caller attaches to a command."""

    session_handle: int
    nonce_odd: bytes
    continue_session: int  # 0 or 1
    auth_hmac: bytes


def compute_auth_hmac(
    usage_secret: bytes,
    param_digest: bytes,
    nonce_even: bytes,
    nonce_odd: bytes,
    continue_session: int,
) -> bytes:
    """The 1.2 authorization HMAC (TPM spec part 1, §"Authorization")."""
    body = param_digest + nonce_even + nonce_odd + bytes([continue_session & 1])
    return hmac_sha1(usage_secret, body)


def param_digest(ordinal: str, *params: bytes) -> bytes:
    """SHA-1 over the command ordinal and its marshalled parameters."""
    blob = ordinal.encode("ascii") + b"\x00"
    for param in params:
        blob += len(param).to_bytes(4, "big") + param
    return sha1(blob)


class OiapManager:
    """The device's table of open authorization sessions."""

    MAX_SESSIONS = 8  # era parts held very few

    def __init__(self, drbg) -> None:
        self._drbg = drbg
        self._sessions: Dict[int, OiapSession] = {}
        self._next_handle = 0x0200_0000

    def open(self) -> OiapSession:
        live = sum(1 for s in self._sessions.values() if s.active)
        if live >= self.MAX_SESSIONS:
            raise TpmError(TpmResult.NO_SPACE, "no free authorization sessions")
        session = OiapSession(
            handle=self._next_handle, nonce_even=self._drbg.generate(20)
        )
        self._next_handle += 1
        self._sessions[session.handle] = session
        return session

    def terminate(self, handle: int) -> None:
        session = self._sessions.pop(handle, None)
        if session is not None:
            session.active = False

    def validate(
        self,
        usage_secret: Optional[bytes],
        digest: bytes,
        block: Optional[AuthBlock],
    ) -> None:
        """Check an authorization block against an entity's secret.

        Entities with the well-known secret (or None) need no block.
        Everything else needs a live session and a correct HMAC; the
        session's even nonce rolls afterwards, so each proof is single
        use unless continued.
        """
        secret = usage_secret or WELL_KNOWN_SECRET
        if secret == WELL_KNOWN_SECRET:
            return  # no authorization required
        if block is None:
            raise TpmError(
                TpmResult.AUTH_FAIL, "entity requires an authorization session"
            )
        session = self._sessions.get(block.session_handle)
        if session is None or not session.active:
            raise TpmError(TpmResult.AUTH_FAIL, "unknown or dead auth session")
        expected = compute_auth_hmac(
            secret, digest, session.nonce_even, block.nonce_odd,
            block.continue_session,
        )
        if not constant_time_equal(expected, block.auth_hmac):
            # Real parts also throttle here (dictionary-attack defense);
            # the session dies either way.
            self.terminate(session.handle)
            raise TpmError(TpmResult.AUTH_FAIL, "authorization HMAC mismatch")
        # Roll the even nonce; close the session unless continued.
        session.nonce_even = self._drbg.generate(20)
        if not block.continue_session:
            self.terminate(session.handle)

    def nonce_even(self, handle: int) -> bytes:
        session = self._sessions.get(handle)
        if session is None or not session.active:
            raise TpmError(TpmResult.AUTH_FAIL, "unknown or dead auth session")
        return session.nonce_even
