"""Quote bundles and verifier-side quote checking.

A :class:`QuoteBundle` is what travels to the service provider: the
reported PCR values, the anti-replay external data, and the AIK
signature over the reconstructed TPM_QUOTE_INFO.  :func:`verify_quote`
performs exactly the checks a real verifier performs — rebuild the
composite from the *reported* values, rebuild QUOTE_INFO, check the
signature — so a forged value anywhere breaks the signature check.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict, Tuple

from repro.crypto.pkcs1 import pkcs1_verify
from repro.crypto.rsa import RsaPublicKey
from repro.tpm.constants import SHA1_SIZE
from repro.tpm.structures import PcrComposite, PcrSelection, QuoteInfo


@dataclass(frozen=True)
class QuoteBundle:
    """A TPM quote as shipped over the network."""

    selection: PcrSelection
    pcr_values: Tuple[bytes, ...]
    external_data: bytes
    signature: bytes
    signer_fingerprint: bytes

    def composite(self) -> PcrComposite:
        return PcrComposite(selection=self.selection, values=self.pcr_values)

    def reported_value(self, pcr_index: int) -> bytes:
        return self.composite().value_of(pcr_index)

    def to_bytes(self) -> bytes:
        composite = self.composite().to_bytes()
        parts = [
            struct.pack(">I", len(composite)),
            composite,
            struct.pack(">I", len(self.external_data)),
            self.external_data,
            struct.pack(">I", len(self.signature)),
            self.signature,
            struct.pack(">I", len(self.signer_fingerprint)),
            self.signer_fingerprint,
        ]
        return b"".join(parts)

    @classmethod
    def from_bytes(cls, data: bytes) -> "QuoteBundle":
        fields = []
        offset = 0
        for _ in range(4):
            (length,) = struct.unpack(">I", data[offset : offset + 4])
            fields.append(data[offset + 4 : offset + 4 + length])
            offset += 4 + length
        composite = PcrComposite.from_bytes(fields[0])
        return cls(
            selection=composite.selection,
            pcr_values=composite.values,
            external_data=fields[1],
            signature=fields[2],
            signer_fingerprint=fields[3],
        )


def verify_quote(aik_public: RsaPublicKey, bundle: QuoteBundle) -> bool:
    """Check an AIK signature over the bundle's reported PCR state.

    Returns False rather than raising: callers decide policy.
    """
    if len(bundle.external_data) != SHA1_SIZE:
        return False
    if bundle.signer_fingerprint != aik_public.fingerprint():
        return False
    try:
        quote_info = QuoteInfo(
            composite_digest=bundle.composite().digest(),
            external_data=bundle.external_data,
        )
    except Exception:
        return False
    return pkcs1_verify(aik_public, quote_info.to_bytes(), bundle.signature)


def expected_pcr_values(
    reported: Dict[int, bytes], policy: Dict[int, bytes]
) -> bool:
    """True iff every PCR the policy names has the required value."""
    return all(reported.get(index) == value for index, value in policy.items())
