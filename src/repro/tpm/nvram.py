"""TPM non-volatile storage and monotonic counters.

The trusted-path client stores its sealed credential blob on the
untrusted disk (that is safe — the blob is useless without the right PCR
state), but the *monotonic counter* lives here: `repro.core` can use it
to give confirmations a strictly increasing sequence number that malware
cannot roll back.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.tpm.constants import TpmError, TpmResult


@dataclass
class NvIndex:
    """One defined NV index."""

    index: int
    size: int
    auth_value: Optional[bytes]
    data: bytes = b""


class NvStorage:
    """NV index space plus monotonic counters."""

    MAX_TOTAL_BYTES = 1280  # v1.2 parts had ~1.2-2KB of NV

    def __init__(self) -> None:
        self._indices: Dict[int, NvIndex] = {}
        self._counters: Dict[int, int] = {}

    def define(self, index: int, size: int, auth_value: Optional[bytes]) -> None:
        if index in self._indices:
            raise TpmError(TpmResult.BAD_PARAMETER, f"NV index {index:#x} exists")
        used = sum(entry.size for entry in self._indices.values())
        if used + size > self.MAX_TOTAL_BYTES:
            raise TpmError(
                TpmResult.NO_SPACE,
                f"NV space exhausted ({used}+{size} > {self.MAX_TOTAL_BYTES})",
            )
        self._indices[index] = NvIndex(index=index, size=size, auth_value=auth_value)

    def write(self, index: int, data: bytes, auth: Optional[bytes]) -> None:
        entry = self._require(index, auth)
        if len(data) > entry.size:
            raise TpmError(
                TpmResult.BAD_PARAMETER,
                f"write of {len(data)} bytes exceeds NV index size {entry.size}",
            )
        entry.data = data

    def read(self, index: int, auth: Optional[bytes]) -> bytes:
        return self._require(index, auth).data

    def _require(self, index: int, auth: Optional[bytes]) -> NvIndex:
        if index not in self._indices:
            raise TpmError(TpmResult.BAD_PARAMETER, f"NV index {index:#x} undefined")
        entry = self._indices[index]
        if entry.auth_value is not None and auth != entry.auth_value:
            raise TpmError(TpmResult.AUTH_FAIL, f"bad auth for NV index {index:#x}")
        return entry

    # -- monotonic counters -------------------------------------------------
    def create_counter(self, counter_id: int) -> None:
        if counter_id in self._counters:
            raise TpmError(
                TpmResult.BAD_PARAMETER, f"counter {counter_id} already exists"
            )
        self._counters[counter_id] = 0

    def increment_counter(self, counter_id: int) -> int:
        if counter_id not in self._counters:
            raise TpmError(TpmResult.BAD_PARAMETER, f"no counter {counter_id}")
        self._counters[counter_id] += 1
        return self._counters[counter_id]

    def read_counter(self, counter_id: int) -> int:
        if counter_id not in self._counters:
            raise TpmError(TpmResult.BAD_PARAMETER, f"no counter {counter_id}")
        return self._counters[counter_id]
