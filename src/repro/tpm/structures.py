"""TPM wire structures and their canonical serialization.

Quotes sign the *serialized* TPM_QUOTE_INFO, and seal binds the
*serialized* PCR composite — so these encodings are part of the security
contract, not cosmetics.  The layouts follow the TPM 1.2 structures
specification, simplified where fields are constant in this setting (we
keep the tags and the fixed "QUOT" marker so a verifier checks exactly
what a real verifier checks).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict, Tuple

from repro.crypto.sha1 import sha1
from repro.tpm.constants import NUM_PCRS, SHA1_SIZE, TpmError, TpmResult

QUOTE_FIXED_MARKER = b"QUOT"
QUOTE_VERSION = bytes((1, 1, 0, 0))  # TPM_STRUCT_VER 1.1.0.0


@dataclass(frozen=True)
class PcrSelection:
    """Which PCR indices a quote or seal covers (TPM_PCR_SELECTION)."""

    indices: Tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.indices:
            raise TpmError(TpmResult.BAD_PARAMETER, "empty PCR selection")
        if len(set(self.indices)) != len(self.indices):
            raise TpmError(TpmResult.BAD_PARAMETER, "duplicate PCR indices")
        for index in self.indices:
            if not 0 <= index < NUM_PCRS:
                raise TpmError(
                    TpmResult.BAD_PARAMETER, f"PCR index {index} out of range"
                )
        object.__setattr__(self, "indices", tuple(sorted(self.indices)))

    def to_bytes(self) -> bytes:
        """Bitmap encoding: 2-byte size, then little-endian-bit bitmap."""
        size_of_select = (NUM_PCRS + 7) // 8
        bitmap = bytearray(size_of_select)
        for index in self.indices:
            bitmap[index // 8] |= 1 << (index % 8)
        return struct.pack(">H", size_of_select) + bytes(bitmap)

    @classmethod
    def from_bytes(cls, data: bytes) -> "PcrSelection":
        if len(data) < 2:
            raise TpmError(TpmResult.BAD_PARAMETER, "truncated PCR selection")
        (size_of_select,) = struct.unpack(">H", data[:2])
        bitmap = data[2 : 2 + size_of_select]
        indices = [
            byte_index * 8 + bit
            for byte_index, value in enumerate(bitmap)
            for bit in range(8)
            if value & (1 << bit)
        ]
        return cls(indices=tuple(indices))

    @property
    def encoded_length(self) -> int:
        return 2 + (NUM_PCRS + 7) // 8


@dataclass(frozen=True)
class PcrComposite:
    """Selected PCR values (TPM_PCR_COMPOSITE)."""

    selection: PcrSelection
    values: Tuple[bytes, ...]

    def __post_init__(self) -> None:
        if len(self.values) != len(self.selection.indices):
            raise TpmError(
                TpmResult.BAD_PARAMETER,
                f"{len(self.values)} values for "
                f"{len(self.selection.indices)} selected PCRs",
            )
        for value in self.values:
            if len(value) != SHA1_SIZE:
                raise TpmError(
                    TpmResult.BAD_PARAMETER, "PCR value must be 20 bytes"
                )

    @classmethod
    def from_bank(cls, selection: PcrSelection, pcr_values: Dict[int, bytes]):
        return cls(
            selection=selection,
            values=tuple(pcr_values[index] for index in selection.indices),
        )

    def to_bytes(self) -> bytes:
        blob = b"".join(self.values)
        return self.selection.to_bytes() + struct.pack(">I", len(blob)) + blob

    @classmethod
    def from_bytes(cls, data: bytes) -> "PcrComposite":
        selection = PcrSelection.from_bytes(data)
        offset = selection.encoded_length
        (blob_len,) = struct.unpack(">I", data[offset : offset + 4])
        blob = data[offset + 4 : offset + 4 + blob_len]
        if len(blob) != blob_len or blob_len % SHA1_SIZE:
            raise TpmError(TpmResult.BAD_PARAMETER, "malformed PCR composite")
        values = tuple(
            blob[i : i + SHA1_SIZE] for i in range(0, blob_len, SHA1_SIZE)
        )
        return cls(selection=selection, values=values)

    def digest(self) -> bytes:
        """TPM_COMPOSITE_HASH = SHA1(serialized composite)."""
        return sha1(self.to_bytes())

    def value_of(self, index: int) -> bytes:
        try:
            position = self.selection.indices.index(index)
        except ValueError as exc:
            raise KeyError(f"PCR {index} not in composite") from exc
        return self.values[position]


@dataclass(frozen=True)
class QuoteInfo:
    """TPM_QUOTE_INFO: what a quote actually signs.

    version || 'QUOT' || composite-hash || external-data(nonce)
    """

    composite_digest: bytes
    external_data: bytes

    def __post_init__(self) -> None:
        if len(self.composite_digest) != SHA1_SIZE:
            raise TpmError(
                TpmResult.BAD_PARAMETER, "composite digest must be 20 bytes"
            )
        if len(self.external_data) != SHA1_SIZE:
            raise TpmError(
                TpmResult.BAD_PARAMETER,
                "external data (anti-replay nonce) must be 20 bytes",
            )

    def to_bytes(self) -> bytes:
        return (
            QUOTE_VERSION
            + QUOTE_FIXED_MARKER
            + self.composite_digest
            + self.external_data
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "QuoteInfo":
        expected_length = 4 + 4 + SHA1_SIZE + SHA1_SIZE
        if len(data) != expected_length:
            raise TpmError(TpmResult.BAD_PARAMETER, "quote info length mismatch")
        if data[:4] != QUOTE_VERSION or data[4:8] != QUOTE_FIXED_MARKER:
            raise TpmError(TpmResult.BAD_PARAMETER, "bad quote info header")
        return cls(
            composite_digest=data[8 : 8 + SHA1_SIZE],
            external_data=data[8 + SHA1_SIZE :],
        )


@dataclass(frozen=True)
class SealedBlob:
    """Output of TPM_Seal: ciphertext bound to a PCR policy.

    ``pcr_info_digest`` is the composite hash the TPM will require at
    unseal time; ``ciphertext`` is the encrypted payload under the
    storage key's internal secret.
    """

    selection: PcrSelection
    pcr_info_digest: bytes
    ciphertext: bytes
    parent_key_fingerprint: bytes

    def to_bytes(self) -> bytes:
        parts = [
            self.selection.to_bytes(),
            self.pcr_info_digest,
            struct.pack(">I", len(self.ciphertext)),
            self.ciphertext,
            struct.pack(">I", len(self.parent_key_fingerprint)),
            self.parent_key_fingerprint,
        ]
        return b"".join(parts)

    @classmethod
    def from_bytes(cls, data: bytes) -> "SealedBlob":
        selection = PcrSelection.from_bytes(data)
        offset = selection.encoded_length
        digest = data[offset : offset + SHA1_SIZE]
        offset += SHA1_SIZE
        (ct_len,) = struct.unpack(">I", data[offset : offset + 4])
        offset += 4
        ciphertext = data[offset : offset + ct_len]
        offset += ct_len
        (fp_len,) = struct.unpack(">I", data[offset : offset + 4])
        offset += 4
        fingerprint = data[offset : offset + fp_len]
        if len(ciphertext) != ct_len or len(fingerprint) != fp_len:
            raise TpmError(TpmResult.BAD_PARAMETER, "truncated sealed blob")
        return cls(
            selection=selection,
            pcr_info_digest=digest,
            ciphertext=ciphertext,
            parent_key_fingerprint=fingerprint,
        )


@dataclass(frozen=True)
class CertifyInfo:
    """TPM_CERTIFY_INFO (simplified): a key certified under PCR state.

    Produced by TPM_CertifyKey inside a PAL session during the setup
    phase; signed by the AIK, it binds a freshly generated signing key's
    public half to the PCR composite that existed when it was created.
    """

    public_key_digest: bytes
    composite_digest: bytes
    external_data: bytes

    MARKER = b"CERT"

    def to_bytes(self) -> bytes:
        return (
            QUOTE_VERSION
            + self.MARKER
            + self.public_key_digest
            + self.composite_digest
            + self.external_data
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "CertifyInfo":
        expected = 4 + 4 + 3 * SHA1_SIZE
        if len(data) != expected:
            raise TpmError(TpmResult.BAD_PARAMETER, "certify info length mismatch")
        if data[:4] != QUOTE_VERSION or data[4:8] != cls.MARKER:
            raise TpmError(TpmResult.BAD_PARAMETER, "bad certify info header")
        body = data[8:]
        return cls(
            public_key_digest=body[:SHA1_SIZE],
            composite_digest=body[SHA1_SIZE : 2 * SHA1_SIZE],
            external_data=body[2 * SHA1_SIZE :],
        )
