"""The TPM device: command dispatch, latency accounting, state.

``execute(locality, command, **args)`` is the single entry point; the
chipset (`repro.hardware.chipset`) calls it with a locality proven by a
CPU-minted token.  Every command charges virtual time according to the
vendor timing profile before it runs — the device is strictly serial,
like the real LPC-attached part.

Supported command set (the subset the paper's system exercises):

====================  =====================================================
startup               TPM_Startup(ST_CLEAR)
extend                TPM_Extend
pcr_read              TPM_PCRRead
pcr_reset             TPM_PCR_Reset (locality-gated, DRTM)
get_random            TPM_GetRandom
quote                 TPM_Quote with an identity key
seal / unseal         TPM_Seal / TPM_Unseal under the SRK, PCR-bound
create_wrap_key       TPM_CreateWrapKey (child of the SRK)
load_key2             TPM_LoadKey2
sign                  TPM_Sign (PKCS#1 v1.5 over a SHA-1 digest)
certify_key           TPM_CertifyKey (AIK signs a key + PCR binding)
make_identity         TPM_MakeIdentity (new AIK)
activate_identity     TPM_ActivateIdentity (EK-decrypt a CA blob)
read_pubek            TPM_ReadPubek
flush_context         TPM_FlushContext
nv_define/read/write  TPM_NV_* (simplified auth)
create_counter / increment_counter / read_counter
====================  =====================================================
"""

from __future__ import annotations

import random
import struct
from typing import Any, Dict, Optional, Tuple

from repro.crypto.drbg import HmacDrbg
from repro.crypto.pkcs1 import pkcs1_sign
from repro.crypto.rsa import RsaPublicKey
from repro.crypto.sha1 import sha1
from repro.crypto.stream import AuthenticationError, open_box, seal_box
from repro.sim.clock import VirtualClock
from repro.sim.tracing import NULL_TRACER
from repro.tpm.constants import (
    SHA1_SIZE,
    TpmError,
    TpmResult,
)
from repro.tpm.authsessions import AuthBlock, OiapManager, param_digest
from repro.tpm.keys import KeyUsage, TpmKey, unwrap_key, wrap_key
from repro.tpm.nvram import NvStorage
from repro.tpm.pcr import PcrBank
from repro.tpm.quote import QuoteBundle
from repro.tpm.structures import (
    CertifyInfo,
    PcrComposite,
    PcrSelection,
    QuoteInfo,
    SealedBlob,
)
from repro.tpm.timing import TimingProfile

# Era-accurate TPMs held 2048-bit EKs and 1024/2048-bit working keys.
# Pure-Python RSA keygen at those sizes costs real seconds per machine,
# so the emulator defaults to 512-bit keys: identical structure and
# protocol behaviour, irrelevant cryptographic strength (the adversary in
# the model does not factor moduli), and latency comes from the timing
# profile, not from Python's bignum speed.  Experiments that want real
# sizes pass key_bits=1024.
DEFAULT_KEY_BITS = 512


class TpmDevice:
    """A discrete v1.2 TPM attached to one machine."""

    def __init__(
        self,
        clock: VirtualClock,
        profile: TimingProfile,
        seed: int,
        key_bits: int = DEFAULT_KEY_BITS,
        tracer=None,
    ) -> None:
        self.clock = clock
        self.profile = profile
        self.key_bits = key_bits
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._drbg = HmacDrbg(
            seed.to_bytes(8, "big"), personalization=b"tpm-device"
        )
        self._timing_rng = random.Random(seed ^ 0x7A7A7A7A)
        self.pcrs = PcrBank()
        self._started = False
        self.commands_executed: Dict[str, int] = {}
        #: Optional fault-injection hook (see `repro.sim.faults`): called
        #: with the command name after latency is charged; may raise a
        #: transient TpmError.  None costs nothing on the hot path.
        self.fault_hook = None

        # Persistent hierarchy: EK and SRK are created at manufacture.
        self._ek = TpmKey.generate(KeyUsage.ENDORSEMENT, self._drbg, key_bits)
        self._srk = TpmKey.generate(KeyUsage.STORAGE, self._drbg, key_bits)
        self._loaded: Dict[int, TpmKey] = {}
        self._next_handle = 0x0100_0000
        self.SRK_HANDLE = 0x4000_0000
        self._loaded[self.SRK_HANDLE] = self._srk
        self.nv = NvStorage()
        self.oiap = OiapManager(self._drbg.fork(b"oiap"))

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def execute(self, locality: int, command: str, **arguments: Any) -> Any:
        """Run ``command`` at ``locality``, charging its latency first."""
        handler = getattr(self, f"_cmd_{command}", None)
        if handler is None:
            raise TpmError(TpmResult.BAD_PARAMETER, f"unknown command {command!r}")
        if not self._started and command != "startup":
            raise TpmError(
                TpmResult.INVALID_POSTINIT, f"{command} before TPM_Startup"
            )
        if self.tracer.enabled:
            with self.tracer.span("tpm." + command, locality=locality):
                return self._charge_and_run(handler, command, locality, arguments)
        return self._charge_and_run(handler, command, locality, arguments)

    def _charge_and_run(
        self, handler: Any, command: str, locality: int, arguments: Dict[str, Any]
    ) -> Any:
        self.clock.advance(self.profile.latency_for(command, self._timing_rng))
        self.commands_executed[command] = self.commands_executed.get(command, 0) + 1
        if self.fault_hook is not None:
            # The command charged its bus/compute time but failed before
            # returning a result — exactly how transient faults present.
            self.fault_hook(command)
        return handler(locality, **arguments)

    def startup(self) -> None:
        """Platform-reset hook used by Machine.power_on (locality 0)."""
        self.execute(0, "startup")

    # ------------------------------------------------------------------
    # PCR commands
    # ------------------------------------------------------------------
    def _cmd_startup(self, locality: int) -> None:
        """TPM_Startup(ST_CLEAR): PCRs reset, volatile key slots flushed.

        NV storage and monotonic counters persist — that is what the
        'non-volatile' in NV means — while every loaded key except the
        persistent SRK is gone, exactly like a real power cycle.
        """
        self.pcrs.startup_clear()
        self._loaded = {self.SRK_HANDLE: self._srk}
        self._started = True

    def _cmd_extend(self, locality: int, pcr_index: int, measurement: bytes) -> bytes:
        return self.pcrs.extend(pcr_index, measurement, locality)

    def _cmd_pcr_read(self, locality: int, pcr_index: int) -> bytes:
        return self.pcrs.read(pcr_index)

    def _cmd_pcr_reset(self, locality: int, pcr_index: int) -> None:
        self.pcrs.reset_dynamic(pcr_index, locality)

    def _cmd_get_random(self, locality: int, num_bytes: int) -> bytes:
        if not 0 < num_bytes <= 4096:
            raise TpmError(
                TpmResult.BAD_PARAMETER, f"get_random of {num_bytes} bytes"
            )
        return self._drbg.generate(num_bytes)

    # ------------------------------------------------------------------
    # Quote
    # ------------------------------------------------------------------
    def _cmd_quote(
        self,
        locality: int,
        key_handle: int,
        selection: PcrSelection,
        external_data: bytes,
    ) -> QuoteBundle:
        key = self._require_loaded(key_handle)
        if key.usage is not KeyUsage.IDENTITY:
            raise TpmError(
                TpmResult.BAD_PARAMETER, "quote requires an identity key (AIK)"
            )
        if len(external_data) != SHA1_SIZE:
            raise TpmError(
                TpmResult.BAD_PARAMETER, "external data must be a 20-byte digest"
            )
        composite = PcrComposite.from_bank(selection, self.pcrs.values())
        quote_info = QuoteInfo(
            composite_digest=composite.digest(), external_data=external_data
        )
        signature = pkcs1_sign(key.keypair, quote_info.to_bytes())
        return QuoteBundle(
            selection=selection,
            pcr_values=composite.values,
            external_data=external_data,
            signature=signature,
            signer_fingerprint=key.fingerprint(),
        )

    # ------------------------------------------------------------------
    # Seal / unseal
    # ------------------------------------------------------------------
    def _cmd_seal(
        self, locality: int, data: bytes, selection: PcrSelection
    ) -> SealedBlob:
        """Seal ``data`` to the *current* values of the selected PCRs."""
        composite = PcrComposite.from_bank(selection, self.pcrs.values())
        digest_at_release = composite.digest()
        plaintext = (
            struct.pack(">I", len(digest_at_release))
            + digest_at_release
            + data
        )
        assert self._srk.wrap_secret is not None
        ciphertext = seal_box(
            self._srk.wrap_secret, plaintext, self._drbg.generate(16)
        )
        return SealedBlob(
            selection=selection,
            pcr_info_digest=digest_at_release,
            ciphertext=ciphertext,
            parent_key_fingerprint=self._srk.fingerprint(),
        )

    def _cmd_unseal(self, locality: int, blob: SealedBlob) -> bytes:
        """Release sealed data iff current PCR state matches the blob's."""
        if blob.parent_key_fingerprint != self._srk.fingerprint():
            raise TpmError(
                TpmResult.KEY_NOT_FOUND, "sealed blob belongs to another TPM"
            )
        assert self._srk.wrap_secret is not None
        try:
            plaintext = open_box(self._srk.wrap_secret, blob.ciphertext)
        except AuthenticationError as exc:
            raise TpmError(TpmResult.BAD_PARAMETER, f"corrupt blob: {exc}") from exc
        (digest_len,) = struct.unpack(">I", plaintext[:4])
        digest_at_release = plaintext[4 : 4 + digest_len]
        data = plaintext[4 + digest_len :]
        current = PcrComposite.from_bank(blob.selection, self.pcrs.values())
        if current.digest() != digest_at_release:
            raise TpmError(
                TpmResult.WRONG_PCR_VALUE,
                "current PCR state does not satisfy the seal policy",
            )
        return data

    # ------------------------------------------------------------------
    # Key management
    # ------------------------------------------------------------------
    def _cmd_create_wrap_key(
        self,
        locality: int,
        parent_handle: int,
        usage: KeyUsage,
        usage_auth: Optional[bytes] = None,
    ) -> Tuple[RsaPublicKey, bytes]:
        """Generate a child key; return (public half, wrapped private).

        ``usage_auth`` (20 bytes) makes the key require an OIAP proof on
        every private-key use; None/well-known means no authorization.
        """
        parent = self._require_loaded(parent_handle)
        if parent.usage not in (KeyUsage.STORAGE, KeyUsage.ENDORSEMENT):
            raise TpmError(
                TpmResult.BAD_PARAMETER, "parent must be a storage key"
            )
        if usage is KeyUsage.ENDORSEMENT:
            raise TpmError(TpmResult.BAD_PARAMETER, "cannot create EKs")
        if usage_auth is not None and len(usage_auth) != 20:
            raise TpmError(
                TpmResult.BAD_PARAMETER, "usage auth must be a 20-byte secret"
            )
        child = TpmKey.generate(usage, self._drbg, self.key_bits)
        child.usage_auth = usage_auth
        wrapped = wrap_key(parent, child, self._drbg.generate(16))
        return child.public, wrapped

    def _cmd_load_key2(
        self, locality: int, parent_handle: int, wrapped_blob: bytes
    ) -> int:
        parent = self._require_loaded(parent_handle)
        try:
            key = unwrap_key(parent, wrapped_blob)
        except (AuthenticationError, ValueError) as exc:
            raise TpmError(
                TpmResult.BAD_PARAMETER, f"cannot unwrap key blob: {exc}"
            ) from exc
        handle = self._next_handle
        self._next_handle += 1
        self._loaded[handle] = key
        return handle

    def _cmd_sign(
        self,
        locality: int,
        key_handle: int,
        digest: bytes,
        auth: Optional[AuthBlock] = None,
    ) -> bytes:
        key = self._require_loaded(key_handle)
        if key.usage is not KeyUsage.SIGNING:
            raise TpmError(TpmResult.BAD_PARAMETER, "sign requires a signing key")
        if len(digest) != SHA1_SIZE:
            raise TpmError(
                TpmResult.BAD_PARAMETER, "sign expects a 20-byte SHA-1 digest"
            )
        # Keys created with a usage secret demand an OIAP proof.
        self.oiap.validate(
            getattr(key, "usage_auth", None), param_digest("sign", digest), auth
        )
        return pkcs1_sign(key.keypair, digest, prehashed=True)

    # ------------------------------------------------------------------
    # Authorization sessions
    # ------------------------------------------------------------------
    def _cmd_oiap_open(self, locality: int) -> Tuple[int, bytes]:
        """TPM_OIAP: open an authorization session."""
        session = self.oiap.open()
        return session.handle, session.nonce_even

    def _cmd_terminate_auth(self, locality: int, session_handle: int) -> None:
        self.oiap.terminate(session_handle)

    def _cmd_certify_key(
        self,
        locality: int,
        aik_handle: int,
        key_handle: int,
        selection: PcrSelection,
        external_data: bytes,
    ) -> Tuple[bytes, bytes]:
        """AIK-sign (key public digest, current PCR composite, nonce)."""
        aik = self._require_loaded(aik_handle)
        if aik.usage is not KeyUsage.IDENTITY:
            raise TpmError(TpmResult.BAD_PARAMETER, "certify requires an AIK")
        subject = self._require_loaded(key_handle)
        if len(external_data) != SHA1_SIZE:
            raise TpmError(
                TpmResult.BAD_PARAMETER, "external data must be 20 bytes"
            )
        composite = PcrComposite.from_bank(selection, self.pcrs.values())
        info = CertifyInfo(
            public_key_digest=sha1(subject.public.to_bytes()),
            composite_digest=composite.digest(),
            external_data=external_data,
        )
        encoded = info.to_bytes()
        return encoded, pkcs1_sign(aik.keypair, encoded)

    def _cmd_make_identity(self, locality: int) -> Tuple[int, RsaPublicKey, bytes]:
        """Create a new AIK; returns (handle, public half, wrapped blob).

        The wrapped blob (under the SRK) is what lets the platform
        reload its AIK after a reboot — AIK slots are volatile.
        """
        aik = TpmKey.generate(KeyUsage.IDENTITY, self._drbg, self.key_bits)
        handle = self._next_handle
        self._next_handle += 1
        self._loaded[handle] = aik
        wrapped = wrap_key(self._srk, aik, self._drbg.generate(16))
        return handle, aik.public, wrapped

    def _cmd_activate_identity(
        self, locality: int, aik_handle: int, encrypted_blob: bytes
    ) -> bytes:
        """Decrypt a Privacy-CA blob with the EK; releases the AIK cert
        session key only if the blob was bound to this exact AIK (the
        binding is OAEP's label, so a mismatch is indistinguishable
        from ciphertext tampering)."""
        from repro.crypto.oaep import oaep_decrypt
        from repro.tpm.ca import derive_activation_key

        aik = self._require_loaded(aik_handle)
        try:
            seed = oaep_decrypt(
                self._ek.keypair, encrypted_blob, label=aik.fingerprint()
            )
        except Exception as exc:
            raise TpmError(
                TpmResult.BAD_PARAMETER, f"EK decryption failed: {exc}"
            ) from exc
        return derive_activation_key(seed)

    def _cmd_read_pubek(self, locality: int) -> RsaPublicKey:
        return self._ek.public

    def _cmd_flush_context(self, locality: int, key_handle: int) -> None:
        if key_handle == self.SRK_HANDLE:
            raise TpmError(TpmResult.BAD_PARAMETER, "cannot flush the SRK")
        self._loaded.pop(key_handle, None)

    # ------------------------------------------------------------------
    # NV and counters
    # ------------------------------------------------------------------
    def _cmd_nv_define(
        self, locality: int, index: int, size: int, auth_value: Optional[bytes] = None
    ) -> None:
        self.nv.define(index, size, auth_value)

    def _cmd_nv_write(
        self, locality: int, index: int, data: bytes, auth: Optional[bytes] = None
    ) -> None:
        self.nv.write(index, data, auth)

    def _cmd_nv_read(
        self, locality: int, index: int, auth: Optional[bytes] = None
    ) -> bytes:
        return self.nv.read(index, auth)

    def _cmd_create_counter(self, locality: int, counter_id: int) -> None:
        self.nv.create_counter(counter_id)

    def _cmd_increment_counter(self, locality: int, counter_id: int) -> int:
        return self.nv.increment_counter(counter_id)

    def _cmd_read_counter(self, locality: int, counter_id: int) -> int:
        return self.nv.read_counter(counter_id)

    # ------------------------------------------------------------------
    def _require_loaded(self, handle: int) -> TpmKey:
        if handle not in self._loaded:
            raise TpmError(TpmResult.KEY_NOT_FOUND, f"no key at handle {handle:#x}")
        return self._loaded[handle]

    @property
    def loaded_key_count(self) -> int:
        return len(self._loaded)

    def __repr__(self) -> str:
        return (
            f"TpmDevice(vendor={self.profile.vendor!r}, "
            f"keys={len(self._loaded)}, started={self._started})"
        )
