"""Privacy CA: AIK enrollment and credential issuance (system S5).

The paper assumes the platform owns an AIK certificate chained to a CA
the service provider trusts.  We implement the TCG enrollment flow:

1. The platform creates an AIK (TPM_MakeIdentity) and sends the AIK
   public key plus its EK public key to the CA.
2. The CA checks the EK against its manufacturer list, builds an AIK
   certificate, encrypts a session key **to the EK** naming the AIK, and
   returns (encrypted blob, certificate ciphertext).
3. Only a TPM holding that EK *and* that AIK can run
   TPM_ActivateIdentity to recover the session key and decrypt the
   certificate — which is how the CA knows the AIK lives in a real TPM
   without ever seeing the private halves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Set

from repro.crypto.drbg import HmacDrbg
from repro.crypto.oaep import oaep_encrypt
from repro.crypto.pkcs1 import pkcs1_sign, pkcs1_verify
from repro.crypto.rsa import RsaKeyPair, RsaPublicKey, generate_rsa_keypair
from repro.crypto.stream import open_box, seal_box


@dataclass(frozen=True)
class AikCertificate:
    """CA-signed binding of an AIK public key to a platform class."""

    aik_public: RsaPublicKey
    platform_class: str
    signature: bytes

    def signed_body(self) -> bytes:
        return self.aik_public.to_bytes() + self.platform_class.encode("utf-8")

    def verify(self, ca_public: RsaPublicKey) -> bool:
        return pkcs1_verify(ca_public, self.signed_body(), self.signature)


@dataclass(frozen=True)
class EnrollmentResponse:
    """What the CA returns: an EK-encrypted activation blob plus the
    certificate encrypted under the contained session key."""

    encrypted_activation: bytes
    encrypted_certificate: bytes


class EnrollmentError(ValueError):
    """CA refused to enroll (unknown EK, malformed request)."""


def derive_activation_key(seed: bytes) -> bytes:
    """Session key derivation shared by the CA and the TPM."""
    from repro.crypto.hmac_impl import hmac_sha256

    return hmac_sha256(seed, b"aik-activation-session-key")


class PrivacyCa:
    """A certificate authority for attestation identity keys."""

    def __init__(self, seed: int, key_bits: int = 512) -> None:
        self._drbg = HmacDrbg(seed.to_bytes(8, "big"), personalization=b"privacy-ca")
        self._keypair: RsaKeyPair = generate_rsa_keypair(key_bits, self._drbg)
        self._known_eks: Set[bytes] = set()
        self.certificates_issued = 0

    @property
    def public_key(self) -> RsaPublicKey:
        return self._keypair.public

    def register_manufacturer_ek(self, ek_public: RsaPublicKey) -> None:
        """Record an EK as genuine (the manufacturer-cert check)."""
        self._known_eks.add(ek_public.fingerprint())

    def enroll(
        self,
        aik_public: RsaPublicKey,
        ek_public: RsaPublicKey,
        platform_class: str = "pc-client-v1.2",
    ) -> EnrollmentResponse:
        """Issue an AIK credential, deliverable only to the genuine TPM."""
        if ek_public.fingerprint() not in self._known_eks:
            raise EnrollmentError("EK not on the manufacturer list")
        certificate = AikCertificate(
            aik_public=aik_public,
            platform_class=platform_class,
            signature=pkcs1_sign(
                self._keypair,
                aik_public.to_bytes() + platform_class.encode("utf-8"),
            ),
        )
        # EK encryption uses OAEP; the AIK binding rides in the OAEP
        # *label* (associated data), so only a TPM holding this EK AND
        # activating exactly this AIK can recover the seed.  The session
        # key is derived from the seed on both sides.
        seed = self._drbg.generate(20)
        session_key = derive_activation_key(seed)
        activation = oaep_encrypt(
            ek_public, seed, self._drbg, label=aik_public.fingerprint()
        )
        encrypted_certificate = seal_box(
            session_key, _serialize_certificate(certificate), self._drbg.generate(16)
        )
        self.certificates_issued += 1
        return EnrollmentResponse(
            encrypted_activation=activation,
            encrypted_certificate=encrypted_certificate,
        )


def serialize_certificate(certificate: AikCertificate) -> bytes:
    """Length-prefixed encoding: aik || platform_class || signature.

    Used both inside the CA's encrypted delivery and as the plain wire
    form the client later presents to service providers.
    """
    parts = [
        certificate.aik_public.to_bytes(),
        certificate.platform_class.encode("utf-8"),
        certificate.signature,
    ]
    return b"".join(len(part).to_bytes(4, "big") + part for part in parts)


def deserialize_certificate(data: bytes) -> AikCertificate:
    """Parse the plain wire form produced by :func:`serialize_certificate`."""
    fields = []
    offset = 0
    for _ in range(3):
        length = int.from_bytes(data[offset : offset + 4], "big")
        fields.append(data[offset + 4 : offset + 4 + length])
        offset += 4 + length
    return AikCertificate(
        aik_public=RsaPublicKey.from_bytes(fields[0]),
        platform_class=fields[1].decode("utf-8"),
        signature=fields[2],
    )


_serialize_certificate = serialize_certificate


def decrypt_certificate(session_key: bytes, encrypted: bytes) -> AikCertificate:
    """Client-side: decrypt the CA's certificate with the activated key."""
    blob = open_box(session_key, encrypted)
    fields = []
    offset = 0
    for _ in range(3):
        length = int.from_bytes(blob[offset : offset + 4], "big")
        fields.append(blob[offset + 4 : offset + 4 + length])
        offset += 4 + length
    return AikCertificate(
        aik_public=RsaPublicKey.from_bytes(fields[0]),
        platform_class=fields[1].decode("utf-8"),
        signature=fields[2],
    )
