"""The PCR bank.

A PCR can only move forward: ``extend(i, m)`` sets
``PCR[i] := SHA1(PCR[i] || m)``.  There is no assignment operation, so
reaching a given value requires replaying the exact measurement sequence
— the one-way property the trusted path's security reduces to.  Dynamic
PCRs additionally enforce the DRTM locality policy: reset only at
locality 4 (CPU microcode during SKINIT), extend only at localities 2–4.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.crypto.sha1 import sha1
from repro.tpm.constants import (
    APPLICATION_RESET_LOCALITIES,
    DYNAMIC_EXTEND_LOCALITIES,
    DYNAMIC_PCR_DEFAULT,
    DYNAMIC_RESET_LOCALITIES,
    NUM_PCRS,
    PCR_APPLICATION,
    SHA1_SIZE,
    STATIC_PCR_DEFAULT,
    TpmError,
    TpmResult,
    is_dynamic_pcr,
    validate_pcr_index,
)


class PcrBank:
    """The 24 platform configuration registers of a v1.2 TPM."""

    def __init__(self) -> None:
        self._values: List[bytes] = []
        self._extend_log: List[Tuple[int, bytes]] = []
        self.startup_clear()

    def startup_clear(self) -> None:
        """TPM_Startup(ST_CLEAR): static PCRs to zero, dynamic to 0xFF.

        The 0xFF default is how a verifier can tell "no late launch has
        happened since boot" apart from "a late launch measured code
        hashing to zero" — the states are distinguishable by design.
        """
        self._values = [
            DYNAMIC_PCR_DEFAULT if is_dynamic_pcr(i) else STATIC_PCR_DEFAULT
            for i in range(NUM_PCRS)
        ]
        self._extend_log.clear()

    def read(self, index: int) -> bytes:
        validate_pcr_index(index)
        return self._values[index]

    def extend(self, index: int, measurement: bytes, locality: int) -> bytes:
        """Extend PCR ``index`` with a 20-byte ``measurement``."""
        validate_pcr_index(index)
        if len(measurement) != SHA1_SIZE:
            raise TpmError(
                TpmResult.BAD_PARAMETER,
                f"measurement must be {SHA1_SIZE} bytes, got {len(measurement)}",
            )
        if is_dynamic_pcr(index) and locality not in DYNAMIC_EXTEND_LOCALITIES:
            raise TpmError(
                TpmResult.BAD_LOCALITY,
                f"locality {locality} may not extend dynamic PCR {index}",
            )
        self._values[index] = sha1(self._values[index] + measurement)
        self._extend_log.append((index, measurement))
        return self._values[index]

    def reset_dynamic(self, index: int, locality: int) -> None:
        """Reset a resettable PCR to all-zeros (the locality-4 DRTM reset)."""
        validate_pcr_index(index)
        if is_dynamic_pcr(index):
            allowed = DYNAMIC_RESET_LOCALITIES
        elif index == PCR_APPLICATION:
            allowed = APPLICATION_RESET_LOCALITIES
        else:
            raise TpmError(
                TpmResult.BAD_PARAMETER, f"PCR {index} is not resettable"
            )
        if locality not in allowed:
            raise TpmError(
                TpmResult.BAD_LOCALITY,
                f"locality {locality} may not reset PCR {index}",
            )
        self._values[index] = STATIC_PCR_DEFAULT

    def values(self) -> Dict[int, bytes]:
        return {index: value for index, value in enumerate(self._values)}

    @property
    def extend_log(self) -> List[Tuple[int, bytes]]:
        """History of (index, measurement) extends since startup; the
        emulator's analogue of a measurement log."""
        return list(self._extend_log)

    def __repr__(self) -> str:
        interesting = {
            i: self._values[i].hex()[:16] for i in (0, 17, 18) if i < NUM_PCRS
        }
        return f"PcrBank({interesting})"
