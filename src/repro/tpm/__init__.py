"""TPM v1.2 emulator (systems S4 and S5).

A functionally honest software TPM: PCRs are real SHA-1 hash chains,
quotes are real RSA-PKCS#1 v1.5 signatures over the serialized
TPM_QUOTE_INFO structure, sealed blobs really are bound to PCR state and
really fail to unseal anywhere else.  Command latency is charged to the
shared virtual clock according to a per-vendor timing profile
(:mod:`repro.tpm.timing`), modeled on published Flicker-era measurements
of discrete v1.2 parts — TPM command cost is what dominates the paper's
performance story, so this is the load-bearing part of the model.

Modules
-------
constants    — localities, PCR layout, error codes.
pcr          — the PCR bank with per-PCR locality policy.
structures   — TPM wire structures and their serialization.
keys         — key objects and the EK/SRK/AIK hierarchy.
timing       — vendor latency profiles.
device       — the command interface (`TpmDevice.execute`).
nvram        — NV storage and monotonic counters.
ca           — a Privacy CA issuing AIK credentials (S5).
quote        — verifier-side helpers for checking quotes.
"""

from repro.tpm.constants import (
    DYNAMIC_PCR_FIRST,
    DYNAMIC_PCR_LAST,
    NUM_PCRS,
    PCR_DRTM_CODE,
    PCR_DRTM_DATA,
    TpmError,
    TpmResult,
)
from repro.tpm.ca import AikCertificate, PrivacyCa
from repro.tpm.device import TpmDevice
from repro.tpm.keys import KeyUsage, TpmKey
from repro.tpm.pcr import PcrBank
from repro.tpm.quote import QuoteBundle, verify_quote
from repro.tpm.structures import (
    PcrComposite,
    PcrSelection,
    QuoteInfo,
    SealedBlob,
)
from repro.tpm.timing import TimingProfile, vendor_profile, VENDOR_PROFILES

__all__ = [
    "NUM_PCRS",
    "DYNAMIC_PCR_FIRST",
    "DYNAMIC_PCR_LAST",
    "PCR_DRTM_CODE",
    "PCR_DRTM_DATA",
    "TpmError",
    "TpmResult",
    "PcrBank",
    "PcrSelection",
    "PcrComposite",
    "QuoteInfo",
    "SealedBlob",
    "TpmKey",
    "KeyUsage",
    "TpmDevice",
    "TimingProfile",
    "vendor_profile",
    "VENDOR_PROFILES",
    "PrivacyCa",
    "AikCertificate",
    "QuoteBundle",
    "verify_quote",
]
