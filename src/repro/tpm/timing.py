"""Per-vendor TPM command latency profiles.

The paper's performance story is dominated by TPM command cost, which in
the v1.2 era varied enormously between vendors.  The numbers below are
modeled on the published micro-benchmarks of discrete v1.2 parts in the
Flicker work (McCune et al., EuroSys 2008, Table 1 and follow-ups),
which measured Atmel, Broadcom, Infineon and STMicro TPMs.  We encode
them as mean ± small jitter; absolute values are testbed-dependent but
the *ordering and ratios* (quote is the costliest; unseal is close;
vendors differ by 3–5x) are what the reproduction must preserve.

All values are in seconds of virtual time.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict

from repro.sim.latency import LatencyModel, NormalLatency


@dataclass(frozen=True)
class TimingProfile:
    """Latency model per TPM command for one vendor part."""

    vendor: str
    command_latency: Dict[str, LatencyModel]
    # Throughput of the LPC-attached hash interface used by SKINIT when
    # it streams the SLB to the TPM, bytes/second.  This is why PAL size
    # shows up in session latency (experiment F1).
    slb_hash_bytes_per_second: float = 12.0e6

    def latency_for(self, command: str, rng: random.Random) -> float:
        """Sample the latency of ``command``; unknown commands cost the
        baseline bus round-trip."""
        model = self.command_latency.get(command)
        if model is None:
            model = self.command_latency["_default"]
        return model.sample(rng)

    def mean_latency(self, command: str) -> float:
        model = self.command_latency.get(command)
        if model is None:
            model = self.command_latency["_default"]
        return model.mean()


def _profile(vendor: str, means_ms: Dict[str, float], slb_mbps: float) -> TimingProfile:
    """Build a profile from mean milliseconds (sigma = 3% of the mean)."""
    models: Dict[str, LatencyModel] = {
        command: NormalLatency(mu=mean / 1000.0, sigma=0.03 * mean / 1000.0)
        for command, mean in means_ms.items()
    }
    return TimingProfile(
        vendor=vendor,
        command_latency=models,
        slb_hash_bytes_per_second=slb_mbps * 1e6,
    )


# Mean command latencies in milliseconds per vendor.  Modeled on the
# Flicker-era published measurements; see module docstring.
VENDOR_PROFILES: Dict[str, TimingProfile] = {
    # Infineon SLB9635 (Lenovo T60 class): the fast part of the era.
    "infineon": _profile(
        "infineon",
        {
            "_default": 1.2,
            "startup": 2.0,
            "extend": 1.1,
            "pcr_read": 0.8,
            "get_random": 1.3,
            "quote": 331.0,
            "seal": 21.0,
            "unseal": 391.0,
            "create_wrap_key": 2350.0,
            "load_key2": 680.0,
            "sign": 189.0,
            "make_identity": 3120.0,
            "activate_identity": 570.0,
            "certify_key": 340.0,
            "nv_read": 1.4,
            "nv_write": 2.2,
            "increment_counter": 2.5,
        },
        slb_mbps=14.0,
    ),
    # Broadcom BCM5752 (Dell class): notoriously slow private-key ops.
    "broadcom": _profile(
        "broadcom",
        {
            "_default": 1.6,
            "startup": 2.4,
            "extend": 1.4,
            "pcr_read": 1.0,
            "get_random": 1.7,
            "quote": 972.0,
            "seal": 28.0,
            "unseal": 905.0,
            "create_wrap_key": 4900.0,
            "load_key2": 1290.0,
            "sign": 646.0,
            "make_identity": 6200.0,
            "activate_identity": 980.0,
            "certify_key": 990.0,
            "nv_read": 1.8,
            "nv_write": 2.9,
            "increment_counter": 3.1,
        },
        slb_mbps=9.0,
    ),
    # Atmel AT97SC3203 (HP class).
    "atmel": _profile(
        "atmel",
        {
            "_default": 1.4,
            "startup": 2.1,
            "extend": 1.2,
            "pcr_read": 0.9,
            "get_random": 1.5,
            "quote": 793.0,
            "seal": 24.0,
            "unseal": 737.0,
            "create_wrap_key": 3850.0,
            "load_key2": 1050.0,
            "sign": 502.0,
            "make_identity": 5100.0,
            "activate_identity": 830.0,
            "certify_key": 810.0,
            "nv_read": 1.6,
            "nv_write": 2.6,
            "increment_counter": 2.8,
        },
        slb_mbps=10.5,
    ),
    # STMicro ST19NP18 (mid-range).
    "stmicro": _profile(
        "stmicro",
        {
            "_default": 1.3,
            "startup": 2.2,
            "extend": 1.2,
            "pcr_read": 0.9,
            "get_random": 1.4,
            "quote": 651.0,
            "seal": 23.0,
            "unseal": 571.0,
            "create_wrap_key": 3100.0,
            "load_key2": 880.0,
            "sign": 398.0,
            "make_identity": 4300.0,
            "activate_identity": 720.0,
            "certify_key": 660.0,
            "nv_read": 1.5,
            "nv_write": 2.4,
            "increment_counter": 2.7,
        },
        slb_mbps=11.5,
    ),
}


def vendor_profile(vendor: str) -> TimingProfile:
    """Look up a vendor profile by name (case-insensitive)."""
    key = vendor.lower()
    if key not in VENDOR_PROFILES:
        raise KeyError(
            f"unknown TPM vendor {vendor!r}; have {sorted(VENDOR_PROFILES)}"
        )
    return VENDOR_PROFILES[key]


def instant_profile() -> TimingProfile:
    """A zero-latency profile for tests that assert behaviour, not time."""
    from repro.sim.latency import ConstantLatency

    return TimingProfile(
        vendor="instant",
        command_latency={"_default": ConstantLatency(0.0)},
        slb_hash_bytes_per_second=float("inf"),
    )
