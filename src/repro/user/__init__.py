"""Human user model (system S13).

The paper's guarantee is about *humans at keyboards*, so experiments
need a model of one: how long reading takes, whether the user actually
verifies the displayed transaction, and how they respond to
confirmation screens (genuine or spoofed — by construction the model
cannot tell, which is the uni-directional concession).
"""

from repro.user.human import HumanUser, UserProfile

__all__ = ["HumanUser", "UserProfile"]
